
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_structures.cc" "tests/CMakeFiles/persim_tests.dir/test_cache_structures.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_cache_structures.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/persim_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/persim_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_integration_smoke.cc" "tests/CMakeFiles/persim_tests.dir/test_integration_smoke.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_integration_smoke.cc.o.d"
  "/root/repo/tests/test_micro_workloads.cc" "tests/CMakeFiles/persim_tests.dir/test_micro_workloads.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_micro_workloads.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/persim_tests.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_nvm.cc" "tests/CMakeFiles/persim_tests.dir/test_nvm.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_nvm.cc.o.d"
  "/root/repo/tests/test_ordering_checker.cc" "tests/CMakeFiles/persim_tests.dir/test_ordering_checker.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_ordering_checker.cc.o.d"
  "/root/repo/tests/test_persist_protocol.cc" "tests/CMakeFiles/persim_tests.dir/test_persist_protocol.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_persist_protocol.cc.o.d"
  "/root/repo/tests/test_persist_structures.cc" "tests/CMakeFiles/persim_tests.dir/test_persist_structures.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_persist_structures.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/persim_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_recovery.cc" "tests/CMakeFiles/persim_tests.dir/test_recovery.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_recovery.cc.o.d"
  "/root/repo/tests/test_replacement_and_edge.cc" "tests/CMakeFiles/persim_tests.dir/test_replacement_and_edge.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_replacement_and_edge.cc.o.d"
  "/root/repo/tests/test_scenarios.cc" "tests/CMakeFiles/persim_tests.dir/test_scenarios.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_scenarios.cc.o.d"
  "/root/repo/tests/test_sim_basics.cc" "tests/CMakeFiles/persim_tests.dir/test_sim_basics.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_sim_basics.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/persim_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_system_api.cc" "tests/CMakeFiles/persim_tests.dir/test_system_api.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_system_api.cc.o.d"
  "/root/repo/tests/test_workload_structures.cc" "tests/CMakeFiles/persim_tests.dir/test_workload_structures.cc.o" "gcc" "tests/CMakeFiles/persim_tests.dir/test_workload_structures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/persim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
