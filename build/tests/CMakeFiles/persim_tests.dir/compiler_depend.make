# Empty compiler generated dependencies file for persim_tests.
# This may be replaced when dependencies are built.
