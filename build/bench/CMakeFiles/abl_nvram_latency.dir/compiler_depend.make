# Empty compiler generated dependencies file for abl_nvram_latency.
# This may be replaced when dependencies are built.
