file(REMOVE_RECURSE
  "CMakeFiles/abl_nvram_latency.dir/abl_nvram_latency.cc.o"
  "CMakeFiles/abl_nvram_latency.dir/abl_nvram_latency.cc.o.d"
  "abl_nvram_latency"
  "abl_nvram_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nvram_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
