file(REMOVE_RECURSE
  "CMakeFiles/fig11_bep_throughput.dir/fig11_bep_throughput.cc.o"
  "CMakeFiles/fig11_bep_throughput.dir/fig11_bep_throughput.cc.o.d"
  "fig11_bep_throughput"
  "fig11_bep_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bep_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
