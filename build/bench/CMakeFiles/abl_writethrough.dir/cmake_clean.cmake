file(REMOVE_RECURSE
  "CMakeFiles/abl_writethrough.dir/abl_writethrough.cc.o"
  "CMakeFiles/abl_writethrough.dir/abl_writethrough.cc.o.d"
  "abl_writethrough"
  "abl_writethrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_writethrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
