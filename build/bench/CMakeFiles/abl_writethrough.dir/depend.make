# Empty dependencies file for abl_writethrough.
# This may be replaced when dependencies are built.
