file(REMOVE_RECURSE
  "CMakeFiles/fig12_conflicts.dir/fig12_conflicts.cc.o"
  "CMakeFiles/fig12_conflicts.dir/fig12_conflicts.cc.o.d"
  "fig12_conflicts"
  "fig12_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
