file(REMOVE_RECURSE
  "CMakeFiles/abl_epoch_window.dir/abl_epoch_window.cc.o"
  "CMakeFiles/abl_epoch_window.dir/abl_epoch_window.cc.o.d"
  "abl_epoch_window"
  "abl_epoch_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_epoch_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
