# Empty compiler generated dependencies file for abl_flush_type.
# This may be replaced when dependencies are built.
