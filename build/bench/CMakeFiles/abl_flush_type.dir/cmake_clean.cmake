file(REMOVE_RECURSE
  "CMakeFiles/abl_flush_type.dir/abl_flush_type.cc.o"
  "CMakeFiles/abl_flush_type.dir/abl_flush_type.cc.o.d"
  "abl_flush_type"
  "abl_flush_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_flush_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
