file(REMOVE_RECURSE
  "CMakeFiles/abl_persistency_models.dir/abl_persistency_models.cc.o"
  "CMakeFiles/abl_persistency_models.dir/abl_persistency_models.cc.o.d"
  "abl_persistency_models"
  "abl_persistency_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_persistency_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
