# Empty compiler generated dependencies file for abl_persistency_models.
# This may be replaced when dependencies are built.
