file(REMOVE_RECURSE
  "CMakeFiles/abl_idt_registers.dir/abl_idt_registers.cc.o"
  "CMakeFiles/abl_idt_registers.dir/abl_idt_registers.cc.o.d"
  "abl_idt_registers"
  "abl_idt_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_idt_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
