# Empty dependencies file for abl_idt_registers.
# This may be replaced when dependencies are built.
