# Empty compiler generated dependencies file for abl_arbiter_messages.
# This may be replaced when dependencies are built.
