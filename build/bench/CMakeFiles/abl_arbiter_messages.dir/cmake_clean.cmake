file(REMOVE_RECURSE
  "CMakeFiles/abl_arbiter_messages.dir/abl_arbiter_messages.cc.o"
  "CMakeFiles/abl_arbiter_messages.dir/abl_arbiter_messages.cc.o.d"
  "abl_arbiter_messages"
  "abl_arbiter_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_arbiter_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
