# Empty compiler generated dependencies file for fig13_epoch_size.
# This may be replaced when dependencies are built.
