# Empty compiler generated dependencies file for fig14_bsp.
# This may be replaced when dependencies are built.
