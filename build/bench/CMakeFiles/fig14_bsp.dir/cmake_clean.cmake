file(REMOVE_RECURSE
  "CMakeFiles/fig14_bsp.dir/fig14_bsp.cc.o"
  "CMakeFiles/fig14_bsp.dir/fig14_bsp.cc.o.d"
  "fig14_bsp"
  "fig14_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
