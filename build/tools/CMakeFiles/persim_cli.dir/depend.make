# Empty dependencies file for persim_cli.
# This may be replaced when dependencies are built.
