file(REMOVE_RECURSE
  "CMakeFiles/persim_cli.dir/persim_cli.cc.o"
  "CMakeFiles/persim_cli.dir/persim_cli.cc.o.d"
  "persim_cli"
  "persim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
