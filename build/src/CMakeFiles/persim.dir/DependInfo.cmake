
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/persim.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/persim.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/cache/l1_cache.cc" "src/CMakeFiles/persim.dir/cache/l1_cache.cc.o" "gcc" "src/CMakeFiles/persim.dir/cache/l1_cache.cc.o.d"
  "/root/repo/src/cache/llc_bank.cc" "src/CMakeFiles/persim.dir/cache/llc_bank.cc.o" "gcc" "src/CMakeFiles/persim.dir/cache/llc_bank.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/persim.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/persim.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/persim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/persim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/write_buffer.cc" "src/CMakeFiles/persim.dir/cpu/write_buffer.cc.o" "gcc" "src/CMakeFiles/persim.dir/cpu/write_buffer.cc.o.d"
  "/root/repo/src/model/ordering_checker.cc" "src/CMakeFiles/persim.dir/model/ordering_checker.cc.o" "gcc" "src/CMakeFiles/persim.dir/model/ordering_checker.cc.o.d"
  "/root/repo/src/model/recovery.cc" "src/CMakeFiles/persim.dir/model/recovery.cc.o" "gcc" "src/CMakeFiles/persim.dir/model/recovery.cc.o.d"
  "/root/repo/src/model/system.cc" "src/CMakeFiles/persim.dir/model/system.cc.o" "gcc" "src/CMakeFiles/persim.dir/model/system.cc.o.d"
  "/root/repo/src/model/system_config.cc" "src/CMakeFiles/persim.dir/model/system_config.cc.o" "gcc" "src/CMakeFiles/persim.dir/model/system_config.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/CMakeFiles/persim.dir/noc/link.cc.o" "gcc" "src/CMakeFiles/persim.dir/noc/link.cc.o.d"
  "/root/repo/src/noc/mesh.cc" "src/CMakeFiles/persim.dir/noc/mesh.cc.o" "gcc" "src/CMakeFiles/persim.dir/noc/mesh.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/CMakeFiles/persim.dir/noc/network_interface.cc.o" "gcc" "src/CMakeFiles/persim.dir/noc/network_interface.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/persim.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/persim.dir/noc/router.cc.o.d"
  "/root/repo/src/nvm/memory_controller.cc" "src/CMakeFiles/persim.dir/nvm/memory_controller.cc.o" "gcc" "src/CMakeFiles/persim.dir/nvm/memory_controller.cc.o.d"
  "/root/repo/src/nvm/nvram.cc" "src/CMakeFiles/persim.dir/nvm/nvram.cc.o" "gcc" "src/CMakeFiles/persim.dir/nvm/nvram.cc.o.d"
  "/root/repo/src/persist/barrier_config.cc" "src/CMakeFiles/persim.dir/persist/barrier_config.cc.o" "gcc" "src/CMakeFiles/persim.dir/persist/barrier_config.cc.o.d"
  "/root/repo/src/persist/epoch_arbiter.cc" "src/CMakeFiles/persim.dir/persist/epoch_arbiter.cc.o" "gcc" "src/CMakeFiles/persim.dir/persist/epoch_arbiter.cc.o.d"
  "/root/repo/src/persist/epoch_table.cc" "src/CMakeFiles/persim.dir/persist/epoch_table.cc.o" "gcc" "src/CMakeFiles/persim.dir/persist/epoch_table.cc.o.d"
  "/root/repo/src/persist/flush_engine.cc" "src/CMakeFiles/persim.dir/persist/flush_engine.cc.o" "gcc" "src/CMakeFiles/persim.dir/persist/flush_engine.cc.o.d"
  "/root/repo/src/persist/idt_registers.cc" "src/CMakeFiles/persim.dir/persist/idt_registers.cc.o" "gcc" "src/CMakeFiles/persim.dir/persist/idt_registers.cc.o.d"
  "/root/repo/src/persist/persist_controller.cc" "src/CMakeFiles/persim.dir/persist/persist_controller.cc.o" "gcc" "src/CMakeFiles/persim.dir/persist/persist_controller.cc.o.d"
  "/root/repo/src/persist/undo_log.cc" "src/CMakeFiles/persim.dir/persist/undo_log.cc.o" "gcc" "src/CMakeFiles/persim.dir/persist/undo_log.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/persim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/persim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/persim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/persim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/CMakeFiles/persim.dir/sim/sim_object.cc.o" "gcc" "src/CMakeFiles/persim.dir/sim/sim_object.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/persim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/persim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/persim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/persim.dir/sim/trace.cc.o.d"
  "/root/repo/src/workload/lock_manager.cc" "src/CMakeFiles/persim.dir/workload/lock_manager.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/lock_manager.cc.o.d"
  "/root/repo/src/workload/micro/hash.cc" "src/CMakeFiles/persim.dir/workload/micro/hash.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/micro/hash.cc.o.d"
  "/root/repo/src/workload/micro/micro_benchmark.cc" "src/CMakeFiles/persim.dir/workload/micro/micro_benchmark.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/micro/micro_benchmark.cc.o.d"
  "/root/repo/src/workload/micro/queue.cc" "src/CMakeFiles/persim.dir/workload/micro/queue.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/micro/queue.cc.o.d"
  "/root/repo/src/workload/micro/rbtree.cc" "src/CMakeFiles/persim.dir/workload/micro/rbtree.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/micro/rbtree.cc.o.d"
  "/root/repo/src/workload/micro/sdg.cc" "src/CMakeFiles/persim.dir/workload/micro/sdg.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/micro/sdg.cc.o.d"
  "/root/repo/src/workload/micro/sps.cc" "src/CMakeFiles/persim.dir/workload/micro/sps.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/micro/sps.cc.o.d"
  "/root/repo/src/workload/nv_heap.cc" "src/CMakeFiles/persim.dir/workload/nv_heap.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/nv_heap.cc.o.d"
  "/root/repo/src/workload/synthetic/presets.cc" "src/CMakeFiles/persim.dir/workload/synthetic/presets.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/synthetic/presets.cc.o.d"
  "/root/repo/src/workload/synthetic/trace_gen.cc" "src/CMakeFiles/persim.dir/workload/synthetic/trace_gen.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/synthetic/trace_gen.cc.o.d"
  "/root/repo/src/workload/workload_factory.cc" "src/CMakeFiles/persim.dir/workload/workload_factory.cc.o" "gcc" "src/CMakeFiles/persim.dir/workload/workload_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
