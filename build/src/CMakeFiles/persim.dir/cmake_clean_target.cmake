file(REMOVE_RECURSE
  "libpersim.a"
)
