# Empty dependencies file for persim.
# This may be replaced when dependencies are built.
