file(REMOVE_RECURSE
  "CMakeFiles/deadlock_avoidance.dir/deadlock_avoidance.cpp.o"
  "CMakeFiles/deadlock_avoidance.dir/deadlock_avoidance.cpp.o.d"
  "deadlock_avoidance"
  "deadlock_avoidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_avoidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
