# Empty compiler generated dependencies file for deadlock_avoidance.
# This may be replaced when dependencies are built.
