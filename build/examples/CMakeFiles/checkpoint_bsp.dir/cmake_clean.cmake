file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_bsp.dir/checkpoint_bsp.cpp.o"
  "CMakeFiles/checkpoint_bsp.dir/checkpoint_bsp.cpp.o.d"
  "checkpoint_bsp"
  "checkpoint_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
