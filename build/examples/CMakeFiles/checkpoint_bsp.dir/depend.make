# Empty dependencies file for checkpoint_bsp.
# This may be replaced when dependencies are built.
