/**
 * @file
 * persim_cli — command-line driver for one-off simulations.
 *
 *   persim_cli --workload hash --model BEP --barrier LB++ --ops 500
 *   persim_cli --workload ssca2 --model BSP --epoch-size 1000 --stats
 *
 * Workloads: the Table 2 micros (hash, queue, rbtree, sdg, sps) and the
 * synthetic suite stand-ins (canneal, dedup, freqmine, barnes,
 * cholesky, radix, intruder, ssca2, vacation).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/stats_export.hh"

#include "model/recovery.hh"
#include "sim/logging.hh"
#include "model/system.hh"
#include "workload/synthetic/presets.hh"
#include "workload/workload_factory.hh"

using namespace persim;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --workload NAME   hash|queue|rbtree|sdg|sps or a synthetic\n"
        "                    preset (canneal, ..., vacation). Default\n"
        "                    hash.\n"
        "  --model M         NP|SP|EP|BEP|BSP (default BEP for micros,\n"
        "                    BSP for synthetics)\n"
        "  --barrier B       LB|LB+IDT|LB+PF|LB++ (default LB++)\n"
        "  --ops N           operations per thread (default 300)\n"
        "  --cores N         cores (default 32; power of two)\n"
        "  --epoch-size N    BSP hardware epoch size (default 10000)\n"
        "  --seed N          workload seed (default 1)\n"
        "  --stats           dump the full stat tree\n"
        "  --json FILE       dump the run (result + stat tree) as JSON\n"
        "  --debug-state     dump live machine state after the run\n"
        "  --check-recovery  record the persist log and verify crash\n"
        "                    recoverability at every point\n"
        "  --help\n",
        argv0);
}

bool
isMicro(const std::string &name)
{
    for (auto k : workload::allMicroKinds()) {
        if (name == workload::toString(k))
            return true;
    }
    return false;
}

persist::BarrierKind
parseBarrier(const std::string &s)
{
    if (s == "LB")
        return persist::BarrierKind::LB;
    if (s == "LB+IDT" || s == "LBIDT")
        return persist::BarrierKind::LBIDT;
    if (s == "LB+PF" || s == "LBPF")
        return persist::BarrierKind::LBPF;
    if (s == "LB++" || s == "LBPP")
        return persist::BarrierKind::LBPP;
    persim::fatal("unknown barrier '", s, "'");
}

model::PersistencyModel
parseModel(const std::string &s)
{
    if (s == "NP")
        return model::PersistencyModel::NoPersistency;
    if (s == "SP")
        return model::PersistencyModel::Strict;
    if (s == "EP")
        return model::PersistencyModel::Epoch;
    if (s == "BEP")
        return model::PersistencyModel::BufferedEpoch;
    if (s == "BSP")
        return model::PersistencyModel::BufferedStrict;
    persim::fatal("unknown persistency model '", s, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workloadName = "hash";
    std::string modelName;
    std::string barrierName = "LB++";
    std::uint64_t ops = 300;
    unsigned cores = 32;
    unsigned epochSize = 10000;
    std::uint64_t seed = 1;
    bool dumpStats = false;
    std::string jsonFile;
    bool debugState = false;
    bool checkRecovery = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            workloadName = value("--workload");
        else if (arg == "--model")
            modelName = value("--model");
        else if (arg == "--barrier")
            barrierName = value("--barrier");
        else if (arg == "--ops")
            ops = std::strtoull(value("--ops").c_str(), nullptr, 10);
        else if (arg == "--cores")
            cores = static_cast<unsigned>(
                std::strtoul(value("--cores").c_str(), nullptr, 10));
        else if (arg == "--epoch-size")
            epochSize = static_cast<unsigned>(std::strtoul(
                value("--epoch-size").c_str(), nullptr, 10));
        else if (arg == "--seed")
            seed = std::strtoull(value("--seed").c_str(), nullptr, 10);
        else if (arg == "--stats")
            dumpStats = true;
        else if (arg == "--json")
            jsonFile = value("--json");
        else if (arg == "--debug-state")
            debugState = true;
        else if (arg == "--check-recovery")
            checkRecovery = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    try {
        const bool micro = isMicro(workloadName);
        if (modelName.empty())
            modelName = micro ? "BEP" : "BSP";

        model::SystemConfig cfg =
            cores == 32 ? model::SystemConfig::paperTable1()
                        : model::SystemConfig::smallTest(cores);
        applyPersistencyModel(cfg, parseModel(modelName),
                              parseBarrier(barrierName), epochSize);
        cfg.seed = seed;
        cfg.keepPersistLog = checkRecovery;

        model::System sys(cfg);
        std::vector<std::unique_ptr<cpu::Workload>> workloads;
        if (micro) {
            workload::MicroConfig mc;
            mc.kind = workload::microKindFromName(workloadName);
            mc.numThreads = cores;
            mc.opsPerThread = ops;
            mc.seed = seed;
            workloads = workload::makeMicroWorkloads(mc);
        } else {
            workloads = workload::makeSyntheticWorkloads(workloadName,
                                                         cores, ops,
                                                         seed);
        }
        for (unsigned t = 0; t < cores; ++t)
            sys.setWorkload(static_cast<CoreId>(t),
                            std::move(workloads[t]));

        std::printf("%s | %s | %s | %llu ops/thread | seed %llu\n",
                    workloadName.c_str(), modelName.c_str(),
                    barrierName.c_str(),
                    static_cast<unsigned long long>(ops),
                    static_cast<unsigned long long>(seed));
        std::printf("%s\n", cfg.describe().c_str());

        model::SimResult res = sys.run();

        std::printf("completed=%d deadlocked=%d timedOut=%d\n",
                    res.completed, res.deadlocked, res.timedOut);
        std::printf("exec %.3f Mcycles, drain +%.3f Mcycles, %llu "
                    "events\n",
                    res.execTicks / 1e6,
                    (res.drainTicks - res.execTicks) / 1e6,
                    static_cast<unsigned long long>(res.events));
        std::printf("transactions %llu (%.1f txn/Mcycle)\n",
                    static_cast<unsigned long long>(res.transactions),
                    res.throughput());
        std::printf("ordering violations: %zu\n", res.violations.size());
        for (std::size_t i = 0;
             i < res.violations.size() && i < 5; ++i)
            std::printf("  %s\n", res.violations[i].c_str());

        if (checkRecovery && sys.checker()) {
            model::RecoveryAnalysis ra(sys.checker()->log(), cores);
            const std::size_t bad = ra.firstInconsistency();
            if (bad > ra.logSize()) {
                std::printf("recovery: consistent at every crash point "
                            "(%zu durable writes)\n",
                            ra.logSize());
            } else {
                std::printf("recovery: INCONSISTENT at crash point %zu\n",
                            bad);
            }
        }
        if (debugState)
            sys.debugDump(std::cout);
        if (dumpStats)
            sys.dumpStats(std::cout);
        if (!jsonFile.empty()) {
            exp::JsonValue doc = exp::JsonValue::object();
            doc["workload"] = exp::JsonValue(workloadName);
            doc["model"] = exp::JsonValue(modelName);
            doc["barrier"] = exp::JsonValue(barrierName);
            doc["cores"] = exp::JsonValue(cores);
            doc["ops"] = exp::JsonValue(ops);
            doc["seed"] = exp::JsonValue(seed);
            doc["result"] = exp::simResultToJson(res);
            doc["groups"] = exp::statGroupsToJson(sys.statGroups());
            std::ofstream os(jsonFile);
            if (!os)
                persim::fatal("cannot write ", jsonFile);
            doc.write(os, 2);
            os << '\n';
            std::printf("wrote %s\n", jsonFile.c_str());
        }
        return res.completed && res.violations.empty() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
