/**
 * @file
 * persim_prof — render and compare `persim_sweep --prof-out` profiles.
 *
 *   persim_prof report FILE [--jobs N]     sorted phase table +
 *                                          counters summary
 *   persim_prof collapse FILE              collapsed-stack lines for
 *                                          flamegraph.pl / speedscope
 *   persim_prof diff A B [--threshold PP]  per-phase share deltas;
 *                                          exit 1 when any |delta|
 *                                          exceeds the threshold
 *
 * A profile is a host-time document (prof/profile.hh): which simulator
 * component the wall clock went to (SIGPROF phase samples) and what the
 * hardware did while it went (perf_event / getrusage counters). report
 * answers "where is the time", collapse feeds standard flamegraph
 * tooling, and diff turns two profiles into a regression gate — run it
 * before/after an optimization and let the exit code fail the build
 * when a phase's share of the samples moved more than the threshold.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/json.hh"
#include "prof/profile.hh"
#include "sim/logging.hh"

using namespace persim;
using namespace persim::prof;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> ...\n"
        "  report FILE [--jobs N]   phase table sorted by samples, "
        "counter\n"
        "                           summary, and the N most expensive "
        "jobs\n"
        "                           (default 5; 0 hides the job "
        "table)\n"
        "  collapse FILE            collapsed-stack output "
        "('persim;<phase>\n"
        "                           <count>' per line) for "
        "flamegraph.pl or\n"
        "                           speedscope\n"
        "  diff A B [--threshold PP]\n"
        "                           per-phase sample-share deltas "
        "between two\n"
        "                           profiles, in percentage points; "
        "exit 1\n"
        "                           when any |delta| > PP (default "
        "2.0)\n"
        "  --help\n",
        argv0);
}

SweepProfile
loadProfile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read ", path);
    std::ostringstream text;
    text << in.rdbuf();
    return SweepProfile::fromJson(exp::JsonValue::parse(text.str()));
}

/** Phase indices of @p counts ordered by descending sample count. */
std::array<std::size_t, kPhaseCount>
sortedPhases(const PhaseCounts &counts)
{
    std::array<std::size_t, kPhaseCount> order;
    for (std::size_t i = 0; i < kPhaseCount; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
        return counts.samples[a] > counts.samples[b];
    });
    return order;
}

double
pct(std::uint64_t part, std::uint64_t total)
{
    return total > 0
               ? 100.0 * static_cast<double>(part) /
                     static_cast<double>(total)
               : 0.0;
}

void
printCounters(const CounterReading &c)
{
    std::printf("counters: %s\n", c.source.c_str());
    if (c.perfValid) {
        std::printf("  cycles        %14llu\n",
                    static_cast<unsigned long long>(c.cycles));
        std::printf("  instructions  %14llu  (IPC %.2f)\n",
                    static_cast<unsigned long long>(c.instructions),
                    c.ipc());
        std::printf("  llcMisses     %14llu\n",
                    static_cast<unsigned long long>(c.llcMisses));
        std::printf("  branchMisses  %14llu\n",
                    static_cast<unsigned long long>(c.branchMisses));
    }
    if (c.rusageValid) {
        std::printf("  userSec       %14.3f\n", c.userSec);
        std::printf("  sysSec        %14.3f\n", c.sysSec);
        std::printf("  minorFaults   %14llu\n",
                    static_cast<unsigned long long>(c.minorFaults));
        std::printf("  majorFaults   %14llu\n",
                    static_cast<unsigned long long>(c.majorFaults));
        std::printf("  ctxSwitches   %11llu vol, %llu invol\n",
                    static_cast<unsigned long long>(c.volCtxSwitches),
                    static_cast<unsigned long long>(c.involCtxSwitches));
    }
    std::printf("  wallSec       %14.3f\n", c.wallSec);
}

int
cmdReport(const std::string &path, std::size_t topJobs)
{
    const SweepProfile p = loadProfile(path);
    const std::uint64_t total = p.phases.total();

    std::printf("profile:  %s\n", path.c_str());
    std::printf("sweep:    %s\n", p.sweep.c_str());
    std::printf("period:   %u usec (%.0f Hz)\n", p.periodUsec,
                p.periodUsec > 0 ? 1e6 / p.periodUsec : 0.0);
    if (p.loadAvg1 >= 0.0)
        std::printf("host:     %u cpus, loadavg1 %.2f\n", p.hostCpus,
                    p.loadAvg1);
    else
        std::printf("host:     %u cpus\n", p.hostCpus);
    std::printf("samples:  %llu attributed + %llu off-thread\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(p.unattributed));
    std::printf("\n%-16s %10s %7s\n", "phase", "samples", "share");
    for (std::size_t i : sortedPhases(p.phases)) {
        if (p.phases.samples[i] == 0)
            continue;
        std::printf("%-16s %10llu %6.1f%%\n",
                    phaseName(static_cast<Phase>(i)),
                    static_cast<unsigned long long>(p.phases.samples[i]),
                    pct(p.phases.samples[i], total));
    }
    // Machine-parseable: CI greps this line against its floor.
    std::printf("\nnamed-phase attribution: %.1f%%\n",
                100.0 * p.attributionRatio());
    std::printf("\n");
    printCounters(p.counters);

    if (topJobs > 0 && !p.jobs.empty()) {
        std::vector<const JobProfile *> byCost;
        byCost.reserve(p.jobs.size());
        for (const JobProfile &j : p.jobs)
            byCost.push_back(&j);
        std::stable_sort(byCost.begin(), byCost.end(),
                         [](const JobProfile *a, const JobProfile *b) {
            return a->phases.total() > b->phases.total();
        });
        std::printf("\ntop jobs by samples (%zu of %zu):\n",
                    std::min(topJobs, byCost.size()), byCost.size());
        for (std::size_t i = 0;
             i < byCost.size() && i < topJobs; ++i) {
            const JobProfile &j = *byCost[i];
            const std::size_t hot = sortedPhases(j.phases)[0];
            std::printf("  %-28s %8llu  (top %s %.0f%%)\n",
                        j.id.c_str(),
                        static_cast<unsigned long long>(
                            j.phases.total()),
                        phaseName(static_cast<Phase>(hot)),
                        pct(j.phases.samples[hot], j.phases.total()));
        }
    }
    return 0;
}

int
cmdCollapse(const std::string &path)
{
    const SweepProfile p = loadProfile(path);
    // One synthetic frame under a common root: flamegraph.pl and
    // speedscope both accept "name;name count" collapsed stacks.
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        if (p.phases.samples[i] == 0)
            continue;
        std::printf("persim;%s %llu\n",
                    phaseName(static_cast<Phase>(i)),
                    static_cast<unsigned long long>(
                        p.phases.samples[i]));
    }
    if (p.unattributed > 0)
        std::printf("persim;[off-thread] %llu\n",
                    static_cast<unsigned long long>(p.unattributed));
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB,
        double thresholdPp)
{
    const SweepProfile a = loadProfile(pathA);
    const SweepProfile b = loadProfile(pathB);
    const std::uint64_t totalA = a.phases.total();
    const std::uint64_t totalB = b.phases.total();

    std::printf("before:  %s (%llu samples)\n", pathA.c_str(),
                static_cast<unsigned long long>(totalA));
    std::printf("after:   %s (%llu samples)\n", pathB.c_str(),
                static_cast<unsigned long long>(totalB));
    std::printf("\n%-16s %8s %8s %8s\n", "phase", "before", "after",
                "delta");

    // Order by |share delta| so the table leads with what moved.
    std::array<std::size_t, kPhaseCount> order;
    for (std::size_t i = 0; i < kPhaseCount; ++i)
        order[i] = i;
    auto delta = [&](std::size_t i) {
        return pct(b.phases.samples[i], totalB) -
               pct(a.phases.samples[i], totalA);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
        return std::abs(delta(x)) > std::abs(delta(y));
    });

    bool exceeded = false;
    for (std::size_t i : order) {
        if (a.phases.samples[i] == 0 && b.phases.samples[i] == 0)
            continue;
        const double d = delta(i);
        const bool flag = std::abs(d) > thresholdPp;
        exceeded = exceeded || flag;
        std::printf("%-16s %7.1f%% %7.1f%% %+7.1fpp%s\n",
                    phaseName(static_cast<Phase>(i)),
                    pct(a.phases.samples[i], totalA),
                    pct(b.phases.samples[i], totalB), d,
                    flag ? "  <-- exceeds threshold" : "");
    }
    if (a.counters.rusageValid && b.counters.rusageValid)
        std::printf("\ncpuSec: %.3f -> %.3f (%+.1f%%)\n",
                    a.counters.userSec + a.counters.sysSec,
                    b.counters.userSec + b.counters.sysSec,
                    a.counters.userSec + a.counters.sysSec > 0.0
                        ? 100.0 * ((b.counters.userSec +
                                    b.counters.sysSec) /
                                       (a.counters.userSec +
                                        a.counters.sysSec) -
                                   1.0)
                        : 0.0);
    if (a.counters.perfValid && b.counters.perfValid)
        std::printf("cycles: %llu -> %llu, IPC %.2f -> %.2f\n",
                    static_cast<unsigned long long>(a.counters.cycles),
                    static_cast<unsigned long long>(b.counters.cycles),
                    a.counters.ipc(), b.counters.ipc());
    std::printf("\n%s (threshold %.1fpp)\n",
                exceeded ? "REGRESSION: phase shares moved"
                         : "OK: phase shares stable",
                thresholdPp);
    return exceeded ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        usage(argv[0]);
        return argc < 2 ? 2 : 0;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "report") {
            if (argc < 3)
                fatal("report: missing FILE");
            std::size_t topJobs = 5;
            for (int i = 3; i < argc; ++i) {
                if (std::strcmp(argv[i], "--jobs") == 0 &&
                    i + 1 < argc)
                    topJobs = std::strtoul(argv[++i], nullptr, 10);
                else
                    fatal("report: unknown option ", argv[i]);
            }
            return cmdReport(argv[2], topJobs);
        }
        if (cmd == "collapse") {
            if (argc != 3)
                fatal("collapse: expected exactly one FILE");
            return cmdCollapse(argv[2]);
        }
        if (cmd == "diff") {
            if (argc < 4)
                fatal("diff: expected two FILEs");
            double threshold = 2.0;
            for (int i = 4; i < argc; ++i) {
                if (std::strcmp(argv[i], "--threshold") == 0 &&
                    i + 1 < argc)
                    threshold = std::strtod(argv[++i], nullptr);
                else
                    fatal("diff: unknown option ", argv[i]);
            }
            return cmdDiff(argv[2], argv[3], threshold);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "persim_prof: %s\n", e.what());
        return 2;
    }
    usage(argv[0]);
    return 2;
}
