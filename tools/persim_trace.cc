/**
 * @file
 * persim_trace — inspect, validate, and convert workload traces.
 *
 *   persim_trace validate FILE            full strict validation
 *   persim_trace stats FILE               per-thread / per-kind summary
 *   persim_trace dump FILE [--thread T] [--limit N]
 *   persim_trace to-text IN OUT           any form -> canonical text
 *   persim_trace to-binary IN OUT         any form -> binary
 *
 * Every command accepts both the binary form and the "ptrace v1" text
 * form as input (the file magic is sniffed), so to-text of a text file
 * canonicalizes it and to-binary of a binary file rewrites it.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/logging.hh"
#include "workload/trace/trace_reader.hh"

using namespace persim;
using namespace persim::workload::trace;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> ...\n"
        "  validate FILE          decode every record, enforce all "
        "format\n"
        "                         invariants; exit 0 iff the trace is "
        "valid\n"
        "  stats FILE             record-count / kind / tick-span "
        "summary\n"
        "  dump FILE [--thread T] [--limit N]\n"
        "                         print records in the text form "
        "(default:\n"
        "                         all threads, first 50 records each)\n"
        "  to-text IN OUT         convert to canonical text form\n"
        "  to-binary IN OUT       convert to the binary form\n"
        "  --help\n",
        argv0);
}

int
cmdValidate(const std::string &path)
{
    // openTrace runs the full validation; reaching here means valid.
    auto reader = openTrace(path);
    std::printf("%s: OK (version %u, workload '%s', %u thread(s), "
                "%llu record(s))\n",
                path.c_str(), reader->meta().version,
                reader->meta().name.c_str(), reader->meta().threadCount,
                static_cast<unsigned long long>(reader->totalRecords()));
    return 0;
}

int
cmdStats(const std::string &path)
{
    auto reader = openTrace(path);
    const TraceMeta &meta = reader->meta();
    std::printf("trace:    %s\n", path.c_str());
    std::printf("version:  %u\n", meta.version);
    std::printf("workload: %s\n", meta.name.c_str());
    std::printf("seed:     %llu\n",
                static_cast<unsigned long long>(meta.seed));
    std::printf("threads:  %u\n", meta.threadCount);

    std::uint64_t kindTotals[kNumRecordKinds] = {};
    Tick firstTick = 0, lastTick = 0;
    bool any = false;
    std::printf("%8s %10s %12s %14s %14s\n", "thread", "records",
                "bytes", "first-tick", "last-tick");
    for (unsigned t = 0; t < meta.threadCount; ++t) {
        TraceReader::Cursor c = reader->stream(t);
        TraceRecord r;
        Tick tFirst = 0, tLast = 0;
        bool tAny = false;
        while (c.next(r)) {
            ++kindTotals[static_cast<unsigned>(r.kind)];
            if (!tAny) {
                tFirst = r.tick;
                tAny = true;
            }
            tLast = r.tick;
        }
        if (tAny) {
            if (!any || tFirst < firstTick)
                firstTick = tFirst;
            if (!any || tLast > lastTick)
                lastTick = tLast;
            any = true;
        }
        std::printf("%8u %10llu %12llu %14llu %14llu\n", t,
                    static_cast<unsigned long long>(
                        reader->recordCount(t)),
                    static_cast<unsigned long long>(
                        reader->streamBytes(t)),
                    static_cast<unsigned long long>(tFirst),
                    static_cast<unsigned long long>(tLast));
    }
    std::printf("total:    %llu record(s), ticks [%llu, %llu]\n",
                static_cast<unsigned long long>(reader->totalRecords()),
                static_cast<unsigned long long>(firstTick),
                static_cast<unsigned long long>(lastTick));
    for (unsigned k = 0; k < kNumRecordKinds; ++k) {
        if (kindTotals[k] == 0)
            continue;
        std::printf("  %-8s %llu\n",
                    toString(static_cast<TraceRecord::Kind>(k)),
                    static_cast<unsigned long long>(kindTotals[k]));
    }
    return 0;
}

int
cmdDump(const std::string &path, int onlyThread, std::uint64_t limit)
{
    auto reader = openTrace(path);
    const TraceMeta &meta = reader->meta();
    std::printf("ptrace v%u\n", meta.version);
    std::printf("name %s\n", meta.name.c_str());
    std::printf("seed %llu\n",
                static_cast<unsigned long long>(meta.seed));
    std::printf("threads %u\n", meta.threadCount);
    for (unsigned t = 0; t < meta.threadCount; ++t) {
        if (onlyThread >= 0 && t != static_cast<unsigned>(onlyThread))
            continue;
        std::printf("thread %u\n", t);
        TraceReader::Cursor c = reader->stream(t);
        TraceRecord r;
        std::uint64_t shown = 0;
        while (shown < limit && c.next(r)) {
            switch (r.kind) {
              case TraceRecord::Kind::Load:
              case TraceRecord::Kind::Store:
              case TraceRecord::Kind::Lock:
              case TraceRecord::Kind::Unlock:
                std::printf("@%llu %s 0x%llx\n",
                            static_cast<unsigned long long>(r.tick),
                            toString(r.kind),
                            static_cast<unsigned long long>(r.addr));
                break;
              case TraceRecord::Kind::Compute:
                std::printf("@%llu compute %u\n",
                            static_cast<unsigned long long>(r.tick),
                            r.cycles);
                break;
              case TraceRecord::Kind::TxnMark:
                std::printf("@%llu txn %llu\n",
                            static_cast<unsigned long long>(r.tick),
                            static_cast<unsigned long long>(r.count));
                break;
              case TraceRecord::Kind::Barrier:
              case TraceRecord::Kind::Halt:
                std::printf("@%llu %s\n",
                            static_cast<unsigned long long>(r.tick),
                            toString(r.kind));
                break;
            }
            ++shown;
        }
        const std::uint64_t total = reader->recordCount(t);
        if (shown < total)
            std::printf("# ... %llu more record(s)\n",
                        static_cast<unsigned long long>(total - shown));
    }
    return 0;
}

int
cmdToText(const std::string &in, const std::string &out)
{
    auto reader = openTrace(in);
    std::ofstream os(out);
    if (!os)
        fatal("cannot write ", out);
    writeTextTrace(os, reader->toData());
    if (!os)
        fatal("short write to ", out);
    std::fprintf(stderr, "wrote %s (%llu record(s), text form)\n",
                 out.c_str(),
                 static_cast<unsigned long long>(
                     reader->totalRecords()));
    return 0;
}

int
cmdToBinary(const std::string &in, const std::string &out)
{
    auto reader = openTrace(in);
    const std::string bytes = encodeTrace(reader->toData());
    std::ofstream os(out, std::ios::binary);
    if (!os)
        fatal("cannot write ", out);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os)
        fatal("short write to ", out);
    std::fprintf(stderr, "wrote %s (%zu bytes, binary form)\n",
                 out.c_str(), bytes.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        usage(argv[0]);
        return argc < 2 ? 2 : 0;
    }
    const std::string cmd = argv[1];

    try {
        if (cmd == "validate" || cmd == "stats") {
            if (argc != 3) {
                std::fprintf(stderr, "%s wants exactly one FILE\n",
                             cmd.c_str());
                return 2;
            }
            return cmd == "validate" ? cmdValidate(argv[2])
                                     : cmdStats(argv[2]);
        }
        if (cmd == "dump") {
            if (argc < 3) {
                std::fprintf(stderr, "dump wants a FILE\n");
                return 2;
            }
            int onlyThread = -1;
            std::uint64_t limit = 50;
            for (int i = 3; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--thread" && i + 1 < argc)
                    onlyThread = std::atoi(argv[++i]);
                else if (arg == "--limit" && i + 1 < argc)
                    limit = std::strtoull(argv[++i], nullptr, 10);
                else {
                    std::fprintf(stderr, "unknown dump option '%s'\n",
                                 arg.c_str());
                    return 2;
                }
            }
            return cmdDump(argv[2], onlyThread, limit);
        }
        if (cmd == "to-text" || cmd == "to-binary") {
            if (argc != 4) {
                std::fprintf(stderr, "%s wants IN OUT\n", cmd.c_str());
                return 2;
            }
            return cmd == "to-text" ? cmdToText(argv[2], argv[3])
                                    : cmdToBinary(argv[2], argv[3]);
        }
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        usage(argv[0]);
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
