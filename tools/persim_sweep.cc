/**
 * @file
 * persim_sweep — parallel experiment-orchestration driver.
 *
 * Regenerates any paper figure's full data grid in one command:
 *
 *   persim_sweep --figure 11 --jobs 8 --out fig11.json
 *   persim_sweep --figure 13 --jobs 4 --csv fig13.csv
 *   persim_sweep --figure 11 --trace fig11.trace.json \
 *                --trace-job hash/LB++/s1 --trace-flags Epoch,Flush
 *
 * The JSON output is deterministic: the same figure, ops, cores, and
 * seed produce byte-identical files at any --jobs value, so sweep
 * artifacts can be diffed across commits (and across serial/parallel
 * runs). Wall-clock and scheduling info never enter --out; use
 * --timing-out for the host-dependent numbers.
 */

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>

#include "exp/figures.hh"
#include "exp/journal.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "exp/trace_export.hh"
#include "prof/profile.hh"
#include "sim/logging.hh"
#include "workload/trace/trace_reader.hh"

using namespace persim;

namespace
{

/**
 * Strict decimal parse for flag values: the whole string must be a
 * non-negative integer. atoi-style coercion ("11x" -> 11, "abc" -> 0)
 * silently runs the wrong experiment; a named error is the only
 * acceptable outcome for a malformed value.
 */
std::uint64_t
parseNum(const char *flag, const std::string &v)
{
    std::uint64_t out = 0;
    const char *begin = v.c_str();
    const char *end = begin + v.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (v.empty() || ec != std::errc() || ptr != end) {
        std::fprintf(stderr,
                     "%s wants a non-negative integer, got '%s'\n",
                     flag, v.c_str());
        std::exit(2);
    }
    return out;
}

unsigned
parseNumU32(const char *flag, const std::string &v)
{
    const std::uint64_t n = parseNum(flag, v);
    if (n > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "%s value '%s' is out of range\n", flag,
                     v.c_str());
        std::exit(2);
    }
    return static_cast<unsigned>(n);
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --figure N [options]\n"
        "  --figure N        paper figure to regenerate: 11, 12, 13, 14\n"
        "  --jobs N          worker threads (default 1)\n"
        "  --ops N           operations per thread (default: figure's)\n"
        "  --cores N         simulated cores per job (default 32)\n"
        "  --seed N          base workload seed (default 1)\n"
        "  --seeds N         replicate the grid over N derived seeds;\n"
        "                    figure tables then report mean and 95%% CI\n"
        "  --workload W      keep only grid rows for workload W (a "
        "micro\n"
        "                    name, a synthetic preset, or 'trace' with\n"
        "                    --trace-file)\n"
        "  --trace-file F    with --workload trace: replay the workload "
        "trace\n"
        "                    F (binary or text) through the figure's "
        "config\n"
        "                    axis; core count comes from the trace "
        "header\n"
        "  --capture-dir D   record every job's workload to\n"
        "                    D/<sweep>_<id>.ptrace (id with '/' as '_')\n"
        "  --replay-dir D    replay each job from D/<sweep>_<id>.ptrace\n"
        "                    (the paths --capture-dir writes)\n"
        "  --pinned-retry N  LLC pinned-victim retry backoff in cycles\n"
        "                    (default 8; applied to every job)\n"
        "  --retries N       extra attempts per failed job (default 1);\n"
        "                    retries back off exponentially (100 ms "
        "base,\n"
        "                    5 s cap)\n"
        "  --job-timeout-ms N  per-job watchdog deadline per attempt;\n"
        "                    over-deadline jobs fail with error "
        "'timeout'\n"
        "                    (0 = no watchdog, the default)\n"
        "  --isolate         fork every job into a sandbox child so a\n"
        "                    segfault/abort/OOM kills one cell, not the\n"
        "                    sweep (incompatible with --trace)\n"
        "  --resume          resume an interrupted run from "
        "<out>.journal:\n"
        "                    journaled cells are merged, only the rest "
        "run;\n"
        "                    output is byte-identical to an "
        "uninterrupted\n"
        "                    run (needs --out; refuses a changed grid)\n"
        "  --out FILE        write the sweep JSON (default: stdout "
        "summary only);\n"
        "                    completed cells are journaled to "
        "FILE.journal\n"
        "                    until the final atomic rename\n"
        "  --csv FILE        write the figure table as CSV\n"
        "  --no-stats        omit per-job stat trees from the JSON\n"
        "  --only PATTERN    run only jobs whose id contains PATTERN\n"
        "                    (substring match on \"<workload>/<config>/"
        "s<seed>\")\n"
        "  --timing-out FILE write host wall-clock info (separate file;\n"
        "                    never part of the deterministic output)\n"
        "  --trace FILE      write a Chrome/Perfetto trace of one job\n"
        "  --trace-job ID    which job to trace (default: first);\n"
        "                    ID is \"<workload>/<config>/s<seed>\"\n"
        "  --trace-flags F   comma-separated trace flags (default all)\n"
        "  --interval N      interval-stat window in ticks for the "
        "traced job\n"
        "                    (default 5000; needs --trace)\n"
        "  --interval-csv F  write the interval counter samples as CSV\n"
        "  --shard K/N       run only round-robin shard K of N (1-based);"
        "\n"
        "                    merge shard outputs with jq -s (see "
        "tools/README.md)\n"
        "  --progress        live one-line telemetry to stderr while "
        "running\n"
        "  --prof            host-time profiling: phase-tag SIGPROF "
        "sampler\n"
        "                    + per-job hardware counters (perf_event "
        "with\n"
        "                    getrusage/clock fallback); breakdown goes "
        "to the\n"
        "                    telemetry document and --prof-out\n"
        "  --prof-out FILE   write the profile JSON (implies --prof); "
        "render\n"
        "                    and diff it with tools/persim_prof\n"
        "  --prof-hz N       sampling rate, samples per CPU-second "
        "(default\n"
        "                    ~1000; the exact period is kept prime)\n"
        "  --telemetry-out F write host telemetry JSON (per-job state, "
        "RSS,\n"
        "                    events/sec; separate from deterministic "
        "output)\n"
        "  --list            print the job grid and exit\n"
        "  --quiet           no per-job progress lines\n"
        "  --help\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    int figure = 0;
    unsigned jobs = 1;
    std::uint64_t ops = 0;
    unsigned cores = 32;
    std::uint64_t seed = 1;
    unsigned numSeeds = 1;
    unsigned retries = 1;
    unsigned jobTimeoutMs = 0;
    bool isolate = false;
    bool resume = false;
    std::string outFile;
    std::string csvFile;
    std::string timingFile;
    std::string traceFile;
    std::string traceJob;
    std::string traceFlags = "all";
    std::string onlyPattern;
    std::string workloadFilter;
    std::string replayTraceFile;
    std::string captureDir;
    std::string replayDir;
    std::string telemetryFile;
    std::string intervalCsvFile;
    std::string profFile;
    bool profEnabled = false;
    unsigned profHz = 0;
    unsigned shardIndex = 1;
    unsigned shardCount = 1;
    Tick intervalTicks = 0;
    bool intervalSet = false;
    Tick pinnedRetry = exp::ExperimentSpec::kDefaultPinnedRetryInterval;
    bool includeStats = true;
    bool listOnly = false;
    bool liveProgress = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            workloadFilter = value("--workload");
        else if (arg == "--trace-file")
            replayTraceFile = value("--trace-file");
        else if (arg == "--capture-dir")
            captureDir = value("--capture-dir");
        else if (arg == "--replay-dir")
            replayDir = value("--replay-dir");
        else if (arg == "--figure")
            figure = static_cast<int>(
                parseNumU32("--figure", value("--figure")));
        else if (arg == "--jobs")
            jobs = parseNumU32("--jobs", value("--jobs"));
        else if (arg == "--ops")
            ops = parseNum("--ops", value("--ops"));
        else if (arg == "--cores")
            cores = parseNumU32("--cores", value("--cores"));
        else if (arg == "--seed")
            seed = parseNum("--seed", value("--seed"));
        else if (arg == "--seeds")
            numSeeds = parseNumU32("--seeds", value("--seeds"));
        else if (arg == "--pinned-retry")
            pinnedRetry =
                parseNum("--pinned-retry", value("--pinned-retry"));
        else if (arg == "--retries")
            retries = parseNumU32("--retries", value("--retries"));
        else if (arg == "--job-timeout-ms")
            jobTimeoutMs = parseNumU32("--job-timeout-ms",
                                       value("--job-timeout-ms"));
        else if (arg == "--isolate")
            isolate = true;
        else if (arg == "--resume")
            resume = true;
        else if (arg == "--out")
            outFile = value("--out");
        else if (arg == "--csv")
            csvFile = value("--csv");
        else if (arg == "--timing-out")
            timingFile = value("--timing-out");
        else if (arg == "--no-stats")
            includeStats = false;
        else if (arg == "--only")
            onlyPattern = value("--only");
        else if (arg == "--shard") {
            const std::string v = value("--shard");
            if (std::sscanf(v.c_str(), "%u/%u", &shardIndex,
                            &shardCount) != 2 ||
                shardCount == 0 || shardIndex == 0 ||
                shardIndex > shardCount) {
                std::fprintf(stderr,
                             "--shard wants K/N with 1 <= K <= N, got "
                             "'%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (arg == "--progress")
            liveProgress = true;
        else if (arg == "--prof")
            profEnabled = true;
        else if (arg == "--prof-out") {
            profFile = value("--prof-out");
            profEnabled = true;
        } else if (arg == "--prof-hz")
            profHz = parseNumU32("--prof-hz", value("--prof-hz"));
        else if (arg == "--telemetry-out")
            telemetryFile = value("--telemetry-out");
        else if (arg == "--interval") {
            intervalTicks = parseNum("--interval", value("--interval"));
            intervalSet = true;
        } else if (arg == "--interval-csv")
            intervalCsvFile = value("--interval-csv");
        else if (arg == "--trace")
            traceFile = value("--trace");
        else if (arg == "--trace-job")
            traceJob = value("--trace-job");
        else if (arg == "--trace-flags")
            traceFlags = value("--trace-flags");
        else if (arg == "--list")
            listOnly = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (figure == 0) {
        std::fprintf(stderr, "--figure is required\n");
        usage(argv[0]);
        return 2;
    }

    if (!replayTraceFile.empty() && workloadFilter != "trace") {
        std::fprintf(stderr,
                     "--trace-file needs --workload trace\n");
        return 2;
    }
    if (workloadFilter == "trace" && replayTraceFile.empty()) {
        std::fprintf(stderr,
                     "--workload trace needs --trace-file FILE\n");
        return 2;
    }
    if (isolate && !traceFile.empty()) {
        // Trace events live in the child's memory and the sandbox pipe
        // carries only the outcome document, so this combination would
        // silently write an empty trace.
        std::fprintf(stderr, "--isolate cannot record --trace "
                             "(simulation runs in a child process)\n");
        return 2;
    }
    if (resume && outFile.empty()) {
        std::fprintf(stderr, "--resume needs --out FILE (the journal "
                             "lives at FILE.journal)\n");
        return 2;
    }

    try {
        exp::Sweep sweep = exp::figureSweep(figure, ops, cores, seed);
        for (exp::ExperimentSpec &spec : sweep.jobs)
            spec.pinnedRetryInterval = pinnedRetry;

        if (workloadFilter == "trace") {
            // Replace the workload axis with one row replaying the
            // trace through every config of the figure. The trace
            // header fixes the core count and the row's name.
            auto reader = workload::trace::openTrace(replayTraceFile);
            std::vector<exp::ExperimentSpec> rows;
            std::vector<std::string> seenConfigs;
            for (const exp::ExperimentSpec &s : sweep.jobs) {
                if (std::find(seenConfigs.begin(), seenConfigs.end(),
                              s.configLabel) != seenConfigs.end())
                    continue;
                seenConfigs.push_back(s.configLabel);
                exp::ExperimentSpec spec = s;
                spec.workload = reader->meta().name.empty()
                                    ? "trace"
                                    : reader->meta().name;
                spec.cores = reader->meta().threadCount;
                spec.traceFile = replayTraceFile;
                rows.push_back(std::move(spec));
            }
            sweep.jobs = std::move(rows);
            std::fprintf(stderr,
                         "replaying %s (%u thread(s), %llu records) "
                         "over %zu config(s)\n",
                         replayTraceFile.c_str(),
                         reader->meta().threadCount,
                         static_cast<unsigned long long>(
                             reader->totalRecords()),
                         sweep.jobs.size());
        } else if (!workloadFilter.empty()) {
            std::erase_if(sweep.jobs, [&](const auto &spec) {
                return spec.workload != workloadFilter;
            });
            if (sweep.jobs.empty()) {
                std::fprintf(stderr,
                             "--workload '%s' matches no job in %s\n",
                             workloadFilter.c_str(),
                             sweep.name.c_str());
                return 2;
            }
        }

        if (numSeeds > 1) {
            std::vector<std::uint64_t> seeds;
            for (unsigned s = 0; s < numSeeds; ++s)
                seeds.push_back(s);
            sweep.crossSeeds(seeds);
        }

        if (!onlyPattern.empty()) {
            std::erase_if(sweep.jobs, [&](const auto &spec) {
                return spec.id().find(onlyPattern) == std::string::npos;
            });
            if (sweep.jobs.empty()) {
                std::fprintf(stderr,
                             "--only '%s' matches no job in %s\n",
                             onlyPattern.c_str(), sweep.name.c_str());
                return 2;
            }
        }

        if (shardCount > 1) {
            const std::size_t before = sweep.jobs.size();
            sweep.shard(shardIndex, shardCount);
            std::fprintf(stderr, "shard %u/%u: %zu of %zu jobs\n",
                         shardIndex, shardCount, sweep.jobs.size(),
                         before);
            if (sweep.jobs.empty()) {
                // A 0-job document would merge cleanly and silently
                // shrink the figure; refuse loudly instead so merge
                // scripts can't drop a shard without noticing.
                std::fprintf(stderr,
                             "error: shard %u/%u of %s is empty (grid "
                             "has fewer than %u jobs after filters); "
                             "no output written\n",
                             shardIndex, shardCount,
                             sweep.name.c_str(), shardCount);
                return 2;
            }
        }

        // Applied after seed expansion / --only / --shard so every
        // surviving job gets its own trace path.
        auto tracePathFor = [&](const exp::ExperimentSpec &spec,
                                const std::string &dir) {
            std::string id = spec.id();
            std::replace(id.begin(), id.end(), '/', '_');
            return dir + "/" + sweep.name + "_" + id + ".ptrace";
        };
        if (!captureDir.empty()) {
            std::filesystem::create_directories(captureDir);
            for (exp::ExperimentSpec &spec : sweep.jobs)
                spec.captureFile = tracePathFor(spec, captureDir);
        }
        if (!replayDir.empty()) {
            for (exp::ExperimentSpec &spec : sweep.jobs)
                spec.traceFile = tracePathFor(spec, replayDir);
        }

        if (listOnly) {
            for (const auto &spec : sweep.jobs)
                std::printf("%s/%s\n", sweep.name.c_str(),
                            spec.id().c_str());
            return 0;
        }

        exp::RunnerOptions opts;
        opts.jobs = jobs;
        opts.maxAttempts = 1 + retries;
        opts.jobTimeoutMs = jobTimeoutMs;
        opts.isolate = isolate;
        opts.progress = !quiet;
        opts.liveProgress = liveProgress;
        opts.prof = profEnabled;
        if (profHz > 0) {
            // Nudge to the nearest smaller odd period so the sampler
            // cannot phase-lock with periodic simulator behavior.
            unsigned period = 1000000 / profHz;
            if (period == 0)
                period = 1;
            if (period > 2 && period % 2 == 0)
                --period;
            opts.profPeriodUsec = period;
        }
        if (!traceFile.empty()) {
            opts.traceFlags = traceFlags;
            opts.traceJobId = traceJob;
            // Counter sampling rides the trace capture: default to a
            // 5000-tick window unless --interval says otherwise.
            opts.counterWindow = intervalSet ? intervalTicks : 5000;
        } else if (intervalSet && intervalTicks > 0) {
            std::fprintf(stderr,
                         "--interval has no effect without --trace\n");
        }

        // Crash-safe journal: every completed cell becomes durable in
        // <out>.journal the moment it finishes; --resume merges those
        // cells back instead of re-running them. The header pins the
        // journal to this exact grid so a changed axis (ops, cores,
        // filters) is refused rather than silently mixed.
        //
        // "--out /dev/null" (and any other non-regular target) gets
        // neither journal nor atomic rename: renaming over a device
        // node would replace it with a regular file.
        const std::string journalPath = outFile + ".journal";
        std::error_code outStatEc;
        const auto outStat =
            std::filesystem::status(outFile, outStatEc);
        const bool specialOut =
            !outFile.empty() && !outStatEc &&
            std::filesystem::exists(outStat) &&
            !std::filesystem::is_regular_file(outStat);
        if (resume && specialOut) {
            std::fprintf(stderr,
                         "error: --resume needs a regular --out file, "
                         "got %s\n",
                         outFile.c_str());
            return 2;
        }
        exp::JournalHeader header;
        header.sweep = sweep.name;
        header.jobCount = sweep.jobs.size();
        header.gridHash = exp::gridFingerprint(sweep.jobs);

        std::vector<std::pair<std::string, exp::JsonValue>> journaled;
        exp::Sweep runSweep = sweep;
        if (resume) {
            exp::JournalContents jc = exp::loadJournal(journalPath);
            if (!jc.exists) {
                std::fprintf(stderr,
                             "error: --resume: no journal at %s "
                             "(nothing to resume)\n",
                             journalPath.c_str());
                return 2;
            }
            if (!jc.headerOk || !jc.header.matches(header)) {
                std::fprintf(
                    stderr,
                    "error: --resume: journal %s does not match this "
                    "grid (journal: sweep '%s', %zu jobs, grid %016llx; "
                    "current: sweep '%s', %zu jobs, grid %016llx); "
                    "rerun without --resume to start over\n",
                    journalPath.c_str(), jc.header.sweep.c_str(),
                    jc.header.jobCount,
                    static_cast<unsigned long long>(jc.header.gridHash),
                    sweep.name.c_str(), sweep.jobs.size(),
                    static_cast<unsigned long long>(header.gridHash));
                return 2;
            }
            if (jc.dropped > 0)
                std::fprintf(stderr,
                             "warning: dropped %zu torn journal "
                             "line(s) (crash mid-append)\n",
                             jc.dropped);
            if (jc.duplicates > 0)
                std::fprintf(stderr,
                             "warning: %zu duplicate journal entries "
                             "(latest wins)\n",
                             jc.duplicates);
            journaled = std::move(jc.entries);
            std::unordered_set<std::string> doneIds;
            for (const auto &e : journaled)
                doneIds.insert(e.first);
            std::erase_if(runSweep.jobs, [&](const auto &spec) {
                return doneIds.count(spec.id()) != 0;
            });
            std::fprintf(stderr,
                         "resume: %zu of %zu cells journaled, "
                         "running %zu\n",
                         doneIds.size(), sweep.jobs.size(),
                         runSweep.jobs.size());
        }
        std::shared_ptr<exp::SweepJournal> journal;
        if (!outFile.empty() && !specialOut) {
            journal = std::make_shared<exp::SweepJournal>();
            journal->open(journalPath, header, /*fresh=*/!resume);
            opts.journal = journal;
        }

        std::fprintf(stderr, "%s: %zu jobs, %u worker(s)\n",
                     sweep.name.c_str(), runSweep.jobs.size(), jobs);
        exp::SweepRunner runner(opts);
        std::vector<exp::JobOutcome> outcomes = runner.run(runSweep);
        if (resume)
            outcomes = exp::mergeResumedOutcomes(sweep, journaled,
                                                 std::move(outcomes));

        std::size_t failed = 0;
        for (const auto &o : outcomes)
            failed += o.ok ? 0 : 1;
        std::fprintf(stderr, "%s\n",
                     runner.telemetry().summaryLine().c_str());

        exp::JsonValue doc = exp::sweepToJson(sweep, outcomes,
                                              includeStats);
        if (shardCount > 1) {
            // Mark shard membership so merged documents stay
            // self-describing; unsharded output is unchanged.
            exp::JsonValue sh = exp::JsonValue::object();
            sh["index"] = exp::JsonValue(shardIndex);
            sh["count"] = exp::JsonValue(shardCount);
            doc["shard"] = std::move(sh);
        }
        const exp::FigureTable table = exp::figureTable(figure, outcomes);
        doc["table"] = exp::figureTableToJson(table);

        if (!outFile.empty()) {
            if (specialOut) {
                std::ofstream os(outFile);
                if (!os)
                    fatal("cannot write ", outFile);
                doc.write(os, 2);
                os << '\n';
            } else {
                // tmp + fsync + rename: observers see the old document
                // or the complete new one, never a torn write.
                std::ostringstream buf;
                doc.write(buf, 2);
                buf << '\n';
                exp::writeFileAtomic(outFile, buf.str());
            }
            std::fprintf(stderr, "wrote %s\n", outFile.c_str());
        }
        if (journal) {
            journal->close();
            if (failed == 0) {
                std::error_code ec;
                std::filesystem::remove(journalPath, ec);
            } else {
                // Failed cells are not journaled, so a --resume rerun
                // retries exactly them.
                std::fprintf(stderr,
                             "%zu failed cell(s); journal kept at %s "
                             "for --resume\n",
                             failed, journalPath.c_str());
            }
        }
        if (!csvFile.empty()) {
            std::ofstream os(csvFile);
            if (!os)
                fatal("cannot write ", csvFile);
            exp::figureTableToCsv(os, table);
            std::fprintf(stderr, "wrote %s\n", csvFile.c_str());
        }
        if (!traceFile.empty()) {
            std::ofstream os(traceFile);
            if (!os)
                fatal("cannot write ", traceFile);
            std::string traced =
                traceJob.empty() && !runSweep.jobs.empty()
                    ? runSweep.jobs.front().id()
                    : traceJob;
            exp::writeChromeTrace(os, *runner.recorder(),
                                  sweep.name + "/" + traced);
            std::fprintf(stderr,
                         "wrote %s (%zu events, %zu spans, %zu counter "
                         "samples)\n",
                         traceFile.c_str(),
                         runner.recorder()->records().size(),
                         runner.recorder()->spans().size(),
                         runner.recorder()->counters().size());
        }
        if (!intervalCsvFile.empty()) {
            std::ofstream os(intervalCsvFile);
            if (!os)
                fatal("cannot write ", intervalCsvFile);
            static const std::vector<trace::Counter> kNoCounters;
            const auto &counters = runner.recorder()
                                       ? runner.recorder()->counters()
                                       : kNoCounters;
            exp::writeCounterCsv(os, counters);
            std::fprintf(stderr, "wrote %s (%zu samples)\n",
                         intervalCsvFile.c_str(), counters.size());
        }
        if (!profFile.empty()) {
            std::ofstream os(profFile);
            if (!os)
                fatal("cannot write ", profFile);
            runner.profile().toJson().write(os, 2);
            os << '\n';
            const prof::SweepProfile &p = runner.profile();
            std::fprintf(stderr,
                         "wrote %s (%llu samples, %.1f%% attributed, "
                         "counters: %s)\n",
                         profFile.c_str(),
                         static_cast<unsigned long long>(
                             p.phases.total()),
                         100.0 * p.attributionRatio(),
                         p.counters.source.c_str());
        }
        if (!telemetryFile.empty()) {
            std::ofstream os(telemetryFile);
            if (!os)
                fatal("cannot write ", telemetryFile);
            runner.telemetry().toJson().write(os, 2);
            os << '\n';
            std::fprintf(stderr, "wrote %s\n", telemetryFile.c_str());
        }
        if (!timingFile.empty()) {
            const exp::SweepTelemetry &tel = runner.telemetry();
            exp::JsonValue timing = exp::JsonValue::object();
            timing["sweep"] = exp::JsonValue(sweep.name);
            timing["workers"] = exp::JsonValue(jobs);
            timing["jobCount"] = exp::JsonValue(outcomes.size());
            timing["wallMs"] = exp::JsonValue(runner.wallMs());
            timing["peakRssKb"] = exp::JsonValue(tel.peakRssKb);
            timing["totalEvents"] = exp::JsonValue(tel.totalEvents());
            timing["eventsPerSec"] = exp::JsonValue(tel.eventsPerSec());
            exp::JsonValue perJob = exp::JsonValue::array();
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                const auto &o = outcomes[i];
                exp::JsonValue j = exp::JsonValue::object();
                j["id"] = exp::JsonValue(o.spec.id());
                j["wallMs"] = exp::JsonValue(o.wallMs);
                if (i < tel.jobs.size()) {
                    j["events"] = exp::JsonValue(tel.jobs[i].events);
                    j["rssAfterKb"] =
                        exp::JsonValue(tel.jobs[i].rssAfterKb);
                }
                perJob.push(std::move(j));
            }
            timing["jobs"] = std::move(perJob);
            std::ofstream os(timingFile);
            if (!os)
                fatal("cannot write ", timingFile);
            timing.write(os, 2);
            os << '\n';
        }

        exp::printFigureTable(std::cout, table);
        return failed == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
