#include "noc/link.hh"

#include <algorithm>

namespace persim::noc
{

Link::Link(std::string name, StatGroup *group)
    : _name(std::move(name)),
      _packets(group, _name + ".packets", "packets crossing this link"),
      _busyCycles(group, _name + ".busyCycles",
                  "flit-cycles of link occupancy"),
      _waitCycles(group, _name + ".waitCycles",
                  "cycles packets waited on this link")
{
}

Tick
Link::reserve(Tick earliest, unsigned flits)
{
    Tick start = std::max(earliest, _nextFree);
    _waitCycles.inc(start - earliest);
    _nextFree = start + flits;
    _packets.inc();
    _busyCycles.inc(flits);
    return start;
}

} // namespace persim::noc
