#include "noc/link.hh"

namespace persim::noc
{

Link::Link(std::string name, StatGroup *group)
    : _name(std::move(name)),
      _packets(group, _name + ".packets", "packets crossing this link"),
      _busyCycles(group, _name + ".busyCycles",
                  "flit-cycles of link occupancy"),
      _waitCycles(group, _name + ".waitCycles",
                  "cycles packets waited on this link")
{
}

} // namespace persim::noc
