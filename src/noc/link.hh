/**
 * @file
 * A directed on-chip link with serialization and contention accounting.
 */

#ifndef PERSIM_NOC_LINK_HH
#define PERSIM_NOC_LINK_HH

#include <algorithm>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::noc
{

/**
 * One directed link of the mesh (router-to-router, injection or ejection).
 *
 * The mesh uses reservation-based timing: when a packet is routed, each
 * link on its path is reserved for the packet's flit count starting at the
 * earliest cycle the link is free. This models wormhole serialization and
 * head-of-line contention without per-flit events.
 */
class Link
{
  public:
    /**
     * @param name Instance name for stats, e.g. "mesh.router[3].east".
     * @param group Stat group to register utilization counters with.
     */
    Link(std::string name, StatGroup *group);

    /**
     * Reserve the link for @p flits flit-cycles.
     *
     * Inline: this sits on the per-packet hot path (every hop of every
     * mesh traversal) and is four counter updates around a max.
     *
     * @param earliest First cycle the packet's head can use the link.
     * @param flits Number of flit cycles the link is occupied.
     * @return The cycle the head flit actually starts crossing.
     */
    Tick
    reserve(Tick earliest, unsigned flits)
    {
        const Tick start = std::max(earliest, _nextFree);
        _waitCycles.inc(start - earliest);
        _nextFree = start + flits;
        _packets.inc();
        _busyCycles.inc(flits);
        return start;
    }

    /** First cycle at which the link is free. */
    Tick nextFree() const { return _nextFree; }

    const std::string &name() const { return _name; }

    /** Total packets that crossed this link. */
    std::uint64_t packets() const { return _packets.value(); }
    /** Total flit-cycles of occupancy. */
    std::uint64_t busyCycles() const { return _busyCycles.value(); }
    /** Total cycles packets waited for this link to free up. */
    std::uint64_t waitCycles() const { return _waitCycles.value(); }

  private:
    std::string _name;
    Tick _nextFree = 0;
    Scalar _packets;
    Scalar _busyCycles;
    Scalar _waitCycles;
};

} // namespace persim::noc

#endif // PERSIM_NOC_LINK_HH
