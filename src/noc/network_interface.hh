/**
 * @file
 * Endpoint helper that attaches a component to the mesh.
 */

#ifndef PERSIM_NOC_NETWORK_INTERFACE_HH
#define PERSIM_NOC_NETWORK_INTERFACE_HH

#include <string>

#include "noc/mesh.hh"
#include "sim/types.hh"

namespace persim::noc
{

/** Bytes of a control message (request/ack/coordination; one flit). */
constexpr unsigned kControlBytes = 8;

/** Bytes of a data message: a 64B line plus an 8B header. */
constexpr unsigned kDataBytes = kLineBytes + 8;

/**
 * Network interface of one component (L1, LLC bank, memory controller).
 *
 * Thin wrapper over Mesh::send that fixes the component's node id and
 * standardizes message sizes, so protocol code never hand-computes bytes.
 */
class NetworkInterface
{
  public:
    /**
     * Attach endpoint @p nodeId to the mesh at router (@p x, @p y).
     */
    NetworkInterface(std::string name, Mesh &mesh, unsigned nodeId,
                     unsigned x, unsigned y)
        : _name(std::move(name)), _mesh(mesh), _nodeId(nodeId)
    {
        mesh.attach(nodeId, x, y);
    }

    unsigned nodeId() const { return _nodeId; }
    const std::string &name() const { return _name; }

    /** Send a one-flit control message; @p cb runs at the destination. */
    Tick
    sendControl(unsigned dst, EventQueue::Callback cb)
    {
        return _mesh.send(_nodeId, dst, kControlBytes, std::move(cb));
    }

    /** Send a line-carrying data message; @p cb runs at the destination. */
    Tick
    sendData(unsigned dst, EventQueue::Callback cb)
    {
        return _mesh.send(_nodeId, dst, kDataBytes, std::move(cb));
    }

    Mesh &mesh() { return _mesh; }

  private:
    std::string _name;
    Mesh &_mesh;
    unsigned _nodeId;
};

} // namespace persim::noc

#endif // PERSIM_NOC_NETWORK_INTERFACE_HH
