#include "noc/network_interface.hh"

// Header-only today; this translation unit exists so the module has a
// stable home for future out-of-line additions.

namespace persim::noc
{
} // namespace persim::noc
