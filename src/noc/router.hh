/**
 * @file
 * One mesh router: four directional output links plus local ejection.
 */

#ifndef PERSIM_NOC_ROUTER_HH
#define PERSIM_NOC_ROUTER_HH

#include <array>
#include <memory>
#include <string>

#include "noc/link.hh"
#include "sim/types.hh"

namespace persim::noc
{

/** Output directions of a mesh router. */
enum class Direction : unsigned
{
    East = 0,
    West = 1,
    North = 2,
    South = 3,
    Eject = 4,
};

constexpr unsigned kNumDirections = 5;

/**
 * A mesh router.
 *
 * Routers own their output links (east/west/north/south/eject); the input
 * side is the neighbouring router's output link, so each physical channel
 * is represented exactly once.
 */
class Router
{
  public:
    /**
     * @param name Instance name, e.g. "mesh.router[12]".
     * @param group Stat group for the router's links.
     * @param x Column coordinate in the mesh.
     * @param y Row coordinate in the mesh.
     */
    Router(const std::string &name, StatGroup *group, unsigned x,
           unsigned y);

    unsigned x() const { return _x; }
    unsigned y() const { return _y; }

    /** Output link in direction @p d. */
    Link &out(Direction d) { return *_out[static_cast<unsigned>(d)]; }
    const Link &out(Direction d) const
    {
        return *_out[static_cast<unsigned>(d)];
    }

  private:
    unsigned _x;
    unsigned _y;
    std::array<std::unique_ptr<Link>, kNumDirections> _out;
};

} // namespace persim::noc

#endif // PERSIM_NOC_ROUTER_HH
