#include "noc/router.hh"

namespace persim::noc
{

namespace
{
const char *const dirNames[kNumDirections] = {"east", "west", "north",
                                              "south", "eject"};
} // namespace

Router::Router(const std::string &name, StatGroup *group, unsigned x,
               unsigned y)
    : _x(x), _y(y)
{
    for (unsigned d = 0; d < kNumDirections; ++d)
        _out[d] = std::make_unique<Link>(name + "." + dirNames[d], group);
}

} // namespace persim::noc
