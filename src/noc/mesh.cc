#include "noc/mesh.hh"

#include <cstdlib>

#include "prof/phase.hh"
#include "sim/logging.hh"

namespace persim::noc
{

Mesh::Mesh(const std::string &name, EventQueue &eq, const MeshConfig &cfg)
    : SimObject(name, eq),
      _cfg(cfg),
      _stats(name),
      _packets(&_stats, "packets", "packets injected into the mesh"),
      _flits(&_stats, "flits", "flits injected into the mesh"),
      _latency(&_stats, "latency", "end-to-end packet latency (cycles)")
{
    simAssert(cfg.rows > 0 && cfg.cols > 0, "empty mesh");
    simAssert(cfg.flitBytes > 0, "zero flit width");
    _routers.reserve(cfg.rows * cfg.cols);
    for (unsigned y = 0; y < cfg.rows; ++y) {
        for (unsigned x = 0; x < cfg.cols; ++x) {
            _routers.push_back(std::make_unique<Router>(
                name + ".router[" + std::to_string(y * cfg.cols + x) +
                    "]",
                &_stats, x, y));
        }
    }
}

void
Mesh::attach(unsigned nodeId, unsigned x, unsigned y)
{
    simAssert(x < _cfg.cols && y < _cfg.rows, "attach outside mesh: (", x,
              ",", y, ")");
    if (nodeId >= _nodes.size())
        _nodes.resize(nodeId + 1);
    simAssert(!_nodes[nodeId].attached, "node ", nodeId,
              " attached twice");
    _nodes[nodeId] = NodeLoc{true, x, y};
    // Cached routes index by the node-table size; drop them whenever
    // the topology changes.
    _routes.clear();
}

Mesh::Route &
Mesh::routeFor(unsigned src, unsigned dst)
{
    const std::size_t n = _nodes.size();
    if (_routes.size() != n * n)
        _routes.assign(n * n, Route{});
    Route &route = _routes[src * n + dst];
    if (route.eject)
        return route;

    // X then Y dimension-order walk, recording links in the exact
    // order send() historically reserved them.
    const NodeLoc &s = _nodes[src];
    const NodeLoc &d = _nodes[dst];
    unsigned x = s.x;
    unsigned y = s.y;
    while (x != d.x) {
        Direction dir = (d.x > x) ? Direction::East : Direction::West;
        route.hops.push_back(&routerAt(x, y).out(dir));
        x = (d.x > x) ? x + 1 : x - 1;
    }
    while (y != d.y) {
        Direction dir = (d.y > y) ? Direction::South : Direction::North;
        route.hops.push_back(&routerAt(x, y).out(dir));
        y = (d.y > y) ? y + 1 : y - 1;
    }
    route.eject = &routerAt(x, y).out(Direction::Eject);
    return route;
}

std::uint64_t
Mesh::totalLinkBusyCycles() const
{
    std::uint64_t total = 0;
    for (const auto &router : _routers) {
        for (unsigned d = 0; d < kNumDirections; ++d)
            total += router->out(static_cast<Direction>(d)).busyCycles();
    }
    return total;
}

unsigned
Mesh::hops(unsigned src, unsigned dst) const
{
    simAssert(src < _nodes.size() && _nodes[src].attached,
              "unattached src node ", src);
    simAssert(dst < _nodes.size() && _nodes[dst].attached,
              "unattached dst node ", dst);
    const NodeLoc &s = _nodes[src];
    const NodeLoc &d = _nodes[dst];
    return static_cast<unsigned>(std::abs(int(s.x) - int(d.x)) +
                                 std::abs(int(s.y) - int(d.y)));
}

Tick
Mesh::idleLatency(unsigned src, unsigned dst, unsigned bytes) const
{
    unsigned h = hops(src, dst);
    unsigned f = flitsFor(bytes);
    // Injection + per-hop (router + link) + ejection + tail serialization.
    return _cfg.routerLatency + h * (_cfg.routerLatency + _cfg.linkLatency)
           + _cfg.linkLatency + (f - 1);
}

Tick
Mesh::send(unsigned src, unsigned dst, unsigned bytes,
           EventQueue::Callback onDeliver)
{
    prof::ScopedPhase profPhase(prof::Phase::Noc);
    simAssert(src < _nodes.size() && _nodes[src].attached,
              "send from unattached node ", src);
    simAssert(dst < _nodes.size() && _nodes[dst].attached,
              "send to unattached node ", dst);
    simAssert(bytes > 0, "empty packet");

    const unsigned flits = flitsFor(bytes);

    _packets.inc();
    _flits.inc(flits);

    const Route &route = routeFor(src, dst);
    const Tick hopLatency = _cfg.linkLatency + _cfg.routerLatency;

    // Head-flit cursor: time the head is ready at the next router.
    Tick cursor = curTick() + _cfg.routerLatency; // injection pipeline
    for (Link *link : route.hops)
        cursor = link->reserve(cursor, flits) + hopLatency;

    // Ejection: local port serializes the whole packet.
    Tick start = route.eject->reserve(cursor, flits);
    Tick arrival = start + _cfg.linkLatency + (flits - 1);

    _latency.sample(arrival - curTick());
    eventQueue().schedule(arrival, std::move(onDeliver));
    return arrival;
}

} // namespace persim::noc
