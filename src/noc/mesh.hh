/**
 * @file
 * The 2D-mesh on-chip network (Garnet-inspired timing, XY routing).
 */

#ifndef PERSIM_NOC_MESH_HH
#define PERSIM_NOC_MESH_HH

#include <memory>
#include <string>
#include <vector>

#include "noc/router.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::noc
{

/** Timing and shape parameters of the mesh (Table 1 defaults). */
struct MeshConfig
{
    unsigned rows = 4;
    unsigned cols = 8;
    /** Per-hop router pipeline latency in cycles. */
    Tick routerLatency = 2;
    /** Per-hop link traversal latency in cycles. */
    Tick linkLatency = 1;
    /** Flit width in bytes (Table 1: 16B flits). */
    unsigned flitBytes = 16;
};

/**
 * The on-chip interconnection network.
 *
 * Endpoints are identified by node ids; several nodes may share a router
 * (a tile hosts a core+L1 node and an LLC-bank node; memory controllers
 * attach at the corner routers). Timing uses link reservation: the XY
 * path is walked once at send time, each link is reserved for the
 * packet's flit count at the earliest free cycle, and a single delivery
 * event fires when the tail flit ejects. This preserves wormhole
 * serialization and head-of-line contention without per-flit events.
 */
class Mesh : public SimObject
{
  public:
    Mesh(const std::string &name, EventQueue &eq, const MeshConfig &cfg);

    /**
     * Register endpoint @p nodeId at router (@p x, @p y).
     *
     * Node ids must be registered before use and be unique.
     */
    void attach(unsigned nodeId, unsigned x, unsigned y);

    /**
     * Send @p bytes from @p src to @p dst; run @p onDeliver on arrival.
     *
     * Messages between nodes on the same router still pay injection and
     * ejection latency (the local crossbar), but no link hops.
     *
     * @return The tick at which the packet is delivered.
     */
    Tick send(unsigned src, unsigned dst, unsigned bytes,
              EventQueue::Callback onDeliver);

    /**
     * Latency a @p bytes packet would see on an idle mesh between the
     * two nodes; used by tests and for configuring dependent timeouts.
     */
    Tick idleLatency(unsigned src, unsigned dst, unsigned bytes) const;

    /** Number of XY hops between two attached nodes. */
    unsigned hops(unsigned src, unsigned dst) const;

    const MeshConfig &config() const { return _cfg; }
    StatGroup &stats() { return _stats; }

    /** Total packets injected. */
    std::uint64_t packetsSent() const { return _packets.value(); }

    /** Sum of busy cycles over every link (interval-stat sampling). */
    std::uint64_t totalLinkBusyCycles() const;

    /** Number of links (routers x directions). */
    unsigned numLinks() const
    {
        return _cfg.rows * _cfg.cols * kNumDirections;
    }

  private:
    Router &routerAt(unsigned x, unsigned y)
    {
        return *_routers[y * _cfg.cols + x];
    }
    const Router &routerAt(unsigned x, unsigned y) const
    {
        return *_routers[y * _cfg.cols + x];
    }

    struct NodeLoc
    {
        bool attached = false;
        unsigned x = 0;
        unsigned y = 0;
    };

    /**
     * Pre-resolved XY path between two nodes, in reservation order.
     * XY routing is static, so the per-send router walk is paid once
     * per (src, dst) pair and every later send just iterates links.
     */
    struct Route
    {
        std::vector<Link *> hops;
        Link *eject = nullptr; // non-null marks the entry as built
    };

    /** The cached route src -> dst, building it on first use. */
    Route &routeFor(unsigned src, unsigned dst);

    unsigned flitsFor(unsigned bytes) const
    {
        return (bytes + _cfg.flitBytes - 1) / _cfg.flitBytes;
    }

    MeshConfig _cfg;
    StatGroup _stats;
    std::vector<std::unique_ptr<Router>> _routers;
    std::vector<NodeLoc> _nodes;
    /** Lazily built (src, dst) route cache; attach() invalidates. */
    std::vector<Route> _routes;

    Scalar _packets;
    Scalar _flits;
    Distribution _latency;
};

} // namespace persim::noc

#endif // PERSIM_NOC_MESH_HH
