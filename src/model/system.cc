#include "model/system.hh"

#include <bit>
#include <string>
#include <utility>

#include "prof/phase.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::model
{

namespace
{

/** Trivial workload for cores with nothing assigned. */
class IdleWorkload : public cpu::Workload
{
  public:
    cpu::MemOp next(Tick) override { return cpu::MemOp::halt(); }
};

} // namespace

System::System(const SystemConfig &cfg) : _cfg(cfg)
{
    _cfg.validate();
    const unsigned n = _cfg.numCores;

    _mesh = std::make_unique<noc::Mesh>("mesh", _eq, _cfg.mesh);
    _pc = std::make_unique<persist::PersistController>("persist", _eq,
                                                       _cfg.barrier, n);
    if (_cfg.checkOrdering) {
        _checker =
            std::make_unique<OrderingChecker>(n, _cfg.keepPersistLog);
        _pc->setObserver(_checker.get());
    }

    // Tile layout: core/L1 node = i, bank node = n + i, MC node = 2n + j.
    const unsigned cols = _cfg.mesh.cols;
    for (unsigned i = 0; i < n; ++i) {
        const unsigned x = i % cols;
        const unsigned y = i / cols;
        _l1s.push_back(std::make_unique<cache::L1Cache>(
            "l1[" + std::to_string(i) + "]", _eq, *_mesh, i, x, y,
            static_cast<CoreId>(i), _cfg.l1, *_pc));
        _banks.push_back(std::make_unique<cache::LlcBank>(
            "llc[" + std::to_string(i) + "]", _eq, *_mesh, n + i, x, y, i,
            _cfg.llcBank, *_pc));
    }

    // Memory controllers at the mesh corners (Figure 2).
    const unsigned cornerX[4] = {0, _cfg.mesh.cols - 1, 0,
                                 _cfg.mesh.cols - 1};
    const unsigned cornerY[4] = {0, 0, _cfg.mesh.rows - 1,
                                 _cfg.mesh.rows - 1};
    nvm::NvramConfig nvramCfg = _cfg.nvram;
    nvramCfg.bankShift = static_cast<unsigned>(
        std::bit_width(_cfg.numMemControllers) - 1);
    for (unsigned j = 0; j < _cfg.numMemControllers; ++j) {
        auto mc = std::make_unique<nvm::MemoryController>(
            "mc[" + std::to_string(j) + "]", _eq, *_mesh, 2 * n + j,
            cornerX[j], cornerY[j], nvramCfg);
        if (_checker)
            mc->setObserver(_checker.get());
        _mcs.push_back(std::move(mc));
    }

    std::vector<cache::L1Cache *> l1Ptrs;
    std::vector<cache::LlcBank *> bankPtrs;
    std::vector<nvm::MemoryController *> mcPtrs;
    for (auto &l : _l1s)
        l1Ptrs.push_back(l.get());
    for (auto &b : _banks)
        bankPtrs.push_back(b.get());
    for (auto &m : _mcs)
        mcPtrs.push_back(m.get());
    _pc->connect(std::move(l1Ptrs), std::move(bankPtrs),
                 std::move(mcPtrs), _mesh.get());

    _workloads.resize(n);
}

System::~System() = default;

void
System::setWorkload(CoreId core, std::unique_ptr<cpu::Workload> workload)
{
    simAssert(core < _cfg.numCores, "setWorkload: core out of range");
    simAssert(!_ran, "setWorkload after run()");
    _workloads[core] = std::move(workload);
}

void
System::buildCores()
{
    cpu::CoreConfig ccfg;
    ccfg.writeBufferEntries = _cfg.writeBufferEntries;
    ccfg.autoBarrierEvery = _cfg.autoBarrierEvery;
    ccfg.persistEnabled = _cfg.barrier.enabled;
    ccfg.writeThrough = _cfg.writeThrough;
    for (unsigned i = 0; i < _cfg.numCores; ++i) {
        if (!_workloads[i])
            _workloads[i] = std::make_unique<IdleWorkload>();
        _cores.push_back(std::make_unique<cpu::Core>(
            "core[" + std::to_string(i) + "]", _eq,
            static_cast<CoreId>(i), ccfg, _l1s[i].get(),
            &_pc->arbiter(static_cast<CoreId>(i)), _workloads[i].get()));
    }
}

SimResult
System::run()
{
    simAssert(!_ran, "System::run() may only be called once");
    _ran = true;
    buildCores();

    // Interval sampling exists only when this thread is tracing with a
    // counter window: it rides the run loop (no events, no queue
    // residue), so the untraced machine is bit-for-bit unaffected.
    if (trace::Recorder *rec = trace::current();
        rec && rec->counterWindow() > 0) {
        _sampler =
            std::make_unique<IntervalSampler>(*this,
                                              rec->counterWindow());
    }

    // Base host-time phase for the whole dispatch loop: any sample
    // that lands outside a deeper component scope is event-queue
    // machinery, not "other".
    prof::ScopedPhase profPhase(prof::Phase::EventLoop);

    SimResult res;
    unsigned running = _cfg.numCores;
    bool drained = false;

    for (auto &core : _cores) {
        core->setOnDone([this, &running, &res, &drained] {
            if (--running != 0)
                return;
            res.execTicks = _eq.now();
            _pc->drainAll([this, &res, &drained] {
                res.drainTicks = _eq.now();
                drained = true;
            });
        });
        core->start();
    }

    // The watchdog poll is amortized to one relaxed load every 8192
    // events — far below the noise floor of the dispatch loop, and
    // the cadence (tens of microseconds of host time) is much finer
    // than any realistic RunnerOptions::jobTimeoutMs deadline.
    auto cancelled = [this](std::uint64_t events) {
        return (events & 8191u) == 0 && _cancel &&
               _cancel->load(std::memory_order_relaxed);
    };
    std::uint64_t events = 0;
    if (_sampler) {
        while (!_eq.empty() && events < _cfg.maxEvents &&
               _eq.now() <= _cfg.maxTicks) {
            if (cancelled(events))
                throw SimCancelled("cancelled by watchdog at tick " +
                                   std::to_string(_eq.now()));
            _eq.runNext();
            ++events;
            if (_eq.now() >= _sampler->nextDue())
                _sampler->sample(_eq.now());
        }
        _sampler->sample(_eq.now()); // close the trailing window
    } else {
        while (!_eq.empty() && events < _cfg.maxEvents &&
               _eq.now() <= _cfg.maxTicks) {
            if (cancelled(events))
                throw SimCancelled("cancelled by watchdog at tick " +
                                   std::to_string(_eq.now()));
            _eq.runNext();
            ++events;
        }
    }
    res.events = events;

    if (!_eq.empty()) {
        res.timedOut = true;
        warn("system: simulation hit its safety limit at tick ",
             _eq.now(), " after ", events, " events");
    }
    res.completed = (running == 0) && drained && !res.timedOut;
    res.deadlocked = !res.timedOut && running != 0;
    if (res.deadlocked) {
        res.execTicks = _eq.now();
        res.drainTicks = _eq.now();
    }

    if (_checker) {
        if (res.completed)
            _checker->finalize();
        res.violations = _checker->violations();
    }
    for (auto &w : _workloads)
        res.transactions += w->transactions();
    return res;
}

std::map<std::string, double>
System::stats()
{
    std::map<std::string, double> out;
    _mesh->stats().toMap(out);
    _pc->statsToMap(out);
    for (auto &m : _mcs)
        m->stats().toMap(out);
    for (auto &l : _l1s)
        l->stats().toMap(out);
    for (auto &b : _banks)
        b->stats().toMap(out);
    for (auto &c : _cores)
        c->stats().toMap(out);
    if (_sampler)
        _sampler->stats().toMap(out);
    return out;
}

std::vector<const StatGroup *>
System::statGroups() const
{
    std::vector<const StatGroup *> out;
    out.push_back(&_mesh->stats());
    _pc->collectStatGroups(out);
    for (auto &m : _mcs)
        out.push_back(&m->stats());
    for (auto &l : _l1s)
        out.push_back(&l->stats());
    for (auto &b : _banks)
        out.push_back(&b->stats());
    for (auto &c : _cores)
        out.push_back(&c->stats());
    if (_sampler)
        out.push_back(&_sampler->stats());
    return out;
}

void
System::debugDump(std::ostream &os)
{
    for (unsigned c = 0; c < _cfg.numCores; ++c)
        _pc->arbiter(static_cast<CoreId>(c)).debugDump(os);
    for (auto &b : _banks)
        b->debugDump(os);
}

void
System::dumpStats(std::ostream &os)
{
    _mesh->stats().dump(os);
    _pc->dumpStats(os);
    for (auto &m : _mcs)
        m->stats().dump(os);
    for (auto &l : _l1s)
        l->stats().dump(os);
    for (auto &b : _banks)
        b->stats().dump(os);
    for (auto &c : _cores)
        c->stats().dump(os);
    if (_sampler)
        _sampler->stats().dump(os);
}

} // namespace persim::model
