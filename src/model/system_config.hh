/**
 * @file
 * Whole-system configuration (Table 1) and persistency-model presets.
 */

#ifndef PERSIM_MODEL_SYSTEM_CONFIG_HH
#define PERSIM_MODEL_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/l1_cache.hh"
#include "cache/llc_bank.hh"
#include "noc/mesh.hh"
#include "nvm/nvram.hh"
#include "persist/barrier_config.hh"
#include "sim/types.hh"

namespace persim::model
{

/** The persistency models of Pelley et al. evaluated in the paper. */
enum class PersistencyModel
{
    NoPersistency,  // NP: baseline with no guarantees (§7.2)
    Strict,         // SP: naive write-through strict persistency
    Epoch,          // EP: barriers block until the epoch persists
    BufferedEpoch,  // BEP: barriers are asynchronous (§5.1)
    BufferedStrict, // BSP in bulk mode: hardware epochs + logging (§5.2)
};

const char *toString(PersistencyModel model);

/** Full system configuration; defaults reproduce Table 1. */
struct SystemConfig
{
    unsigned numCores = 32;
    noc::MeshConfig mesh;             // 4 rows x 8 cols, 16B flits
    unsigned numMemControllers = 4;   // at the mesh corners
    cache::L1Config l1;               // 32KB, 4-way, 3 cycles
    cache::LlcBankConfig llcBank;     // 1MB x numCores tiles, 16-way, 30cy
    nvm::NvramConfig nvram;           // 360/240-cycle write/read
    unsigned writeBufferEntries = 32; // Table 1 write buffer
    persist::BarrierConfig barrier;

    /** BSP: hardware-inserted barrier period in dynamic stores. */
    unsigned autoBarrierEvery = 0;

    /** Naive SP: stores write through and block on the ack. */
    bool writeThrough = false;

    /** Attach the ordering checker (validates every run). */
    bool checkOrdering = true;

    /** Keep the full persist-event log (tests; memory-hungry). */
    bool keepPersistLog = false;

    /** Abort the simulation after this many ticks. */
    Tick maxTicks = Tick{20} * 1000 * 1000 * 1000;

    /** Abort the simulation after this many events. */
    std::uint64_t maxEvents = UINT64_C(4000000000);

    /** Workload randomness seed. */
    std::uint64_t seed = 1;

    /** The paper's Table 1 configuration (the default). */
    static SystemConfig paperTable1();

    /**
     * A scaled-down configuration for unit tests: fewer cores, smaller
     * caches, same mechanism coverage.
     */
    static SystemConfig smallTest(unsigned cores = 4);

    /** Sanity-check parameter combinations; throws SimFatal. */
    void validate() const;

    /** Human-readable parameter echo (bench headers). */
    std::string describe() const;
};

/**
 * Configure @p cfg for @p model using barrier variant @p kind.
 *
 * @param epochSize BSP only: hardware epoch size in dynamic stores.
 */
void applyPersistencyModel(SystemConfig &cfg, PersistencyModel model,
                           persist::BarrierKind kind,
                           unsigned epochSize = 10000);

} // namespace persim::model

#endif // PERSIM_MODEL_SYSTEM_CONFIG_HH
