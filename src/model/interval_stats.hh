/**
 * @file
 * Windowed interval statistics: time-series sampling of a running
 * System for the observability layer.
 *
 * The sampler is driven from System::run's event loop (checked after
 * every executed event), NOT from scheduled events: a periodic
 * self-rescheduling event would keep the queue non-empty (the run loop
 * exits on drain) and change the event count in the deterministic
 * sweep JSON. Polling the loop costs one compare per event and leaves
 * the simulated machine completely untouched.
 *
 * Each window emits one sample per series to the thread's attached
 * trace::Recorder (rendered as Chrome ph:"C" counter tracks and as a
 * CSV time series) and folds it into a Distribution, so end-of-run
 * stats gain "interval.*" percentile summaries of the same series.
 */

#ifndef PERSIM_MODEL_INTERVAL_STATS_HH
#define PERSIM_MODEL_INTERVAL_STATS_HH

#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::model
{

class System;

/**
 * Samples a System every @p window ticks while it runs.
 *
 * Series (one counter track + one Distribution each):
 *  - ipc: committed ops across all cores per cycle in the window;
 *  - epochsInFlight: unpersisted epochs summed over all cores;
 *  - mshrOccupancy: in-use L1 MSHR entries, all cores;
 *  - llcQueueDepth: LLC lines with a queued transaction, all banks;
 *  - nvmQueueDepth: accepted-but-not-durable NVM writes, all MCs;
 *  - nocLinkUtil: fraction of link-cycles busy in the window.
 */
class IntervalSampler
{
  public:
    IntervalSampler(System &sys, Tick window);

    /** Next tick at or after which sample() should run. */
    Tick nextDue() const { return _due; }

    /** Take one sample at @p now and advance the window. */
    void sample(Tick now);

    const StatGroup &stats() const { return _group; }

  private:
    System &_sys;
    Tick _window;
    Tick _due;
    Tick _lastTick = 0;
    std::uint64_t _lastOps = 0;
    std::uint64_t _lastLinkBusy = 0;

    StatGroup _group;
    Distribution _ipc;
    Distribution _epochsInFlight;
    Distribution _mshrOccupancy;
    Distribution _llcQueueDepth;
    Distribution _nvmQueueDepth;
    Distribution _nocLinkUtil;
};

} // namespace persim::model

#endif // PERSIM_MODEL_INTERVAL_STATS_HH
