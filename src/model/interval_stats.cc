#include "model/interval_stats.hh"

#include "model/system.hh"
#include "sim/trace.hh"

namespace persim::model
{

IntervalSampler::IntervalSampler(System &sys, Tick window)
    : _sys(sys),
      _window(window > 0 ? window : 1),
      _due(_window),
      _group("interval"),
      _ipc(&_group, "ipc", "committed ops per cycle, per window"),
      _epochsInFlight(&_group, "epochsInFlight",
                      "unpersisted epochs across all cores"),
      _mshrOccupancy(&_group, "mshrOccupancy",
                     "in-use L1 MSHR entries across all cores"),
      _llcQueueDepth(&_group, "llcQueueDepth",
                     "LLC lines with queued transactions"),
      _nvmQueueDepth(&_group, "nvmQueueDepth",
                     "NVM writes accepted but not yet durable"),
      _nocLinkUtil(&_group, "nocLinkUtil",
                   "fraction of NoC link-cycles busy, per window")
{
}

void
IntervalSampler::sample(Tick now)
{
    if (now <= _lastTick) {
        // Degenerate window (e.g. final sample at the last window's
        // edge): nothing elapsed, nothing to rate.
        while (_due <= now)
            _due += _window;
        return;
    }
    const SystemConfig &cfg = _sys.config();
    const double dt = static_cast<double>(now - _lastTick);

    std::uint64_t ops = 0;
    for (unsigned c = 0; c < cfg.numCores; ++c)
        ops += _sys.core(static_cast<CoreId>(c)).committedOps();
    const double ipc = static_cast<double>(ops - _lastOps) / dt;

    double epochs = 0;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        // inflight() counts the always-open current epoch too; report
        // it as-is so "1 per core" reads as the idle baseline.
        epochs += static_cast<double>(
            _sys.persistController()
                .arbiter(static_cast<CoreId>(c))
                .table()
                .inflight());
    }

    double mshrs = 0;
    for (unsigned c = 0; c < cfg.numCores; ++c)
        mshrs += static_cast<double>(
            _sys.l1(static_cast<CoreId>(c)).mshrOccupancy());

    double llcQueue = 0;
    for (unsigned b = 0; b < cfg.numCores; ++b)
        llcQueue += static_cast<double>(_sys.bank(b).busyLines());

    double nvmQueue = 0;
    for (unsigned j = 0; j < cfg.numMemControllers; ++j)
        nvmQueue += static_cast<double>(_sys.mc(j).outstandingWrites());

    const std::uint64_t linkBusy = _sys.mesh().totalLinkBusyCycles();
    const double linkUtil =
        static_cast<double>(linkBusy - _lastLinkBusy) /
        (dt * static_cast<double>(_sys.mesh().numLinks()));

    _ipc.sample(ipc);
    _epochsInFlight.sample(epochs);
    _mshrOccupancy.sample(mshrs);
    _llcQueueDepth.sample(llcQueue);
    _nvmQueueDepth.sample(nvmQueue);
    _nocLinkUtil.sample(linkUtil);

    trace::counter(now, "ipc", ipc);
    trace::counter(now, "epochsInFlight", epochs);
    trace::counter(now, "mshrOccupancy", mshrs);
    trace::counter(now, "llcQueueDepth", llcQueue);
    trace::counter(now, "nvmQueueDepth", nvmQueue);
    trace::counter(now, "nocLinkUtil", linkUtil);

    _lastTick = now;
    _lastOps = ops;
    _lastLinkBusy = linkBusy;
    while (_due <= now)
        _due += _window;
}

} // namespace persim::model
