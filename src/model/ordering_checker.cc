#include "model/ordering_checker.hh"

#include <sstream>

#include "persist/undo_log.hh"
#include "sim/logging.hh"

namespace persim::model
{

OrderingChecker::OrderingChecker(unsigned numCores, bool keepLog)
    : _numCores(numCores), _keepLog(keepLog), _nextUnsettled(numCores, 0)
{
}

void
OrderingChecker::violation(std::string what)
{
    // Cap the list so a systematic bug doesn't eat all memory.
    if (_violations.size() < 256)
        _violations.push_back(std::move(what));
}

bool
OrderingChecker::isSettled(CoreId core, EpochId epoch) const
{
    return epoch < _nextUnsettled[core];
}

OrderingChecker::EpochState &
OrderingChecker::stateFor(CoreId core, EpochId epoch)
{
    return _live[key(core, epoch)];
}

void
OrderingChecker::onStoreTagged(CoreId core, EpochId epoch, Addr addr)
{
    stateFor(core, epoch).pending.insert(lineAlign(addr));
}

void
OrderingChecker::onSteal(CoreId oldCore, EpochId oldEpoch, CoreId newCore,
                         EpochId newEpoch, Addr addr,
                         bool srcFlushInFlight)
{
    addr = lineAlign(addr);
    if (!srcFlushInFlight) {
        // The old incarnation will never persist: waive the line.
        auto it = _live.find(key(oldCore, oldEpoch));
        if (it == _live.end() || it->second.pending.erase(addr) == 0) {
            std::ostringstream os;
            os << "steal of line 0x" << std::hex << addr << std::dec
               << " that core " << oldCore << " epoch " << oldEpoch
               << " does not own";
            violation(os.str());
        } else {
            trySettle(oldCore);
        }
    }
    // The overwrite orders the new epoch after the old one.
    onDependence(newCore, newEpoch, oldCore, oldEpoch);
}

void
OrderingChecker::onDependence(CoreId depCore, EpochId depEpoch,
                              CoreId srcCore, EpochId srcEpoch)
{
    if (isSettled(srcCore, srcEpoch))
        return;
    ++_dependenceEdges;
    stateFor(depCore, depEpoch).preds.push_back(key(srcCore, srcEpoch));
}

void
OrderingChecker::onSplit(CoreId core, EpochId prefix, EpochId remainder)
{
    (void)core;
    (void)prefix;
    (void)remainder;
    // Splits create a fresh epoch id; program order covers the rest.
}

void
OrderingChecker::onPersist(Tick when, Addr addr, CoreId core,
                           EpochId epoch, bool isLog)
{
    ++_persists;
    if (_keepLog)
        _log.push_back(PersistEvent{when, addr, core, epoch, isLog});
    if (core == kNoCore || epoch == kNoEpoch)
        return; // untagged write (natural eviction, write-through SP):
                // unordered by design

    auto it = _live.find(key(core, epoch));

    if (isLog) {
        // Undo-log rule: old values persist before any new data of the
        // epoch does. Checkpoint lines are exempt (protected by the log).
        const bool isCheckpoint =
            addr >= persist::UndoLog::kCheckpointBase;
        if (!isCheckpoint && it != _live.end() &&
            it->second.dataStarted) {
            std::ostringstream os;
            os << "undo-log write of core " << core << " epoch " << epoch
               << " persisted after the epoch's data began";
            violation(os.str());
        }
        return;
    }

    ++_taggedPersists;
    if (isSettled(core, epoch)) {
        std::ostringstream os;
        os << "line 0x" << std::hex << addr << std::dec
           << " persisted after core " << core << " epoch " << epoch
           << " settled";
        violation(os.str());
        return;
    }
    if (it == _live.end()) {
        std::ostringstream os;
        os << "persist of line 0x" << std::hex << addr << std::dec
           << " for unknown epoch (core " << core << ", epoch " << epoch
           << ")";
        violation(os.str());
        return;
    }
    EpochState &st = it->second;
    st.dataStarted = true;

    // THE invariant (§4.1): every happens-before predecessor is settled.
    if (_nextUnsettled[core] != epoch) {
        std::ostringstream os;
        os << "line of core " << core << " epoch " << epoch
           << " persisted at tick " << when << " before epoch "
           << _nextUnsettled[core] << " of the same core settled";
        violation(os.str());
    }
    for (std::uint64_t p : st.preds) {
        const CoreId pc = keyCore(p);
        const EpochId pe = keyEpoch(p);
        if (!isSettled(pc, pe)) {
            std::ostringstream os;
            os << "line of core " << core << " epoch " << epoch
               << " persisted before dependence source (core " << pc
               << " epoch " << pe << ") settled";
            violation(os.str());
        }
    }

    if (st.pending.erase(lineAlign(addr)) == 0) {
        std::ostringstream os;
        os << "unexpected persist of line 0x" << std::hex << addr
           << std::dec << " for core " << core << " epoch " << epoch;
        violation(os.str());
    }
    trySettle(core);
}

void
OrderingChecker::onEpochPersisted(CoreId core, EpochId epoch, Tick when)
{
    (void)when;
    EpochState &st = stateFor(core, epoch);
    if (!st.pending.empty()) {
        std::ostringstream os;
        os << "core " << core << " epoch " << epoch
           << " declared persisted with " << st.pending.size()
           << " lines still volatile";
        violation(os.str());
    }
    st.declared = true;
    trySettle(core);
}

void
OrderingChecker::trySettle(CoreId core)
{
    while (true) {
        const EpochId e = _nextUnsettled[core];
        auto it = _live.find(key(core, e));
        if (it == _live.end())
            return;
        EpochState &st = it->second;
        if (!st.declared || !st.pending.empty())
            return;
        bool blocked = false;
        for (std::uint64_t p : st.preds) {
            const CoreId pc = keyCore(p);
            const EpochId pe = keyEpoch(p);
            if (!isSettled(pc, pe)) {
                _waiters[p].push_back(core);
                blocked = true;
                break;
            }
        }
        if (blocked)
            return;
        const std::uint64_t k = key(core, e);
        _live.erase(it);
        _nextUnsettled[core] = e + 1;
        ++_epochsSettled;
        auto wit = _waiters.find(k);
        if (wit != _waiters.end()) {
            std::vector<CoreId> blockedCores = std::move(wit->second);
            _waiters.erase(wit);
            for (CoreId c : blockedCores) {
                if (c != core)
                    trySettle(c);
            }
        }
    }
}

void
OrderingChecker::finalize()
{
    for (const auto &[k, st] : _live) {
        if (!st.pending.empty()) {
            std::ostringstream os;
            os << "end of run: core " << keyCore(k) << " epoch "
               << keyEpoch(k) << " still has " << st.pending.size()
               << " unpersisted lines";
            violation(os.str());
        }
    }
}

} // namespace persim::model
