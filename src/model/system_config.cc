#include "model/system_config.hh"

#include <bit>
#include <sstream>

#include "sim/logging.hh"

namespace persim::model
{

const char *
toString(PersistencyModel model)
{
    switch (model) {
      case PersistencyModel::NoPersistency:
        return "NP";
      case PersistencyModel::Strict:
        return "SP";
      case PersistencyModel::Epoch:
        return "EP";
      case PersistencyModel::BufferedEpoch:
        return "BEP";
      case PersistencyModel::BufferedStrict:
        return "BSP";
    }
    return "?";
}

SystemConfig
SystemConfig::paperTable1()
{
    return SystemConfig{};
}

SystemConfig
SystemConfig::smallTest(unsigned cores)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.mesh.rows = 2;
    cfg.mesh.cols = (cores + 1) / 2;
    if (cfg.mesh.cols == 0)
        cfg.mesh.cols = 1;
    cfg.numMemControllers = 2;
    cfg.l1.geometry = cache::CacheGeometry{4 * 1024, 4};
    cfg.llcBank.geometry = cache::CacheGeometry{32 * 1024, 8};
    cfg.llcBank.setShift = std::bit_width(cores) - 1;
    return cfg;
}

void
SystemConfig::validate() const
{
    if (numCores == 0 || numCores > 64)
        fatal("numCores must be in [1, 64], got ", numCores);
    if (numMemControllers == 0 || numMemControllers > 4)
        fatal("numMemControllers must be in [1, 4]");
    if (mesh.rows * mesh.cols < numCores)
        fatal("mesh (", mesh.rows, "x", mesh.cols, ") too small for ",
              numCores, " tiles");
    if ((numCores & (numCores - 1)) != 0)
        fatal("numCores must be a power of two (bank interleaving)");
    if (llcBank.setShift != static_cast<unsigned>(
                                std::bit_width(numCores) - 1)) {
        fatal("llcBank.setShift (", llcBank.setShift,
              ") must equal log2(numCores) = ",
              std::bit_width(numCores) - 1);
    }
    if (barrier.maxInflightEpochs < 2)
        fatal("need at least 2 in-flight epochs");
    if (writeThrough && barrier.enabled)
        fatal("write-through SP runs without the epoch machinery");
    if (barrier.logging && !barrier.enabled)
        fatal("undo logging requires the persist machinery");
    if (autoBarrierEvery != 0 && !barrier.enabled)
        fatal("BSP auto-barriers require the persist machinery");
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << numCores << " cores @ 2GHz, " << mesh.rows << "x" << mesh.cols
       << " mesh (" << mesh.flitBytes << "B flits), L1 "
       << l1.geometry.sizeBytes / 1024 << "KB/" << l1.geometry.ways
       << "-way/" << l1.accessLatency << "cy, LLC "
       << llcBank.geometry.sizeBytes / 1024 << "KB x " << numCores
       << " banks/" << llcBank.geometry.ways << "-way/"
       << llcBank.accessLatency << "cy, " << numMemControllers
       << " MCs, NVRAM " << nvram.writeLatency << "/"
       << nvram.readLatency << "cy write/read, WB "
       << writeBufferEntries << " entries";
    return os.str();
}

void
applyPersistencyModel(SystemConfig &cfg, PersistencyModel model,
                      persist::BarrierKind kind, unsigned epochSize)
{
    cfg.barrier = persist::BarrierConfig::forKind(kind);
    cfg.autoBarrierEvery = 0;
    cfg.writeThrough = false;
    switch (model) {
      case PersistencyModel::NoPersistency:
        cfg.barrier.enabled = false;
        break;
      case PersistencyModel::Strict:
        cfg.barrier.enabled = false;
        cfg.writeThrough = true;
        break;
      case PersistencyModel::Epoch:
        cfg.barrier.blockingBarrier = true;
        break;
      case PersistencyModel::BufferedEpoch:
        break;
      case PersistencyModel::BufferedStrict:
        cfg.autoBarrierEvery = epochSize;
        cfg.barrier.logging = true;
        cfg.barrier.checkpointLines = 16; // ~1KB of processor state (§6)
        break;
    }
}

} // namespace persim::model
