/**
 * @file
 * Runtime validator of the paper's persist-ordering invariant.
 */

#ifndef PERSIM_MODEL_ORDERING_CHECKER_HH
#define PERSIM_MODEL_ORDERING_CHECKER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nvm/nvram.hh"
#include "persist/epoch_observer.hh"
#include "sim/types.hh"

namespace persim::model
{

/**
 * Observes the durable-write stream at the memory controllers and the
 * epoch lifecycle at the arbiters, and independently re-derives the
 * epoch happens-before order (program order per core, plus the recorded
 * inter-thread dependence and overwrite edges).
 *
 * The checked invariant (§4.1): when a line of epoch E becomes durable,
 * every epoch that happens-before E is already *settled* — all of its
 * unwaived lines are durable and its own predecessors are settled. It
 * also checks the undo-logging rule (§5.2.1): an epoch's undo-log
 * writes are durable before any of its data lines.
 *
 * Violations are collected, not thrown, so tests can assert on them and
 * benches can report them.
 */
class OrderingChecker : public nvm::PersistObserver,
                        public persist::EpochObserver
{
  public:
    /** One entry of the durable-write log (when enabled). */
    struct PersistEvent
    {
        Tick when;
        Addr addr;
        CoreId core;
        EpochId epoch;
        bool isLog;
    };

    /**
     * @param numCores Cores in the system.
     * @param keepLog Record every durable write (tests only).
     */
    explicit OrderingChecker(unsigned numCores, bool keepLog = false);

    // nvm::PersistObserver
    void onPersist(Tick when, Addr addr, CoreId core, EpochId epoch,
                   bool isLog) override;

    // persist::EpochObserver
    void onStoreTagged(CoreId core, EpochId epoch, Addr addr) override;
    void onSteal(CoreId oldCore, EpochId oldEpoch, CoreId newCore,
                 EpochId newEpoch, Addr addr,
                 bool srcFlushInFlight) override;
    void onDependence(CoreId depCore, EpochId depEpoch, CoreId srcCore,
                      EpochId srcEpoch) override;
    void onSplit(CoreId core, EpochId prefix, EpochId remainder) override;
    void onEpochPersisted(CoreId core, EpochId epoch, Tick when) override;

    /**
     * End-of-run check: every tracked epoch must have drained (no
     * pending lines). Appends violations if not.
     */
    void finalize();

    const std::vector<std::string> &violations() const
    {
        return _violations;
    }

    std::uint64_t persistsObserved() const { return _persists; }
    std::uint64_t taggedPersists() const { return _taggedPersists; }
    std::uint64_t epochsSettled() const { return _epochsSettled; }
    std::uint64_t dependenceEdges() const { return _dependenceEdges; }

    /** The durable-write log (empty unless keepLog was set). */
    const std::vector<PersistEvent> &log() const { return _log; }

  private:
    struct EpochState
    {
        std::unordered_set<Addr> pending; // lines still to persist
        std::vector<std::uint64_t> preds; // cross-core hb predecessors
        bool declared = false;            // arbiter declared Persisted
        bool dataStarted = false;         // first data line durable
    };

    static std::uint64_t
    key(CoreId c, EpochId e)
    {
        return (static_cast<std::uint64_t>(c) << 48) ^ e;
    }
    static CoreId keyCore(std::uint64_t k)
    {
        return static_cast<CoreId>(k >> 48);
    }
    static EpochId keyEpoch(std::uint64_t k)
    {
        return k ^ (static_cast<std::uint64_t>(keyCore(k)) << 48);
    }

    bool isSettled(CoreId core, EpochId epoch) const;
    EpochState &stateFor(CoreId core, EpochId epoch);
    void trySettle(CoreId core);
    void violation(std::string what);

    unsigned _numCores;
    bool _keepLog;
    std::unordered_map<std::uint64_t, EpochState> _live;

    /** Per core: lowest epoch id not yet settled. */
    std::vector<EpochId> _nextUnsettled;

    /** Cores whose settling is blocked on a given epoch. */
    std::unordered_map<std::uint64_t, std::vector<CoreId>> _waiters;

    std::vector<std::string> _violations;
    std::vector<PersistEvent> _log;
    std::uint64_t _persists = 0;
    std::uint64_t _taggedPersists = 0;
    std::uint64_t _epochsSettled = 0;
    std::uint64_t _dependenceEdges = 0;
};

} // namespace persim::model

#endif // PERSIM_MODEL_ORDERING_CHECKER_HH
