#include "model/recovery.hh"

#include <sstream>

#include "sim/logging.hh"

namespace persim::model
{

RecoveryAnalysis::RecoveryAnalysis(
    const std::vector<OrderingChecker::PersistEvent> &log,
    unsigned numCores)
    : _log(log), _numCores(numCores)
{
    for (const auto &ev : log) {
        if (ev.core != kNoCore && !ev.isLog)
            ++_expected[{ev.core, ev.epoch}];
    }
}

RecoveryReport
RecoveryAnalysis::analyze(std::size_t crashIndex) const
{
    simAssert(crashIndex <= _log.size(),
              "crash index beyond the end of the log");
    RecoveryReport report;
    report.cores.resize(_numCores);

    // Durable line counts (and addresses) per epoch at the crash point.
    std::map<std::pair<CoreId, EpochId>, std::uint64_t> durable;
    std::map<std::pair<CoreId, EpochId>, std::vector<Addr>> durableAddrs;
    for (std::size_t i = 0; i < crashIndex; ++i) {
        const auto &ev = _log[i];
        if (ev.core == kNoCore || ev.isLog)
            continue;
        ++durable[{ev.core, ev.epoch}];
        durableAddrs[{ev.core, ev.epoch}].push_back(ev.addr);
        ++report.durableLines;
    }

    // Per core: in ascending epoch order the durable counts must form
    // a prefix — full, full, ..., [at most one partial], then nothing.
    for (unsigned c = 0; c < _numCores; ++c) {
        CoreRecovery &rec = report.cores[c];
        bool boundarySeen = false; // first not-fully-durable epoch
        for (const auto &[key, expected] : _expected) {
            if (key.first != c)
                continue;
            auto it = durable.find(key);
            const std::uint64_t have =
                it == durable.end() ? 0 : it->second;
            if (!boundarySeen) {
                if (have == expected) {
                    rec.lastComplete = key.second;
                    continue;
                }
                boundarySeen = true;
                if (have > 0) {
                    rec.hasPartialEpoch = true;
                    rec.partialEpoch = key.second;
                    rec.linesToUndo = durableAddrs[key];
                }
                continue;
            }
            if (have == 0)
                continue;
            // Lines durable beyond the first incomplete epoch: the
            // epoch-persistency prefix property was violated.
            report.consistent = false;
            std::ostringstream os;
            os << "core " << c << ": epoch " << key.second << " has "
               << have << "/" << expected
               << " durable lines beyond the first incomplete epoch";
            report.problems.push_back(os.str());
        }
    }
    return report;
}

std::size_t
RecoveryAnalysis::firstInconsistency() const
{
    for (std::size_t cut = 0; cut <= _log.size(); ++cut) {
        if (!analyze(cut).consistent)
            return cut;
    }
    return _log.size() + 1;
}

} // namespace persim::model
