/**
 * @file
 * Post-crash recovery analysis over a recorded durable-write log.
 *
 * BEP's guarantee (§5.1) is that after a crash at any instant, the
 * persistent image corresponds to a prefix of each thread's epochs
 * (plus the inter-thread dependence closure). BSP's guarantee (§5.2)
 * is the same at hardware-epoch granularity, with the undo log covering
 * the one partially-persisted epoch per core.
 *
 * RecoveryAnalysis replays a persist log (recorded by the ordering
 * checker when SystemConfig::keepPersistLog is set) up to an arbitrary
 * crash point and computes, per core, the recovery point — the last
 * epoch whose effects survive — plus which lines a BSP undo log would
 * roll back. Tests and the examples use it to demonstrate crash
 * consistency at every possible crash instant.
 */

#ifndef PERSIM_MODEL_RECOVERY_HH
#define PERSIM_MODEL_RECOVERY_HH

#include <cstdint>
#include <map>
#include <vector>

#include "model/ordering_checker.hh"
#include "sim/types.hh"

namespace persim::model
{

/** Recovery outcome for one core. */
struct CoreRecovery
{
    /**
     * Highest epoch id that is fully durable (every unwaived line
     * persisted); kNoEpoch when no epoch completed at all.
     */
    EpochId lastComplete = kNoEpoch;

    /** An epoch after lastComplete persisted some but not all lines. */
    bool hasPartialEpoch = false;

    /** Id of the partial epoch (valid when hasPartialEpoch). */
    EpochId partialEpoch = kNoEpoch;

    /** Lines of the partial epoch already durable (to undo). */
    std::vector<Addr> linesToUndo;
};

/** Whole-machine recovery outcome at one crash point. */
struct RecoveryReport
{
    /** Per-core recovery state, indexed by core id. */
    std::vector<CoreRecovery> cores;

    /**
     * True when the image is consistent for *epoch* persistency: each
     * core's durable lines form an epoch prefix (at most one partial
     * epoch at the end, which undo logging can roll back).
     */
    bool consistent = true;

    /** Human-readable inconsistencies (empty when consistent). */
    std::vector<std::string> problems;

    /** Total durable data lines at the crash point. */
    std::uint64_t durableLines = 0;
};

/**
 * Analyze recoverability of a persist log.
 *
 * The full log defines each epoch's expected line set; the prefix
 * [0, crashIndex) defines what is durable at the crash.
 */
class RecoveryAnalysis
{
  public:
    /**
     * @param log Full durable-write log of a completed run.
     * @param numCores Cores in the machine.
     */
    RecoveryAnalysis(
        const std::vector<OrderingChecker::PersistEvent> &log,
        unsigned numCores);

    /**
     * Compute the recovery report for a crash after @p crashIndex
     * durable writes.
     */
    RecoveryReport analyze(std::size_t crashIndex) const;

    /**
     * Check consistency at every crash point (O(log^2) worst case; use
     * on test-sized logs).
     *
     * @return The first inconsistent crash index, or log.size()+1 if
     *         every point is recoverable.
     */
    std::size_t firstInconsistency() const;

    std::size_t logSize() const { return _log.size(); }

  private:
    const std::vector<OrderingChecker::PersistEvent> &_log;
    unsigned _numCores;

    /** Expected line count per (core, epoch), from the full log. */
    std::map<std::pair<CoreId, EpochId>, std::uint64_t> _expected;
};

} // namespace persim::model

#endif // PERSIM_MODEL_RECOVERY_HH
