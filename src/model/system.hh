/**
 * @file
 * The System facade: build, run, and inspect one simulated machine.
 *
 * This is persimmon's primary public API:
 *
 * @code
 *   SystemConfig cfg = SystemConfig::paperTable1();
 *   applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
 *                         persist::BarrierKind::LBPP);
 *   System sys(cfg);
 *   sys.setWorkload(0, workload::makeMicroBenchmark(...));
 *   ...
 *   SimResult res = sys.run();
 * @endcode
 */

#ifndef PERSIM_MODEL_SYSTEM_HH
#define PERSIM_MODEL_SYSTEM_HH

#include <atomic>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "cache/l1_cache.hh"
#include "cache/llc_bank.hh"
#include "cpu/core.hh"
#include "cpu/workload_iface.hh"
#include "model/interval_stats.hh"
#include "model/ordering_checker.hh"
#include "model/system_config.hh"
#include "noc/mesh.hh"
#include "nvm/memory_controller.hh"
#include "persist/persist_controller.hh"
#include "sim/event_queue.hh"

namespace persim::model
{

/** Outcome of one simulation run. */
struct SimResult
{
    /** Every core halted and its write buffer drained. */
    bool completed = false;

    /** The event queue drained with cores still unfinished (§3.3). */
    bool deadlocked = false;

    /** Hit the maxTicks / maxEvents safety limit. */
    bool timedOut = false;

    /** Tick at which the last core finished (the paper's exec time). */
    Tick execTicks = 0;

    /** Tick at which the end-of-run persist drain finished. */
    Tick drainTicks = 0;

    /** Events executed. */
    std::uint64_t events = 0;

    /** Ordering-checker violations (empty on a correct run). */
    std::vector<std::string> violations;

    /** Sum of completed application transactions over all workloads. */
    std::uint64_t transactions = 0;

    /** Transactions per million cycles (Figure 11's metric). */
    double
    throughput() const
    {
        return execTicks == 0
                   ? 0.0
                   : static_cast<double>(transactions) * 1e6 /
                         static_cast<double>(execTicks);
    }
};

/**
 * One simulated machine: cores, L1s, banked LLC, mesh, NVRAM, and the
 * configured persist-barrier machinery.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Assign @p workload to @p core (before run()). */
    void setWorkload(CoreId core, std::unique_ptr<cpu::Workload> workload);

    /** Build the cores, run to completion, drain, and check. */
    SimResult run();

    /**
     * Host-side cancellation: run() polls @p flag every few thousand
     * events and throws SimCancelled once it reads true. The check is
     * observability in reverse — it reads host state but can only
     * abort the run, never reorder events, so a run that is not
     * cancelled is bit-for-bit identical with or without a flag.
     * nullptr (the default) disables the poll. The flag must outlive
     * run().
     */
    void setCancelFlag(const std::atomic<bool> *flag) { _cancel = flag; }

    const SystemConfig &config() const { return _cfg; }
    EventQueue &eventQueue() { return _eq; }
    noc::Mesh &mesh() { return *_mesh; }
    persist::PersistController &persistController() { return *_pc; }
    cache::L1Cache &l1(CoreId core) { return *_l1s[core]; }
    cache::LlcBank &bank(unsigned idx) { return *_banks[idx]; }
    nvm::MemoryController &mc(unsigned idx) { return *_mcs[idx]; }
    cpu::Core &core(CoreId id) { return *_cores[id]; }
    OrderingChecker *checker() { return _checker.get(); }

    /** Flatten every stat into "<component>.<stat>" -> value. */
    std::map<std::string, double> stats();

    /**
     * Every StatGroup in deterministic construction order, for
     * structured (JSON) export. Core groups exist only after run().
     */
    std::vector<const StatGroup *> statGroups() const;

    /** Dump all stats as text. */
    void dumpStats(std::ostream &os);

    /** Dump live machine state (windows, bank queues) for diagnosis. */
    void debugDump(std::ostream &os);

  private:
    void buildCores();

    SystemConfig _cfg;
    EventQueue _eq;
    std::unique_ptr<noc::Mesh> _mesh;
    std::unique_ptr<persist::PersistController> _pc;
    std::unique_ptr<OrderingChecker> _checker;
    std::vector<std::unique_ptr<nvm::MemoryController>> _mcs;
    std::vector<std::unique_ptr<cache::L1Cache>> _l1s;
    std::vector<std::unique_ptr<cache::LlcBank>> _banks;
    std::vector<std::unique_ptr<cpu::Workload>> _workloads;
    std::vector<std::unique_ptr<cpu::Core>> _cores;
    /** Present only while tracing with a counter window (see run()). */
    std::unique_ptr<IntervalSampler> _sampler;
    /** Watchdog flag polled by run(); see setCancelFlag(). */
    const std::atomic<bool> *_cancel = nullptr;
    bool _ran = false;
};

} // namespace persim::model

#endif // PERSIM_MODEL_SYSTEM_HH
