#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>

namespace persim
{

Scalar::Scalar(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent) {
        _value = parent->allocCounter();
        parent->add(this);
    }
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->add(this);
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }
    ++_count;
    _sum += v;
    _sumSq += v * v;
    ++_hist[bucketFor(v)];
}

unsigned
Distribution::bucketFor(double v)
{
    if (!(v > 0.0))
        return 0;
    // Saturate huge samples into the top octave rather than overflowing
    // the uint64 conversion below.
    if (v >= 18446744073709551615.0)
        return kNumBuckets - 1;
    return bucketFor(static_cast<std::uint64_t>(v));
}

double
Distribution::bucketValue(unsigned b)
{
    if (b < 2 * kSubBuckets)
        return static_cast<double>(b);
    const unsigned exp = (b >> kSubBucketBits) + kSubBucketBits - 1;
    const unsigned sub = b & (kSubBuckets - 1);
    // Upper bound of the bucket: the largest value that maps into it.
    const double base = std::ldexp(1.0, static_cast<int>(exp));
    const double step = std::ldexp(1.0, static_cast<int>(exp) -
                                            static_cast<int>(kSubBucketBits));
    return base + step * (sub + 1) - 1.0;
}

double
Distribution::percentile(double p) const
{
    if (_count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double want = p / 100.0 * static_cast<double>(_count);
    std::uint64_t target = static_cast<std::uint64_t>(std::ceil(want));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b) {
        seen += _hist[b];
        if (seen >= target) {
            // Bucket 0 collects every sample <= 0; when the observed
            // minimum is negative its representative value (0) would
            // exceed min(), so report min() itself for that bucket.
            if (b == 0 && min() < 0.0)
                return min();
            // Clamp the bucket representative into the observed range so
            // p0/p100 agree with min()/max().
            return std::clamp(bucketValue(b), min(), max());
        }
    }
    return max();
}

double
Distribution::stdev() const
{
    if (_count == 0)
        return 0.0;
    double m = mean();
    double var = _sumSq / _count - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    _count = 0;
    _sum = _sumSq = _min = _max = 0.0;
    _hist.fill(0);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Scalar *s : _scalars) {
        os << std::left << std::setw(48) << (_name + "." + s->name())
           << ' ' << std::setw(16) << s->value() << " # " << s->desc()
           << '\n';
    }
    for (const Distribution *d : _dists) {
        os << std::left << std::setw(48)
           << (_name + "." + d->name() + ".mean") << ' ' << std::setw(16)
           << d->mean() << " # " << d->desc() << " (n=" << d->count()
           << ", min=" << d->min() << ", max=" << d->max()
           << ", p50=" << d->p50() << ", p95=" << d->p95()
           << ", p99=" << d->p99() << ")\n";
    }
}

void
StatGroup::toMap(std::map<std::string, double> &out) const
{
    for (const Scalar *s : _scalars)
        out[_name + "." + s->name()] = static_cast<double>(s->value());
    for (const Distribution *d : _dists) {
        out[_name + "." + d->name() + ".count"] =
            static_cast<double>(d->count());
        out[_name + "." + d->name() + ".mean"] = d->mean();
        out[_name + "." + d->name() + ".sum"] = d->sum();
        out[_name + "." + d->name() + ".max"] = d->max();
        out[_name + "." + d->name() + ".p50"] = d->p50();
        out[_name + "." + d->name() + ".p95"] = d->p95();
        out[_name + "." + d->name() + ".p99"] = d->p99();
    }
}

void
StatGroup::resetAll()
{
    for (Scalar *s : _scalars)
        s->reset();
    for (Distribution *d : _dists)
        d->reset();
}

} // namespace persim
