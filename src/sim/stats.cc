#include "sim/stats.hh"

#include <cmath>
#include <iomanip>

namespace persim
{

Scalar::Scalar(StatGroup *parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->add(this);
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    if (parent)
        parent->add(this);
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }
    ++_count;
    _sum += v;
    _sumSq += v * v;
}

double
Distribution::stdev() const
{
    if (_count == 0)
        return 0.0;
    double m = mean();
    double var = _sumSq / _count - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    _count = 0;
    _sum = _sumSq = _min = _max = 0.0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Scalar *s : _scalars) {
        os << std::left << std::setw(48) << (_name + "." + s->name())
           << ' ' << std::setw(16) << s->value() << " # " << s->desc()
           << '\n';
    }
    for (const Distribution *d : _dists) {
        os << std::left << std::setw(48)
           << (_name + "." + d->name() + ".mean") << ' ' << std::setw(16)
           << d->mean() << " # " << d->desc() << " (n=" << d->count()
           << ", min=" << d->min() << ", max=" << d->max() << ")\n";
    }
}

void
StatGroup::toMap(std::map<std::string, double> &out) const
{
    for (const Scalar *s : _scalars)
        out[_name + "." + s->name()] = static_cast<double>(s->value());
    for (const Distribution *d : _dists) {
        out[_name + "." + d->name() + ".count"] =
            static_cast<double>(d->count());
        out[_name + "." + d->name() + ".mean"] = d->mean();
        out[_name + "." + d->name() + ".sum"] = d->sum();
        out[_name + "." + d->name() + ".max"] = d->max();
    }
}

void
StatGroup::resetAll()
{
    for (Scalar *s : _scalars)
        s->reset();
    for (Distribution *d : _dists)
        d->reset();
}

} // namespace persim
