#include "sim/logging.hh"

#include <atomic>
#include <iostream>

namespace persim
{

namespace
{
std::atomic<bool> verboseEnabled{false};
} // namespace

void
setVerbose(bool verbose)
{
    verboseEnabled.store(verbose, std::memory_order_relaxed);
}

void
warnMessage(const std::string &msg)
{
    std::cerr << "warn: " << msg << '\n';
}

void
informMessage(const std::string &msg)
{
    if (verboseEnabled.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << '\n';
}

} // namespace persim
