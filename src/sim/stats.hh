/**
 * @file
 * Lightweight statistics package (counters and distributions).
 *
 * Components declare stats as members and register them with a StatGroup;
 * System aggregates all groups and can dump them as text or expose them as
 * a flat name->value map for tests and benchmark harnesses.
 */

#ifndef PERSIM_SIM_STATS_HH
#define PERSIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace persim
{

class StatGroup;

/** A monotonically increasing 64-bit event counter. */
class Scalar
{
  public:
    /**
     * @param parent Group the stat registers with (may be nullptr for
     *               free-standing counters in tests).
     * @param name Stat name within the group, e.g. "loads".
     * @param desc One-line description for dumps.
     */
    Scalar(StatGroup *parent, std::string name, std::string desc);

    void inc(std::uint64_t n = 1) { _value += n; }
    Scalar &operator+=(std::uint64_t n)
    {
        _value += n;
        return *this;
    }
    Scalar &operator++()
    {
        ++_value;
        return *this;
    }

    std::uint64_t value() const { return _value; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    void reset() { _value = 0; }

  private:
    std::string _name;
    std::string _desc;
    std::uint64_t _value = 0;
};

/**
 * Streaming distribution: count / sum / min / max / mean / stdev, plus
 * approximate percentiles from a fixed-bucket log-scale histogram.
 *
 * The histogram has 8 sub-buckets per power of two (HdrHistogram-style),
 * giving a worst-case relative quantile error of ~12.5% at any scale —
 * plenty for comparing persist-latency tails across configurations.
 * Negative samples are clamped into bucket 0.
 */
class Distribution
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc);

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    /** Population standard deviation. */
    double stdev() const;

    /**
     * Approximate inverse CDF: smallest histogram-bucket value v such
     * that at least @p p percent of the samples are <= v. @p p is
     * clamped to [0, 100]; returns 0 on an empty distribution.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    void reset();

  private:
    /** Sub-bucket resolution: 2^3 buckets per octave. */
    static constexpr unsigned kSubBucketBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Exponents 0..63 plus the exact small-value range. */
    static constexpr unsigned kNumBuckets = (64 + 1) << kSubBucketBits;

    static unsigned bucketFor(double v);
    /** Representative (upper-bound) sample value of bucket @p b. */
    static double bucketValue(unsigned b);

    std::string _name;
    std::string _desc;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::array<std::uint64_t, kNumBuckets> _hist{};
};

/**
 * A named collection of stats belonging to one component.
 *
 * The group does not own the stats; they are members of the component and
 * must outlive the group's use.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    void add(Scalar *s) { _scalars.push_back(s); }
    void add(Distribution *d) { _dists.push_back(d); }

    const std::vector<Scalar *> &scalars() const { return _scalars; }
    const std::vector<Distribution *> &distributions() const
    {
        return _dists;
    }

    /** Append "<group>.<stat> value # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Merge this group's values into @p out as "<group>.<stat>" keys. */
    void toMap(std::map<std::string, double> &out) const;

    /** Reset every stat in the group. */
    void resetAll();

  private:
    std::string _name;
    std::vector<Scalar *> _scalars;
    std::vector<Distribution *> _dists;
};

} // namespace persim

#endif // PERSIM_SIM_STATS_HH
