/**
 * @file
 * Lightweight statistics package (counters and distributions).
 *
 * Components declare stats as members and register them with a StatGroup;
 * System aggregates all groups and can dump them as text or expose them as
 * a flat name->value map for tests and benchmark harnesses.
 *
 * Hot-path layout (DESIGN.md §3a.2): a Scalar registered with a group
 * does not count in place — its 8-byte counter lives in the group's
 * value arena, so the counters of one component pack densely into a
 * few host cache lines instead of being strewn across the component's
 * (string-heavy) Scalar members. Free-standing Scalars (parent ==
 * nullptr, used by tests) fall back to an inline counter.
 */

#ifndef PERSIM_SIM_STATS_HH
#define PERSIM_SIM_STATS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace persim
{

class StatGroup;

/** A monotonically increasing 64-bit event counter. */
class Scalar
{
  public:
    /**
     * @param parent Group the stat registers with (may be nullptr for
     *               free-standing counters in tests).
     * @param name Stat name within the group, e.g. "loads".
     * @param desc One-line description for dumps.
     */
    Scalar(StatGroup *parent, std::string name, std::string desc);

    Scalar(const Scalar &) = delete;
    Scalar &operator=(const Scalar &) = delete;

    void inc(std::uint64_t n = 1) { *_value += n; }
    Scalar &operator+=(std::uint64_t n)
    {
        *_value += n;
        return *this;
    }
    Scalar &operator++()
    {
        ++*_value;
        return *this;
    }

    std::uint64_t value() const { return *_value; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    void reset() { *_value = 0; }

  private:
    std::string _name;
    std::string _desc;
    /** Inline fallback for free-standing (parentless) counters. */
    std::uint64_t _own = 0;
    /** The live counter: a group-arena slot, or &_own. */
    std::uint64_t *_value = &_own;
};

/**
 * Streaming distribution: count / sum / min / max / mean / stdev, plus
 * approximate percentiles from a fixed-bucket log-scale histogram.
 *
 * The histogram has 8 sub-buckets per power of two (HdrHistogram-style),
 * giving a worst-case relative quantile error of ~12.5% at any scale —
 * plenty for comparing persist-latency tails across configurations.
 * Negative samples are clamped into bucket 0, whose representative
 * value for percentile() is the observed minimum whenever that minimum
 * is negative (so percentile(0) never exceeds min()).
 *
 * Tick-valued call sites use the std::uint64_t overload of sample():
 * bucket selection is pure integer bit-twiddling (std::bit_width) with
 * no double comparisons, while the moment accumulators stay double so
 * results are bit-identical to the double path for any value below
 * 2^53 (every simulated tick in practice).
 */
class Distribution
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc);

    /** Record one sample. */
    void sample(double v);

    /** Record one integer sample (hot path: tick/count values). */
    void
    sample(std::uint64_t v)
    {
        const double d = static_cast<double>(v);
        _min = (_count == 0 || d < _min) ? d : _min;
        _max = (_count == 0 || d > _max) ? d : _max;
        ++_count;
        _sum += d;
        _sumSq += d * d;
        ++_hist[bucketFor(v)];
    }

    /**
     * Any other integral type routes to the integer fast path
     * (negatives through the double path, which clamps them into
     * bucket 0), so call sites need no casts.
     */
    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    void
    sample(I v)
    {
        if constexpr (std::is_signed_v<I>) {
            if (v < 0) {
                sample(static_cast<double>(v));
                return;
            }
        }
        sample(static_cast<std::uint64_t>(v));
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    /** Population standard deviation. */
    double stdev() const;

    /**
     * Approximate inverse CDF: smallest histogram-bucket value v such
     * that at least @p p percent of the samples are <= v. @p p is
     * clamped to [0, 100]; returns 0 on an empty distribution. Bucket
     * 0 spans (-inf, 0], so when the observed minimum is negative its
     * representative is min() itself.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    void reset();

  private:
    /** Sub-bucket resolution: 2^3 buckets per octave. */
    static constexpr unsigned kSubBucketBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Exponents 0..63 plus the exact small-value range. */
    static constexpr unsigned kNumBuckets = (64 + 1) << kSubBucketBits;

    static unsigned bucketFor(double v);

    /** Integer bucket mapping; identical buckets to the double path. */
    static unsigned
    bucketFor(std::uint64_t u)
    {
        // Small values get exact buckets: u in [0, 2*kSubBuckets).
        if (u < 2 * kSubBuckets)
            return static_cast<unsigned>(u);
        const unsigned exp = static_cast<unsigned>(std::bit_width(u)) - 1;
        const unsigned sub = static_cast<unsigned>(
            (u >> (exp - kSubBucketBits)) & (kSubBuckets - 1));
        return ((exp - kSubBucketBits + 1) << kSubBucketBits) + sub;
    }

    /** Representative (upper-bound) sample value of bucket @p b. */
    static double bucketValue(unsigned b);

    std::string _name;
    std::string _desc;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::array<std::uint64_t, kNumBuckets> _hist{};
};

/**
 * A named collection of stats belonging to one component.
 *
 * The group does not own the stats; they are members of the component and
 * must outlive the group's use. It does own the value arena behind its
 * registered Scalars (see Scalar), so the group must outlive any counter
 * bumps — which member declaration order already guarantees when the
 * group is declared before its stats, the convention everywhere in the
 * tree.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    void add(Scalar *s) { _scalars.push_back(s); }
    void add(Distribution *d) { _dists.push_back(d); }

    /** Hand out one arena counter slot (Scalar registration). */
    std::uint64_t *
    allocCounter()
    {
        _counters.push_back(0);
        return &_counters.back();
    }

    const std::vector<Scalar *> &scalars() const { return _scalars; }
    const std::vector<Distribution *> &distributions() const
    {
        return _dists;
    }

    /** Append "<group>.<stat> value # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Merge this group's values into @p out as "<group>.<stat>" keys. */
    void toMap(std::map<std::string, double> &out) const;

    /** Reset every stat in the group. */
    void resetAll();

  private:
    std::string _name;
    std::vector<Scalar *> _scalars;
    std::vector<Distribution *> _dists;
    /** Dense counter storage (deque: stable slot addresses). */
    std::deque<std::uint64_t> _counters;
};

} // namespace persim

#endif // PERSIM_SIM_STATS_HH
