/**
 * @file
 * Lightweight debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Trace flags are plain strings ("Epoch", "Cache", "Mesh", ...).
 * Enable them with the PERSIM_TRACE environment variable:
 *
 *   PERSIM_TRACE=Epoch,Flush ./examples/quickstart
 *   PERSIM_TRACE=all         ./build/tools/persim_cli ...
 *
 * Tracing compiles in but costs one branch per call site when disabled;
 * the message is only formatted when its flag is on.
 */

#ifndef PERSIM_SIM_TRACE_HH
#define PERSIM_SIM_TRACE_HH

#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace persim
{

namespace trace
{

/** True when @p flag (or "all") was listed in PERSIM_TRACE. */
bool enabled(const char *flag);

/** Emit one trace line: "<tick>: <flag>: <name>: <message>". */
void emit(const char *flag, Tick when, const std::string &who,
          const std::string &message);

} // namespace trace

/**
 * Trace helper for SimObjects (and anything with curTick()/name()).
 *
 * Usage: tracef("Epoch", *this, "epoch ", id, " persisted");
 */
template <typename Obj, typename... Args>
void
tracef(const char *flag, const Obj &obj, const Args &...args)
{
    if (!trace::enabled(flag))
        return;
    trace::emit(flag, obj.curTick(), obj.name(),
                detail::concat(args...));
}

} // namespace persim

#endif // PERSIM_SIM_TRACE_HH
