/**
 * @file
 * Lightweight debug tracing, in the spirit of gem5's DPRINTF, plus the
 * structured observability probes (duration spans and counter samples)
 * behind the Chrome/Perfetto exporter in src/exp.
 *
 * Trace flags are plain strings ("Epoch", "Cache", "Mesh", ...).
 * Enable them with the PERSIM_TRACE environment variable:
 *
 *   PERSIM_TRACE=Epoch,Flush ./examples/quickstart
 *   PERSIM_TRACE=all         ./build/tools/persim_cli ...
 *
 * Tracing compiles in but is near-free when disabled: every probe
 * (tracef, trace::span, trace::counter) starts with an inlined
 * thread-local load and branch; the message/span is only built when a
 * Recorder is attached to the thread (or, for tracef, a flag is set in
 * the environment). bench_eventqueue's ProbeSite benchmark pins the
 * disabled-path cost.
 */

#ifndef PERSIM_SIM_TRACE_HH
#define PERSIM_SIM_TRACE_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace persim
{

namespace trace
{

/** One captured trace event (see Recorder). */
struct Record
{
    Tick tick;
    std::string flag;
    std::string who;
    std::string message;
};

/**
 * One completed duration span on a component track.
 *
 * Spans are recorded at close time, when both endpoints are known:
 * an epoch span opens when the epoch is created in the EpochTable and
 * closes at PersistCMP; an MSHR span covers one busy episode; an NVM
 * write-queue span covers one non-empty residency episode. Overlapping
 * spans on one track are legal (epochs of one core overlap by design —
 * that overlap IS the paper's claim); the exporter splays them onto
 * parallel lanes so Perfetto renders them as overlapping bars.
 */
struct Span
{
    Tick begin;
    Tick end;
    /** Component track, e.g. "persist.arbiter[3]" or "l1[0]". */
    std::string track;
    /** Span label, e.g. "epoch 42". */
    std::string name;
    /** Category; doubles as the trace flag gating the span. */
    std::string cat;
};

/** One sample on a named counter track (rendered as ph:"C"). */
struct Counter
{
    Tick tick;
    /** Counter track name, e.g. "epochsInFlight". */
    std::string track;
    double value;
};

/**
 * In-memory capture of trace events for structured export (e.g. the
 * Chrome-tracing exporter in src/exp).
 *
 * A Recorder is attached to the *current thread*: every simulation runs
 * its event loop on one thread, so a per-thread recorder captures
 * exactly one System's event stream even when a sweep runs many
 * Systems concurrently. While attached, the listed flags are enabled
 * programmatically (no PERSIM_TRACE needed) and events go into
 * records instead of stderr; stderr still gets a copy for flags that
 * PERSIM_TRACE enables.
 */
class Recorder
{
  public:
    /**
     * @param flagsCsv Comma-separated flag list, or "all".
     * @param counterWindow Interval-stat sampling window in ticks; 0
     *        disables the windowed sampler (System::run consults this
     *        through trace::current()).
     */
    explicit Recorder(const std::string &flagsCsv,
                      Tick counterWindow = 0);

    bool wants(const char *flag) const;
    void add(Record r) { _records.push_back(std::move(r)); }

    /** Record a completed span if its category flag is wanted. */
    void
    addSpan(Span s)
    {
        if (wants(s.cat.c_str()))
            _spans.push_back(std::move(s));
    }

    void addCounter(Counter c) { _counters.push_back(std::move(c)); }

    const std::vector<Record> &records() const { return _records; }
    const std::vector<Span> &spans() const { return _spans; }
    const std::vector<Counter> &counters() const { return _counters; }

    Tick counterWindow() const { return _counterWindow; }

  private:
    bool _all = false;
    std::vector<std::string> _flags;
    std::vector<Record> _records;
    std::vector<Span> _spans;
    std::vector<Counter> _counters;
    Tick _counterWindow = 0;
};

namespace detail
{
/** The current thread's recorder; read inline by every probe. */
extern thread_local Recorder *tlRecorder;
/** True when PERSIM_TRACE names at least one flag. */
extern const bool envAny;
/** Slow path of enabled(): consult the PERSIM_TRACE flag set. */
bool envEnabled(const char *flag);
} // namespace detail

/** Attach @p r to the current thread (replacing any previous one). */
void attachRecorder(Recorder *r);

/** Detach the current thread's recorder (no-op when none attached). */
void detachRecorder();

/** The recorder attached to the current thread; nullptr when none. */
inline Recorder *current() { return detail::tlRecorder; }

/**
 * True when a recorder is capturing on this thread. Probe call sites
 * that build span names (string concatenation) must guard on this so
 * the disabled path stays a load-test-branch.
 */
inline bool probing() { return detail::tlRecorder != nullptr; }

/**
 * True when @p flag (or "all") was listed in PERSIM_TRACE, or when the
 * current thread's attached Recorder wants it. The common
 * nothing-enabled case is two inlined tests with no call.
 */
inline bool
enabled(const char *flag)
{
    if (Recorder *r = detail::tlRecorder) {
        if (r->wants(flag))
            return true;
    }
    return detail::envAny && detail::envEnabled(flag);
}

/** Emit one trace line: "<tick>: <flag>: <name>: <message>". */
void emit(const char *flag, Tick when, const std::string &who,
          const std::string &message);

/**
 * Record a completed duration span [begin, end] on @p track.
 * No-op (one inlined branch) unless a recorder is attached.
 */
inline void
span(Tick begin, Tick end, const std::string &track, std::string name,
     const char *cat)
{
    if (Recorder *r = detail::tlRecorder) [[unlikely]]
        r->addSpan(Span{begin, end, track, std::move(name), cat});
}

/** Record one counter sample. No-op unless a recorder is attached. */
inline void
counter(Tick tick, const char *track, double value)
{
    if (Recorder *r = detail::tlRecorder) [[unlikely]]
        r->addCounter(Counter{tick, track, value});
}

} // namespace trace

/**
 * Trace helper for SimObjects (and anything with curTick()/name()).
 *
 * Usage: tracef("Epoch", *this, "epoch ", id, " persisted");
 */
template <typename Obj, typename... Args>
void
tracef(const char *flag, const Obj &obj, const Args &...args)
{
    if (!trace::enabled(flag))
        return;
    trace::emit(flag, obj.curTick(), obj.name(),
                detail::concat(args...));
}

} // namespace persim

#endif // PERSIM_SIM_TRACE_HH
