/**
 * @file
 * Lightweight debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Trace flags are plain strings ("Epoch", "Cache", "Mesh", ...).
 * Enable them with the PERSIM_TRACE environment variable:
 *
 *   PERSIM_TRACE=Epoch,Flush ./examples/quickstart
 *   PERSIM_TRACE=all         ./build/tools/persim_cli ...
 *
 * Tracing compiles in but costs one branch per call site when disabled;
 * the message is only formatted when its flag is on.
 */

#ifndef PERSIM_SIM_TRACE_HH
#define PERSIM_SIM_TRACE_HH

#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace persim
{

namespace trace
{

/** One captured trace event (see Recorder). */
struct Record
{
    Tick tick;
    std::string flag;
    std::string who;
    std::string message;
};

/**
 * In-memory capture of trace events for structured export (e.g. the
 * Chrome-tracing exporter in src/exp).
 *
 * A Recorder is attached to the *current thread*: every simulation runs
 * its event loop on one thread, so a per-thread recorder captures
 * exactly one System's event stream even when a sweep runs many
 * Systems concurrently. While attached, the listed flags are enabled
 * programmatically (no PERSIM_TRACE needed) and events go into
 * records instead of stderr; stderr still gets a copy for flags that
 * PERSIM_TRACE enables.
 */
class Recorder
{
  public:
    /** @param flagsCsv Comma-separated flag list, or "all". */
    explicit Recorder(const std::string &flagsCsv);

    bool wants(const char *flag) const;
    void add(Record r) { _records.push_back(std::move(r)); }

    const std::vector<Record> &records() const { return _records; }

  private:
    bool _all = false;
    std::vector<std::string> _flags;
    std::vector<Record> _records;
};

/** Attach @p r to the current thread (replacing any previous one). */
void attachRecorder(Recorder *r);

/** Detach the current thread's recorder (no-op when none attached). */
void detachRecorder();

/**
 * True when @p flag (or "all") was listed in PERSIM_TRACE, or when the
 * current thread's attached Recorder wants it.
 */
bool enabled(const char *flag);

/** Emit one trace line: "<tick>: <flag>: <name>: <message>". */
void emit(const char *flag, Tick when, const std::string &who,
          const std::string &message);

} // namespace trace

/**
 * Trace helper for SimObjects (and anything with curTick()/name()).
 *
 * Usage: tracef("Epoch", *this, "epoch ", id, " persisted");
 */
template <typename Obj, typename... Args>
void
tracef(const char *flag, const Obj &obj, const Args &...args)
{
    if (!trace::enabled(flag))
        return;
    trace::emit(flag, obj.curTick(), obj.name(),
                detail::concat(args...));
}

} // namespace persim

#endif // PERSIM_SIM_TRACE_HH
