/**
 * @file
 * A small growable FIFO ring for staged work items.
 *
 * The hot-path staging pattern (L1Cache::access, DESIGN.md §3a.2)
 * parks a move-only payload here and schedules a captureless "pop one"
 * event: because every staged event is scheduled with the same delay,
 * the event queue's FIFO tie-break pops them in push order, so the
 * ring IS the event payload — no per-event capture, no callback-arena
 * traffic. The ring grows (power-of-two doubling) on the rare
 * overflow and never shrinks, so steady state performs no allocation.
 */

#ifndef PERSIM_SIM_PENDING_RING_HH
#define PERSIM_SIM_PENDING_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace persim
{

template <typename T>
class PendingRing
{
  public:
    explicit PendingRing(std::size_t initialCapacity = 8)
    {
        std::size_t cap = 2;
        while (cap < initialCapacity)
            cap <<= 1;
        _slots.resize(cap);
    }

    bool empty() const { return _size == 0; }
    std::size_t size() const { return _size; }
    std::size_t capacity() const { return _slots.size(); }

    void
    push(T &&v)
    {
        if (_size == _slots.size())
            grow();
        _slots[(_head + _size) & (_slots.size() - 1)] = std::move(v);
        ++_size;
    }

    /** Move out the oldest item; the ring must be non-empty. */
    T
    pop()
    {
        simAssert(_size != 0, "PendingRing pop on empty ring");
        T out = std::move(_slots[_head]);
        _head = (_head + 1) & (_slots.size() - 1);
        --_size;
        return out;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(_slots.size() * 2);
        for (std::size_t i = 0; i < _size; ++i)
            bigger[i] = std::move(_slots[(_head + i) & (_slots.size() - 1)]);
        _slots.swap(bigger);
        _head = 0;
    }

    std::vector<T> _slots;
    std::size_t _head = 0;
    std::size_t _size = 0;
};

} // namespace persim

#endif // PERSIM_SIM_PENDING_RING_HH
