/**
 * @file
 * Base class for every named component of the simulated machine.
 */

#ifndef PERSIM_SIM_SIM_OBJECT_HH
#define PERSIM_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace persim
{

/**
 * A named component bound to the simulation's event queue.
 *
 * SimObjects are created once at system-build time and live for the whole
 * simulation; they are neither copyable nor movable so that cross-
 * component pointers stay valid.
 */
class SimObject
{
  public:
    /**
     * @param name Hierarchical instance name, e.g. "system.l1[3]".
     * @param eq The (single) event queue driving the simulation.
     */
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eq(eq)
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name. */
    const std::string &name() const { return _name; }

    /** Current simulated time. */
    Tick curTick() const { return _eq.now(); }

    /** The event queue this object schedules on. */
    EventQueue &eventQueue() { return _eq; }

  protected:
    /** Schedule a member callback @p delay ticks from now. */
    EventQueue::EventId
    scheduleIn(Tick delay, EventQueue::Callback cb)
    {
        return _eq.scheduleIn(delay, std::move(cb));
    }

  private:
    const std::string _name;
    EventQueue &_eq;
};

} // namespace persim

#endif // PERSIM_SIM_SIM_OBJECT_HH
