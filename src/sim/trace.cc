#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

namespace persim::trace
{

namespace
{

struct TraceState
{
    bool any = false;
    bool all = false;
    std::set<std::string> flags;

    TraceState()
    {
        const char *env = std::getenv("PERSIM_TRACE");
        if (!env || !*env)
            return;
        any = true;
        std::stringstream ss(env);
        std::string flag;
        while (std::getline(ss, flag, ',')) {
            if (flag == "all")
                all = true;
            else if (!flag.empty())
                flags.insert(flag);
        }
    }
};

const TraceState &
state()
{
    static const TraceState s;
    return s;
}

} // namespace

namespace detail
{

thread_local Recorder *tlRecorder = nullptr;

// Dynamic-initialized before main(); probes only run at runtime.
const bool envAny = state().any;

bool
envEnabled(const char *flag)
{
    const TraceState &s = state();
    return s.any && (s.all || s.flags.contains(flag));
}

} // namespace detail

Recorder::Recorder(const std::string &flagsCsv, Tick counterWindow)
    : _counterWindow(counterWindow)
{
    std::stringstream ss(flagsCsv);
    std::string flag;
    while (std::getline(ss, flag, ',')) {
        if (flag == "all")
            _all = true;
        else if (!flag.empty())
            _flags.push_back(flag);
    }
}

bool
Recorder::wants(const char *flag) const
{
    if (_all)
        return true;
    for (const std::string &f : _flags) {
        if (f == flag)
            return true;
    }
    return false;
}

void
attachRecorder(Recorder *r)
{
    detail::tlRecorder = r;
}

void
detachRecorder()
{
    detail::tlRecorder = nullptr;
}

void
emit(const char *flag, Tick when, const std::string &who,
     const std::string &message)
{
    Recorder *rec = detail::tlRecorder;
    if (rec && rec->wants(flag)) {
        rec->add(Record{when, flag, who, message});
        if (!detail::envEnabled(flag))
            return;
    }
    std::fprintf(stderr, "%10llu: %s: %s: %s\n",
                 static_cast<unsigned long long>(when), flag,
                 who.c_str(), message.c_str());
}

} // namespace persim::trace
