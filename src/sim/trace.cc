#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

namespace persim::trace
{

namespace
{

struct TraceState
{
    bool any = false;
    bool all = false;
    std::set<std::string> flags;

    TraceState()
    {
        const char *env = std::getenv("PERSIM_TRACE");
        if (!env || !*env)
            return;
        any = true;
        std::stringstream ss(env);
        std::string flag;
        while (std::getline(ss, flag, ',')) {
            if (flag == "all")
                all = true;
            else if (!flag.empty())
                flags.insert(flag);
        }
    }
};

const TraceState &
state()
{
    static const TraceState s;
    return s;
}

thread_local Recorder *tlRecorder = nullptr;

bool
envEnabled(const char *flag)
{
    const TraceState &s = state();
    return s.any && (s.all || s.flags.contains(flag));
}

} // namespace

Recorder::Recorder(const std::string &flagsCsv)
{
    std::stringstream ss(flagsCsv);
    std::string flag;
    while (std::getline(ss, flag, ',')) {
        if (flag == "all")
            _all = true;
        else if (!flag.empty())
            _flags.push_back(flag);
    }
}

bool
Recorder::wants(const char *flag) const
{
    if (_all)
        return true;
    for (const std::string &f : _flags) {
        if (f == flag)
            return true;
    }
    return false;
}

void
attachRecorder(Recorder *r)
{
    tlRecorder = r;
}

void
detachRecorder()
{
    tlRecorder = nullptr;
}

bool
enabled(const char *flag)
{
    if (tlRecorder && tlRecorder->wants(flag))
        return true;
    return envEnabled(flag);
}

void
emit(const char *flag, Tick when, const std::string &who,
     const std::string &message)
{
    if (tlRecorder && tlRecorder->wants(flag)) {
        tlRecorder->add(Record{when, flag, who, message});
        if (!envEnabled(flag))
            return;
    }
    std::fprintf(stderr, "%10llu: %s: %s: %s\n",
                 static_cast<unsigned long long>(when), flag,
                 who.c_str(), message.c_str());
}

} // namespace persim::trace
