/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Each component that needs randomness owns its own Rng seeded from the
 * system seed and its instance id, so simulations are reproducible and
 * independent of component construction order.
 */

#ifndef PERSIM_SIM_RNG_HH
#define PERSIM_SIM_RNG_HH

#include <cstdint>

namespace persim
{

/** xoshiro256** by Blackman & Vigna; small, fast, high quality. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding to fill the state from one word.
        std::uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free reduction is biased by at
        // most 2^-64 * bound, negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace persim

#endif // PERSIM_SIM_RNG_HH
