/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic convention.
 *
 * panic(): an internal invariant of the simulator was violated (a bug in
 * persimmon itself). Throws SimPanic.
 * fatal(): the simulation cannot continue because of a user error (bad
 * configuration, invalid workload parameters). Throws SimFatal.
 * warn()/inform(): status messages; never stop the simulation.
 *
 * Exceptions (rather than abort/exit) are used so that the library is
 * testable and embeddable; the example binaries catch SimFatal at
 * top-level and exit(1).
 */

#ifndef PERSIM_SIM_LOGGING_HH
#define PERSIM_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace persim
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &what) : std::logic_error(what) {}
};

/** Thrown by fatal(): user-caused condition the simulation can't survive. */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &what) : std::runtime_error(what) {}
};

/**
 * Thrown when a host-side watchdog cancels a running simulation
 * (System::run polls an external flag; see System::setCancelFlag).
 * Distinct from SimFatal so the sweep runner can record the job as
 * timed out rather than misconfigured.
 */
class SimCancelled : public std::runtime_error
{
  public:
    explicit SimCancelled(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

namespace detail
{

inline void
streamAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    streamAll(os, rest...);
}

/** Concatenate heterogeneous arguments into one string. */
template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamAll(os, args...);
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug and abort the simulation. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw SimPanic(detail::concat("panic: ", args...));
}

/** Report an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw SimFatal(detail::concat("fatal: ", args...));
}

/** Assert an internal invariant; panics with a message on failure. */
template <typename... Args>
void
simAssert(bool condition, const Args &...args)
{
    if (!condition)
        panic(args...);
}

/** Emit a warning to stderr (suspicious but survivable condition). */
void warnMessage(const std::string &msg);

/** Emit an informational message to stderr. */
void informMessage(const std::string &msg);

/** Enable/disable inform() output globally (warnings always print). */
void setVerbose(bool verbose);

template <typename... Args>
void
warn(const Args &...args)
{
    warnMessage(detail::concat(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    informMessage(detail::concat(args...));
}

} // namespace persim

#endif // PERSIM_SIM_LOGGING_HH
