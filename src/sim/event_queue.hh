/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine. Events are
 * (tick, callback) pairs; events scheduled for the same tick execute in
 * FIFO scheduling order, which makes every simulation fully deterministic
 * for a given configuration and seed.
 */

#ifndef PERSIM_SIM_EVENT_QUEUE_HH
#define PERSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace persim
{

/**
 * Deterministic binary-heap event queue.
 *
 * The heap is implemented in-house (rather than std::priority_queue) so
 * that callbacks can be moved out of the heap on pop and so ties break by
 * insertion order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Handle for cancelling a scheduled event. 0 is never returned. */
    using EventId = std::uint64_t;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback executed when the event fires.
     * @return A handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, Callback cb)
    {
        return schedule(_now + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already fired (or was already cancelled)
     * is a no-op; handles are never reused.
     */
    void cancel(EventId id);

    /**
     * Pop and execute the next event.
     *
     * @return false if the queue was empty (time does not advance).
     */
    bool runNext();

    /**
     * Run events until the queue drains or @p maxEvents have executed.
     *
     * @return The number of events executed.
     */
    std::uint64_t run(std::uint64_t maxEvents = UINT64_MAX);

    /**
     * Run all events with tick <= @p limit; afterwards now() == limit
     * unless the queue drained earlier.
     *
     * @return The number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** True when no live events remain. */
    bool empty() const { return _heap.size() == _cancelled.size(); }

    /** Number of live (non-cancelled) events pending. */
    std::size_t pending() const { return _heap.size() - _cancelled.size(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        EventId id; // also the FIFO tie-breaker (monotonic)
        Callback cb;
    };

    /** True if a orders strictly before b. */
    static bool before(const Entry &a, const Entry &b)
    {
        return a.when < b.when || (a.when == b.when && a.id < b.id);
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Pop the top entry, skipping cancelled ones. False if drained. */
    bool popLive(Entry &out);

    std::vector<Entry> _heap;
    std::unordered_set<EventId> _cancelled;
    Tick _now = 0;
    EventId _nextId = 1;
    std::uint64_t _executed = 0;
};

} // namespace persim

#endif // PERSIM_SIM_EVENT_QUEUE_HH
