/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole simulated machine. Events are
 * (tick, callback) pairs; events scheduled for the same tick execute in
 * FIFO scheduling order, which makes every simulation fully deterministic
 * for a given configuration and seed.
 */

#ifndef PERSIM_SIM_EVENT_QUEUE_HH
#define PERSIM_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/types.hh"

namespace persim
{

/**
 * Deterministic timing-wheel event queue over pooled event nodes.
 *
 * Events within the wheel horizon (kWheelSlots ticks — which covers
 * nearly every event the simulator schedules, since component delays
 * are at most a few hundred cycles) go to a per-tick FIFO slot:
 * schedule and pop are O(1) appends/scans with no sifting at all.
 * Events beyond the horizon go to a small 4-ary min-heap of POD
 * entries (tick, sequence, pool slot) and drain into the wheel as the
 * cursor advances. Ordering is exactly (tick, schedule order): wheel
 * slots are FIFO and the overflow drains into a slot strictly before
 * any same-tick direct insert can reach it (drains happen on every
 * cursor advance, and a direct insert requires the tick to be inside
 * the window, which implies earlier overflow entries for that tick
 * have already drained).
 *
 * Callbacks live in a free-list pool of nodes recycled for the
 * lifetime of the queue. Cancellation flips a bit in the node — O(1),
 * no hashing, no unbounded side table — and each node carries a
 * generation counter so stale handles (fired, cancelled, or recycled
 * events) are rejected without any bookkeeping growth.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /**
     * Handle for cancelling a scheduled event. 0 is never returned.
     * Encodes (generation << 32 | pool slot); handles are never reused:
     * the generation advances whenever a node fires or is cancelled.
     */
    using EventId = std::uint64_t;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback executed when the event fires.
     * @return A handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /**
     * Schedule @p cb to run @p delay ticks from now.
     *
     * Asserts that now() + delay does not overflow Tick — a wrapped sum
     * would otherwise surface as a confusing "scheduled in the past"
     * panic (or, worse, a silently early event).
     */
    EventId scheduleIn(Tick delay, Callback cb);

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an event that already fired (or was already cancelled)
     * is a no-op; handles are never reused.
     */
    void cancel(EventId id);

    /**
     * Pop and execute the next event.
     *
     * @return false if the queue was empty (time does not advance).
     */
    bool runNext();

    /**
     * Run events until the queue drains or @p maxEvents have executed.
     *
     * @return The number of events executed.
     */
    std::uint64_t run(std::uint64_t maxEvents = UINT64_MAX);

    /**
     * Run all events with tick <= @p limit; afterwards now() == limit
     * unless the queue drained earlier.
     *
     * @return The number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** True when no live events remain. */
    bool empty() const { return _numLive == 0; }

    /** Number of live (non-cancelled) events pending. */
    std::size_t pending() const { return _numLive; }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return _executed; }

    // ------------------------------------------------------------------
    // Pool probes (regression tests and diagnostics)
    // ------------------------------------------------------------------

    /** Cancelled events still occupying a pool node (bounded by the
     * number of in-flight events; a cancel of a fired/stale handle
     * leaves no residue at all). */
    std::size_t pendingCancellations() const { return _numCancelled; }

    /** Total nodes ever created (pool high-water mark). */
    std::size_t poolAllocated() const { return _pool.size(); }

    /** Nodes currently parked on the free list. */
    std::size_t poolFree() const
    {
        return _pool.size() - _numLive - _numCancelled;
    }

  private:
    static constexpr std::uint32_t kNoIndex = UINT32_MAX;
    /** Overflow-heap fan-out; see the determinism note at siftDown(). */
    static constexpr std::size_t kHeapArity = 4;
    /** Wheel horizon in ticks (power of two). */
    static constexpr std::size_t kWheelSlots = 4096;
    static constexpr std::size_t kWheelMask = kWheelSlots - 1;
    static constexpr std::size_t kWheelWords = kWheelSlots / 64;

    struct Node
    {
        Callback cb;
        std::uint32_t gen = 1;       // bumped on every release
        std::uint32_t nextFree = kNoIndex;
        bool inUse = false;
        bool cancelled = false;
    };

    /** POD heap entry; seq is the monotonic FIFO tie-breaker. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** True if a orders strictly before b. */
    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        return a.when < b.when || (a.when == b.when && a.seq < b.seq);
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::uint32_t allocNode();
    void releaseNode(std::uint32_t slot);

    /** Append @p slot to the wheel slot for tick @p when (in-window). */
    void pushWheel(Tick when, std::uint32_t slot);

    /** Move overflow entries that entered the window onto the wheel. */
    void drainOverflow();

    /** Tick of the nearest occupied wheel slot after the cursor;
     * requires _wheelCount > 0. */
    Tick nextOccupiedTick() const;

    /**
     * Advance the cursor (never past @p limit), skimming cancelled
     * entries, until it rests on the next live entry. Returns false if
     * none exists at tick <= limit; the cursor is then left at @p
     * limit (or back at now() for an unbounded search) so later
     * schedules stay ahead of it.
     */
    bool findNextLive(Tick limit);

    /** Consume the live entry findNextLive() parked the cursor on. */
    void consumeTop(Callback &cb);

    /** Pop the next live event into @p cb. False if drained. */
    bool popLive(Tick &when, Callback &cb);

    void
    setOccupied(std::size_t pos)
    {
        _occupied[pos >> 6] |= std::uint64_t{1} << (pos & 63);
    }

    void
    clearOccupied(std::size_t pos)
    {
        _occupied[pos >> 6] &= ~(std::uint64_t{1} << (pos & 63));
    }

    /** Per-tick FIFO slots; entry = pool slot index. A slot holds
     * entries for exactly one tick of the window [cursor, cursor+W). */
    std::vector<std::vector<std::uint32_t>> _slots{kWheelSlots};
    std::array<std::uint64_t, kWheelWords> _occupied{};
    /** Tick the wheel cursor rests on; == now() whenever user code can
     * run (callbacks or between run calls). */
    Tick _cursor = 0;
    /** Scan position inside the cursor's slot. */
    std::size_t _slotIdx = 0;
    /** Entries resident in wheel slots (live + not-yet-skimmed). */
    std::size_t _wheelCount = 0;

    std::vector<HeapEntry> _heap; // overflow: when - cursor >= kWheelSlots
    std::vector<Node> _pool;
    std::uint32_t _freeHead = kNoIndex;
    std::uint64_t _nextSeq = 1;
    std::size_t _numLive = 0;
    std::size_t _numCancelled = 0;
    Tick _now = 0;
    std::uint64_t _executed = 0;
};

} // namespace persim

#endif // PERSIM_SIM_EVENT_QUEUE_HH
