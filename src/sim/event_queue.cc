#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/logging.hh"

namespace persim
{

std::uint32_t
EventQueue::allocNode()
{
    if (_freeHead != kNoIndex) {
        const std::uint32_t slot = _freeHead;
        _freeHead = _pool[slot].nextFree;
        _pool[slot].nextFree = kNoIndex;
        return slot;
    }
    simAssert(_pool.size() < kNoIndex, "event pool exhausted");
    _pool.emplace_back();
    return static_cast<std::uint32_t>(_pool.size() - 1);
}

void
EventQueue::releaseNode(std::uint32_t slot)
{
    Node &n = _pool[slot];
    n.cb = Callback();
    // Invalidate every outstanding handle to this incarnation; skip a
    // generation on wrap so ids never read as (gen 0, slot 0) == 0.
    if (++n.gen == 0)
        n.gen = 1;
    n.inUse = false;
    n.cancelled = false;
    n.nextFree = _freeHead;
    _freeHead = slot;
}

void
EventQueue::pushWheel(Tick when, std::uint32_t slot)
{
    const std::size_t pos = static_cast<std::size_t>(when) & kWheelMask;
    std::vector<std::uint32_t> &vec = _slots[pos];
    if (vec.empty())
        setOccupied(pos);
    vec.push_back(slot);
    ++_wheelCount;
}

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb)
{
    simAssert(when >= _now, "event scheduled in the past: when=", when,
              " now=", _now);
    simAssert(static_cast<bool>(cb), "null event callback");
    const std::uint32_t slot = allocNode();
    Node &n = _pool[slot];
    n.cb = std::move(cb);
    n.inUse = true;
    // _cursor == _now whenever user code runs, so when >= _cursor and
    // the window test below is a plain subtraction.
    if (when - _cursor < kWheelSlots) {
        pushWheel(when, slot);
    } else {
        _heap.push_back(HeapEntry{when, _nextSeq++, slot});
        siftUp(_heap.size() - 1);
    }
    ++_numLive;
    return (static_cast<EventId>(n.gen) << 32) | slot;
}

EventQueue::EventId
EventQueue::scheduleIn(Tick delay, Callback cb)
{
    simAssert(delay <= kTickNever - _now,
              "scheduleIn overflow: now=", _now, " delay=", delay,
              " wraps Tick");
    return schedule(_now + delay, std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= _pool.size())
        return; // never issued
    Node &n = _pool[slot];
    if (!n.inUse || n.gen != gen || n.cancelled)
        return; // already fired, cancelled, or recycled: no-op
    n.cancelled = true;
    n.cb = Callback(); // release the capture eagerly
    ++_numCancelled;
    --_numLive;
}

// The overflow heap is 4-ary: a wider node halves the tree depth while
// keeping all four children of a node inside one or two host cache
// lines (HeapEntry is 24 bytes). Heap shape never affects simulation
// order — (when, seq) is a total order, so the pop sequence is
// identical for any valid heap arrangement.

void
EventQueue::siftUp(std::size_t i)
{
    const HeapEntry e = _heap[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / kHeapArity;
        if (!before(e, _heap[parent]))
            break;
        _heap[i] = _heap[parent];
        i = parent;
    }
    _heap[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = _heap.size();
    const HeapEntry e = _heap[i];
    while (true) {
        const std::size_t first = kHeapArity * i + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + kHeapArity, n);
        std::size_t smallest = first;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (before(_heap[c], _heap[smallest]))
                smallest = c;
        }
        if (!before(_heap[smallest], e))
            break;
        _heap[i] = _heap[smallest];
        i = smallest;
    }
    _heap[i] = e;
}

void
EventQueue::drainOverflow()
{
    while (!_heap.empty() && _heap.front().when - _cursor < kWheelSlots) {
        pushWheel(_heap.front().when, _heap.front().slot);
        _heap.front() = _heap.back();
        _heap.pop_back();
        if (!_heap.empty())
            siftDown(0);
    }
}

Tick
EventQueue::nextOccupiedTick() const
{
    const std::size_t p0 = static_cast<std::size_t>(_cursor) & kWheelMask;
    // First (partial) word: positions strictly after the cursor's.
    const std::size_t start = (p0 + 1) & kWheelMask;
    std::size_t word = start >> 6;
    const std::uint64_t head = _occupied[word] >> (start & 63);
    if (head) {
        const std::size_t pos =
            (start + static_cast<std::size_t>(std::countr_zero(head))) &
            kWheelMask;
        return _cursor + ((pos - p0) & kWheelMask);
    }
    for (std::size_t i = 1; i <= kWheelWords; ++i) {
        const std::size_t w = (word + i) & (kWheelWords - 1);
        const std::uint64_t bits = _occupied[w];
        if (bits) {
            const std::size_t pos =
                (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
            const std::size_t d = (pos - p0) & kWheelMask;
            simAssert(d != 0, "wheel occupancy out of sync");
            return _cursor + d;
        }
    }
    panic("nextOccupiedTick on an empty wheel");
    return kTickNever; // unreachable; panic() throws
}

bool
EventQueue::findNextLive(Tick limit)
{
    drainOverflow();
    while (true) {
        const std::size_t pos =
            static_cast<std::size_t>(_cursor) & kWheelMask;
        std::vector<std::uint32_t> &vec = _slots[pos];
        while (_slotIdx < vec.size()) {
            const std::uint32_t slot = vec[_slotIdx];
            if (!_pool[slot].cancelled)
                return true;
            releaseNode(slot);
            --_numCancelled;
            --_wheelCount;
            ++_slotIdx;
        }
        vec.clear();
        _slotIdx = 0;
        clearOccupied(pos);
        if (_wheelCount > 0) {
            const Tick next = nextOccupiedTick();
            if (next > limit)
                break;
            _cursor = next;
        } else if (!_heap.empty() && _heap.front().when <= limit) {
            _cursor = _heap.front().when;
        } else {
            break;
        }
        drainOverflow();
    }
    // Nothing live at tick <= limit. Park the cursor where later
    // schedules (which satisfy when >= now()) cannot land behind it:
    // at the limit runUntil() will advance now() to, or back at now()
    // for an unbounded search over a drained queue.
    _cursor = limit == kTickNever ? _now : limit;
    _slotIdx = 0;
    drainOverflow();
    return false;
}

void
EventQueue::consumeTop(Callback &cb)
{
    const std::size_t pos = static_cast<std::size_t>(_cursor) & kWheelMask;
    const std::uint32_t slot = _slots[pos][_slotIdx++];
    --_wheelCount;
    cb = std::move(_pool[slot].cb);
    // Release before invoking: a cancel of this (fired) handle must be
    // a no-op, and the callback may itself schedule into the freed slot.
    releaseNode(slot);
    --_numLive;
}

bool
EventQueue::popLive(Tick &when, Callback &cb)
{
    if (!findNextLive(kTickNever))
        return false;
    consumeTop(cb);
    when = _cursor;
    return true;
}

bool
EventQueue::runNext()
{
    Tick when;
    Callback cb;
    if (!popLive(when, cb))
        return false;
    simAssert(when >= _now, "time went backwards");
    _now = when;
    ++_executed;
    cb();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t maxEvents)
{
    std::uint64_t count = 0;
    while (count < maxEvents && runNext())
        ++count;
    return count;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    while (findNextLive(limit)) {
        Callback cb;
        consumeTop(cb);
        _now = _cursor;
        ++_executed;
        ++count;
        cb();
    }
    if (_now < limit)
        _now = limit;
    return count;
}

} // namespace persim
