#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace persim
{

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb)
{
    simAssert(when >= _now, "event scheduled in the past: when=", when,
              " now=", _now);
    simAssert(static_cast<bool>(cb), "null event callback");
    EventId id = _nextId++;
    _heap.push_back(Entry{when, id, std::move(cb)});
    siftUp(_heap.size() - 1);
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= _nextId)
        return;
    // Lazy deletion: mark the id; the entry is discarded when popped.
    _cancelled.insert(id);
}

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!before(_heap[i], _heap[parent]))
            break;
        std::swap(_heap[i], _heap[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = _heap.size();
    while (true) {
        std::size_t left = 2 * i + 1;
        std::size_t right = left + 1;
        std::size_t smallest = i;
        if (left < n && before(_heap[left], _heap[smallest]))
            smallest = left;
        if (right < n && before(_heap[right], _heap[smallest]))
            smallest = right;
        if (smallest == i)
            break;
        std::swap(_heap[i], _heap[smallest]);
        i = smallest;
    }
}

bool
EventQueue::popLive(Entry &out)
{
    while (!_heap.empty()) {
        std::swap(_heap.front(), _heap.back());
        Entry top = std::move(_heap.back());
        _heap.pop_back();
        if (!_heap.empty())
            siftDown(0);
        auto it = _cancelled.find(top.id);
        if (it != _cancelled.end()) {
            _cancelled.erase(it);
            continue;
        }
        out = std::move(top);
        return true;
    }
    return false;
}

bool
EventQueue::runNext()
{
    Entry e;
    if (!popLive(e))
        return false;
    simAssert(e.when >= _now, "time went backwards");
    _now = e.when;
    ++_executed;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t maxEvents)
{
    std::uint64_t count = 0;
    while (count < maxEvents && runNext())
        ++count;
    return count;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    Entry e;
    while (!_heap.empty()) {
        // Peek at the live top without popping if it is beyond the limit.
        if (!popLive(e))
            break;
        if (e.when > limit) {
            // Put it back; heap property restored by sift.
            _heap.push_back(std::move(e));
            siftUp(_heap.size() - 1);
            break;
        }
        _now = e.when;
        ++_executed;
        ++count;
        e.cb();
    }
    if (_now < limit)
        _now = limit;
    return count;
}

} // namespace persim
