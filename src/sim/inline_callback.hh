/**
 * @file
 * Small-buffer-optimized, move-only callables for the simulation kernel.
 *
 * Every event and continuation on the hot path used to be a
 * std::function<void()>; each capture larger than the library's tiny
 * SBO window (two pointers on libstdc++) cost a malloc/free pair per
 * scheduled event. InlineFunction keeps captures of up to
 * kInlineBytes (six pointers) in the object itself, and routes the
 * rare oversized closure — deep continuation chains built by conflict
 * resolution — through a per-thread free-list of fixed-size blocks,
 * so steady-state simulation performs no general-purpose allocation
 * per event at all.
 */

#ifndef PERSIM_SIM_INLINE_CALLBACK_HH
#define PERSIM_SIM_INLINE_CALLBACK_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace persim
{

namespace detail
{

/**
 * Thread-local free-list allocator for oversized callback closures.
 *
 * All closures above the inline budget share one block size so a
 * single LIFO free list serves them; closures above kBlockBytes (none
 * on the current hot paths) fall back to operator new. Blocks are
 * returned to the owning thread's list on destruction and released to
 * the system when the thread exits, which keeps sanitizer leak checks
 * clean.
 */
class CallbackArena
{
  public:
    /** One size class covers every oversized closure we ever build. */
    static constexpr std::size_t kBlockBytes = 256;

    static void *
    allocate(std::size_t bytes)
    {
        if (bytes > kBlockBytes)
            return ::operator new(bytes);
        FreeList &fl = list();
        if (fl.head) {
            void *p = fl.head;
            fl.head = *static_cast<void **>(p);
            --fl.cached;
            return p;
        }
        ++fl.allocated;
        return ::operator new(kBlockBytes);
    }

    static void
    deallocate(void *p, std::size_t bytes) noexcept
    {
        if (bytes > kBlockBytes) {
            ::operator delete(p);
            return;
        }
        FreeList &fl = list();
        *static_cast<void **>(p) = fl.head;
        fl.head = p;
        ++fl.cached;
    }

    /** Blocks ever taken from operator new by this thread (probe). */
    static std::uint64_t blocksAllocated() { return list().allocated; }

    /** Blocks currently parked on this thread's free list (probe). */
    static std::uint64_t blocksCached() { return list().cached; }

  private:
    struct FreeList
    {
        void *head = nullptr;
        std::uint64_t allocated = 0;
        std::uint64_t cached = 0;

        ~FreeList()
        {
            while (head) {
                void *next = *static_cast<void **>(head);
                ::operator delete(head);
                head = next;
            }
        }
    };

    static FreeList &
    list()
    {
        thread_local FreeList fl;
        return fl;
    }
};

} // namespace detail

template <typename Sig>
class InlineFunction;

/**
 * Move-only callable with a six-pointer inline buffer.
 *
 * Closures that fit kInlineBytes (and are nothrow-move-constructible)
 * live inside the object; larger ones live in a CallbackArena block.
 * Use inlineOnly() at hot call sites to turn an accidental capture
 * growth into a compile error instead of a silent allocation.
 */
template <typename R, typename... Args>
class InlineFunction<R(Args...)>
{
  public:
    /** Inline capture budget: six pointers (the ISSUE floor is three). */
    static constexpr std::size_t kInlineBytes = 6 * sizeof(void *);

    /** True when @p F will be stored inline (no allocation at all). */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(std::decay_t<F>) <= kInlineBytes &&
        alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<std::decay_t<F>>;

    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(_store.buf))
                Fn(std::forward<F>(f));
            _invoke = &invokeInline<Fn>;
            _manage = &manageInline<Fn>;
        } else {
            void *p = detail::CallbackArena::allocate(sizeof(Fn));
            try {
                ::new (p) Fn(std::forward<F>(f));
            } catch (...) {
                detail::CallbackArena::deallocate(p, sizeof(Fn));
                throw;
            }
            _store.heap = p;
            _invoke = &invokeHeap<Fn>;
            _manage = &manageHeap<Fn>;
        }
    }

    /** Construct with a compile-time guarantee of inline storage. */
    template <typename F>
    static InlineFunction
    inlineOnly(F &&f)
    {
        static_assert(fitsInline<F>,
                      "hot-path callback capture exceeds the inline "
                      "budget (kInlineBytes); shrink the capture list");
        return InlineFunction(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept
        : _invoke(other._invoke), _manage(other._manage)
    {
        if (_manage)
            _manage(&_store, &other._store);
        other._invoke = nullptr;
        other._manage = nullptr;
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            _invoke = other._invoke;
            _manage = other._manage;
            if (_manage)
                _manage(&_store, &other._store);
            other._invoke = nullptr;
            other._manage = nullptr;
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const noexcept { return _invoke != nullptr; }

    R
    operator()(Args... args)
    {
        return _invoke(&_store, std::forward<Args>(args)...);
    }

  private:
    union Storage
    {
        alignas(std::max_align_t) unsigned char buf[kInlineBytes];
        void *heap;
    };

    void
    reset() noexcept
    {
        if (_manage) {
            _manage(nullptr, &_store);
            _invoke = nullptr;
            _manage = nullptr;
        }
    }

    template <typename Fn>
    static R
    invokeInline(Storage *s, Args... args)
    {
        return (*std::launder(reinterpret_cast<Fn *>(s->buf)))(
            std::forward<Args>(args)...);
    }

    template <typename Fn>
    static R
    invokeHeap(Storage *s, Args... args)
    {
        return (*static_cast<Fn *>(s->heap))(std::forward<Args>(args)...);
    }

    /** dst == nullptr destroys @p src; otherwise relocates src to dst. */
    template <typename Fn>
    static void
    manageInline(Storage *dst, Storage *src) noexcept
    {
        Fn *f = std::launder(reinterpret_cast<Fn *>(src->buf));
        if (dst)
            ::new (static_cast<void *>(dst->buf)) Fn(std::move(*f));
        f->~Fn();
    }

    template <typename Fn>
    static void
    manageHeap(Storage *dst, Storage *src) noexcept
    {
        if (dst) {
            dst->heap = src->heap;
        } else {
            Fn *f = static_cast<Fn *>(src->heap);
            f->~Fn();
            detail::CallbackArena::deallocate(src->heap, sizeof(Fn));
        }
        src->heap = nullptr;
    }

    R (*_invoke)(Storage *, Args...) = nullptr;
    void (*_manage)(Storage *, Storage *) noexcept = nullptr;
    Storage _store;
};

/** The kernel's event/continuation callable. */
using InlineCallback = InlineFunction<void()>;

} // namespace persim

#endif // PERSIM_SIM_INLINE_CALLBACK_HH
