/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef PERSIM_SIM_TYPES_HH
#define PERSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace persim
{

/** Simulated time, in core clock cycles (2GHz in the default config). */
using Tick = std::uint64_t;

/** A physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a core (and of the thread pinned to it). */
using CoreId = std::uint16_t;

/**
 * Monotonically increasing per-core epoch sequence number.
 *
 * Real hardware truncates this to a small tag (3 bits in the paper);
 * truncation is unambiguous because at most kMaxInflightEpochs epochs of
 * one core are in flight at a time. The simulator keeps the full sequence
 * number and enforces the in-flight window explicitly.
 */
using EpochId = std::uint64_t;

/** Sentinel for "no epoch": lines never written under a tracked epoch. */
constexpr EpochId kNoEpoch = std::numeric_limits<EpochId>::max();

/** Sentinel for "no core". */
constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/**
 * Architectural ceiling on the core count. The sharers bitmask in
 * CacheLine carries one bit per core (and the packed per-line core ids
 * are one byte), so core ids must stay below 64; shifting `1 << core`
 * for core >= 64 would be undefined behaviour. System configuration
 * validation and the PersistController constructor both enforce this.
 */
constexpr unsigned kMaxCores = 64;

/** Sentinel tick meaning "never" / unscheduled. */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Cache line size in bytes; fixed across the hierarchy (Table 1). */
constexpr unsigned kLineBytes = 64;

/** Shift to convert an address to a line number. */
constexpr unsigned kLineShift = 6;

/** Align an address down to its cache line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Line number (address / 64) of an address. */
constexpr Addr
lineNum(Addr a)
{
    return a >> kLineShift;
}

} // namespace persim

#endif // PERSIM_SIM_TYPES_HH
