#include "cache/llc_bank.hh"

#include <bit>
#include <memory>
#include <ostream>

#include "cache/l1_cache.hh"
#include "nvm/memory_controller.hh"
#include "persist/persist_controller.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::cache
{

namespace
{
std::uint64_t
coreBit(CoreId core)
{
    return std::uint64_t{1} << core;
}
} // namespace

LlcBank::LlcBank(const std::string &name, EventQueue &eq, noc::Mesh &mesh,
                 unsigned nodeId, unsigned x, unsigned y, unsigned bankIdx,
                 const LlcBankConfig &cfg, persist::PersistController &pc)
    : SimObject(name, eq),
      _bankIdx(bankIdx),
      _cfg(cfg),
      _pc(pc),
      _stats(name),
      _ni(name + ".ni", mesh, nodeId, x, y),
      _array(name + ".array", cfg.geometry, cfg.setShift),
      _flushEngine(name + ".flushEngine"),
      _requests(&_stats, "requests", "requests received from L1s"),
      _readHits(&_stats, "readGrants", "read grants sent"),
      _writeHits(&_stats, "writeGrants", "write (ownership) grants sent"),
      _missesToMemory(&_stats, "missesToMemory", "fills from NVRAM"),
      _evictions(&_stats, "evictions", "LLC victim evictions"),
      _evictionsDirty(&_stats, "evictionsDirty",
                      "dirty (untagged) victims written to NVRAM"),
      _recalls(&_stats, "recalls", "owner-L1 recalls"),
      _invsSent(&_stats, "invalidationsSent",
                "sharer invalidations sent"),
      _flushEpochMsgs(&_stats, "flushEpochMsgs",
                      "FlushEpoch messages processed"),
      _bankAcksSent(&_stats, "bankAcksSent", "BankAck messages sent"),
      _persistCmpSeen(&_stats, "persistCmpSeen",
                      "PersistCMP broadcasts received"),
      _linesFlushed(&_stats, "linesFlushed",
                    "epoch lines flushed to memory"),
      _victimRetries(&_stats, "victimRetries",
                     "miss fills retried because all ways were pinned")
{
}

// ---------------------------------------------------------------------
// Request path
// ---------------------------------------------------------------------

void
LlcBank::handleRequest(Addr addr, bool isWrite, CoreId core)
{
    ++_requests;
    addr = lineAlign(addr);
    auto &q = _busy[addr];
    q.push_back(Txn{addr, isWrite, core});
    if (q.size() == 1)
        beginIfIdle(addr);
}

void
LlcBank::beginIfIdle(Addr addr)
{
    scheduleIn(_cfg.accessLatency,
               [this, addr] { lookupStage(_busy.at(addr).front()); });
}

void
LlcBank::lookupStage(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    if (line && line->pinned) {
        // An eviction owns the line right now; retry once it is done.
        _pinWaiters[txn.addr].push_back([this, txn] { lookupStage(txn); });
        return;
    }
    if (line) {
        line->pinned = true;
        hitPath(txn);
    } else {
        missPath(txn);
    }
}

void
LlcBank::hitPath(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": hitPath lost the line");
    simAssert(line->owner != txn.core, name(),
              ": request from the current owner");
    if (line->owner != kNoCore) {
        ++_recalls;
        const CoreId owner = line->owner;
        L1Cache *ownerL1 = &_pc.l1(owner);
        const unsigned myNode = _ni.nodeId();
        _ni.sendControl(ownerL1->nodeId(),
                        [this, txn, ownerL1, myNode] {
                            ownerL1->handleDowngrade(
                                txn.addr, txn.isWrite, myNode,
                                [this, txn] { resolveConflictStage(txn); });
                        });
        return;
    }
    resolveConflictStage(txn);
}

void
LlcBank::resolveConflictStage(Txn txn)
{
    simAssert(_array.find(txn.addr), name(),
              ": line vanished before conflict resolution");
    _pc.resolveBankAccess(_bankIdx, txn.core, txn.isWrite, txn.addr,
                          [this, txn] { proceedStage(txn); });
}

void
LlcBank::proceedStage(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": line vanished before grant");
    if (!txn.isWrite) {
        grantRead(txn);
        return;
    }
    const std::uint64_t invMask = line->sharers & ~coreBit(txn.core);
    if (invMask == 0) {
        grantWrite(txn);
        return;
    }
    auto remaining =
        std::make_shared<unsigned>(std::popcount(invMask));
    const unsigned myNode = _ni.nodeId();
    for (unsigned c = 0; c < 64; ++c) {
        if (!(invMask & (std::uint64_t{1} << c)))
            continue;
        ++_invsSent;
        L1Cache *sharer = &_pc.l1(static_cast<CoreId>(c));
        _ni.sendControl(
            sharer->nodeId(), [this, txn, sharer, myNode, remaining] {
                sharer->handleInvalidate(
                    txn.addr, myNode, [this, txn, remaining] {
                        if (--*remaining == 0)
                            grantWrite(txn);
                    });
            });
    }
}

void
LlcBank::grantWrite(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": line vanished at write grant");
    if (_pc.writeGrantNeedsResolve(_bankIdx, txn.core, txn.addr)) {
        // The requester's epoch advanced while this transaction was in
        // flight; resolve the (new) intra-thread conflict and retry.
        _pc.resolveBankAccess(_bankIdx, txn.core, txn.isWrite, txn.addr,
                              [this, txn] { grantWrite(txn); });
        return;
    }
    ++_writeHits;
    tracef("Evict", *this, "grantWrite 0x", std::hex, txn.addr,
           std::dec, " to core ", txn.core);
    persist::IdtEntry tag =
        _pc.onBankGrantWrite(_bankIdx, txn.core, *line);
    line->owner = txn.core;
    line->sharers = 0;
    _array.touch(*line);
    L1Cache *req = &_pc.l1(txn.core);
    const unsigned myNode = _ni.nodeId();
    // The line stays pinned/busy until the requester confirms the fill
    // (Unblock, as in Ruby's MESI protocols): the mesh is unordered, so
    // without it an eviction could race ahead of the grant and break
    // inclusion.
    _ni.sendData(req->nodeId(), [this, req, txn, tag, myNode] {
        req->handleFillGrant(txn.addr, CoherenceState::Modified, tag.core,
                             tag.epoch);
        req->ni().sendControl(myNode, [this, txn] { finish(txn); });
    });
}

void
LlcBank::grantRead(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": line vanished at read grant");
    ++_readHits;
    const bool exclusive = line->sharers == 0 &&
                           line->owner == kNoCore && !line->tagged();
    CoherenceState granted;
    if (exclusive) {
        line->owner = txn.core;
        granted = CoherenceState::Exclusive;
    } else {
        line->sharers |= coreBit(txn.core);
        granted = CoherenceState::Shared;
    }
    _array.touch(*line);
    L1Cache *req = &_pc.l1(txn.core);
    const unsigned myNode = _ni.nodeId();
    _ni.sendData(req->nodeId(), [this, req, txn, granted, myNode] {
        req->handleFillGrant(txn.addr, granted, kNoCore, kNoEpoch);
        req->ni().sendControl(myNode, [this, txn] { finish(txn); });
    });
}

void
LlcBank::missPath(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    if (line) {
        // Extremely defensive: inclusion means nobody else fills, but a
        // retried miss may observe a line filled by an earlier stage.
        if (line->pinned) {
            _pinWaiters[txn.addr].push_back(
                [this, txn] { lookupStage(txn); });
            return;
        }
        line->pinned = true;
        hitPath(txn);
        return;
    }
    CacheLine *victim =
        _array.victimFor(txn.addr, _pc.config().avoidTaggedVictims);
    if (!victim) {
        ++_victimRetries;
        scheduleIn(8, [this, txn] { missPath(txn); });
        return;
    }
    if (victim->valid()) {
        victim->pinned = true;
        const Addr vaddr = victim->addr;
        ++_evictions;
        evictVictim(vaddr, [this, txn] { missPath(txn); });
        return;
    }
    victim->pinned = true; // claim the invalid way for our fill
    ++_missesToMemory;
    nvm::MemoryController *mc = &_pc.mcFor(txn.addr);
    nvm::ReadReq req;
    req.addr = txn.addr;
    req.replyTo = _ni.nodeId();
    req.onData = [this, txn, victim] { fillAndGrant(txn, victim); };
    _ni.sendControl(mc->nodeId(), [mc, req = std::move(req)]() mutable {
        mc->handleRead(std::move(req));
    });
}

void
LlcBank::fillAndGrant(Txn txn, CacheLine *way)
{
    simAssert(!way->valid(), name(), ": fill way got claimed");
    tracef("Evict", *this, "fill 0x", std::hex, txn.addr, std::dec,
           " for core ", txn.core);
    _array.fill(*way, txn.addr, CoherenceState::Shared);
    way->pinned = true;
    if (txn.isWrite)
        grantWrite(txn);
    else
        grantRead(txn);
}

void
LlcBank::finish(Txn txn)
{
    unpin(txn.addr);
    auto it = _busy.find(txn.addr);
    simAssert(it != _busy.end() && !it->second.empty(),
              name(), ": finish without an active transaction");
    it->second.pop_front();
    if (it->second.empty())
        _busy.erase(it);
    else
        beginIfIdle(txn.addr);
}

void
LlcBank::unpin(Addr addr)
{
    CacheLine *line = _array.find(addr);
    if (line)
        line->pinned = false;
    auto it = _pinWaiters.find(addr);
    if (it == _pinWaiters.end())
        return;
    auto waiters = std::move(it->second);
    _pinWaiters.erase(it);
    for (auto &w : waiters)
        w();
}

// ---------------------------------------------------------------------
// Eviction (with persist-ordering constraints, §2.1/§3.2)
// ---------------------------------------------------------------------

void
LlcBank::evictVictim(Addr vaddr, InlineCallback cont)
{
    CacheLine *line = _array.find(vaddr);
    simAssert(line && line->pinned, name(), ": eviction lost its victim");
    tracef("Evict", *this, "evictVictim 0x", std::hex, vaddr, std::dec,
           " owner=", line->owner, " sharers=", line->sharers,
           " tagged=", line->tagged(), " dirty=", line->dirty);

    if (line->owner != kNoCore) {
        ++_recalls;
        L1Cache *ownerL1 = &_pc.l1(line->owner);
        const unsigned myNode = _ni.nodeId();
        _ni.sendControl(ownerL1->nodeId(),
                        [this, vaddr, ownerL1, myNode,
                         cont = std::move(cont)]() mutable {
            ownerL1->handleDowngrade(
                vaddr, /*forWrite=*/true, myNode,
                [this, vaddr, cont = std::move(cont)]() mutable {
                    evictVictim(vaddr, std::move(cont));
                });
        });
        return;
    }
    if (line->sharers != 0) {
        const std::uint64_t mask = line->sharers;
        auto remaining = std::make_shared<unsigned>(std::popcount(mask));
        const unsigned myNode = _ni.nodeId();
        auto shared_cont =
            std::make_shared<InlineCallback>(std::move(cont));
        for (unsigned c = 0; c < 64; ++c) {
            if (!(mask & (std::uint64_t{1} << c)))
                continue;
            ++_invsSent;
            L1Cache *sharer = &_pc.l1(static_cast<CoreId>(c));
            _ni.sendControl(sharer->nodeId(), [this, vaddr, sharer, myNode,
                                               remaining, shared_cont] {
                sharer->handleInvalidate(
                    vaddr, myNode, [this, vaddr, remaining, shared_cont] {
                        if (--*remaining == 0) {
                            CacheLine *l = _array.find(vaddr);
                            simAssert(l, name(), ": victim vanished");
                            l->sharers = 0;
                            evictVictim(vaddr,
                                        std::move(*shared_cont));
                        }
                    });
            });
        }
        return;
    }
    if (line->tagged()) {
        // Replacement conflict: epochs up to the victim's must persist
        // before this line may leave the volatile domain.
        _pc.beforeLlcEviction(
            _bankIdx, *line,
            [this, vaddr, cont = std::move(cont)]() mutable {
                evictVictim(vaddr, std::move(cont));
            });
        return;
    }
    if (line->dirty) {
        ++_evictionsDirty;
        // Untagged dirty data persists naturally, with no ordering
        // constraint and nobody waiting for the ack.
        nvm::MemoryController *mc = &_pc.mcFor(vaddr);
        nvm::WriteReq req;
        req.addr = vaddr;
        req.replyTo = _ni.nodeId();
        _ni.sendData(mc->nodeId(), [mc, req = std::move(req)]() mutable {
            mc->handleWrite(std::move(req));
        });
    }
    tracef("Evict", *this, "drop 0x", std::hex, vaddr, std::dec);
    _array.invalidate(*line);
    // Wake requests that blocked on the pinned victim.
    auto it = _pinWaiters.find(vaddr);
    if (it != _pinWaiters.end()) {
        auto waiters = std::move(it->second);
        _pinWaiters.erase(it);
        for (auto &w : waiters)
            w();
    }
    cont();
}

// ---------------------------------------------------------------------
// Synchronous writeback acceptance
// ---------------------------------------------------------------------

void
LlcBank::acceptWriteback(CoreId fromCore, Addr addr, bool dirty,
                         WritebackKind kind)
{
    (void)dirty; // the caller already merged dirty data and moved tags
    CacheLine *line = _array.find(addr);
    simAssert(line, name(), ": writeback for absent line (inclusion)");
    switch (kind) {
      case WritebackKind::Eviction:
      case WritebackKind::DowngradeToInvalid:
        if (line->owner == fromCore)
            line->owner = kNoCore;
        line->sharers &= ~coreBit(fromCore);
        break;
      case WritebackKind::DowngradeToShared:
        if (line->owner == fromCore)
            line->owner = kNoCore;
        line->sharers |= coreBit(fromCore);
        break;
      case WritebackKind::FlushRetain:
        break;
    }
    _array.touch(*line);
}

// ---------------------------------------------------------------------
// Epoch-flush protocol
// ---------------------------------------------------------------------

void
LlcBank::handleFlushEpoch(CoreId core, EpochId epoch)
{
    ++_flushEpochMsgs;
    const std::vector<Addr> lines = _flushEngine.takeAll(core, epoch);
    FlushJob &job = _flushJobs[jobKey(core, epoch)];
    simAssert(!job.walked, name(), ": duplicate FlushEpoch");
    job.outstanding += static_cast<std::uint32_t>(lines.size());

    const Tick interval = _pc.config().flushIssueInterval;
    Tick offset = 0;
    for (Addr addr : lines) {
        scheduleIn(offset, [this, core, epoch, addr] {
            ++_linesFlushed;
            _pc.arbiter(core).onFlushIssued(epoch);
            nvm::MemoryController *mc = &_pc.mcFor(addr);
            nvm::WriteReq req;
            req.addr = addr;
            req.core = core;
            req.epoch = epoch;
            req.replyTo = _ni.nodeId();
            req.onPersist = [this, core, epoch, addr] {
                onFlushLineAck(core, epoch, addr);
            };
            _ni.sendData(mc->nodeId(),
                         [mc, req = std::move(req)]() mutable {
                             mc->handleWrite(std::move(req));
                         });
        });
        offset += interval;
    }
    scheduleIn(offset, [this, core, epoch] {
        _flushJobs[jobKey(core, epoch)].walked = true;
        maybeBankAck(core, epoch);
    });
}

void
LlcBank::onFlushLineAck(CoreId core, EpochId epoch, Addr addr)
{
    CacheLine *line = _array.find(addr);
    if (line && line->epochCore == core && line->epochId == epoch) {
        line->clearTag();
        line->dirty = false;
        if (_pc.config().invalidatingFlush && !line->pinned &&
            line->owner == kNoCore && line->sharers == 0) {
            // clflush semantics: the flushed line leaves the hierarchy.
            _array.invalidate(*line);
        }
    }
    _pc.arbiter(core).onLinePersisted(epoch);
    auto it = _flushJobs.find(jobKey(core, epoch));
    simAssert(it != _flushJobs.end(), name(), ": stray flush ack");
    simAssert(it->second.outstanding > 0, name(), ": ack underflow");
    --it->second.outstanding;
    maybeBankAck(core, epoch);
}

void
LlcBank::maybeBankAck(CoreId core, EpochId epoch)
{
    auto it = _flushJobs.find(jobKey(core, epoch));
    if (it == _flushJobs.end() || !it->second.walked ||
        it->second.outstanding != 0) {
        return;
    }
    _flushJobs.erase(it);
    ++_bankAcksSent;

    persist::EpochArbiter *arb = &_pc.arbiter(core);
    _ni.sendControl(_pc.l1(core).nodeId(),
                    [arb, epoch] { arb->onBankAck(epoch); });

    if (!_pc.config().useArbiter) {
        // §4.1 strawman: every bank also broadcasts its completion to
        // every other bank — O(n^2) messages per flushed epoch.
        for (unsigned b = 0; b < _pc.numBanks(); ++b) {
            if (b == _bankIdx)
                continue;
            _ni.sendControl(_pc.bank(b).nodeId(), [] {});
        }
    }
}

void
LlcBank::debugDump(std::ostream &os)
{
    if (_busy.empty() && _pinWaiters.empty() && _flushJobs.empty())
        return;
    os << name() << ":";
    for (const auto &[addr, q] : _busy) {
        os << " busy[0x" << std::hex << addr << std::dec << "]x"
           << q.size() << "(core " << q.front().core
           << (q.front().isWrite ? " W" : " R") << ")";
    }
    for (const auto &[addr, w] : _pinWaiters) {
        os << " pinWait[0x" << std::hex << addr << std::dec << "]x"
           << w.size();
    }
    for (const auto &[key, job] : _flushJobs) {
        os << " flushJob[" << key << "] out=" << job.outstanding
           << " walked=" << job.walked;
    }
    os << "\n";
}

void
LlcBank::handlePersistCmp(CoreId core, EpochId epoch)
{
    (void)core;
    (void)epoch;
    ++_persistCmpSeen;
}

} // namespace persim::cache
