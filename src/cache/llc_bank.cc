#include "cache/llc_bank.hh"

#include <bit>
#include <memory>
#include <ostream>

#include "cache/l1_cache.hh"
#include "nvm/memory_controller.hh"
#include "persist/persist_controller.hh"
#include "prof/phase.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::cache
{

namespace
{
/** Bit for @p core in a sharers mask. core < kMaxCores is enforced at
 * construction time (PersistController / SystemConfig), so the shift
 * cannot overflow the 64-bit mask. */
std::uint64_t
coreBit(CoreId core)
{
    return std::uint64_t{1} << core;
}
} // namespace

LlcBank::LlcBank(const std::string &name, EventQueue &eq, noc::Mesh &mesh,
                 unsigned nodeId, unsigned x, unsigned y, unsigned bankIdx,
                 const LlcBankConfig &cfg, persist::PersistController &pc)
    : SimObject(name, eq),
      _bankIdx(bankIdx),
      _cfg(cfg),
      _pc(pc),
      _stats(name),
      _ni(name + ".ni", mesh, nodeId, x, y),
      _array(name + ".array", cfg.geometry, cfg.setShift),
      _flushEngine(name + ".flushEngine"),
      _requests(&_stats, "requests", "requests received from L1s"),
      _readHits(&_stats, "readGrants", "read grants sent"),
      _writeHits(&_stats, "writeGrants", "write (ownership) grants sent"),
      _missesToMemory(&_stats, "missesToMemory", "fills from NVRAM"),
      _evictions(&_stats, "evictions", "LLC victim evictions"),
      _evictionsDirty(&_stats, "evictionsDirty",
                      "dirty (untagged) victims written to NVRAM"),
      _recalls(&_stats, "recalls", "owner-L1 recalls"),
      _invsSent(&_stats, "invalidationsSent",
                "sharer invalidations sent"),
      _flushEpochMsgs(&_stats, "flushEpochMsgs",
                      "FlushEpoch messages processed"),
      _bankAcksSent(&_stats, "bankAcksSent", "BankAck messages sent"),
      _persistCmpSeen(&_stats, "persistCmpSeen",
                      "PersistCMP broadcasts received"),
      _linesFlushed(&_stats, "linesFlushed",
                    "epoch lines flushed to memory"),
      _victimRetries(&_stats, "victimRetries",
                     "miss fills retried because all ways were pinned"),
      _pinWaits(&_stats, "pinWaits",
                "requests that blocked on a pinned line"),
      _flushSkipsPinned(&_stats, "flushSkipsPinned",
                        "invalidating flushes that kept a pinned line")
{
}

// ---------------------------------------------------------------------
// Request path
// ---------------------------------------------------------------------

void
LlcBank::handleRequest(Addr addr, bool isWrite, CoreId core)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    ++_requests;
    addr = lineAlign(addr);
    // The tag probe happens in lookupStage, accessLatency ticks (and
    // several host-side events) from now — start the set's tag lines
    // toward the host caches while that work retires.
    _array.prefetchSet(addr);
    LineEntry &e = _lines.insertOrFind(addr);
    const bool wasIdle = e.txns.empty();
    e.txns.pushBack(_txnPool, _txnPool.alloc(Txn{addr, isWrite, core}));
    ++e.txnCount;
    if (wasIdle) {
        ++_busyLineCount;
        beginIfIdle(addr);
    }
}

LlcBank::Txn
LlcBank::activeTxnFor(Addr addr) const
{
    const LineEntry *e = _lines.find(addr);
    simAssert(e && !e->txns.empty(), name(),
              ": no active transaction for line 0x", std::hex, addr,
              std::dec);
    return _txnPool.at(e->txns.head);
}

void
LlcBank::beginIfIdle(Addr addr)
{
    // activeTxnFor re-resolves at fire time: the queue entry must still
    // exist, and the checked lookup turns a protocol bug into a panic
    // that names this bank and the address.
    scheduleIn(_cfg.accessLatency,
               [this, addr] { lookupStage(activeTxnFor(addr)); });
}

void
LlcBank::addPinWaiter(Addr addr, InlineCallback cb)
{
    const std::uint32_t node = _waiterPool.alloc(std::move(cb));
    _lines.insertOrFind(addr).waiters.pushBack(_waiterPool, node);
}

void
LlcBank::lookupStage(Txn txn)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    CacheLine *line = _array.find(txn.addr);
    if (line && line->pinned()) {
        // An eviction owns the line right now; retry once it is done.
        ++_pinWaits;
        addPinWaiter(txn.addr, [this, txn] { lookupStage(txn); });
        return;
    }
    if (line) {
        line->setPinned(true);
        hitPath(txn);
    } else {
        missPath(txn);
    }
}

void
LlcBank::hitPath(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": hitPath lost the line");
    simAssert(line->owner() != txn.core, name(),
              ": request from the current owner");
    if (line->owner() != kNoCore) {
        ++_recalls;
        const CoreId owner = line->owner();
        L1Cache *ownerL1 = &_pc.l1(owner);
        const unsigned myNode = _ni.nodeId();
        _ni.sendControl(ownerL1->nodeId(),
                        [this, txn, ownerL1, myNode] {
                            ownerL1->handleDowngrade(
                                txn.addr, txn.isWrite, myNode,
                                [this, txn] { resolveConflictStage(txn); });
                        });
        return;
    }
    resolveConflictStage(txn);
}

void
LlcBank::resolveConflictStage(Txn txn)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    simAssert(_array.find(txn.addr), name(),
              ": line vanished before conflict resolution");
    _pc.resolveBankAccess(_bankIdx, txn.core, txn.isWrite, txn.addr,
                          [this, txn] { proceedStage(txn); });
}

void
LlcBank::proceedStage(Txn txn)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": line vanished before grant");
    if (!txn.isWrite) {
        grantRead(txn);
        return;
    }
    const std::uint64_t invMask = line->sharers() & ~coreBit(txn.core);
    if (invMask == 0) {
        grantWrite(txn);
        return;
    }
    auto remaining =
        std::make_shared<unsigned>(std::popcount(invMask));
    const unsigned myNode = _ni.nodeId();
    for (unsigned c = 0; c < kMaxCores; ++c) {
        if (!(invMask & (std::uint64_t{1} << c)))
            continue;
        ++_invsSent;
        L1Cache *sharer = &_pc.l1(static_cast<CoreId>(c));
        _ni.sendControl(
            sharer->nodeId(), [this, txn, sharer, myNode, remaining] {
                sharer->handleInvalidate(
                    txn.addr, myNode, [this, txn, remaining] {
                        if (--*remaining == 0)
                            grantWrite(txn);
                    });
            });
    }
}

void
LlcBank::grantWrite(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": line vanished at write grant");
    if (_pc.writeGrantNeedsResolve(_bankIdx, txn.core, txn.addr)) {
        // The requester's epoch advanced while this transaction was in
        // flight; resolve the (new) intra-thread conflict and retry.
        _pc.resolveBankAccess(_bankIdx, txn.core, txn.isWrite, txn.addr,
                              [this, txn] { grantWrite(txn); });
        return;
    }
    ++_writeHits;
    tracef("Evict", *this, "grantWrite 0x", std::hex, txn.addr,
           std::dec, " to core ", txn.core);
    persist::IdtEntry tag =
        _pc.onBankGrantWrite(_bankIdx, txn.core, *line);
    line->setOwner(txn.core);
    line->setSharers(0);
    _array.touch(*line);
    L1Cache *req = &_pc.l1(txn.core);
    const unsigned myNode = _ni.nodeId();
    // The line stays pinned/busy until the requester confirms the fill
    // (Unblock, as in Ruby's MESI protocols): the mesh is unordered, so
    // without it an eviction could race ahead of the grant and break
    // inclusion.
    _ni.sendData(req->nodeId(), [this, req, txn, tag, myNode] {
        req->handleFillGrant(txn.addr, CoherenceState::Modified, tag.core,
                             tag.epoch);
        req->ni().sendControl(myNode, [this, txn] { finish(txn); });
    });
}

void
LlcBank::grantRead(Txn txn)
{
    CacheLine *line = _array.find(txn.addr);
    simAssert(line, name(), ": line vanished at read grant");
    ++_readHits;
    const bool exclusive = line->sharers() == 0 &&
                           line->owner() == kNoCore && !line->tagged();
    CoherenceState granted;
    if (exclusive) {
        line->setOwner(txn.core);
        granted = CoherenceState::Exclusive;
    } else {
        line->setSharers(line->sharers() | coreBit(txn.core));
        granted = CoherenceState::Shared;
    }
    _array.touch(*line);
    L1Cache *req = &_pc.l1(txn.core);
    const unsigned myNode = _ni.nodeId();
    _ni.sendData(req->nodeId(), [this, req, txn, granted, myNode] {
        req->handleFillGrant(txn.addr, granted, kNoCore, kNoEpoch);
        req->ni().sendControl(myNode, [this, txn] { finish(txn); });
    });
}

void
LlcBank::missPath(Txn txn)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    CacheLine *line = _array.find(txn.addr);
    if (line) {
        // Extremely defensive: inclusion means nobody else fills, but a
        // retried miss may observe a line filled by an earlier stage.
        if (line->pinned()) {
            ++_pinWaits;
            addPinWaiter(txn.addr, [this, txn] { lookupStage(txn); });
            return;
        }
        line->setPinned(true);
        hitPath(txn);
        return;
    }
    CacheLine *victim =
        _array.victimFor(txn.addr, _pc.config().avoidTaggedVictims);
    if (!victim) {
        ++_victimRetries;
        scheduleIn(_cfg.pinnedRetryInterval,
                   [this, txn] { missPath(txn); });
        return;
    }
    if (victim->valid()) {
        victim->setPinned(true);
        const Addr vaddr = victim->addr();
        ++_evictions;
        evictVictim(vaddr, [this, txn] { missPath(txn); });
        return;
    }
    victim->setPinned(true); // claim the invalid way for our fill
    ++_missesToMemory;
    nvm::MemoryController *mc = &_pc.mcFor(txn.addr);
    nvm::ReadReq req;
    req.addr = txn.addr;
    req.replyTo = _ni.nodeId();
    req.onData = [this, txn, victim] { fillAndGrant(txn, victim); };
    _ni.sendControl(mc->nodeId(), [mc, req = std::move(req)]() mutable {
        mc->handleRead(std::move(req));
    });
}

void
LlcBank::fillAndGrant(Txn txn, CacheLine *way)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    simAssert(!way->valid(), name(), ": fill way got claimed");
    tracef("Evict", *this, "fill 0x", std::hex, txn.addr, std::dec,
           " for core ", txn.core);
    _array.fill(*way, txn.addr, CoherenceState::Shared);
    way->setPinned(true);
    if (txn.isWrite)
        grantWrite(txn);
    else
        grantRead(txn);
}

void
LlcBank::finish(Txn txn)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    unpin(txn.addr);
    // unpin may have run waiters that mutated the table; re-resolve.
    LineEntry *e = _lines.find(txn.addr);
    simAssert(e && !e->txns.empty(), name(),
              ": finish without an active transaction for line 0x",
              std::hex, txn.addr, std::dec);
    _txnPool.release(e->txns.popFront(_txnPool));
    --e->txnCount;
    if (!e->txns.empty()) {
        beginIfIdle(txn.addr);
        return;
    }
    --_busyLineCount;
    if (e->waiters.empty())
        _lines.erase(txn.addr);
}

void
LlcBank::unpin(Addr addr)
{
    CacheLine *line = _array.find(addr);
    if (line)
        line->setPinned(false);
    drainPinWaiters(addr);
}

void
LlcBank::drainPinWaiters(Addr addr)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    LineEntry *e = _lines.find(addr);
    if (!e || e->waiters.empty())
        return;
    // Detach the chain first: waiters re-enter the bank and may insert
    // into (and rehash) the table or queue new waiters on this line.
    const ListRef chain = e->waiters;
    e->waiters = ListRef{};
    if (e->txns.empty())
        _lines.erase(addr);
    std::uint32_t n = chain.head;
    while (n != WaiterPool::kNil) {
        const std::uint32_t next = _waiterPool.next(n);
        InlineCallback cb = std::move(_waiterPool.at(n));
        _waiterPool.release(n);
        cb();
        n = next;
    }
}

std::size_t
LlcBank::testPinWaiters(Addr addr) const
{
    const LineEntry *e = _lines.find(lineAlign(addr));
    if (!e)
        return 0;
    std::size_t count = 0;
    for (std::uint32_t n = e->waiters.head; n != WaiterPool::kNil;
         n = _waiterPool.next(n)) {
        ++count;
    }
    return count;
}

// ---------------------------------------------------------------------
// Eviction (with persist-ordering constraints, §2.1/§3.2)
// ---------------------------------------------------------------------

void
LlcBank::evictVictim(Addr vaddr, InlineCallback cont)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    CacheLine *line = _array.find(vaddr);
    simAssert(line && line->pinned(), name(),
              ": eviction lost its victim");
    tracef("Evict", *this, "evictVictim 0x", std::hex, vaddr, std::dec,
           " owner=", line->owner(), " sharers=", line->sharers(),
           " tagged=", line->tagged(), " dirty=", line->dirty());

    if (line->owner() != kNoCore) {
        ++_recalls;
        L1Cache *ownerL1 = &_pc.l1(line->owner());
        const unsigned myNode = _ni.nodeId();
        _ni.sendControl(ownerL1->nodeId(),
                        [this, vaddr, ownerL1, myNode,
                         cont = std::move(cont)]() mutable {
            ownerL1->handleDowngrade(
                vaddr, /*forWrite=*/true, myNode,
                [this, vaddr, cont = std::move(cont)]() mutable {
                    evictVictim(vaddr, std::move(cont));
                });
        });
        return;
    }
    if (line->sharers() != 0) {
        const std::uint64_t mask = line->sharers();
        auto remaining = std::make_shared<unsigned>(std::popcount(mask));
        const unsigned myNode = _ni.nodeId();
        auto shared_cont =
            std::make_shared<InlineCallback>(std::move(cont));
        for (unsigned c = 0; c < kMaxCores; ++c) {
            if (!(mask & (std::uint64_t{1} << c)))
                continue;
            ++_invsSent;
            L1Cache *sharer = &_pc.l1(static_cast<CoreId>(c));
            _ni.sendControl(sharer->nodeId(), [this, vaddr, sharer, myNode,
                                               remaining, shared_cont] {
                sharer->handleInvalidate(
                    vaddr, myNode, [this, vaddr, remaining, shared_cont] {
                        if (--*remaining == 0) {
                            CacheLine *l = _array.find(vaddr);
                            simAssert(l, name(), ": victim vanished");
                            l->setSharers(0);
                            evictVictim(vaddr,
                                        std::move(*shared_cont));
                        }
                    });
            });
        }
        return;
    }
    if (line->tagged()) {
        // Replacement conflict: epochs up to the victim's must persist
        // before this line may leave the volatile domain.
        _pc.beforeLlcEviction(
            _bankIdx, *line,
            [this, vaddr, cont = std::move(cont)]() mutable {
                evictVictim(vaddr, std::move(cont));
            });
        return;
    }
    if (line->dirty()) {
        ++_evictionsDirty;
        // Untagged dirty data persists naturally, with no ordering
        // constraint and nobody waiting for the ack.
        nvm::MemoryController *mc = &_pc.mcFor(vaddr);
        nvm::WriteReq req;
        req.addr = vaddr;
        req.replyTo = _ni.nodeId();
        _ni.sendData(mc->nodeId(), [mc, req = std::move(req)]() mutable {
            mc->handleWrite(std::move(req));
        });
    }
    tracef("Evict", *this, "drop 0x", std::hex, vaddr, std::dec);
    _array.invalidate(*line);
    // Wake requests that blocked on the pinned victim.
    drainPinWaiters(vaddr);
    cont();
}

// ---------------------------------------------------------------------
// Synchronous writeback acceptance
// ---------------------------------------------------------------------

void
LlcBank::acceptWriteback(CoreId fromCore, Addr addr, bool dirty,
                         WritebackKind kind, CacheLine *line)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    (void)dirty; // the caller already merged dirty data and moved tags
    if (!line)
        line = _array.find(addr);
    simAssert(line, name(), ": writeback for absent line (inclusion)");
    switch (kind) {
      case WritebackKind::Eviction:
      case WritebackKind::DowngradeToInvalid:
        if (line->owner() == fromCore)
            line->setOwner(kNoCore);
        line->setSharers(line->sharers() & ~coreBit(fromCore));
        break;
      case WritebackKind::DowngradeToShared:
        if (line->owner() == fromCore)
            line->setOwner(kNoCore);
        line->setSharers(line->sharers() | coreBit(fromCore));
        break;
      case WritebackKind::FlushRetain:
        break;
    }
    _array.touch(*line);
}

// ---------------------------------------------------------------------
// Epoch-flush protocol
// ---------------------------------------------------------------------

LlcBank::FlushJob *
LlcBank::findFlushJob(CoreId core, EpochId epoch)
{
    for (FlushJob &job : _flushJobs) {
        if (job.core == core && job.epoch == epoch)
            return &job;
    }
    return nullptr;
}

void
LlcBank::handleFlushEpoch(CoreId core, EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    ++_flushEpochMsgs;
    const std::vector<Addr> lines = _flushEngine.takeAll(core, epoch);
    FlushJob *job = findFlushJob(core, epoch);
    if (!job) {
        _flushJobs.push_back(FlushJob{core, epoch, 0, false});
        job = &_flushJobs.back();
    }
    simAssert(!job->walked, name(), ": duplicate FlushEpoch");
    job->outstanding += static_cast<std::uint32_t>(lines.size());

    const Tick interval = _pc.config().flushIssueInterval;
    Tick offset = 0;
    for (Addr addr : lines) {
        scheduleIn(offset, [this, core, epoch, addr] {
            ++_linesFlushed;
            _pc.arbiter(core).onFlushIssued(epoch);
            nvm::MemoryController *mc = &_pc.mcFor(addr);
            nvm::WriteReq req;
            req.addr = addr;
            req.core = core;
            req.epoch = epoch;
            req.replyTo = _ni.nodeId();
            req.onPersist = [this, core, epoch, addr] {
                onFlushLineAck(core, epoch, addr);
            };
            _ni.sendData(mc->nodeId(),
                         [mc, req = std::move(req)]() mutable {
                             mc->handleWrite(std::move(req));
                         });
        });
        offset += interval;
    }
    scheduleIn(offset, [this, core, epoch] {
        FlushJob *walkJob = findFlushJob(core, epoch);
        simAssert(walkJob, name(), ": flush job vanished before walk");
        walkJob->walked = true;
        maybeBankAck(core, epoch);
    });
}

void
LlcBank::onFlushLineAck(CoreId core, EpochId epoch, Addr addr)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    CacheLine *line = _array.find(addr);
    if (line && line->epochCore() == core && line->epochId() == epoch) {
        line->clearTag();
        line->setDirty(false);
        if (_pc.config().invalidatingFlush) {
            if (line->pinned()) {
                // An in-flight transaction or eviction owns the line;
                // invalidating it under them would break the pin
                // contract, so the flush leaves it cached.
                ++_flushSkipsPinned;
            } else if (line->owner() == kNoCore && line->sharers() == 0) {
                // clflush semantics: the flushed line leaves the
                // hierarchy.
                _array.invalidate(*line);
            }
        }
    }
    _pc.arbiter(core).onLinePersisted(epoch);
    FlushJob *job = findFlushJob(core, epoch);
    simAssert(job, name(), ": stray flush ack");
    simAssert(job->outstanding > 0, name(), ": ack underflow");
    --job->outstanding;
    maybeBankAck(core, epoch);
}

void
LlcBank::maybeBankAck(CoreId core, EpochId epoch)
{
    FlushJob *job = findFlushJob(core, epoch);
    if (!job || !job->walked || job->outstanding != 0)
        return;
    *job = _flushJobs.back();
    _flushJobs.pop_back();
    ++_bankAcksSent;

    persist::EpochArbiter *arb = &_pc.arbiter(core);
    _ni.sendControl(_pc.l1(core).nodeId(),
                    [arb, epoch] { arb->onBankAck(epoch); });

    if (!_pc.config().useArbiter) {
        // §4.1 strawman: every bank also broadcasts its completion to
        // every other bank — O(n^2) messages per flushed epoch.
        for (unsigned b = 0; b < _pc.numBanks(); ++b) {
            if (b == _bankIdx)
                continue;
            _ni.sendControl(_pc.bank(b).nodeId(), [] {});
        }
    }
}

void
LlcBank::debugDump(std::ostream &os)
{
    if (_lines.empty() && _flushJobs.empty())
        return;
    os << name() << ":";
    _lines.forEach([&](Addr addr, const LineEntry &e) {
        if (!e.txns.empty()) {
            const Txn &front = _txnPool.at(e.txns.head);
            os << " busy[0x" << std::hex << addr << std::dec << "]x"
               << e.txnCount << "(core " << front.core
               << (front.isWrite ? " W" : " R") << ")";
        }
        if (!e.waiters.empty()) {
            os << " pinWait[0x" << std::hex << addr << std::dec << "]x"
               << testPinWaiters(addr);
        }
    });
    for (const FlushJob &job : _flushJobs) {
        os << " flushJob[core " << job.core << " epoch " << job.epoch
           << "] out=" << job.outstanding << " walked=" << job.walked;
    }
    os << "\n";
}

void
LlcBank::handlePersistCmp(CoreId core, EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::LlcBank);
    (void)core;
    (void)epoch;
    ++_persistCmpSeen;
}

} // namespace persim::cache
