/**
 * @file
 * Private per-core L1 data cache with epoch-tagged lines.
 */

#ifndef PERSIM_CACHE_L1_CACHE_HH
#define PERSIM_CACHE_L1_CACHE_HH

#include <deque>
#include <string>

#include "cache/cache_array.hh"
#include "cache/flat_table.hh"
#include "cache/mshr.hh"
#include "noc/network_interface.hh"
#include "nvm/memory_controller.hh"
#include "sim/inline_callback.hh"
#include "persist/flush_engine.hh"
#include "sim/pending_ring.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::persist
{
class PersistController;
struct IdtEntry;
} // namespace persim::persist

namespace persim::cache
{

/** L1 parameters (Table 1 defaults). */
struct L1Config
{
    CacheGeometry geometry{32 * 1024, 4};
    Tick accessLatency = 3;
    unsigned mshrs = 16;
};

/** How a line leaves (or is cleaned in) the L1; see writebackLine(). */
enum class WritebackKind
{
    Eviction,           // capacity eviction: line leaves the L1
    DowngradeToShared,  // remote read recalled the line; keep it Shared
    DowngradeToInvalid, // remote write recalled the line; drop it
    FlushRetain,        // clwb-style flush: keep the line, now clean
};

/**
 * One core's private L1 data cache.
 *
 * Writebacks transfer state to the home LLC bank synchronously (the
 * directory is always exact) while the mesh charges bandwidth; see
 * DESIGN.md §2. The cache carries the paper's epoch-tag extension and
 * calls into the PersistController at every persist-relevant point.
 */
class L1Cache : public SimObject
{
  public:
    L1Cache(const std::string &name, EventQueue &eq, noc::Mesh &mesh,
            unsigned nodeId, unsigned x, unsigned y, CoreId core,
            const L1Config &cfg, persist::PersistController &pc);

    CoreId core() const { return _core; }
    unsigned nodeId() const { return _ni.nodeId(); }
    noc::NetworkInterface &ni() { return _ni; }

    // ------------------------------------------------------------------
    // Core-side interface
    // ------------------------------------------------------------------

    /**
     * Perform a load or store to @p addr.
     *
     * Header-inlined fast path (DESIGN.md §3a.2): the payload is
     * staged in a ring and the +accessLatency event carries only
     * `this` — an 8-byte capture that always fits the inline-callback
     * buffer, where the old per-access lambda (addr + kind + the
     * completion callback) spilled to the callback arena on every
     * access. The tag probe still happens at +accessLatency
     * (stagePop), so hit/miss decisions observe exactly the state the
     * unstaged path did and figure output is unchanged. FIFO pop
     * order matches push order because every staged event is
     * scheduled with the same delay and the event queue breaks
     * same-tick ties in schedule order.
     *
     * @param onComplete Runs when the access has performed. Stores are
     *        epoch-tagged at completion time by the persist controller.
     */
    void
    access(Addr addr, bool isWrite, InlineCallback onComplete)
    {
        addr = lineAlign(addr);
        if (isWrite)
            ++_stores;
        else
            ++_loads;
        _array.prefetchSet(addr); // tag probe runs at +accessLatency
        _staged.push(StagedAccess{addr, isWrite, std::move(onComplete)});
        scheduleIn(_cfg.accessLatency, [this] { stagePop(); });
    }

    /**
     * Best-effort exclusive (RFO) prefetch: acquire ownership of
     * @p addr without performing a store, modelling the OoO core's
     * store-miss overlap. Dropped silently when the MSHRs are busy or
     * the line is already exclusive.
     */
    void prefetchExclusive(Addr addr);

    // ------------------------------------------------------------------
    // Bank-side message handlers (invoked at mesh delivery)
    // ------------------------------------------------------------------

    /**
     * Recall for a remote request: write back a dirty copy and downgrade
     * (Shared for a remote read, Invalid for a remote write), then send
     * the reply whose delivery runs @p replyAtBank.
     */
    void handleDowngrade(Addr addr, bool forWrite, unsigned bankNode,
                         InlineCallback replyAtBank);

    /** Invalidate a Shared copy; ack delivery runs @p ackAtBank. */
    void handleInvalidate(Addr addr, unsigned bankNode,
                          InlineCallback ackAtBank);

    /**
     * Fill/upgrade grant from the home bank.
     *
     * @param state Granted state (Modified, Exclusive or Shared).
     * @param tagCore/tagEpoch Persist tag the line arrives with (a
     *        same-epoch incarnation moving back to this L1), or
     *        kNoCore/kNoEpoch.
     */
    void handleFillGrant(Addr addr, CoherenceState state, CoreId tagCore,
                         EpochId tagEpoch);

    // ------------------------------------------------------------------
    // Persist-machinery interface
    // ------------------------------------------------------------------

    /**
     * Flush walk (§4.1 step 1): write back every line in @p lines,
     * pacing issues by @p interval cycles.
     *
     * @param invalidating clflush-like (drop lines) vs clwb-like (keep).
     * @return Tick by which the last writeback has been delivered (the
     *         earliest time the FlushEpoch broadcast may be processed).
     */
    Tick flushLines(const std::vector<Addr> &lines, bool invalidating,
                    Tick interval);

    /**
     * Issue a direct NVRAM write (undo log, checkpoint, write-through
     * stores) to the responsible memory controller.
     *
     * @param onAckHere Runs at this L1 when the PersistAck arrives.
     */
    void issueNvmWrite(Addr addr, CoreId core, EpochId epoch, bool isLog,
                       InlineCallback onAckHere);

    /** This L1's flush-engine bookkeeping. */
    persist::FlushEngine &flushEngine() { return _flushEngine; }

    /** Tag-array lookup (tests and persist machinery). */
    CacheLine *find(Addr addr) { return _array.find(addr); }

    CacheArray &array() { return _array; }
    StatGroup &stats() { return _stats; }

    /** In-use MSHR entries (interval-stat sampling). */
    std::size_t mshrOccupancy() const { return _mshrs.size(); }

  private:
    /** One access parked between issue and the +accessLatency stage. */
    struct StagedAccess
    {
        Addr addr = 0;
        bool isWrite = false;
        InlineCallback onComplete;
    };

    /** Dequeue the oldest staged access and run stage 2. */
    void stagePop();
    void accessStage2(Addr addr, bool isWrite,
                      InlineCallback onComplete);
    /** Try to perform a store on a resident exclusive line. */
    void performStore(Addr addr, InlineCallback onComplete);
    void sendMiss(Addr addr, bool isWrite, PendingAccess acc);
    void replayNext(Addr addr, std::vector<PendingAccess> queue,
                    std::size_t idx);
    /**
     * Move @p line out of (or clean it in) this L1, transferring state to
     * the home bank synchronously and charging mesh bandwidth.
     */
    void writebackLine(CacheLine &line, WritebackKind kind);
    void serviceDeferred();
    /** Observability: close/open the MSHR-occupancy episode span. */
    void probeMshrEpisode();

    CoreId _core;
    L1Config _cfg;
    persist::PersistController &_pc;
    StatGroup _stats;
    noc::NetworkInterface _ni;
    CacheArray _array;
    MshrFile _mshrs;
    persist::FlushEngine _flushEngine;

    /** Accesses staged by access() awaiting their +accessLatency slot. */
    PendingRing<StagedAccess> _staged;

    /**
     * Pooled NVRAM write requests in flight to a memory controller
     * (undo log, checkpoint, write-through stores). The mesh-delivery
     * event captures only {mc, pool, index}, so the request — whose
     * embedded completion callback would overflow the inline-callback
     * buffer — rides in the pool instead of the callback arena.
     */
    NodePool<nvm::WriteReq> _nvmReqPool;

    /** Accesses deferred because the MSHR file was full. */
    std::deque<InlineCallback> _deferred;

    /** Start of the current MSHR busy episode (kTickNever when idle). */
    Tick _mshrBusySince = kTickNever;

    Scalar _loads;
    Scalar _stores;
    Scalar _hits;
    Scalar _misses;
    Scalar _writebacksDirty;
    Scalar _writebacksClean;
    Scalar _downgrades;
    Scalar _invalidations;
    Scalar _mshrDefers;
};

/** Home LLC bank of @p addr with @p numBanks banks (line-interleaved). */
inline unsigned
homeBankOf(Addr addr, unsigned numBanks)
{
    return static_cast<unsigned>(lineNum(addr)) % numBanks;
}

} // namespace persim::cache

#endif // PERSIM_CACHE_L1_CACHE_HH
