#include "cache/cache_array.hh"

#include "sim/logging.hh"

namespace persim::cache
{

namespace
{
bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}
} // namespace

CacheArray::CacheArray(std::string name, const CacheGeometry &geom,
                       unsigned setShift)
    : _name(std::move(name)), _geom(geom), _setShift(setShift)
{
    simAssert(geom.ways > 0, _name, ": zero ways");
    simAssert(geom.sizeBytes % (geom.ways * kLineBytes) == 0, _name,
              ": size not a multiple of way size");
    _sets = geom.sets();
    simAssert(isPowerOfTwo(_sets), _name, ": sets (", _sets,
              ") not a power of two");
    _lines.resize(static_cast<std::size_t>(_sets) * geom.ways);
    _tags.resize(_lines.size(), kNoLine);
}

void
CacheArray::touch(CacheLine &line)
{
    line.lruStamp = ++_lruClock;
}

CacheLine *
CacheArray::victimFor(Addr addr, bool avoidTagged)
{
    CacheLine *base = setBase(setIndex(lineAlign(addr)));
    const bool random = _geom.policy == ReplacementPolicy::Random;
    CacheLine *any = nullptr;
    CacheLine *untagged = nullptr;
    CacheLine *quiet = nullptr; // untagged and no L1 copies
    // Random policy: reservoir-sample one candidate per tier.
    unsigned nAny = 0, nUntagged = 0, nQuiet = 0;

    auto better = [&](CacheLine *&slot, CacheLine &cand, unsigned &n) {
        ++n;
        if (!slot) {
            slot = &cand;
        } else if (random) {
            if (_rng.below(n) == 0)
                slot = &cand;
        } else if (cand.lruStamp < slot->lruStamp) {
            slot = &cand;
        }
    };

    for (unsigned w = 0; w < _geom.ways; ++w) {
        CacheLine &cand = base[w];
        if (cand.pinned)
            continue;
        if (!cand.valid())
            return &cand;
        better(any, cand, nAny);
        if (!cand.tagged()) {
            better(untagged, cand, nUntagged);
            if (cand.owner == kNoCore && cand.sharers == 0)
                better(quiet, cand, nQuiet);
        }
    }
    if (avoidTagged && quiet)
        return quiet;
    if (avoidTagged && untagged)
        return untagged;
    return any;
}

CacheLine &
CacheArray::fill(CacheLine &line, Addr addr, CoherenceState state)
{
    simAssert(!line.valid(), _name, ": fill into a valid line");
    addr = lineAlign(addr);
    simAssert(setIndex(addr) ==
                  static_cast<unsigned>((&line - _lines.data()) /
                                        _geom.ways),
              _name, ": fill into the wrong set");
    _tags[static_cast<std::size_t>(&line - _lines.data())] = addr;
    line.addr = addr;
    line.state = state;
    line.dirty = false;
    line.clearTag();
    line.owner = kNoCore;
    line.sharers = 0;
    touch(line);
    return line;
}

} // namespace persim::cache
