#include "cache/cache_array.hh"

#include "sim/logging.hh"

namespace persim::cache
{

namespace
{
bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}
} // namespace

CacheArray::CacheArray(std::string name, const CacheGeometry &geom,
                       unsigned setShift)
    : _name(std::move(name)), _geom(geom), _setShift(setShift)
{
    simAssert(geom.ways > 0, _name, ": zero ways");
    simAssert(geom.sizeBytes % (geom.ways * kLineBytes) == 0, _name,
              ": size not a multiple of way size");
    _sets = geom.sets();
    simAssert(isPowerOfTwo(_sets), _name, ": sets (", _sets,
              ") not a power of two");
    _lines.resize(static_cast<std::size_t>(_sets) * geom.ways);
    _tags.resize(_lines.size(), kNoLine);
}

void
CacheArray::touch(CacheLine &line)
{
    line.setLruStamp(++_lruClock);
}

namespace
{
/** True when stamp @p a is older than @p b under the wrapping clock. */
bool
lruOlder(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) < 0;
}
} // namespace

CacheLine *
CacheArray::victimFor(Addr addr, bool avoidTagged)
{
    const std::size_t first =
        static_cast<std::size_t>(setIndex(lineAlign(addr))) * _geom.ways;
    CacheLine *base = &_lines[first];
    const unsigned ways = _geom.ways;

    if (_geom.policy == ReplacementPolicy::Random) {
        // Reservoir-sample one candidate per tier. Kept as one generic
        // in-order pass: the sequence of RNG draws is part of the
        // deterministic-replay contract, so this path must consume
        // exactly one draw per already-seen tier member.
        CacheLine *any = nullptr;
        CacheLine *untagged = nullptr;
        CacheLine *quiet = nullptr; // untagged and no L1 copies
        unsigned nAny = 0, nUntagged = 0, nQuiet = 0;

        auto better = [&](CacheLine *&slot, CacheLine &cand,
                          unsigned &n) {
            ++n;
            if (!slot || _rng.below(n) == 0)
                slot = &cand;
        };

        for (unsigned w = 0; w < ways; ++w) {
            CacheLine &cand = base[w];
            if (cand.pinned())
                continue;
            if (!cand.valid())
                return &cand;
            better(any, cand, nAny);
            if (!cand.tagged()) {
                better(untagged, cand, nUntagged);
                if (cand.owner() == kNoCore && cand.sharers() == 0)
                    better(quiet, cand, nQuiet);
            }
        }
        if (avoidTagged && quiet)
            return quiet;
        if (avoidTagged && untagged)
            return untagged;
        return any;
    }

    // LRU, the hot path: one victim scan per miss at both cache levels.
    // Invalid ways first, via the compact tag array — it is already in
    // host cache from the find() that preceded every victim scan, so
    // the common steady-state case (no invalid way) costs one or two
    // cached line reads before the metadata sweep. An invalid way can
    // still be pinned (a miss claims its fill way before the memory
    // read returns), so the flag byte is checked before returning one.
    const Addr *tags = &_tags[first];
    for (unsigned w = 0; w < ways; ++w) {
        if (tags[w] == kNoLine && !base[w].pinned())
            return &base[w];
    }

    if (!avoidTagged) {
        // Single-tier scan (every L1 fill takes this shape).
        CacheLine *any = nullptr;
        std::uint32_t anyStamp = 0;
        for (unsigned w = 0; w < ways; ++w) {
            CacheLine &cand = base[w];
            if (cand.pinned())
                continue;
            if (!any || lruOlder(cand.lruStamp(), anyStamp)) {
                any = &cand;
                anyStamp = cand.lruStamp();
            }
        }
        return any;
    }

    CacheLine *any = nullptr;
    CacheLine *untagged = nullptr;
    CacheLine *quiet = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        CacheLine &cand = base[w];
        if (cand.pinned())
            continue;
        if (!any || lruOlder(cand.lruStamp(), any->lruStamp()))
            any = &cand;
        if (!cand.tagged()) {
            if (!untagged ||
                lruOlder(cand.lruStamp(), untagged->lruStamp())) {
                untagged = &cand;
            }
            if (cand.owner() == kNoCore && cand.sharers() == 0 &&
                (!quiet ||
                 lruOlder(cand.lruStamp(), quiet->lruStamp()))) {
                quiet = &cand;
            }
        }
    }
    if (quiet)
        return quiet;
    if (untagged)
        return untagged;
    return any;
}

CacheLine &
CacheArray::fill(CacheLine &line, Addr addr, CoherenceState state)
{
    simAssert(!line.valid(), _name, ": fill into a valid line");
    addr = lineAlign(addr);
    simAssert(setIndex(addr) ==
                  static_cast<unsigned>((&line - _lines.data()) /
                                        _geom.ways),
              _name, ": fill into the wrong set");
    _tags[static_cast<std::size_t>(&line - _lines.data())] = addr;
    line.setAddr(addr);
    line.setState(state);
    line.setDirty(false);
    line.clearTag();
    line.setOwner(kNoCore);
    line.setSharers(0);
    touch(line);
    return line;
}

} // namespace persim::cache
