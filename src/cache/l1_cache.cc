#include "cache/l1_cache.hh"

#include <utility>

#include "cache/llc_bank.hh"
#include "nvm/memory_controller.hh"
#include "persist/persist_controller.hh"
#include "prof/phase.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::cache
{

L1Cache::L1Cache(const std::string &name, EventQueue &eq, noc::Mesh &mesh,
                 unsigned nodeId, unsigned x, unsigned y, CoreId core,
                 const L1Config &cfg, persist::PersistController &pc)
    : SimObject(name, eq),
      _core(core),
      _cfg(cfg),
      _pc(pc),
      _stats(name),
      _ni(name + ".ni", mesh, nodeId, x, y),
      _array(name + ".array", cfg.geometry),
      _mshrs(cfg.mshrs),
      _flushEngine(name + ".flushEngine"),
      _loads(&_stats, "loads", "load accesses"),
      _stores(&_stats, "stores", "store accesses"),
      _hits(&_stats, "hits", "accesses served without the LLC"),
      _misses(&_stats, "misses", "accesses sent to the home bank"),
      _writebacksDirty(&_stats, "writebacksDirty", "dirty writebacks"),
      _writebacksClean(&_stats, "writebacksClean",
                       "clean eviction notices"),
      _downgrades(&_stats, "downgrades", "remote-recall downgrades"),
      _invalidations(&_stats, "invalidations", "invalidations received"),
      _mshrDefers(&_stats, "mshrDefers", "accesses deferred on full MSHRs")
{
}

void
L1Cache::stagePop()
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    StagedAccess s = _staged.pop();
    accessStage2(s.addr, s.isWrite, std::move(s.onComplete));
}

void
L1Cache::accessStage2(Addr addr, bool isWrite,
                      InlineCallback onComplete)
{
    if (_mshrs.has(addr)) {
        ++_misses;
        _mshrs.merge(addr,
                     PendingAccess{isWrite, _core, std::move(onComplete)});
        return;
    }
    CacheLine *line = _array.find(addr);
    if (line && (!isWrite || line->state() == CoherenceState::Modified ||
                 line->state() == CoherenceState::Exclusive)) {
        ++_hits;
        if (isWrite) {
            performStore(addr, std::move(onComplete));
        } else {
            _array.touch(*line);
            onComplete();
        }
        return;
    }
    ++_misses;
    PendingAccess acc{isWrite, _core, std::move(onComplete)};
    if (_mshrs.full()) {
        ++_mshrDefers;
        _deferred.push_back([this, addr, isWrite,
                             acc = std::move(acc)]() mutable {
            accessStage2(addr, isWrite, std::move(acc.onComplete));
        });
        return;
    }
    // An upgrade leaves the present (Shared) copy in a transient state:
    // pin it so capacity evictions cannot victimize it — its eviction
    // notice would race the grant and corrupt the directory.
    if (line)
        line->setPinned(true);
    _mshrs.allocate(addr, isWrite, std::move(acc));
    probeMshrEpisode();
    sendMiss(addr, isWrite, PendingAccess{isWrite, _core, {}});
}

void
L1Cache::prefetchExclusive(Addr addr)
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    addr = lineAlign(addr);
    scheduleIn(_cfg.accessLatency, [this, addr] {
        if (_mshrs.has(addr) || _mshrs.full())
            return;
        CacheLine *line = _array.find(addr);
        if (line && (line->state() == CoherenceState::Modified ||
                     line->state() == CoherenceState::Exclusive)) {
            return;
        }
        if (line)
            line->setPinned(true); // transient upgrade; see accessStage2
        _mshrs.allocate(addr, true, PendingAccess{false, _core, {}});
        probeMshrEpisode();
        sendMiss(addr, true, PendingAccess{true, _core, {}});
    });
}

void
L1Cache::sendMiss(Addr addr, bool isWrite, PendingAccess acc)
{
    (void)acc;
    LlcBank &bank = _pc.bank(homeBankOf(addr, _pc.numBanks()));
    LlcBank *bankPtr = &bank;
    CoreId core = _core;
    _ni.sendControl(bank.nodeId(), [bankPtr, addr, isWrite, core] {
        bankPtr->handleRequest(addr, isWrite, core);
    });
}

void
L1Cache::performStore(Addr addr, InlineCallback onComplete)
{
    CacheLine *line = _array.find(addr);
    simAssert(line, name(), ": performStore on absent line");
    // Fast path: no conflict possible (untagged line or same-epoch
    // coalescing) — perform in place without building the re-validating
    // continuation below, which is only needed when resolution may have
    // waited (and so flushed or dropped the line) before running it.
    if (_pc.tryFastStore(_core, *line)) {
        line->setState(CoherenceState::Modified);
        line->setDirty(true);
        _array.touch(*line);
        _pc.afterL1Store(_core, *line);
        onComplete();
        return;
    }
    _pc.beforeL1Store(
        _core, *line,
        [this, addr, onComplete = std::move(onComplete)]() mutable {
            // Conflict resolution may have flushed (and, with an
            // invalidating flush, dropped) the line; re-validate.
            CacheLine *l = _array.find(addr);
            if (!l || (l->state() != CoherenceState::Modified &&
                       l->state() != CoherenceState::Exclusive)) {
                std::vector<PendingAccess> q = _mshrs.takeSpare();
                q.push_back(PendingAccess{true, _core,
                                          std::move(onComplete)});
                replayNext(addr, std::move(q), 0);
                return;
            }
            l->setState(CoherenceState::Modified);
            l->setDirty(true);
            _array.touch(*l);
            _pc.afterL1Store(_core, *l);
            onComplete();
        });
}

void
L1Cache::handleFillGrant(Addr addr, CoherenceState state, CoreId tagCore,
                         EpochId tagEpoch)
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    CacheLine *line = _array.find(addr);
    if (!line) {
        CacheLine *victim = _array.victimFor(addr, false);
        if (!victim) {
            // Every way holds a transient (pinned) upgrade; their own
            // grants will unpin them shortly. The home bank keeps the
            // line busy until our Unblock, so retrying is safe.
            scheduleIn(8, [this, addr, state, tagCore, tagEpoch] {
                handleFillGrant(addr, state, tagCore, tagEpoch);
            });
            return;
        }
        if (victim->valid())
            writebackLine(*victim, WritebackKind::Eviction);
        line = &_array.fill(*victim, addr, state);
    } else {
        line->setState(state);
        line->setPinned(false); // the transient upgrade resolved
        _array.touch(*line);
    }
    if (tagCore != kNoCore) {
        // A same-epoch incarnation moved back into this L1 (the grant
        // logic already moved the flush-engine bucket); the L1 copy now
        // carries the persist obligation.
        line->setTag(tagCore, tagEpoch);
        line->setDirty(true);
    }
    replayNext(addr, _mshrs.release(addr), 0);
    probeMshrEpisode();
}

void
L1Cache::replayNext(Addr addr, std::vector<PendingAccess> queue,
                    std::size_t idx)
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    if (idx >= queue.size()) {
        _mshrs.recycle(std::move(queue));
        serviceDeferred();
        return;
    }
    PendingAccess &acc = queue[idx];
    CacheLine *line = _array.find(addr);

    if (!acc.isWrite) {
        if (line) {
            _array.touch(*line);
            auto done = std::move(acc.onComplete);
            if (done)
                done();
            replayNext(addr, std::move(queue), idx + 1);
        } else {
            goto resend;
        }
        return;
    }

    if (line && (line->state() == CoherenceState::Modified ||
                 line->state() == CoherenceState::Exclusive)) {
        performStore(addr,
                     [this, addr, done = std::move(acc.onComplete),
                      queue = std::move(queue), idx]() mutable {
                         if (done)
                             done();
                         replayNext(addr, std::move(queue), idx + 1);
                     });
        return;
    }

resend:
    // The line is absent (or insufficient for a write): re-enter the
    // miss path with every remaining access.
    bool anyWrite = false;
    for (std::size_t i = idx; i < queue.size(); ++i) {
        if (queue[i].isWrite) {
            anyWrite = true;
            break;
        }
    }
    if (_mshrs.has(addr)) {
        for (std::size_t i = idx; i < queue.size(); ++i)
            _mshrs.merge(addr, std::move(queue[i]));
        _mshrs.recycle(std::move(queue));
        return;
    }
    if (_mshrs.full()) {
        ++_mshrDefers;
        _deferred.push_back(
            [this, addr, queue = std::move(queue), idx]() mutable {
                replayNext(addr, std::move(queue), idx);
            });
        return;
    }
    ++_misses; // the replayed access goes back to the home bank
    if (line)
        line->setPinned(true); // transient upgrade; see accessStage2
    _mshrs.allocate(addr, anyWrite, std::move(queue[idx]));
    for (std::size_t i = idx + 1; i < queue.size(); ++i)
        _mshrs.merge(addr, std::move(queue[i]));
    _mshrs.recycle(std::move(queue));
    probeMshrEpisode();
    sendMiss(addr, anyWrite, PendingAccess{anyWrite, _core, {}});
}

void
L1Cache::probeMshrEpisode()
{
    if (!trace::probing()) [[likely]]
        return;
    if (_mshrs.size() == 0) {
        if (_mshrBusySince != kTickNever) {
            trace::span(_mshrBusySince, curTick(), name(), "mshr busy",
                        "Mshr");
            _mshrBusySince = kTickNever;
        }
    } else if (_mshrBusySince == kTickNever) {
        _mshrBusySince = curTick();
    }
}

void
L1Cache::serviceDeferred()
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    while (!_deferred.empty() && !_mshrs.full()) {
        auto fn = std::move(_deferred.front());
        _deferred.pop_front();
        fn();
    }
}

void
L1Cache::writebackLine(CacheLine &line, WritebackKind kind)
{
    simAssert(line.valid(), name(), ": writeback of invalid line");
    const Addr addr = line.addr();
    LlcBank &bank = _pc.bank(homeBankOf(addr, _pc.numBanks()));
    const bool dirty = line.dirty();
    // Warm the bank set while the mesh-bandwidth work below runs; both
    // the inclusion probe and acceptWriteback() hit it.
    bank.array().prefetchSet(addr);

    tracef("WB", *this, "writeback 0x", std::hex, addr, std::dec,
           " kind=", int(kind), " dirty=", dirty, " tagged=",
           line.tagged());
    // Charge mesh bandwidth; state transfers synchronously below.
    if (dirty) {
        ++_writebacksDirty;
        _ni.sendData(bank.nodeId(), [] {});
    } else {
        ++_writebacksClean;
        _ni.sendControl(bank.nodeId(), [] {});
    }

    CacheLine *llcLine = nullptr;
    if (dirty) {
        llcLine = bank.find(addr);
        simAssert(llcLine, name(), ": inclusion violated for 0x",
                  std::hex, addr, std::dec, " (state ",
                  int(line.state()), ", tagged ", line.tagged(),
                  ", epoch ", line.epochId(), ", kind ", int(kind), ")");
        llcLine->setDirty(true);
        if (line.tagged())
            _pc.onL1Writeback(_core, line, *llcLine, bank.bankIdx());
    }
    bank.acceptWriteback(_core, addr, dirty, kind, llcLine);

    switch (kind) {
      case WritebackKind::Eviction:
      case WritebackKind::DowngradeToInvalid:
        _array.invalidate(line);
        break;
      case WritebackKind::DowngradeToShared:
        line.setState(CoherenceState::Shared);
        line.setDirty(false);
        line.clearTag();
        break;
      case WritebackKind::FlushRetain:
        // clwb semantics: the line stays, clean, and KEEPS its epoch tag
        // until the epoch persists — a subsequent same-core store must
        // still detect the intra-thread conflict (§3.2). The stale tag
        // is cleared by the conflict-resolution path once persisted.
        line.setState(CoherenceState::Exclusive);
        line.setDirty(false);
        break;
    }
}

void
L1Cache::handleDowngrade(Addr addr, bool forWrite, unsigned bankNode,
                         InlineCallback replyAtBank)
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    scheduleIn(_cfg.accessLatency,
               [this, addr, forWrite, bankNode,
                replyAtBank = std::move(replyAtBank)]() mutable {
        CacheLine *line = _array.find(addr);
        bool hadDirty = false;
        tracef("WB", *this, "downgrade 0x", std::hex, addr, std::dec,
               " present=", line != nullptr, " forWrite=", forWrite);
        if (line) {
            ++_downgrades;
            hadDirty = line->dirty();
            // State syncs here; the reply message below carries the data
            // (so the writeback itself must not double-charge the mesh).
            LlcBank &bank = _pc.bank(homeBankOf(addr, _pc.numBanks()));
            bank.array().prefetchSet(addr);
            CacheLine *llcLine = nullptr;
            if (hadDirty) {
                llcLine = bank.find(addr);
                simAssert(llcLine, name(), ": inclusion violated");
                llcLine->setDirty(true);
                if (line->tagged())
                    _pc.onL1Writeback(_core, *line, *llcLine,
                                      bank.bankIdx());
            }
            bank.acceptWriteback(_core, addr, hadDirty,
                                 forWrite ? WritebackKind::DowngradeToInvalid
                                          : WritebackKind::DowngradeToShared,
                                 llcLine);
            if (forWrite) {
                _array.invalidate(*line);
            } else {
                line->setState(CoherenceState::Shared);
                line->setDirty(false);
                line->clearTag();
            }
        }
        if (hadDirty)
            _ni.sendData(bankNode, std::move(replyAtBank));
        else
            _ni.sendControl(bankNode, std::move(replyAtBank));
    });
}

void
L1Cache::handleInvalidate(Addr addr, unsigned bankNode,
                          InlineCallback ackAtBank)
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    scheduleIn(1, [this, addr, bankNode,
                   ackAtBank = std::move(ackAtBank)]() mutable {
        CacheLine *line = _array.find(addr);
        if (line) {
            simAssert(line->state() == CoherenceState::Shared, name(),
                      ": invalidate hit a non-Shared line");
            ++_invalidations;
            _array.invalidate(*line);
        }
        _ni.sendControl(bankNode, std::move(ackAtBank));
    });
}

Tick
L1Cache::flushLines(const std::vector<Addr> &lines, bool invalidating,
                    Tick interval)
{
    prof::ScopedPhase profPhase(prof::Phase::L1Access);
    Tick offset = 0;
    for (Addr addr : lines) {
        scheduleIn(offset, [this, addr, invalidating] {
            CacheLine *line = _array.find(addr);
            // The line may have been naturally written back between the
            // walk snapshot and this issue slot; its incarnation already
            // moved to the bank, so there is nothing left to do here.
            if (!line || !line->dirty())
                return;
            writebackLine(*line, invalidating ? WritebackKind::Eviction
                                              : WritebackKind::FlushRetain);
        });
        offset += interval;
    }
    return curTick() + offset;
}

void
L1Cache::issueNvmWrite(Addr addr, CoreId core, EpochId epoch, bool isLog,
                       InlineCallback onAckHere)
{
    nvm::MemoryController &mc = _pc.mcFor(addr);
    nvm::MemoryController *mcPtr = &mc;
    nvm::WriteReq req;
    req.addr = lineAlign(addr);
    req.core = core;
    req.epoch = epoch;
    req.isLog = isLog;
    req.replyTo = _ni.nodeId();
    req.onPersist = std::move(onAckHere);
    // The request (its completion callback included) would overflow the
    // inline-callback buffer if captured; park it in the pool and ship
    // only the index — the pooled node is recycled at delivery.
    const std::uint32_t idx = _nvmReqPool.alloc(std::move(req));
    NodePool<nvm::WriteReq> *pool = &_nvmReqPool;
    _ni.sendData(mc.nodeId(), [mcPtr, pool, idx] {
        nvm::WriteReq r = std::move(pool->at(idx));
        pool->release(idx);
        mcPtr->handleWrite(std::move(r));
    });
}

} // namespace persim::cache
