/**
 * @file
 * Miss-status holding registers for the L1 caches.
 */

#ifndef PERSIM_CACHE_MSHR_HH
#define PERSIM_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/types.hh"

namespace persim::cache
{

/** One memory access waiting on an MSHR. */
struct PendingAccess
{
    bool isWrite = false;
    CoreId core = kNoCore;
    InlineCallback onComplete;
};

/**
 * The MSHR file: at most one outstanding request per line; later accesses
 * to the same line merge into the existing entry and are replayed when
 * the fill (or upgrade grant) returns.
 *
 * Like real hardware, the file is a fixed register array (16 entries in
 * the Table 1 config) searched associatively — a linear scan over one
 * flat vector, with no hashing or per-miss allocation. Freed slots keep
 * their replay-queue buffers, so steady-state misses allocate nothing.
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity) : _entries(capacity) {}

    /** True if a request for @p addr is outstanding. */
    bool has(Addr addr) const { return find(lineAlign(addr)) != nullptr; }

    /** True if no new entry can be allocated. */
    bool full() const { return _live >= _entries.size(); }

    /**
     * Allocate an entry for @p addr (must not exist) and queue @p acc.
     *
     * @param forWrite Whether the outstanding request asks for ownership.
     */
    void allocate(Addr addr, bool forWrite, PendingAccess acc);

    /**
     * Merge @p acc into the existing entry for @p addr (must exist).
     * A merged write does not upgrade the outstanding request; the replay
     * path re-issues an upgrade if the fill grants only Shared.
     */
    void merge(Addr addr, PendingAccess acc);

    /** Whether the outstanding request for @p addr asks for ownership. */
    bool forWrite(Addr addr) const;

    /**
     * Release the entry for @p addr and return its queued accesses in
     * arrival order. The returned vector's buffer comes from the spare
     * pool (or the slot itself); hand it back via recycle() once the
     * replay walk finishes so steady-state misses allocate nothing.
     */
    std::vector<PendingAccess> release(Addr addr);

    /** Return a vector obtained from release()/takeSpare() to the pool. */
    void
    recycle(std::vector<PendingAccess> &&q)
    {
        if (_spare.size() >= _entries.size())
            return; // enough buffers banked for every slot
        q.clear();
        _spare.push_back(std::move(q));
    }

    /** A pooled empty vector (replay-queue construction off-register). */
    std::vector<PendingAccess>
    takeSpare()
    {
        if (_spare.empty())
            return {};
        std::vector<PendingAccess> q = std::move(_spare.back());
        _spare.pop_back();
        return q;
    }

    std::size_t size() const { return _live; }
    unsigned capacity() const
    {
        return static_cast<unsigned>(_entries.size());
    }

  private:
    struct Entry
    {
        Addr addr = kFree;
        bool forWrite = false;
        std::vector<PendingAccess> waiting;
    };

    /** Slot sentinel (never a line-aligned address). */
    static constexpr Addr kFree = ~static_cast<Addr>(0);

    const Entry *
    find(Addr addr) const
    {
        for (const Entry &e : _entries) {
            if (e.addr == addr)
                return &e;
        }
        return nullptr;
    }

    Entry *
    find(Addr addr)
    {
        return const_cast<Entry *>(
            static_cast<const MshrFile *>(this)->find(addr));
    }

    std::vector<Entry> _entries;
    /** Recycled replay-queue buffers (capped at one per slot). */
    std::vector<std::vector<PendingAccess>> _spare;
    std::size_t _live = 0;
};

} // namespace persim::cache

#endif // PERSIM_CACHE_MSHR_HH
