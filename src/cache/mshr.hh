/**
 * @file
 * Miss-status holding registers for the L1 caches.
 */

#ifndef PERSIM_CACHE_MSHR_HH
#define PERSIM_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/inline_callback.hh"
#include "sim/types.hh"

namespace persim::cache
{

/** One memory access waiting on an MSHR. */
struct PendingAccess
{
    bool isWrite = false;
    CoreId core = kNoCore;
    InlineCallback onComplete;
};

/**
 * The MSHR file: at most one outstanding request per line; later accesses
 * to the same line merge into the existing entry and are replayed when
 * the fill (or upgrade grant) returns.
 */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity) : _capacity(capacity) {}

    /** True if a request for @p addr is outstanding. */
    bool has(Addr addr) const { return _entries.contains(lineAlign(addr)); }

    /** True if no new entry can be allocated. */
    bool full() const { return _entries.size() >= _capacity; }

    /**
     * Allocate an entry for @p addr (must not exist) and queue @p acc.
     *
     * @param forWrite Whether the outstanding request asks for ownership.
     */
    void allocate(Addr addr, bool forWrite, PendingAccess acc);

    /**
     * Merge @p acc into the existing entry for @p addr (must exist).
     * A merged write does not upgrade the outstanding request; the replay
     * path re-issues an upgrade if the fill grants only Shared.
     */
    void merge(Addr addr, PendingAccess acc);

    /** Whether the outstanding request for @p addr asks for ownership. */
    bool forWrite(Addr addr) const;

    /**
     * Release the entry for @p addr and return its queued accesses in
     * arrival order.
     */
    std::vector<PendingAccess> release(Addr addr);

    std::size_t size() const { return _entries.size(); }
    unsigned capacity() const { return _capacity; }

  private:
    struct Entry
    {
        bool forWrite = false;
        std::vector<PendingAccess> waiting;
    };

    unsigned _capacity;
    std::unordered_map<Addr, Entry> _entries;
};

} // namespace persim::cache

#endif // PERSIM_CACHE_MSHR_HH
