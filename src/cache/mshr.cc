#include "cache/mshr.hh"

#include "sim/logging.hh"

namespace persim::cache
{

void
MshrFile::allocate(Addr addr, bool forWrite, PendingAccess acc)
{
    addr = lineAlign(addr);
    simAssert(!full(), "MSHR allocate when full");
    simAssert(!_entries.contains(addr), "MSHR double allocate");
    Entry &e = _entries[addr];
    e.forWrite = forWrite;
    e.waiting.push_back(std::move(acc));
}

void
MshrFile::merge(Addr addr, PendingAccess acc)
{
    addr = lineAlign(addr);
    auto it = _entries.find(addr);
    simAssert(it != _entries.end(), "MSHR merge without entry");
    it->second.waiting.push_back(std::move(acc));
}

bool
MshrFile::forWrite(Addr addr) const
{
    auto it = _entries.find(lineAlign(addr));
    simAssert(it != _entries.end(), "MSHR forWrite without entry");
    return it->second.forWrite;
}

std::vector<PendingAccess>
MshrFile::release(Addr addr)
{
    addr = lineAlign(addr);
    auto it = _entries.find(addr);
    simAssert(it != _entries.end(), "MSHR release without entry");
    std::vector<PendingAccess> out = std::move(it->second.waiting);
    _entries.erase(it);
    return out;
}

} // namespace persim::cache
