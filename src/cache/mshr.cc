#include "cache/mshr.hh"

#include <utility>

#include "sim/logging.hh"

namespace persim::cache
{

void
MshrFile::allocate(Addr addr, bool forWrite, PendingAccess acc)
{
    addr = lineAlign(addr);
    simAssert(!full(), "MSHR allocate when full");
    simAssert(!find(addr), "MSHR double allocate");
    for (Entry &e : _entries) {
        if (e.addr != kFree)
            continue;
        e.addr = addr;
        e.forWrite = forWrite;
        e.waiting.push_back(std::move(acc));
        ++_live;
        return;
    }
    panic("MSHR slot scan found no free entry despite !full()");
}

void
MshrFile::merge(Addr addr, PendingAccess acc)
{
    Entry *e = find(lineAlign(addr));
    simAssert(e, "MSHR merge without entry");
    e->waiting.push_back(std::move(acc));
}

bool
MshrFile::forWrite(Addr addr) const
{
    const Entry *e = find(lineAlign(addr));
    simAssert(e, "MSHR forWrite without entry");
    return e->forWrite;
}

std::vector<PendingAccess>
MshrFile::release(Addr addr)
{
    Entry *e = find(lineAlign(addr));
    simAssert(e, "MSHR release without entry");
    // The caller gets the queued accesses; the slot is refilled with a
    // pooled buffer so the next allocate pushes into grown storage. The
    // caller recycles the returned vector when its replay walk ends,
    // closing the loop — no allocation on the steady-state miss path.
    std::vector<PendingAccess> out = takeSpare();
    out.swap(e->waiting);
    e->addr = kFree;
    e->forWrite = false;
    --_live;
    return out;
}

} // namespace persim::cache
