/**
 * @file
 * Set-associative tag array with pluggable victim selection.
 */

#ifndef PERSIM_CACHE_CACHE_ARRAY_HH
#define PERSIM_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_line.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace persim::cache
{

/** Victim-selection policy. */
enum class ReplacementPolicy
{
    Lru,
    Random,
};

/** Geometry of one cache (sizes in bytes; Table 1 defaults are set by
 * SystemConfig). */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 4;
    ReplacementPolicy policy = ReplacementPolicy::Lru;

    unsigned sets() const
    {
        return static_cast<unsigned>(sizeBytes / (ways * kLineBytes));
    }
};

/**
 * A set-associative array of CacheLine metadata with LRU replacement.
 *
 * The array indexes by line address. Victim selection is LRU, optionally
 * preferring lines without a persist tag (so demand misses avoid
 * triggering epoch flushes when an untagged victim exists; see DESIGN.md
 * §2.2, replacement conflicts).
 */
class CacheArray
{
  public:
    /**
     * @param name Instance name for diagnostics.
     * @param geom Size and associativity; sizeBytes must be a multiple of
     *             ways * 64 and sets a power of two.
     * @param setShift Right-shift applied to the line number before set
     *                 indexing; LLC banks use this to strip the bank-select
     *                 bits so each bank indexes its own address slice.
     */
    CacheArray(std::string name, const CacheGeometry &geom,
               unsigned setShift = 0);

    /** Find the line holding @p addr, or nullptr. Does not touch LRU.
     *
     * Hot path: the scan runs over the compact per-set tag array (8
     * bytes per way, one or two host cache lines per set) rather than
     * striding through the full CacheLine records. */
    CacheLine *
    find(Addr addr)
    {
        addr = lineAlign(addr);
        const std::size_t base =
            static_cast<std::size_t>(setIndex(addr)) * _geom.ways;
        const Addr *tags = &_tags[base];
        for (unsigned w = 0; w < _geom.ways; ++w) {
            if (tags[w] == addr)
                return &_lines[base + w];
        }
        return nullptr;
    }

    const CacheLine *
    find(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->find(addr);
    }

    /**
     * Host-side hint: pull @p addr's set (tags and first metadata
     * records) toward the host caches ahead of a find()/victimFor()
     * that runs a few events later. Purely a performance hint — no
     * simulated effect whatsoever.
     */
    void
    prefetchSet(Addr addr)
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(lineAlign(addr))) *
            _geom.ways;
        __builtin_prefetch(&_tags[base]);
        __builtin_prefetch(&_lines[base]);
    }

    /** Mark @p line most recently used. */
    void touch(CacheLine &line);

    /**
     * Invalidate @p line (which must belong to this array), keeping the
     * tag array in sync. All valid→invalid transitions of array-resident
     * lines must go through here, not CacheLine::invalidate().
     */
    void
    invalidate(CacheLine &line)
    {
        _tags[static_cast<std::size_t>(&line - _lines.data())] = kNoLine;
        line.invalidate();
    }

    /**
     * Pick a victim way for filling @p addr.
     *
     * Pinned lines are never candidates. Preference order: an invalid
     * way; then (when @p avoidTagged) the least-eligible line among
     * untagged lines with no L1 copies; then among untagged lines; then
     * any line. "Least eligible" is LRU under the Lru policy and a
     * uniformly random candidate under Random. The returned line is NOT
     * modified; the caller evicts and refills.
     *
     * @return nullptr when every way is pinned.
     */
    CacheLine *victimFor(Addr addr, bool avoidTagged);

    /**
     * Install @p addr into @p line (which the caller already evicted).
     * Resets metadata, sets the address and state, and touches LRU.
     */
    CacheLine &fill(CacheLine &line, Addr addr, CoherenceState state);

    unsigned sets() const { return _sets; }
    unsigned ways() const { return _geom.ways; }

    /** Iterate over every valid line (diagnostics and invariant checks). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (CacheLine &line : _lines) {
            if (line.valid())
                fn(line);
        }
    }

    /** Index of the set @p addr maps to (exposed for tests). */
    unsigned setIndex(Addr addr) const
    {
        return static_cast<unsigned>((lineNum(addr) >> _setShift) &
                                     (_sets - 1));
    }

  private:
    /** Tag-array sentinel for an invalid way (never a line-aligned addr). */
    static constexpr Addr kNoLine = ~static_cast<Addr>(0);

    CacheLine *setBase(unsigned set) { return &_lines[set * _geom.ways]; }

    std::string _name;
    CacheGeometry _geom;
    unsigned _setShift;
    unsigned _sets;
    std::vector<CacheLine> _lines;
    /** Parallel to _lines: the line address of each valid way, kNoLine
     * otherwise. find() scans this instead of the metadata records. */
    std::vector<Addr> _tags;
    /** Wrapping 32-bit LRU clock; victimFor compares stamps with a
     * wrap-aware signed difference, so wraparound (once per ~4G touches)
     * never inverts the recency order within a set. */
    std::uint32_t _lruClock = 0;
    Rng _rng{0xC0FFEE};
};

} // namespace persim::cache

#endif // PERSIM_CACHE_CACHE_ARRAY_HH
