/**
 * @file
 * Cache line metadata, including the paper's epoch-tag extensions.
 *
 * The simulator is metadata-only: lines carry coherence and persistency
 * state but no data payload. The persist-tag extension (CoreID + EpochID,
 * §4.3 of the paper) marks the one unpersisted incarnation of a dirty
 * line; the simulator maintains the invariant that a line has at most one
 * unpersisted incarnation system-wide at any time.
 *
 * The record is packed to 32 bytes (two per host cache line pair) so the
 * practical --jobs ceiling on small hosts rises: coherence state, the
 * dirty bit and the pin bit fold into one flags byte, the owner and
 * epoch-tag core ids narrow to one byte each (the sharers mask already
 * caps the system at 64 cores), and the LRU stamp is a 32-bit wrapping
 * counter whose comparisons are wrap-aware (CacheArray::victimFor).
 */

#ifndef PERSIM_CACHE_CACHE_LINE_HH
#define PERSIM_CACHE_CACHE_LINE_HH

#include <cstdint>

#include "sim/types.hh"

namespace persim::cache
{

/** Stable coherence states (no transients; banks serialize per line). */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,    // read-only copy
    Exclusive, // sole clean copy (L1 only)
    Modified,  // sole dirty copy (L1 only)
};

/**
 * Per-line metadata shared by L1 and LLC arrays.
 *
 * Core ids are stored in one byte with 0xFF as the "no core" sentinel;
 * the public accessors translate to/from the CoreId-wide kNoCore. This
 * is sound because the sharers mask below already limits the system to
 * kMaxCores (= 64) cores, which System/PersistController enforce at
 * construction time.
 */
class CacheLine
{
  public:
    /** Line-aligned address; valid only when state() != Invalid. */
    Addr addr() const { return _addr; }

    /** Set the address (CacheArray::fill only). */
    void setAddr(Addr a) { _addr = a; }

    CoherenceState
    state() const
    {
        return static_cast<CoherenceState>(_flags & kStateMask);
    }

    void
    setState(CoherenceState s)
    {
        _flags = static_cast<std::uint8_t>(
            (_flags & ~kStateMask) | static_cast<std::uint8_t>(s));
    }

    /** The copy at this level differs from the level below. */
    bool dirty() const { return (_flags & kDirtyBit) != 0; }

    void
    setDirty(bool d)
    {
        if (d)
            _flags |= kDirtyBit;
        else
            _flags &= static_cast<std::uint8_t>(~kDirtyBit);
    }

    /**
     * LLC only: the line (or, for an invalid line, the way) is locked by
     * an in-flight bank transaction or eviction; victim selection and
     * invalidating flushes skip pinned lines.
     */
    bool pinned() const { return (_flags & kPinnedBit) != 0; }

    void
    setPinned(bool p)
    {
        if (p)
            _flags |= kPinnedBit;
        else
            _flags &= static_cast<std::uint8_t>(~kPinnedBit);
    }

    /** LLC only: L1 holding the line Exclusive/Modified, or kNoCore. */
    CoreId
    owner() const
    {
        return _owner == kNoCore8 ? kNoCore : static_cast<CoreId>(_owner);
    }

    void
    setOwner(CoreId core)
    {
        // kNoCore (0xFFFF) truncates to the 0xFF sentinel; real core ids
        // are < kMaxCores and round-trip unchanged.
        _owner = static_cast<std::uint8_t>(core);
    }

    /** LLC only: bitmask of L1s holding Shared copies. */
    std::uint64_t sharers() const { return _sharers; }

    void setSharers(std::uint64_t mask) { _sharers = mask; }

    /**
     * Persist tag: the core whose unpersisted epoch last wrote the line.
     * kNoCore when the line carries no persist obligation at this level.
     */
    CoreId
    epochCore() const
    {
        return _epochCore == kNoCore8 ? kNoCore
                                      : static_cast<CoreId>(_epochCore);
    }

    /** Persist tag: epoch of last modification; kNoEpoch if untagged. */
    EpochId epochId() const { return _epochId; }

    /** LRU stamp maintained by the array; 32-bit and wrapping. */
    std::uint32_t lruStamp() const { return _lruStamp; }

    void setLruStamp(std::uint32_t stamp) { _lruStamp = stamp; }

    bool valid() const { return state() != CoherenceState::Invalid; }

    /** True when the line carries an unpersisted-epoch obligation. */
    bool tagged() const { return _epochCore != kNoCore8; }

    /** Clear the persist tag (the incarnation persisted or moved). */
    void
    clearTag()
    {
        _epochCore = kNoCore8;
        _epochId = kNoEpoch;
    }

    /** Set the persist tag for an incarnation written by (core, epoch). */
    void
    setTag(CoreId core, EpochId epoch)
    {
        _epochCore = static_cast<std::uint8_t>(core);
        _epochId = epoch;
    }

    /** Reset to Invalid, dropping all metadata (pin included). Lines
     * resident in a CacheArray must go through CacheArray::invalidate
     * instead so the array's tag scan stays in sync. */
    void
    invalidate()
    {
        _flags = 0;
        clearTag();
        _owner = kNoCore8;
        _sharers = 0;
    }

  private:
    static constexpr std::uint8_t kStateMask = 0x03;
    static constexpr std::uint8_t kDirtyBit = 0x04;
    static constexpr std::uint8_t kPinnedBit = 0x08;
    static constexpr std::uint8_t kNoCore8 = 0xFF;

    Addr _addr = 0;
    /**
     * One bit per core: the sharers mask fixes the architectural core
     * ceiling at 64, which is also what makes the one-byte core ids
     * above unambiguous. Keep in sync with kMaxCores.
     */
    std::uint64_t _sharers = 0;
    EpochId _epochId = kNoEpoch;
    std::uint32_t _lruStamp = 0;
    std::uint8_t _epochCore = kNoCore8;
    std::uint8_t _owner = kNoCore8;
    std::uint8_t _flags = 0; // state (2 bits) | dirty | pinned
};

static_assert(sizeof(std::uint64_t) * 8 == kMaxCores,
              "CacheLine::sharers holds one bit per core: widening the "
              "system beyond 64 cores needs a wider mask AND wider "
              "packed owner/epochCore fields");
static_assert(sizeof(CacheLine) <= 32,
              "CacheLine must stay within 32 bytes (two records per "
              "host cache line); see the packing notes above");

} // namespace persim::cache

#endif // PERSIM_CACHE_CACHE_LINE_HH
