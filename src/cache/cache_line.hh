/**
 * @file
 * Cache line metadata, including the paper's epoch-tag extensions.
 *
 * The simulator is metadata-only: lines carry coherence and persistency
 * state but no data payload. The persist-tag extension (CoreID + EpochID,
 * §4.3 of the paper) marks the one unpersisted incarnation of a dirty
 * line; the simulator maintains the invariant that a line has at most one
 * unpersisted incarnation system-wide at any time.
 */

#ifndef PERSIM_CACHE_CACHE_LINE_HH
#define PERSIM_CACHE_CACHE_LINE_HH

#include <cstdint>

#include "sim/types.hh"

namespace persim::cache
{

/** Stable coherence states (no transients; banks serialize per line). */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,    // read-only copy
    Exclusive, // sole clean copy (L1 only)
    Modified,  // sole dirty copy (L1 only)
};

/** Per-line metadata shared by L1 and LLC arrays. */
struct CacheLine
{
    /** Line-aligned address; valid only when state != Invalid. */
    Addr addr = 0;

    CoherenceState state = CoherenceState::Invalid;

    /** The copy at this level differs from the level below. */
    bool dirty = false;

    /**
     * Persist tag: the core whose unpersisted epoch last wrote the line.
     * kNoCore when the line carries no persist obligation at this level.
     */
    CoreId epochCore = kNoCore;

    /** Persist tag: epoch of last modification; kNoEpoch if untagged. */
    EpochId epochId = kNoEpoch;

    /** LLC only: L1 holding the line Exclusive/Modified, or kNoCore. */
    CoreId owner = kNoCore;

    /** LLC only: bitmask of L1s holding Shared copies. */
    std::uint64_t sharers = 0;

    /** LRU timestamp maintained by the array. */
    std::uint64_t lruStamp = 0;

    /**
     * LLC only: the line (or, for an invalid line, the way) is locked by
     * an in-flight bank transaction or eviction; victim selection and
     * invalidating flushes skip pinned lines.
     */
    bool pinned = false;

    bool valid() const { return state != CoherenceState::Invalid; }

    /** True when the line carries an unpersisted-epoch obligation. */
    bool tagged() const { return epochCore != kNoCore; }

    /** Clear the persist tag (the incarnation persisted or moved). */
    void
    clearTag()
    {
        epochCore = kNoCore;
        epochId = kNoEpoch;
    }

    /** Set the persist tag for an incarnation written by (core, epoch). */
    void
    setTag(CoreId core, EpochId epoch)
    {
        epochCore = core;
        epochId = epoch;
    }

    /** Reset to Invalid, dropping all metadata (pin included). Lines
     * resident in a CacheArray must go through CacheArray::invalidate
     * instead so the array's tag scan stays in sync. */
    void
    invalidate()
    {
        state = CoherenceState::Invalid;
        dirty = false;
        clearTag();
        owner = kNoCore;
        sharers = 0;
        pinned = false;
    }
};

} // namespace persim::cache

#endif // PERSIM_CACHE_CACHE_LINE_HH
