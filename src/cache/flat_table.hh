/**
 * @file
 * Flat, pooled request-path containers for the LLC banks.
 *
 * gprof pinned ~15% of sweep runtime on the node-based
 * std::unordered_map tables that tracked per-line transaction queues
 * and pin-waiters in LlcBank: every insert/erase was a malloc/free
 * pair, every lookup a pointer chase through a bucket list. The two
 * structures here remove both costs from the simulated path:
 *
 *  - FlatAddrMap: an open-addressed, power-of-two, linearly probed
 *    hash table keyed by line address. Deletion uses backward-shift
 *    (tombstone-free), so probe chains stay contiguous and lookups
 *    never degrade as entries churn. Slots store the key and a small
 *    POD value inline — one contiguous allocation total.
 *
 *  - NodePool: an index-based freelist arena (the same pattern as the
 *    callback arena in sim/inline_callback.hh and the event-node pool
 *    in sim/event_queue.hh). Intrusive singly-linked lists thread
 *    through node indices, so list nodes are reused LIFO with no
 *    allocation in steady state, and indices stay valid across the
 *    vector growth that pointers would not survive.
 *
 * Both containers are deterministic: iteration order of FlatAddrMap
 * depends only on the insertion/erasure history, never on pointer
 * values, so sweep output stays byte-identical across runs.
 */

#ifndef PERSIM_CACHE_FLAT_TABLE_HH
#define PERSIM_CACHE_FLAT_TABLE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace persim::cache
{

/**
 * Open-addressed hash map from line address to a small value type.
 *
 * The key ~0 (never a line-aligned address) marks an empty slot, so no
 * separate occupancy metadata is needed. Values must be cheap to move
 * (the table relocates them on growth and on backward-shift erase) and
 * default-constructible. References returned by insertOrFind()/find()
 * are invalidated by any subsequent insert or erase.
 */
template <typename V>
class FlatAddrMap
{
  public:
    explicit FlatAddrMap(std::size_t initialCapacity = 64)
    {
        std::size_t cap = 16;
        while (cap < initialCapacity)
            cap <<= 1;
        _slots.resize(cap);
        _shift = 64 - log2OfPow2(cap);
    }

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _slots.size(); }

    /** Find the value for @p key, or insert a default-constructed one. */
    V &
    insertOrFind(Addr key)
    {
        if ((_size + 1) * 4 > _slots.size() * 3)
            grow();
        std::size_t i = idealSlot(key);
        while (true) {
            if (_slots[i].key == key)
                return _slots[i].value;
            if (_slots[i].key == kEmptyKey) {
                _slots[i].key = key;
                ++_size;
                return _slots[i].value;
            }
            i = (i + 1) & mask();
        }
    }

    V *
    find(Addr key)
    {
        std::size_t i = idealSlot(key);
        while (true) {
            if (_slots[i].key == key)
                return &_slots[i].value;
            if (_slots[i].key == kEmptyKey)
                return nullptr;
            i = (i + 1) & mask();
        }
    }

    const V *
    find(Addr key) const
    {
        return const_cast<FlatAddrMap *>(this)->find(key);
    }

    /**
     * Remove @p key, repairing the probe sequence by shifting every
     * displaced follower back toward its ideal slot (no tombstones).
     *
     * @return true if the key was present.
     */
    bool
    erase(Addr key)
    {
        std::size_t pos = idealSlot(key);
        while (true) {
            if (_slots[pos].key == key)
                break;
            if (_slots[pos].key == kEmptyKey)
                return false;
            pos = (pos + 1) & mask();
        }
        std::size_t next = (pos + 1) & mask();
        while (_slots[next].key != kEmptyKey) {
            const std::size_t home = idealSlot(_slots[next].key);
            // The follower may move into the hole only if doing so does
            // not lift it above its home slot in probe order.
            if (((next - home) & mask()) >= ((next - pos) & mask())) {
                _slots[pos] = std::move(_slots[next]);
                pos = next;
            }
            next = (next + 1) & mask();
        }
        _slots[pos].key = kEmptyKey;
        _slots[pos].value = V{};
        --_size;
        return true;
    }

    /** Visit every (key, value) pair; do not mutate the table inside. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : _slots) {
            if (s.key != kEmptyKey)
                fn(s.key, s.value);
        }
    }

    /** Empty the table, keeping its grown capacity for reuse. */
    void
    clear()
    {
        if (_size == 0)
            return;
        for (Slot &s : _slots) {
            if (s.key != kEmptyKey) {
                s.key = kEmptyKey;
                s.value = V{};
            }
        }
        _size = 0;
    }

  private:
    struct Slot
    {
        Addr key = kEmptyKey;
        V value{};
    };

    /** Never a line-aligned address, so it can mark empty slots. */
    static constexpr Addr kEmptyKey = ~static_cast<Addr>(0);

    static unsigned
    log2OfPow2(std::size_t v)
    {
        unsigned r = 0;
        while ((std::size_t{1} << r) < v)
            ++r;
        return r;
    }

    std::size_t mask() const { return _slots.size() - 1; }

    /** Fibonacci hash of the line number, folded to a slot index. */
    std::size_t
    idealSlot(Addr key) const
    {
        return static_cast<std::size_t>(
            (lineNum(key) * UINT64_C(0x9E3779B97F4A7C15)) >> _shift);
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(_slots);
        _slots.clear();
        _slots.resize(old.size() * 2);
        _shift = 64 - log2OfPow2(_slots.size());
        _size = 0;
        for (Slot &s : old) {
            if (s.key != kEmptyKey)
                insertOrFind(s.key) = std::move(s.value);
        }
    }

    std::vector<Slot> _slots;
    std::size_t _size = 0;
    unsigned _shift = 0;
};

/**
 * Index-based freelist arena for intrusive singly-linked list nodes.
 *
 * alloc() pops a recycled node (LIFO) or appends one; free() pushes the
 * node back after resetting its payload to T{} (releasing any resources
 * a move-only payload holds). The embedded `next` index serves both the
 * caller's intrusive list and the internal free list.
 */
template <typename T>
class NodePool
{
  public:
    /** Null link / "end of list". */
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    std::uint32_t
    alloc(T &&item)
    {
        std::uint32_t idx;
        if (_freeHead != kNil) {
            idx = _freeHead;
            _freeHead = _nodes[idx].next;
        } else {
            simAssert(_nodes.size() < kNil, "NodePool overflow");
            idx = static_cast<std::uint32_t>(_nodes.size());
            _nodes.emplace_back();
        }
        _nodes[idx].item = std::move(item);
        _nodes[idx].next = kNil;
        ++_live;
        return idx;
    }

    void
    release(std::uint32_t idx)
    {
        _nodes[idx].item = T{};
        _nodes[idx].next = _freeHead;
        _freeHead = idx;
        --_live;
    }

    T &at(std::uint32_t idx) { return _nodes[idx].item; }
    const T &at(std::uint32_t idx) const { return _nodes[idx].item; }

    std::uint32_t next(std::uint32_t idx) const { return _nodes[idx].next; }
    void setNext(std::uint32_t idx, std::uint32_t n) { _nodes[idx].next = n; }

    /** Nodes currently handed out. */
    std::size_t live() const { return _live; }

    /** High-water mark: nodes ever created (pool footprint). */
    std::size_t allocated() const { return _nodes.size(); }

  private:
    struct Node
    {
        T item{};
        std::uint32_t next = kNil;
    };

    std::vector<Node> _nodes;
    std::uint32_t _freeHead = kNil;
    std::size_t _live = 0;
};

/**
 * FIFO intrusive list head/tail pair over NodePool indices. The pool is
 * passed to each operation so the (tiny, POD) links can live inside
 * FlatAddrMap values without back-pointers.
 */
struct ListRef
{
    std::uint32_t head = 0xFFFFFFFFu;
    std::uint32_t tail = 0xFFFFFFFFu;

    bool empty() const { return head == 0xFFFFFFFFu; }

    template <typename Pool>
    void
    pushBack(Pool &pool, std::uint32_t node)
    {
        pool.setNext(node, Pool::kNil);
        if (empty())
            head = node;
        else
            pool.setNext(tail, node);
        tail = node;
    }

    /** Unlink and return the head node (list must be non-empty). */
    template <typename Pool>
    std::uint32_t
    popFront(Pool &pool)
    {
        const std::uint32_t node = head;
        head = pool.next(node);
        if (head == Pool::kNil)
            tail = Pool::kNil;
        return node;
    }
};

} // namespace persim::cache

#endif // PERSIM_CACHE_FLAT_TABLE_HH
