/**
 * @file
 * One bank of the shared, inclusive, multi-banked last-level cache.
 */

#ifndef PERSIM_CACHE_LLC_BANK_HH
#define PERSIM_CACHE_LLC_BANK_HH

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "noc/network_interface.hh"
#include "sim/inline_callback.hh"
#include "persist/flush_engine.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::persist
{
class PersistController;
} // namespace persim::persist

namespace persim::cache
{

enum class WritebackKind; // see l1_cache.hh

/** LLC bank parameters (Table 1: 1MB x 32 tiles, 16-way). */
struct LlcBankConfig
{
    CacheGeometry geometry{1024 * 1024, 16};
    Tick accessLatency = 30;
    /** Bits to strip before set indexing (log2 of the bank count). */
    unsigned setShift = 5;
};

/**
 * One LLC bank: directory home for its address slice, with the epoch-tag
 * extension and a flush engine (§4.1).
 *
 * Requests are serialized per line; each active transaction pins the
 * lines it operates on, so evictions from other transactions cannot
 * interfere. State carried by writebacks updates synchronously (the
 * mesh charges bandwidth), so the directory is always exact and the
 * transaction code only needs to re-validate, never to reconcile races.
 */
class LlcBank : public SimObject
{
  public:
    LlcBank(const std::string &name, EventQueue &eq, noc::Mesh &mesh,
            unsigned nodeId, unsigned x, unsigned y, unsigned bankIdx,
            const LlcBankConfig &cfg, persist::PersistController &pc);

    unsigned nodeId() const { return _ni.nodeId(); }
    unsigned bankIdx() const { return _bankIdx; }

    // ------------------------------------------------------------------
    // Request path (invoked at mesh delivery from an L1)
    // ------------------------------------------------------------------

    /** A load/store request from @p core for @p addr. */
    void handleRequest(Addr addr, bool isWrite, CoreId core);

    // ------------------------------------------------------------------
    // Synchronous state transfer from L1s
    // ------------------------------------------------------------------

    /**
     * Accept an L1 writeback / eviction notice for @p addr and update
     * the directory according to @p kind. Persist-tag movement is done
     * by the caller through the PersistController.
     */
    void acceptWriteback(CoreId fromCore, Addr addr, bool dirty,
                         WritebackKind kind);

    // ------------------------------------------------------------------
    // Epoch-flush protocol (§4.1)
    // ------------------------------------------------------------------

    /**
     * FlushEpoch(core, epoch) arrived: flush every line this bank holds
     * for that epoch to the memory controllers, collect PersistAcks and
     * send a BankAck to the arbiter.
     */
    void handleFlushEpoch(CoreId core, EpochId epoch);

    /** PersistCMP broadcast (bookkeeping/stats only in this model). */
    void handlePersistCmp(CoreId core, EpochId epoch);

    persist::FlushEngine &flushEngine() { return _flushEngine; }
    CacheLine *find(Addr addr) { return _array.find(addr); }
    CacheArray &array() { return _array; }
    StatGroup &stats() { return _stats; }

    std::uint64_t requests() const { return _requests.value(); }

    /** Lines with a queued transaction (interval-stat sampling). */
    std::size_t busyLines() const { return _busy.size(); }

    /** Dump in-flight transaction state (deadlock diagnosis). */
    void debugDump(std::ostream &os);

  private:
    struct Txn
    {
        Addr addr = 0;
        bool isWrite = false;
        CoreId core = kNoCore;
    };

    struct FlushJob
    {
        std::uint32_t outstanding = 0;
        bool walked = false;
    };

    // Transaction stages; every stage re-reads line state.
    void beginIfIdle(Addr addr);
    void lookupStage(Txn txn);
    void hitPath(Txn txn);
    void resolveConflictStage(Txn txn);
    void proceedStage(Txn txn);
    void grantWrite(Txn txn);
    void grantRead(Txn txn);
    void missPath(Txn txn);
    void fillAndGrant(Txn txn, CacheLine *way);
    void finish(Txn txn);

    /** Evict the (pinned) line at @p vaddr, honouring persist order. */
    void evictVictim(Addr vaddr, InlineCallback cont);

    /** Unpin addr's line if present, and wake pin-waiters. */
    void unpin(Addr addr);

    /** PersistAck for a flushed line of (core, epoch). */
    void onFlushLineAck(CoreId core, EpochId epoch, Addr addr);
    void maybeBankAck(CoreId core, EpochId epoch);

    unsigned _bankIdx;
    LlcBankConfig _cfg;
    persist::PersistController &_pc;
    StatGroup _stats;
    noc::NetworkInterface _ni;
    CacheArray _array;
    persist::FlushEngine _flushEngine;

    /** Per-line transaction queues; front is active. */
    std::unordered_map<Addr, std::deque<Txn>> _busy;

    /** Waiters blocked on a pinned line (re-run when unpinned). */
    std::unordered_map<Addr, std::vector<InlineCallback>>
        _pinWaiters;

    /** Outstanding flush-line acks per (core, epoch). */
    std::unordered_map<std::uint64_t, FlushJob> _flushJobs;

    static std::uint64_t
    jobKey(CoreId c, EpochId e)
    {
        return (static_cast<std::uint64_t>(c) << 48) ^ e;
    }

    Scalar _requests;
    Scalar _readHits;
    Scalar _writeHits;
    Scalar _missesToMemory;
    Scalar _evictions;
    Scalar _evictionsDirty;
    Scalar _recalls;
    Scalar _invsSent;
    Scalar _flushEpochMsgs;
    Scalar _bankAcksSent;
    Scalar _persistCmpSeen;
    Scalar _linesFlushed;
    Scalar _victimRetries;
};

} // namespace persim::cache

#endif // PERSIM_CACHE_LLC_BANK_HH
