/**
 * @file
 * One bank of the shared, inclusive, multi-banked last-level cache.
 */

#ifndef PERSIM_CACHE_LLC_BANK_HH
#define PERSIM_CACHE_LLC_BANK_HH

#include <string>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/flat_table.hh"
#include "noc/network_interface.hh"
#include "sim/inline_callback.hh"
#include "persist/flush_engine.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::persist
{
class PersistController;
} // namespace persim::persist

namespace persim::cache
{

enum class WritebackKind; // see l1_cache.hh

/** LLC bank parameters (Table 1: 1MB x 32 tiles, 16-way). */
struct LlcBankConfig
{
    CacheGeometry geometry{1024 * 1024, 16};
    Tick accessLatency = 30;
    /** Bits to strip before set indexing (log2 of the bank count). */
    unsigned setShift = 5;
    /**
     * Backoff before re-scanning for a victim when every way of the
     * target set is pinned by in-flight transactions. The default (8
     * cycles) matches the historical hardcoded value, so figure sweeps
     * are unchanged unless a spec overrides it.
     */
    Tick pinnedRetryInterval = 8;
};

/**
 * One LLC bank: directory home for its address slice, with the epoch-tag
 * extension and a flush engine (§4.1).
 *
 * Requests are serialized per line; each active transaction pins the
 * lines it operates on, so evictions from other transactions cannot
 * interfere. State carried by writebacks updates synchronously (the
 * mesh charges bandwidth), so the directory is always exact and the
 * transaction code only needs to re-validate, never to reconcile races.
 *
 * Per-line request-path state (the transaction queue and the list of
 * requests blocked on a pinned line) lives in one open-addressed
 * FlatAddrMap whose slots hold intrusive list heads into per-bank node
 * pools — no per-request allocation in steady state, and no pointer
 * chasing on the busy-table lookups that dominate the bank's runtime.
 */
class LlcBank : public SimObject
{
  public:
    /** One queued request; front of a line's queue is the active txn. */
    struct Txn
    {
        Addr addr = 0;
        bool isWrite = false;
        CoreId core = kNoCore;
    };

    LlcBank(const std::string &name, EventQueue &eq, noc::Mesh &mesh,
            unsigned nodeId, unsigned x, unsigned y, unsigned bankIdx,
            const LlcBankConfig &cfg, persist::PersistController &pc);

    unsigned nodeId() const { return _ni.nodeId(); }
    unsigned bankIdx() const { return _bankIdx; }

    // ------------------------------------------------------------------
    // Request path (invoked at mesh delivery from an L1)
    // ------------------------------------------------------------------

    /** A load/store request from @p core for @p addr. */
    void handleRequest(Addr addr, bool isWrite, CoreId core);

    /**
     * The active (front-of-queue) transaction for @p addr. Panics with
     * the bank name and address when no transaction is queued — every
     * deferred stage resolves its transaction through here, so a
     * protocol bug surfaces as a diagnosable panic instead of an opaque
     * out-of-range error from a container.
     */
    Txn activeTxnFor(Addr addr) const;

    // ------------------------------------------------------------------
    // Synchronous state transfer from L1s
    // ------------------------------------------------------------------

    /**
     * Accept an L1 writeback / eviction notice for @p addr and update
     * the directory according to @p kind. Persist-tag movement is done
     * by the caller through the PersistController. Dirty-path callers
     * that already resolved the bank line (for the dirty-bit merge)
     * pass it as @p line to skip the second tag probe.
     */
    void acceptWriteback(CoreId fromCore, Addr addr, bool dirty,
                         WritebackKind kind, CacheLine *line = nullptr);

    // ------------------------------------------------------------------
    // Epoch-flush protocol (§4.1)
    // ------------------------------------------------------------------

    /**
     * FlushEpoch(core, epoch) arrived: flush every line this bank holds
     * for that epoch to the memory controllers, collect PersistAcks and
     * send a BankAck to the arbiter.
     */
    void handleFlushEpoch(CoreId core, EpochId epoch);

    /** PersistCMP broadcast (bookkeeping/stats only in this model). */
    void handlePersistCmp(CoreId core, EpochId epoch);

    persist::FlushEngine &flushEngine() { return _flushEngine; }
    CacheLine *find(Addr addr) { return _array.find(addr); }
    CacheArray &array() { return _array; }
    StatGroup &stats() { return _stats; }

    std::uint64_t requests() const { return _requests.value(); }

    /** Lines with a queued transaction (interval-stat sampling). */
    std::size_t busyLines() const { return _busyLineCount; }

    /** Dump in-flight transaction state (deadlock diagnosis). */
    void debugDump(std::ostream &os);

    // ------------------------------------------------------------------
    // Test hooks (white-box pin-waiter coverage; not used by the model)
    // ------------------------------------------------------------------

    /** Enqueue a waiter as if @p addr were pinned (tests only). */
    void
    testAddPinWaiter(Addr addr, InlineCallback cb)
    {
        addPinWaiter(lineAlign(addr), std::move(cb));
    }

    /** Drive the unpin/wake path directly (tests only). */
    void testUnpin(Addr addr) { unpin(lineAlign(addr)); }

    /** Number of waiters queued on @p addr (tests only). */
    std::size_t testPinWaiters(Addr addr) const;

  private:
    using TxnPool = NodePool<Txn>;
    using WaiterPool = NodePool<InlineCallback>;

    /**
     * Flat-map slot for one line: FIFO transaction queue plus FIFO
     * pin-waiter list, both as index chains into the bank pools. An
     * entry exists iff at least one of the lists is non-empty.
     */
    struct LineEntry
    {
        ListRef txns;
        ListRef waiters;
        std::uint32_t txnCount = 0;
    };

    /** Outstanding flush-line acks for one (core, epoch). */
    struct FlushJob
    {
        CoreId core = kNoCore;
        EpochId epoch = kNoEpoch;
        std::uint32_t outstanding = 0;
        bool walked = false;
    };

    // Transaction stages; every stage re-reads line state.
    void beginIfIdle(Addr addr);
    void lookupStage(Txn txn);
    void hitPath(Txn txn);
    void resolveConflictStage(Txn txn);
    void proceedStage(Txn txn);
    void grantWrite(Txn txn);
    void grantRead(Txn txn);
    void missPath(Txn txn);
    void fillAndGrant(Txn txn, CacheLine *way);
    void finish(Txn txn);

    /** Evict the (pinned) line at @p vaddr, honouring persist order. */
    void evictVictim(Addr vaddr, InlineCallback cont);

    /** Unpin addr's line if present, and wake pin-waiters. */
    void unpin(Addr addr);

    /** Queue @p cb to re-run once @p addr is unpinned. */
    void addPinWaiter(Addr addr, InlineCallback cb);

    /** Detach and invoke every waiter queued on @p addr (FIFO). */
    void drainPinWaiters(Addr addr);

    /** PersistAck for a flushed line of (core, epoch). */
    void onFlushLineAck(CoreId core, EpochId epoch, Addr addr);
    void maybeBankAck(CoreId core, EpochId epoch);

    FlushJob *findFlushJob(CoreId core, EpochId epoch);

    unsigned _bankIdx;
    LlcBankConfig _cfg;
    persist::PersistController &_pc;
    StatGroup _stats;
    noc::NetworkInterface _ni;
    CacheArray _array;
    persist::FlushEngine _flushEngine;

    /** Per-line request state; see LineEntry. */
    FlatAddrMap<LineEntry> _lines;
    TxnPool _txnPool;
    WaiterPool _waiterPool;
    /** Entries whose transaction queue is non-empty (busyLines()). */
    std::size_t _busyLineCount = 0;

    /**
     * In-flight FlushEpoch jobs. A bank serves at most a handful of
     * epochs at once (maxInflightEpochs x cores reaching this bank), so
     * a linearly scanned flat vector beats a hash table here.
     */
    std::vector<FlushJob> _flushJobs;

    Scalar _requests;
    Scalar _readHits;
    Scalar _writeHits;
    Scalar _missesToMemory;
    Scalar _evictions;
    Scalar _evictionsDirty;
    Scalar _recalls;
    Scalar _invsSent;
    Scalar _flushEpochMsgs;
    Scalar _bankAcksSent;
    Scalar _persistCmpSeen;
    Scalar _linesFlushed;
    Scalar _victimRetries;
    Scalar _pinWaits;
    Scalar _flushSkipsPinned;
};

} // namespace persim::cache

#endif // PERSIM_CACHE_LLC_BANK_HH
