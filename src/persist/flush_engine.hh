/**
 * @file
 * Flush-engine bookkeeping: which lines belong to which epoch (§4.3).
 *
 * The paper's hardware keeps a per-epoch bitmap over cache sets (512B per
 * LLC bank) to find an epoch's dirty lines without a full walk. The
 * simulator keeps exact per-epoch address sets — functionally what the
 * bitmap accelerates — and models the walk cost as a per-line issue rate.
 *
 * The sets are flat open-addressed tables (cache::FlatAddrMap), not
 * std::unordered_set: every tagged store lands in addLine(), and the
 * node-based set showed up in profiles as malloc/rehash churn. Buckets
 * live in a dense vector keyed by a parallel (core, epoch) array — a
 * handful are live at any time, so a linear key scan beats hashing —
 * and emptied buckets park their grown table in a spare pool, so the
 * per-epoch create/destroy cycle reuses storage instead of
 * re-allocating it.
 */

#ifndef PERSIM_PERSIST_FLUSH_ENGINE_HH
#define PERSIM_PERSIST_FLUSH_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/flat_table.hh"
#include "sim/types.hh"

namespace persim::persist
{

/**
 * Per-cache line-set bookkeeping for epoch flushes.
 *
 * One instance lives in each L1 controller and each LLC bank. A line
 * address appears in at most one (core, epoch) bucket of at most one
 * engine system-wide: the bucket of the epoch that owns the line's
 * current unpersisted incarnation, at the level holding the dirty copy.
 */
class FlushEngine
{
  public:
    explicit FlushEngine(std::string name) : _name(std::move(name)) {}

    /** Record that (core, epoch) owns the dirty line @p addr here. */
    void addLine(CoreId core, EpochId epoch, Addr addr);

    /**
     * Remove @p addr from (core, epoch)'s bucket (the incarnation moved
     * to another level, persisted, or was stolen by an overwrite).
     *
     * @return true if the line was present.
     */
    bool removeLine(CoreId core, EpochId epoch, Addr addr);

    /** True if (core, epoch) currently owns @p addr at this level. */
    bool hasLine(CoreId core, EpochId epoch, Addr addr) const;

    /** Number of lines (core, epoch) owns at this level. */
    std::size_t count(CoreId core, EpochId epoch) const;

    /**
     * Remove and return every line of (core, epoch) (ordered by address
     * for determinism); used when the bank flush walk starts.
     */
    std::vector<Addr> takeAll(CoreId core, EpochId epoch);

    /**
     * Return (without removing) every line of (core, epoch), address-
     * ordered; the L1 walk uses this because each writeback moves its
     * own entry to the bank engine.
     */
    std::vector<Addr> snapshot(CoreId core, EpochId epoch) const;

    /** Total lines tracked across all epochs (diagnostics). */
    std::size_t totalLines() const { return _totalLines; }

    const std::string &name() const { return _name; }

  private:
    /** The address set of one (core, epoch); values carry no payload. */
    using LineSet = cache::FlatAddrMap<char>;

    struct BucketKey
    {
        CoreId core;
        EpochId epoch;
    };

    static constexpr std::size_t kNone = ~static_cast<std::size_t>(0);

    /** Index of the (core, epoch) bucket, or kNone. */
    std::size_t indexOf(CoreId core, EpochId epoch) const;

    /** Park bucket @p idx's table in the spare pool (must be empty). */
    void recycleBucket(std::size_t idx);

    std::string _name;
    /** Parallel arrays: _keys[i] owns the lines in _sets[i]. */
    std::vector<BucketKey> _keys;
    std::vector<LineSet> _sets;
    /** Emptied tables kept for reuse across the epoch lifecycle. */
    std::vector<LineSet> _spare;
    std::size_t _totalLines = 0;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_FLUSH_ENGINE_HH
