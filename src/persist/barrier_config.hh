/**
 * @file
 * Configuration of the persist barrier implementation and its variants.
 */

#ifndef PERSIM_PERSIST_BARRIER_CONFIG_HH
#define PERSIM_PERSIST_BARRIER_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace persim::persist
{

/** The barrier implementations evaluated in the paper. */
enum class BarrierKind
{
    None,  // NP: no persistence tracking at all
    LB,    // Condit et al. lazy barrier (state of the art baseline)
    LBIDT, // LB + inter-thread dependence tracking
    LBPF,  // LB + proactive flushing
    LBPP,  // LB++ = LB + IDT + PF (the paper's contribution)
};

/** Human-readable name, matching the paper's figures. */
const char *toString(BarrierKind kind);

/** Tunables of the persist-barrier hardware (§4.3 defaults). */
struct BarrierConfig
{
    /** Master switch; false models No Persistency (NP). */
    bool enabled = true;

    /** Track inter-thread dependences in hardware (IDT, §3.1). */
    bool idt = false;

    /** Flush completed epochs proactively (PF, §3.2). */
    bool proactiveFlush = false;

    /**
     * Use an invalidating flush (clflush-like) instead of the
     * non-invalidating clwb-like flush the paper recommends (§3.2, §7).
     */
    bool invalidatingFlush = false;

    /** Split ongoing source epochs to avoid persistence deadlocks (§3.3). */
    bool splitOngoing = true;

    /** Hardware undo logging for BSP (§5.2.1). */
    bool logging = false;

    /**
     * Lines of processor state checkpointed per epoch (BSP, §6: general
     * purpose + special + privilege + FP registers; ~1KB = 16 lines).
     */
    unsigned checkpointLines = 0;

    /** In-flight epochs per core (3-bit EpochID in the paper). */
    unsigned maxInflightEpochs = 8;

    /** IDT dependence/inform register pairs per epoch. */
    unsigned idtRegsPerEpoch = 4;

    /**
     * Barrier blocks until the closed epoch persists (Epoch Persistency;
     * false gives Buffered Epoch Persistency).
     */
    bool blockingBarrier = false;

    /**
     * Every store persists before the next becomes visible: the naive
     * write-through design used as the Strict Persistency strawman.
     */
    bool writeThrough = false;

    /** Prefer untagged LLC victims to avoid replacement conflicts. */
    bool avoidTaggedVictims = true;

    /** Cycles between successive line-flush issues in a flush walk. */
    Tick flushIssueInterval = 1;

    /**
     * Use the per-core arbiter for flush coordination (O(n) messages).
     * When false, banks exchange all-to-all completion messages (the
     * O(n^2) strawman of §4.1) — same timing path, more mesh traffic.
     */
    bool useArbiter = true;

    /** Build the configuration for one of the paper's barrier variants. */
    static BarrierConfig forKind(BarrierKind kind);
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_BARRIER_CONFIG_HH
