#include "persist/idt_registers.hh"

#include <algorithm>

namespace persim::persist
{

bool
IdtRegs::contains(const IdtEntry &e) const
{
    return std::find(_entries.begin(), _entries.end(), e) !=
           _entries.end();
}

bool
IdtRegs::add(const IdtEntry &e)
{
    if (contains(e))
        return true;
    if (full())
        return false;
    _entries.push_back(e);
    return true;
}

bool
IdtRegs::remove(const IdtEntry &e)
{
    auto it = std::find(_entries.begin(), _entries.end(), e);
    if (it == _entries.end())
        return false;
    _entries.erase(it);
    return true;
}

} // namespace persim::persist
