/**
 * @file
 * Per-core NVRAM undo-log and checkpoint regions (§5.2.1, §6).
 */

#ifndef PERSIM_PERSIST_UNDO_LOG_HH
#define PERSIM_PERSIST_UNDO_LOG_HH

#include "sim/types.hh"

namespace persim::persist
{

/**
 * Address-space layout and cursors for the hardware undo log.
 *
 * Each core owns a circular log region and a circular checkpoint region
 * in NVRAM, far above the workload heap. The simulator only needs the
 * addresses (for controller routing and bandwidth); recovery contents
 * are not modelled.
 */
class UndoLog
{
  public:
    /** Base of the per-core undo-log regions. */
    static constexpr Addr kLogBase = Addr{1} << 40;

    /** Base of the per-core checkpoint regions. */
    static constexpr Addr kCheckpointBase = Addr{1} << 41;

    /** Size of one core's log (and checkpoint) region. */
    static constexpr Addr kRegionBytes = Addr{16} * 1024 * 1024;

    explicit UndoLog(CoreId core)
        : _logBase(kLogBase + kRegionBytes * core),
          _ckptBase(kCheckpointBase + kRegionBytes * core)
    {
    }

    /** Next log-entry line address (the region is circular). */
    Addr
    nextLogLine()
    {
        Addr a = _logBase + _logCursor;
        _logCursor = (_logCursor + kLineBytes) % kRegionBytes;
        return a;
    }

    /** Next checkpoint line address. */
    Addr
    nextCheckpointLine()
    {
        Addr a = _ckptBase + _ckptCursor;
        _ckptCursor = (_ckptCursor + kLineBytes) % kRegionBytes;
        return a;
    }

    /** True if @p addr falls in any log/checkpoint region. */
    static bool
    isLogSpace(Addr addr)
    {
        return addr >= kLogBase;
    }

  private:
    Addr _logBase;
    Addr _ckptBase;
    Addr _logCursor = 0;
    Addr _ckptCursor = 0;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_UNDO_LOG_HH
