/**
 * @file
 * The per-core epoch record: the unit of persist ordering.
 */

#ifndef PERSIM_PERSIST_EPOCH_HH
#define PERSIM_PERSIST_EPOCH_HH

#include <cstdint>
#include <vector>

#include "persist/idt_registers.hh"
#include "sim/inline_callback.hh"
#include "sim/types.hh"

namespace persim::persist
{

/**
 * Lifecycle of an epoch.
 *
 * Ongoing: the core is still executing instructions in it.
 * Completed: its persist barrier retired and all its stores drained the
 *            write buffer; its line set is final.
 * Flushing: the arbiter is running the epoch-flush handshake for it.
 * Persisted: every line (and log/checkpoint write) is durable; the epoch
 *            has retired from the in-flight window.
 */
enum class EpochState : std::uint8_t
{
    Ongoing,
    Completed,
    Flushing,
    Persisted,
};

/** Why an epoch's flush was initiated (paper Figure 12 taxonomy). */
enum class FlushCause : std::uint8_t
{
    None,        // not yet flushed
    IntraThread, // store hit an older unpersisted epoch of the same core
    InterThread, // another core touched this epoch's line (no/full IDT)
    Replacement, // an LLC victim belonged to this (or a newer) epoch
    Proactive,   // PF: flushed on completion, off the critical path
    Barrier,     // blocking barrier (EP / SP models)
    Drain,       // end-of-run drain
};

/** One in-flight epoch of one core. */
struct Epoch
{
    Epoch(EpochId id_, unsigned idtCapacity)
        : id(id_), depRegs(idtCapacity), informRegs(idtCapacity)
    {
    }

    EpochId id;
    EpochState state = EpochState::Ongoing;

    /**
     * The barrier ending this epoch has executed; no new stores tag it.
     * Stores tag at completion (drain) time and the barrier drains the
     * write buffer first, so closed epochs are complete: their line set
     * is final (this is what makes §3.3's deadlock-avoidance argument
     * hold — a closed epoch can never issue another memory request).
     */
    bool closed = false;

    /** Line incarnations currently owned by this epoch (L1 + LLC). */
    std::uint64_t linesLive = 0;

    /** Line flushes sent to memory controllers, awaiting PersistAck. */
    std::uint32_t flushesInFlight = 0;

    /** Undo-log line writes not yet durable (BSP with logging). */
    std::uint32_t logWritesPending = 0;

    /** Checkpoint line writes not yet durable (BSP). */
    std::uint32_t checkpointPending = 0;

    /** BankAcks still expected while Flushing. */
    std::uint32_t bankAcksPending = 0;

    /** First cause that initiated this epoch's flush. */
    FlushCause flushCause = FlushCause::None;

    /** Flushing: the undo log drained and the bank phase began. */
    bool bankPhaseStarted = false;

    /** Flushing: the full FlushEpoch/BankAck handshake is in use. */
    bool usedHandshake = false;

    /** True if any request conflicted with this epoch (Figure 12). */
    bool conflicted = false;

    /** IDT: source epochs this epoch must not persist before. */
    IdtRegs depRegs;

    /** IDT: dependent epochs to notify once this epoch persists. */
    IdtRegs informRegs;

    /** Continuations to run when the epoch is Persisted. */
    std::vector<InlineCallback> persistWaiters;

    /** Continuations to run when the epoch closes (deadlock-prone LB
     * mode waits here for ongoing source epochs to end naturally). */
    std::vector<InlineCallback> closeWaiters;

    /** Remote sources already asked (once) to flush (IDT pull). */
    std::vector<IdtEntry> pullsSent;

    /** Total stores executed in this epoch (stats / BSP sizing). */
    std::uint64_t storeCount = 0;

    /** Tick the epoch opened (observability: epoch-lifecycle span). */
    Tick openTick = 0;

    /** Tick the arbiter started flushing it; kTickNever until then. */
    Tick flushStartTick = kTickNever;

    /**
     * Reinitialize this record for a fresh epoch @p newId.
     *
     * Epoch records live in the EpochTable's fixed ring and are reused
     * when their slot comes around again, so the vectors keep their
     * capacity across epochs — the steady state allocates nothing.
     */
    void
    reset(EpochId newId)
    {
        id = newId;
        state = EpochState::Ongoing;
        closed = false;
        linesLive = 0;
        flushesInFlight = 0;
        logWritesPending = 0;
        checkpointPending = 0;
        bankAcksPending = 0;
        flushCause = FlushCause::None;
        bankPhaseStarted = false;
        usedHandshake = false;
        conflicted = false;
        depRegs.clear();
        informRegs.clear();
        persistWaiters.clear();
        closeWaiters.clear();
        pullsSent.clear();
        storeCount = 0;
        openTick = 0;
        flushStartTick = kTickNever;
    }

    bool ongoing() const { return state == EpochState::Ongoing; }
    bool persisted() const { return state == EpochState::Persisted; }

    /** The epoch closed: its lines are final. */
    bool
    readyToComplete() const
    {
        return closed && state == EpochState::Ongoing;
    }
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_EPOCH_HH
