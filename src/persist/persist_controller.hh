/**
 * @file
 * Global persist-barrier controller: policy, wiring, conflict resolution.
 */

#ifndef PERSIM_PERSIST_PERSIST_CONTROLLER_HH
#define PERSIM_PERSIST_PERSIST_CONTROLLER_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_line.hh"
#include "persist/barrier_config.hh"
#include "persist/epoch_arbiter.hh"
#include "persist/epoch_observer.hh"
#include "sim/inline_callback.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::cache
{
class L1Cache;
class LlcBank;
} // namespace persim::cache

namespace persim::noc
{
class Mesh;
} // namespace persim::noc

namespace persim::nvm
{
class MemoryController;
} // namespace persim::nvm

namespace persim::persist
{

/**
 * The brain of the persist-barrier implementation.
 *
 * Owns the per-core arbiters and implements the conflict taxonomy of §3:
 * caches call in at the hook points (store performing at L1, request
 * resolution at an LLC bank, LLC victim selection) and the controller
 * resolves intra-thread, inter-thread and replacement conflicts according
 * to the configured barrier variant (LB / LB+IDT / LB+PF / LB++).
 */
class PersistController : public SimObject
{
  public:
    PersistController(const std::string &name, EventQueue &eq,
                      const BarrierConfig &cfg, unsigned numCores);
    ~PersistController() override;

    /** Wire up the memory system (call once, after construction). */
    void connect(std::vector<cache::L1Cache *> l1s,
                 std::vector<cache::LlcBank *> banks,
                 std::vector<nvm::MemoryController *> mcs,
                 noc::Mesh *mesh);

    /** Attach the epoch observer (ordering checker); may be nullptr. */
    void setObserver(EpochObserver *obs) { _observer = obs; }

    bool enabled() const { return _cfg.enabled; }
    const BarrierConfig &config() const { return _cfg; }
    EpochObserver *observer() { return _observer; }

    EpochArbiter &arbiter(CoreId core) { return *_arbiters[core]; }
    unsigned numCores() const { return static_cast<unsigned>(_arbiters.size()); }

    cache::L1Cache &l1(CoreId core) { return *_l1s[core]; }
    cache::LlcBank &bank(unsigned idx) { return *_banks[idx]; }
    unsigned numBanks() const { return static_cast<unsigned>(_banks.size()); }
    nvm::MemoryController &mcFor(Addr addr);
    noc::Mesh &mesh() { return *_mesh; }

    // ------------------------------------------------------------------
    // L1-side hooks
    // ------------------------------------------------------------------

    /**
     * A store by @p core is about to perform on an L1-resident
     * exclusive @p line. Resolves an intra-thread conflict (line tagged
     * with an older unpersisted epoch of the same core, §3.2) before
     * running @p cont.
     */
    void beforeL1Store(CoreId core, cache::CacheLine &line,
                       InlineCallback cont);

    /**
     * Header-inlined fast form of beforeL1Store (DESIGN.md §3a.2):
     * true when the store may perform immediately — persistence off,
     * an untagged line, or the common same-epoch coalescing store —
     * exactly the cases where beforeL1Store would run its continuation
     * synchronously without touching any state. The caller then skips
     * constructing the continuation callback entirely; any other case
     * (stale persisted tag, intra-thread conflict) must go through
     * beforeL1Store.
     */
    bool
    tryFastStore(CoreId core, const cache::CacheLine &line)
    {
        if (!_cfg.enabled || !line.tagged())
            return true;
        return line.epochCore() == core &&
               line.epochId() == arbiter(core).currentEpoch();
    }

    /**
     * The store performed: tag the line with the core's current epoch
     * (stores tag at completion time), track the incarnation, and (BSP
     * with logging) emit the undo-log write for a first modification.
     *
     * Inlined so the same-epoch coalescing store — the bulk of all
     * stores — is a counter bump plus one assert, with no out-of-line
     * call; first-touch tagging takes the out-of-line tail.
     */
    void
    afterL1Store(CoreId core, cache::CacheLine &line)
    {
        if (!_cfg.enabled)
            return;
        // Stores tag at completion time with the current epoch (§2.1).
        Epoch &e = arbiter(core).notePerformedStore();
        if (line.tagged()) {
            simAssert(line.epochCore() == core && line.epochId() == e.id,
                      "store performed over a foreign incarnation: line "
                      "0x", std::hex, line.addr(), std::dec, " tagged "
                      "(core ", line.epochCore(), ", epoch ",
                      line.epochId(), ") but store is (core ", core,
                      ", epoch ", e.id, ")");
            return; // same-epoch coalescing: nothing new to track
        }
        afterL1StoreTagNew(core, line, e);
    }

    /**
     * A dirty L1 line was written back into the LLC (natural eviction,
     * downgrade, or flush walk): move its incarnation bookkeeping from
     * the L1's flush engine to the bank's and tag the LLC copy.
     */
    void onL1Writeback(CoreId core, const cache::CacheLine &l1Line,
                       cache::CacheLine &llcLine, unsigned bankIdx);

    // ------------------------------------------------------------------
    // Bank-side hooks
    // ------------------------------------------------------------------

    /**
     * A request by @p reqCore reached LLC @p line, which may carry an
     * unpersisted tag. Resolves intra-thread (§3.2), inter-thread
     * (§3.1, with IDT when enabled) and deadlock (§3.3) situations,
     * then runs @p cont. The caller re-reads line state afterwards —
     * resolution may have flushed or invalidated it.
     */
    void resolveBankAccess(unsigned bankIdx, CoreId reqCore, bool isWrite,
                           Addr addr, InlineCallback cont);

    /**
     * True when a write grant to @p reqCore must re-run conflict
     * resolution first: a split advanced the requester's epoch while
     * the transaction was in flight, leaving an unpersisted same-core
     * tag from an older epoch on the line.
     */
    bool writeGrantNeedsResolve(unsigned bankIdx, CoreId reqCore,
                                Addr addr);

    /**
     * The bank is about to grant write ownership of @p line to
     * @p reqCore: transfer or steal the incarnation.
     * Returns the tag the L1 fill should carry (same-epoch transfer),
     * or an empty tag.
     */
    IdtEntry onBankGrantWrite(unsigned bankIdx, CoreId reqCore,
                              cache::CacheLine &line);

    /**
     * The bank wants to evict tagged @p victim: a replacement conflict.
     * Flushes epochs up to the victim's, then runs @p cont; the caller
     * re-checks the victim (the flush untags it; an invalidating flush
     * removes it entirely).
     */
    void beforeLlcEviction(unsigned bankIdx, cache::CacheLine &victim,
                           InlineCallback cont);

    // ------------------------------------------------------------------
    // End of run
    // ------------------------------------------------------------------

    /** Drain every core's epochs; @p cont when all are persisted. */
    void drainAll(InlineCallback cont);

    /** Dump all persist-related stat groups. */
    void dumpStats(std::ostream &os);

    /** Collect stats into a flat map. */
    void statsToMap(std::map<std::string, double> &out);

    /** Append this controller's stat groups (own + per-core arbiters). */
    void collectStatGroups(std::vector<const StatGroup *> &out) const;

    // Aggregate counters (summed over arbiters where applicable).
    StatGroup statGroup;
    Scalar statIntraConflicts;
    Scalar statInterConflicts;
    Scalar statReplacementConflicts;
    Scalar statIdtResolutions;   // inter-thread conflicts absorbed by IDT
    Scalar statOnlineFlushWaits; // requests that waited for a flush
    Scalar statStealsClean;      // overwrite took an un-flushed incarnation
    Scalar statStealsInFlight;   // overwrite raced an in-flight flush
    Scalar statProtocolMessages; // flush-protocol control messages
    Distribution statConflictWait; // cycles a conflicting request waited

  private:
    friend class EpochArbiter;

    /** L1 store conflict fixpoint (intra-thread, §3.2). */
    void resolveL1StoreConflict(CoreId core, Addr addr,
                                InlineCallback cont);

    /** afterL1Store tail: first store to @p line in epoch @p e. */
    void afterL1StoreTagNew(CoreId core, cache::CacheLine &line,
                            Epoch &e);

    /** Inter-thread resolution once the source epoch is closed. */
    void resolveInterThreadClosed(CoreId reqCore, bool isWrite,
                                  CoreId srcCore, EpochId srcEpoch,
                                  unsigned bankIdx,
                                  InlineCallback cont);

    /** Mesh round-trip helper: control message to a core's L1 node. */
    void toArbiter(unsigned fromNode, CoreId core,
                   InlineCallback atArbiter);

    BarrierConfig _cfg;
    std::vector<std::unique_ptr<EpochArbiter>> _arbiters;
    std::vector<cache::L1Cache *> _l1s;
    std::vector<cache::LlcBank *> _banks;
    std::vector<nvm::MemoryController *> _mcs;
    noc::Mesh *_mesh = nullptr;
    EpochObserver *_observer = nullptr;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_PERSIST_CONTROLLER_HH
