#include "persist/flush_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace persim::persist
{

void
FlushEngine::addLine(CoreId core, EpochId epoch, Addr addr)
{
    simAssert(core != kNoCore && epoch != kNoEpoch, _name,
              ": untagged line added to flush engine");
    auto [it, inserted] = _buckets[Key{core, epoch}].insert(lineAlign(addr));
    simAssert(inserted, _name, ": line 0x", std::hex, addr, std::dec,
              " already tracked for core ", core, " epoch ", epoch);
}

bool
FlushEngine::removeLine(CoreId core, EpochId epoch, Addr addr)
{
    auto it = _buckets.find(Key{core, epoch});
    if (it == _buckets.end())
        return false;
    bool erased = it->second.erase(lineAlign(addr)) > 0;
    if (it->second.empty())
        _buckets.erase(it);
    return erased;
}

bool
FlushEngine::hasLine(CoreId core, EpochId epoch, Addr addr) const
{
    auto it = _buckets.find(Key{core, epoch});
    return it != _buckets.end() && it->second.contains(lineAlign(addr));
}

std::size_t
FlushEngine::count(CoreId core, EpochId epoch) const
{
    auto it = _buckets.find(Key{core, epoch});
    return it == _buckets.end() ? 0 : it->second.size();
}

std::vector<Addr>
FlushEngine::takeAll(CoreId core, EpochId epoch)
{
    std::vector<Addr> out;
    auto it = _buckets.find(Key{core, epoch});
    if (it == _buckets.end())
        return out;
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
    _buckets.erase(it);
    return out;
}

std::vector<Addr>
FlushEngine::snapshot(CoreId core, EpochId epoch) const
{
    std::vector<Addr> out;
    auto it = _buckets.find(Key{core, epoch});
    if (it == _buckets.end())
        return out;
    out.assign(it->second.begin(), it->second.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t
FlushEngine::totalLines() const
{
    std::size_t total = 0;
    for (const auto &[key, lines] : _buckets)
        total += lines.size();
    return total;
}

} // namespace persim::persist
