#include "persist/flush_engine.hh"

#include <algorithm>

#include "prof/phase.hh"
#include "sim/logging.hh"

namespace persim::persist
{

std::size_t
FlushEngine::indexOf(CoreId core, EpochId epoch) const
{
    for (std::size_t i = 0; i < _keys.size(); ++i) {
        if (_keys[i].core == core && _keys[i].epoch == epoch)
            return i;
    }
    return kNone;
}

void
FlushEngine::recycleBucket(std::size_t idx)
{
    const std::size_t last = _sets.size() - 1;
    _spare.push_back(std::move(_sets[idx]));
    if (idx != last) {
        _sets[idx] = std::move(_sets[last]);
        _keys[idx] = _keys[last];
    }
    _sets.pop_back();
    _keys.pop_back();
}

void
FlushEngine::addLine(CoreId core, EpochId epoch, Addr addr)
{
    prof::ScopedPhase profPhase(prof::Phase::FlushEngine);
    simAssert(core != kNoCore && epoch != kNoEpoch, _name,
              ": untagged line added to flush engine");
    std::size_t idx = indexOf(core, epoch);
    if (idx == kNone) {
        idx = _sets.size();
        _keys.push_back(BucketKey{core, epoch});
        if (!_spare.empty()) {
            _sets.push_back(std::move(_spare.back()));
            _spare.pop_back();
        } else {
            _sets.emplace_back();
        }
    }
    LineSet &set = _sets[idx];
    const std::size_t before = set.size();
    set.insertOrFind(lineAlign(addr));
    simAssert(set.size() == before + 1, _name, ": line 0x", std::hex, addr,
              std::dec, " already tracked for core ", core, " epoch ", epoch);
    ++_totalLines;
}

bool
FlushEngine::removeLine(CoreId core, EpochId epoch, Addr addr)
{
    prof::ScopedPhase profPhase(prof::Phase::FlushEngine);
    const std::size_t idx = indexOf(core, epoch);
    if (idx == kNone)
        return false;
    const bool erased = _sets[idx].erase(lineAlign(addr));
    if (erased) {
        --_totalLines;
        if (_sets[idx].empty())
            recycleBucket(idx);
    }
    return erased;
}

bool
FlushEngine::hasLine(CoreId core, EpochId epoch, Addr addr) const
{
    const std::size_t idx = indexOf(core, epoch);
    return idx != kNone && _sets[idx].find(lineAlign(addr)) != nullptr;
}

std::size_t
FlushEngine::count(CoreId core, EpochId epoch) const
{
    const std::size_t idx = indexOf(core, epoch);
    return idx == kNone ? 0 : _sets[idx].size();
}

std::vector<Addr>
FlushEngine::takeAll(CoreId core, EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::FlushEngine);
    std::vector<Addr> out;
    const std::size_t idx = indexOf(core, epoch);
    if (idx == kNone)
        return out;
    out.reserve(_sets[idx].size());
    _sets[idx].forEach([&out](Addr a, char) { out.push_back(a); });
    std::sort(out.begin(), out.end());
    _totalLines -= out.size();
    _sets[idx].clear();
    recycleBucket(idx);
    return out;
}

std::vector<Addr>
FlushEngine::snapshot(CoreId core, EpochId epoch) const
{
    prof::ScopedPhase profPhase(prof::Phase::FlushEngine);
    std::vector<Addr> out;
    const std::size_t idx = indexOf(core, epoch);
    if (idx == kNone)
        return out;
    out.reserve(_sets[idx].size());
    _sets[idx].forEach([&out](Addr a, char) { out.push_back(a); });
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace persim::persist
