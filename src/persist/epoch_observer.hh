/**
 * @file
 * Observer interface for epoch lifecycle events (ordering validation).
 */

#ifndef PERSIM_PERSIST_EPOCH_OBSERVER_HH
#define PERSIM_PERSIST_EPOCH_OBSERVER_HH

#include "sim/types.hh"

namespace persim::persist
{

/**
 * Receives the epoch-level events the ordering checker needs to rebuild
 * the happens-before order independently of the flush machinery.
 */
class EpochObserver
{
  public:
    virtual ~EpochObserver() = default;

    /** (core, epoch) gained a new line incarnation at @p addr. */
    virtual void onStoreTagged(CoreId core, EpochId epoch, Addr addr) = 0;

    /**
     * (newCore, newEpoch) overwrote @p addr, stealing the incarnation
     * from (oldCore, oldEpoch). @p srcFlushInFlight is true when the old
     * incarnation's flush was already on its way to memory (it will still
     * persist with the old tags).
     */
    virtual void onSteal(CoreId oldCore, EpochId oldEpoch, CoreId newCore,
                         EpochId newEpoch, Addr addr,
                         bool srcFlushInFlight) = 0;

    /** IDT recorded: (depCore, depEpoch) must persist after the source. */
    virtual void onDependence(CoreId depCore, EpochId depEpoch,
                              CoreId srcCore, EpochId srcEpoch) = 0;

    /** The arbiter split (core)'s ongoing epoch; @p prefix closed. */
    virtual void onSplit(CoreId core, EpochId prefix,
                         EpochId remainder) = 0;

    /** The arbiter declared (core, epoch) fully persisted at @p when. */
    virtual void onEpochPersisted(CoreId core, EpochId epoch,
                                  Tick when) = 0;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_EPOCH_OBSERVER_HH
