#include "persist/barrier_config.hh"

namespace persim::persist
{

const char *
toString(BarrierKind kind)
{
    switch (kind) {
      case BarrierKind::None:
        return "NP";
      case BarrierKind::LB:
        return "LB";
      case BarrierKind::LBIDT:
        return "LB+IDT";
      case BarrierKind::LBPF:
        return "LB+PF";
      case BarrierKind::LBPP:
        return "LB++";
    }
    return "?";
}

BarrierConfig
BarrierConfig::forKind(BarrierKind kind)
{
    BarrierConfig cfg;
    switch (kind) {
      case BarrierKind::None:
        cfg.enabled = false;
        break;
      case BarrierKind::LB:
        break;
      case BarrierKind::LBIDT:
        cfg.idt = true;
        break;
      case BarrierKind::LBPF:
        cfg.proactiveFlush = true;
        break;
      case BarrierKind::LBPP:
        cfg.idt = true;
        cfg.proactiveFlush = true;
        break;
    }
    return cfg;
}

} // namespace persim::persist
