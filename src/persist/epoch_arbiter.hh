/**
 * @file
 * The per-core epoch arbiter: orchestrates epoch flushes (§4.1–§4.2).
 */

#ifndef PERSIM_PERSIST_EPOCH_ARBITER_HH
#define PERSIM_PERSIST_EPOCH_ARBITER_HH

#include <ostream>
#include <string>
#include <vector>

#include "persist/barrier_config.hh"
#include "persist/epoch.hh"
#include "persist/epoch_table.hh"
#include "persist/undo_log.hh"
#include "sim/inline_callback.hh"
#include "sim/logging.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::cache
{
class L1Cache;
} // namespace persim::cache

namespace persim::persist
{

class PersistController;

/**
 * The arbiter that sits in one core's L1 controller (Figure 9).
 *
 * It owns the core's in-flight epoch window and runs the epoch-flush
 * handshake: L1 flush walk, FlushEpoch broadcast to all LLC banks,
 * BankAck collection, and the PersistCMP broadcast. It also holds the
 * core's IDT dependence/inform registers and implements epoch splitting
 * for deadlock avoidance.
 */
class EpochArbiter : public SimObject
{
  public:
    EpochArbiter(const std::string &name, EventQueue &eq,
                 PersistController &pc, CoreId core);

    /** Bind the L1 this arbiter shares a controller with. */
    void setL1(cache::L1Cache *l1) { _l1 = l1; }

    CoreId core() const { return _core; }
    EpochTable &table() { return _table; }

    // ------------------------------------------------------------------
    // Core-side interface
    // ------------------------------------------------------------------

    /** Epoch id new stores tag (the current ongoing epoch). */
    EpochId currentEpoch() const { return _cur->id; }

    /**
     * A store performed at the L1: it belongs to the current epoch
     * (stores tag at completion time, §2.1).
     *
     * Header-inlined via the cached current-epoch pointer — the
     * common same-epoch (coalescing) store touches no table state
     * beyond one counter bump. See the _cur invariant below.
     *
     * @return The current epoch.
     */
    Epoch &
    notePerformedStore()
    {
        simAssert(!_cur->closed, name(),
                  ": store performed into a closed epoch");
        ++_cur->storeCount;
        return *_cur;
    }

    /**
     * The core executed a persist barrier (its write buffer already
     * drained — the barrier has store-fence semantics). Closes the
     * current epoch and opens the next (stalling on a full window);
     * with blockingBarrier (EP), @p cont runs only once the closed
     * epoch has persisted.
     */
    void barrier(InlineCallback cont);

    /** End-of-run: close the current epoch and flush everything. */
    void drain(InlineCallback cont);

    // ------------------------------------------------------------------
    // Conflict-resolution interface (called via PersistController)
    // ------------------------------------------------------------------

    /** True if @p epoch has fully persisted (or retired). */
    bool isPersisted(EpochId epoch) const
    {
        return _table.isPersisted(epoch);
    }

    /** True if @p epoch is the current ongoing epoch. */
    bool isOngoing(EpochId epoch) const
    {
        return _cur->id == epoch && !_cur->closed;
    }

    /**
     * Ensure @p epoch is closed, splitting the ongoing epoch if needed
     * (§3.3). @p cont receives the id of the closed epoch (the prefix).
     * With splitting disabled, waits for the epoch to close naturally —
     * the deadlock-prone behaviour the paper's scheme avoids.
     *
     * @param cause Conflict type demanding the closed epoch (for stall
     *              attribution when the window is full).
     */
    void prepareClosedEpoch(EpochId epoch, FlushCause cause,
                            InlineFunction<void(EpochId)> cont);

    /** Issue one undo-log line write on behalf of @p epoch (§5.2.1). */
    void issueLogWrite(EpochId epoch);

    /**
     * Demand that epochs up to and including @p target persist.
     *
     * @param target Must be a closed (or persisted) epoch.
     * @param cause Attribution for Figure 12 if this demand starts the
     *              flush.
     * @param onPersisted Optional continuation once @p target persists.
     */
    void ensureFlushedUpTo(EpochId target, FlushCause cause,
                           InlineCallback onPersisted);

    /**
     * IDT: record that @p depEpoch (of this core) must persist after
     * @p src. @return false if the dependence register file is full.
     */
    bool recordDependence(EpochId depEpoch, const IdtEntry &src);

    /**
     * IDT: record that remote @p dependent must be informed when
     * @p srcEpoch (of this core) persists. @return false when full.
     */
    bool recordInform(EpochId srcEpoch, const IdtEntry &dependent);

    /** A remote source epoch this core depends on has persisted. */
    void onSourcePersisted(const IdtEntry &src);

    // ------------------------------------------------------------------
    // Flush-protocol message handlers
    // ------------------------------------------------------------------

    /** BankAck received from one LLC bank for @p epoch. */
    void onBankAck(EpochId epoch);

    /** A bank issued a line flush of @p epoch to a memory controller. */
    void onFlushIssued(EpochId epoch);

    /** A flushed line of @p epoch became durable (PersistAck relayed). */
    void onLinePersisted(EpochId epoch);

    /** An undo-log write of @p epoch became durable. */
    void onLogWritePersisted(EpochId epoch);

    /** A checkpoint line of @p epoch became durable. */
    void onCheckpointPersisted(EpochId epoch);

    // ------------------------------------------------------------------
    // Incarnation accounting (called by PersistController)
    // ------------------------------------------------------------------

    /** A new line incarnation was tagged for @p epoch. */
    void addLiveLine(EpochId epoch);

    /** An incarnation of @p epoch ended without persisting (steal). */
    void removeLiveLine(EpochId epoch);

    /** All of this core's epochs (incl. current, even if open) drained? */
    bool fullyPersisted();

    /** Re-examine the window head and start a flush if one is due. */
    void tryAdvance();

    /** One-line state dump for deadlock diagnosis. */
    void debugDump(std::ostream &os);

  private:
    Epoch *mustFind(EpochId epoch);
    void maybeComplete(Epoch &e);
    void startFlush(Epoch &e);
    void maybeBeginBankPhase(Epoch &e);
    void beginBankPhase(Epoch &e);
    void maybeFinishFlush(Epoch &e);
    void declarePersisted(Epoch &e);
    void splitNow(FlushCause cause, InlineFunction<void(EpochId)> cont);
    void issueCheckpoint(Epoch &e);
    /** Demand a flush of the window head to open a slot. */
    void demandHeadroom(FlushCause cause);
    /** Ask a remote arbiter (once) to flush a source we depend on. */
    void pullSource(Epoch &e, const IdtEntry &src);
    /** Run retire-waiters blocked on a full window. */
    void serviceRetireWaiters();

    PersistController &_pc;
    CoreId _core;
    cache::L1Cache *_l1 = nullptr;
    EpochTable _table;

    /**
     * Cached pointer to the current (Ongoing) epoch's ring slot.
     *
     * Invariant (DESIGN.md §3a.2): the EpochTable ring never
     * reallocates, so the pointer is stable; it goes stale ONLY when
     * closeCurrentAndOpen() advances the current epoch, and every such
     * site (barrier, drain, splitNow — the only callers) must refresh
     * it via refreshCurrent() before the next store can perform.
     */
    Epoch *_cur = nullptr;

    void refreshCurrent() { _cur = &_table.current(); }

    /** Highest epoch id demanded to persist. */
    EpochId _flushTarget = 0;
    bool _flushDemanded = false;

    /** Continuations waiting for a window slot (barrier/split stalls). */
    std::vector<InlineCallback> _retireWaiters;

    /** Per-core NVRAM log/checkpoint regions. */
    UndoLog _undoLog;

  public:
    StatGroup statGroup;
    Scalar statEpochsPersisted;
    Scalar statEpochsConflicted;
    Scalar statFlushIntra;
    Scalar statFlushInter;
    Scalar statFlushReplacement;
    Scalar statFlushProactive;
    Scalar statFlushBarrier;
    Scalar statFlushDrain;
    Scalar statTrivialEpochs;
    Scalar statSplits;
    Scalar statIdtDepRecorded;
    Scalar statIdtOverflow;
    Scalar statBarrierStalls;
    Scalar statCheckpointLines;
    Scalar statLogWrites;
    Distribution statEpochLines;
    Distribution statFlushLatency;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_EPOCH_ARBITER_HH
