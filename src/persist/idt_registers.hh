/**
 * @file
 * IDT register file: bounded dependence/inform tracking (§3.1, §4.3).
 */

#ifndef PERSIM_PERSIST_IDT_REGISTERS_HH
#define PERSIM_PERSIST_IDT_REGISTERS_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace persim::persist
{

/** One IDT register: names an epoch of a (possibly remote) core. */
struct IdtEntry
{
    CoreId core = kNoCore;
    EpochId epoch = kNoEpoch;

    bool operator==(const IdtEntry &other) const = default;
};

/**
 * A bounded set of IdtEntry values, modelling the 4-pairs-per-epoch
 * hardware budget from §4.3. Insertion fails when full; the caller falls
 * back to an online flush (the LB behaviour) in that case.
 */
class IdtRegs
{
  public:
    explicit IdtRegs(unsigned capacity) : _capacity(capacity) {}

    bool contains(const IdtEntry &e) const;

    bool full() const { return _entries.size() >= _capacity; }
    bool empty() const { return _entries.empty(); }
    std::size_t size() const { return _entries.size(); }
    unsigned capacity() const { return _capacity; }

    /**
     * Record @p e.
     *
     * @return true if recorded (or already present); false if the file is
     *         full and the entry is absent.
     */
    bool add(const IdtEntry &e);

    /** Remove @p e if present; @return true if it was present. */
    bool remove(const IdtEntry &e);

    const std::vector<IdtEntry> &entries() const { return _entries; }

    void clear() { _entries.clear(); }

  private:
    unsigned _capacity;
    std::vector<IdtEntry> _entries;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_IDT_REGISTERS_HH
