/**
 * @file
 * Per-core in-flight epoch window (8 entries in the paper, §4.3).
 */

#ifndef PERSIM_PERSIST_EPOCH_TABLE_HH
#define PERSIM_PERSIST_EPOCH_TABLE_HH

#include <deque>
#include <memory>

#include "persist/epoch.hh"
#include "sim/types.hh"

namespace persim::persist
{

/**
 * The ordered window of one core's unpersisted epochs.
 *
 * The front is the oldest unpersisted epoch, the back is the current
 * (Ongoing) epoch. Persisted epochs retire from the front. The window is
 * bounded (hardware has 3-bit epoch tags); opening a new epoch when the
 * window is full must stall until the oldest epoch persists — the caller
 * checks canOpen() and registers a waiter on the oldest epoch.
 */
class EpochTable
{
  public:
    /**
     * @param core Owning core.
     * @param maxInflight Window size (paper: 8).
     * @param idtCapacity IDT register pairs per epoch (paper: 4).
     */
    EpochTable(CoreId core, unsigned maxInflight, unsigned idtCapacity);

    CoreId core() const { return _core; }

    /** The current (always Ongoing) epoch receiving new stores. */
    Epoch &current() { return *_window.back(); }

    /** Oldest unpersisted epoch (nullptr if the window is empty). */
    Epoch *oldest() { return _window.empty() ? nullptr : _window.front().get(); }

    /** Find an epoch still in the window; nullptr if already retired. */
    Epoch *find(EpochId id);

    /** True if @p id already persisted (i.e. retired or marked). */
    bool isPersisted(EpochId id) const;

    /**
     * True if a new epoch can be opened (window has a slot).
     * The current Ongoing epoch always occupies one slot.
     */
    bool canOpen() const { return _window.size() < _maxInflight; }

    /**
     * Close the current epoch (persist barrier / BSP boundary / split)
     * and open the next one. Requires canOpen().
     *
     * @return The newly closed epoch (the prefix).
     */
    Epoch &closeCurrentAndOpen();

    /**
     * Retire leading Persisted epochs from the window.
     *
     * @return Number of epochs retired.
     */
    unsigned retirePersisted();

    /**
     * The epoch preceding @p id in program order if still in the window;
     * nullptr when @p id is the oldest (its predecessors all persisted).
     */
    Epoch *predecessorOf(EpochId id);

    /** Number of epochs currently in the window. */
    std::size_t inflight() const { return _window.size(); }

    /** All epochs in the window, oldest first (for iteration). */
    const std::deque<std::unique_ptr<Epoch>> &window() const
    {
        return _window;
    }

    /** Total epochs ever opened by this core. */
    std::uint64_t epochsOpened() const { return _nextId; }

  private:
    CoreId _core;
    unsigned _maxInflight;
    unsigned _idtCapacity;
    EpochId _nextId = 0;
    std::deque<std::unique_ptr<Epoch>> _window;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_EPOCH_TABLE_HH
