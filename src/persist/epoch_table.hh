/**
 * @file
 * Per-core in-flight epoch window (8 entries in the paper, §4.3).
 */

#ifndef PERSIM_PERSIST_EPOCH_TABLE_HH
#define PERSIM_PERSIST_EPOCH_TABLE_HH

#include <vector>

#include "persist/epoch.hh"
#include "sim/types.hh"

namespace persim::persist
{

/**
 * The ordered window of one core's unpersisted epochs.
 *
 * The window is a flat ring of Epoch records indexed by id & mask: the
 * paper bounds in-flight epochs per core (hardware has 3-bit epoch
 * tags), so the ring is small and fixed and every lookup is O(1) — no
 * pointer chasing, no per-epoch allocation. Ring capacity is
 * maxInflight rounded up to a power of two; because at most
 * maxInflight ids are in flight, id & mask is collision-free within
 * the window. Records are reused in place when their slot comes
 * around again (Epoch::reset), so the waiter/IDT vectors keep their
 * capacity across epochs.
 *
 * The oldest unpersisted epoch is headId(), the current (Ongoing)
 * epoch is nextId() - 1. Persisted epochs retire from the head.
 * Opening a new epoch when the window is full must stall until the
 * oldest epoch persists — the caller checks canOpen() and registers a
 * waiter on the oldest epoch.
 */
class EpochTable
{
  public:
    /**
     * @param core Owning core.
     * @param maxInflight Window size (paper: 8).
     * @param idtCapacity IDT register pairs per epoch (paper: 4).
     */
    EpochTable(CoreId core, unsigned maxInflight, unsigned idtCapacity);

    CoreId core() const { return _core; }

    /** The current (always Ongoing) epoch receiving new stores. */
    Epoch &current() { return slot(_nextId - 1); }

    /** Oldest unpersisted epoch (never null: the window is never
     * empty — a core always has a current epoch). */
    Epoch *oldest() { return &slot(_headId); }

    /** Find an epoch still in the window; nullptr if already retired
     * (or never opened). O(1) via the ring index. */
    Epoch *
    find(EpochId id)
    {
        if (id < _headId || id >= _nextId)
            return nullptr;
        return &slot(id);
    }

    /** True if @p id already persisted (i.e. retired or marked). */
    bool
    isPersisted(EpochId id) const
    {
        if (id < _headId)
            return true; // anything before the head retired as Persisted
        if (id >= _nextId)
            return false; // an epoch id from the future
        return _ring[id & _mask].persisted();
    }

    /**
     * True if a new epoch can be opened (window has a slot).
     * The current Ongoing epoch always occupies one slot.
     */
    bool canOpen() const { return _nextId - _headId < _maxInflight; }

    /**
     * Close the current epoch (persist barrier / BSP boundary / split)
     * and open the next one. Requires canOpen().
     *
     * @param now Current tick, stamped on the new epoch as openTick
     *            (observability: the epoch-lifecycle span opens here).
     * @return The newly closed epoch (the prefix).
     */
    Epoch &closeCurrentAndOpen(Tick now = 0);

    /**
     * Retire leading Persisted epochs from the window.
     *
     * @return Number of epochs retired.
     */
    unsigned retirePersisted();

    /**
     * The epoch preceding @p id in program order if still in the window;
     * nullptr when @p id is the oldest (its predecessors all persisted).
     */
    Epoch *predecessorOf(EpochId id);

    /** Number of epochs currently in the window. */
    std::size_t inflight() const
    {
        return static_cast<std::size_t>(_nextId - _headId);
    }

    /** Oldest in-window epoch id (iterate [headId(), nextId())). */
    EpochId headId() const { return _headId; }

    /** One past the newest in-window epoch id. */
    EpochId nextId() const { return _nextId; }

    /** In-window epoch @p id (asserted in range; see find()). */
    Epoch &at(EpochId id);

    /** Total epochs ever opened by this core. */
    std::uint64_t epochsOpened() const { return _nextId; }

  private:
    Epoch &slot(EpochId id) { return _ring[id & _mask]; }

    CoreId _core;
    unsigned _maxInflight;
    EpochId _mask;
    EpochId _headId = 0;
    EpochId _nextId = 0;
    std::vector<Epoch> _ring;
};

} // namespace persim::persist

#endif // PERSIM_PERSIST_EPOCH_TABLE_HH
