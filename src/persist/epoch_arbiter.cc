#include "persist/epoch_arbiter.hh"

#include <utility>

#include "cache/l1_cache.hh"
#include "cache/llc_bank.hh"
#include "persist/persist_controller.hh"
#include "prof/phase.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::persist
{

EpochArbiter::EpochArbiter(const std::string &name, EventQueue &eq,
                           PersistController &pc, CoreId core)
    : SimObject(name, eq),
      _pc(pc),
      _core(core),
      _table(core, pc.config().maxInflightEpochs,
             pc.config().idtRegsPerEpoch),
      _undoLog(core),
      statGroup(name),
      statEpochsPersisted(&statGroup, "epochsPersisted",
                          "epochs declared fully persisted"),
      statEpochsConflicted(&statGroup, "epochsConflicted",
                           "epochs some request conflicted with"),
      statFlushIntra(&statGroup, "flushIntra",
                     "epoch flushes caused by intra-thread conflicts"),
      statFlushInter(&statGroup, "flushInter",
                     "epoch flushes caused by inter-thread conflicts"),
      statFlushReplacement(&statGroup, "flushReplacement",
                           "epoch flushes caused by LLC replacements"),
      statFlushProactive(&statGroup, "flushProactive",
                         "epochs flushed proactively (PF)"),
      statFlushBarrier(&statGroup, "flushBarrier",
                       "epoch flushes caused by blocking barriers"),
      statFlushDrain(&statGroup, "flushDrain",
                     "epoch flushes at end-of-run drain"),
      statTrivialEpochs(&statGroup, "trivialEpochs",
                        "epochs persisted without the bank handshake"),
      statSplits(&statGroup, "splits",
                 "ongoing epochs split for deadlock avoidance"),
      statIdtDepRecorded(&statGroup, "idtDepsRecorded",
                         "IDT dependences recorded"),
      statIdtOverflow(&statGroup, "idtOverflows",
                      "IDT register overflows (online fallback)"),
      statBarrierStalls(&statGroup, "barrierStalls",
                        "barriers stalled on a full epoch window"),
      statCheckpointLines(&statGroup, "checkpointLines",
                          "processor-state checkpoint lines written"),
      statLogWrites(&statGroup, "logWrites", "undo-log lines written"),
      statEpochLines(&statGroup, "epochLines",
                     "lines per flushed epoch"),
      statFlushLatency(&statGroup, "flushLatency",
                       "cycles from flush start to PersistCMP")
{
    refreshCurrent();
}

Epoch *
EpochArbiter::mustFind(EpochId epoch)
{
    Epoch *e = _table.find(epoch);
    simAssert(e, name(), ": epoch ", epoch, " not in window");
    return e;
}

// ---------------------------------------------------------------------
// Core-side interface
// ---------------------------------------------------------------------

void
EpochArbiter::barrier(InlineCallback cont)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    if (!_table.canOpen()) {
        ++statBarrierStalls;
        // Enqueue the retry BEFORE demanding headroom: a trivial head
        // epoch persists synchronously inside the demand, and its
        // retire services the waiter list.
        _retireWaiters.push_back(
            [this, cont = std::move(cont)]() mutable {
                barrier(std::move(cont));
            });
        demandHeadroom(FlushCause::Barrier);
        return;
    }
    Epoch &prefix = _table.closeCurrentAndOpen(curTick());
    refreshCurrent();
    const EpochId prefixId = prefix.id;
    auto closeWaiters = std::move(prefix.closeWaiters);
    maybeComplete(prefix);
    for (auto &w : closeWaiters)
        w();
    if (_pc.config().blockingBarrier)
        ensureFlushedUpTo(prefixId, FlushCause::Barrier, std::move(cont));
    else
        cont();
}

void
EpochArbiter::drain(InlineCallback cont)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    Epoch &cur = _table.current();
    if (cur.storeCount > 0) {
        // Close the tail epoch so its stores can flush.
        if (!_table.canOpen()) {
            // Waiter first; see barrier() for the ordering rationale.
            _retireWaiters.push_back(
                [this, cont = std::move(cont)]() mutable {
                    drain(std::move(cont));
                });
            demandHeadroom(FlushCause::Drain);
            return;
        }
        Epoch &prefix = _table.closeCurrentAndOpen(curTick());
        refreshCurrent();
        auto closeWaiters = std::move(prefix.closeWaiters);
        maybeComplete(prefix);
        for (auto &w : closeWaiters)
            w();
    }
    if (_table.inflight() <= 1) {
        cont();
        return;
    }
    const EpochId target = _table.current().id - 1;
    ensureFlushedUpTo(target, FlushCause::Drain, std::move(cont));
}

bool
EpochArbiter::fullyPersisted()
{
    _table.retirePersisted();
    const Epoch &cur = _table.current();
    return _table.inflight() == 1 && !cur.closed &&
           cur.linesLive == 0 && cur.flushesInFlight == 0 &&
           cur.logWritesPending == 0;
}

// ---------------------------------------------------------------------
// Conflict-resolution interface
// ---------------------------------------------------------------------

void
EpochArbiter::prepareClosedEpoch(EpochId epoch, FlushCause cause,
                                 InlineFunction<void(EpochId)> cont)
{
    Epoch *e = _table.find(epoch);
    if (!e || e->closed) {
        cont(epoch);
        return;
    }
    simAssert(e->id == _table.current().id, name(),
              ": only the current epoch can be ongoing");
    if (_pc.config().splitOngoing) {
        splitNow(cause, std::move(cont));
    } else {
        // Deadlock-prone: wait for the programmer's barrier to close
        // the epoch naturally (§3.3 discussion).
        e->closeWaiters.push_back(
            [cont = std::move(cont), epoch]() mutable { cont(epoch); });
    }
}

void
EpochArbiter::splitNow(FlushCause cause,
                       InlineFunction<void(EpochId)> cont)
{
    if (!_table.canOpen()) {
        // Waiter first; see barrier() for the ordering rationale.
        _retireWaiters.push_back(
            [this, cause, cont = std::move(cont)]() mutable {
                splitNow(cause, std::move(cont));
            });
        demandHeadroom(cause);
        return;
    }
    Epoch &prefix = _table.closeCurrentAndOpen(curTick());
    refreshCurrent();
    ++statSplits;
    const EpochId prefixId = prefix.id;
    tracef("Epoch", *this, "split: prefix ", prefixId, ", remainder ",
           _table.current().id);
    if (_pc.observer())
        _pc.observer()->onSplit(_core, prefixId, _table.current().id);
    auto closeWaiters = std::move(prefix.closeWaiters);
    maybeComplete(prefix);
    for (auto &w : closeWaiters)
        w();
    cont(prefixId);
}

void
EpochArbiter::demandHeadroom(FlushCause cause)
{
    Epoch *head = _table.oldest();
    if (!head || !head->closed)
        return;
    ensureFlushedUpTo(head->id, cause, {});
}

void
EpochArbiter::ensureFlushedUpTo(EpochId target, FlushCause cause,
                                InlineCallback onPersisted)
{
    Epoch *e = _table.find(target);
    if (!e || e->persisted()) {
        if (onPersisted)
            onPersisted();
        return;
    }
    simAssert(e->closed, name(), ": flush target ", target,
              " is still ongoing");
    const bool conflictCause = cause == FlushCause::IntraThread ||
                               cause == FlushCause::InterThread ||
                               cause == FlushCause::Replacement;
    for (EpochId i = _table.headId(); i <= target; ++i) {
        Epoch &up = _table.at(i);
        if (up.flushCause == FlushCause::None)
            up.flushCause = cause;
        if (conflictCause)
            up.conflicted = true;
    }
    if (!_flushDemanded || target > _flushTarget) {
        _flushTarget = target;
        _flushDemanded = true;
    }
    if (onPersisted)
        e->persistWaiters.push_back(std::move(onPersisted));
    tryAdvance();
}

bool
EpochArbiter::recordDependence(EpochId depEpoch, const IdtEntry &src)
{
    Epoch *e = mustFind(depEpoch);
    simAssert(!e->persisted(), name(),
              ": dependence recorded on a persisted epoch");
    if (e->depRegs.add(src)) {
        ++statIdtDepRecorded;
        return true;
    }
    ++statIdtOverflow;
    return false;
}

bool
EpochArbiter::recordInform(EpochId srcEpoch, const IdtEntry &dependent)
{
    Epoch *e = _table.find(srcEpoch);
    simAssert(e && !e->persisted(), name(),
              ": inform recorded on a persisted epoch");
    if (e->informRegs.add(dependent))
        return true;
    ++statIdtOverflow;
    return false;
}

void
EpochArbiter::onSourcePersisted(const IdtEntry &src)
{
    for (EpochId i = _table.headId(); i < _table.nextId(); ++i)
        _table.at(i).depRegs.remove(src);
    tryAdvance();
}

// ---------------------------------------------------------------------
// Flush machinery
// ---------------------------------------------------------------------

void
EpochArbiter::maybeComplete(Epoch &e)
{
    if (!e.readyToComplete())
        return;
    e.state = EpochState::Completed;
    tryAdvance();
}

void
EpochArbiter::tryAdvance()
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    _table.retirePersisted();
    Epoch *head = _table.oldest();
    if (!head || head->persisted() || head->state == EpochState::Flushing)
        return;
    const bool demanded = _flushDemanded && head->id <= _flushTarget;
    const bool proactive = _pc.config().proactiveFlush &&
                           head->state == EpochState::Completed;
    if (!demanded && !proactive)
        return;
    if (head->state != EpochState::Completed)
        return; // waiting for close / store drain
    // IDT: persist only after every recorded source epoch (§4.2).
    bool blocked = false;
    for (std::size_t i = 0; i < head->depRegs.entries().size();) {
        const IdtEntry dep = head->depRegs.entries()[i];
        if (_pc.arbiter(dep.core).isPersisted(dep.epoch)) {
            head->depRegs.remove(dep);
            continue;
        }
        pullSource(*head, dep);
        blocked = true;
        ++i;
    }
    if (blocked)
        return;
    startFlush(*head);
}

void
EpochArbiter::pullSource(Epoch &e, const IdtEntry &src)
{
    for (const auto &sent : e.pullsSent) {
        if (sent == src)
            return;
    }
    e.pullsSent.push_back(src);
    EpochArbiter *remote = &_pc.arbiter(src.core);
    const EpochId srcEpoch = src.epoch;
    ++_pc.statProtocolMessages;
    _l1->ni().sendControl(_pc.l1(src.core).nodeId(), [remote, srcEpoch] {
        remote->ensureFlushedUpTo(srcEpoch, FlushCause::InterThread, {});
    });
}

void
EpochArbiter::startFlush(Epoch &e)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    simAssert(e.state == EpochState::Completed, name(),
              ": flush of a non-completed epoch");
    simAssert(e.flushesInFlight == 0, name(),
              ": in-flight flushes before the flush started");
    e.state = EpochState::Flushing;
    e.flushStartTick = curTick();
    if (e.flushCause == FlushCause::None)
        e.flushCause = FlushCause::Proactive;
    tracef("Flush", *this, "flush of epoch ", e.id, " starts (",
           e.linesLive, " lines, cause ",
           static_cast<int>(e.flushCause), ")");
    switch (e.flushCause) {
      case FlushCause::IntraThread:
        ++statFlushIntra;
        break;
      case FlushCause::InterThread:
        ++statFlushInter;
        break;
      case FlushCause::Replacement:
        ++statFlushReplacement;
        break;
      case FlushCause::Proactive:
        ++statFlushProactive;
        break;
      case FlushCause::Barrier:
        ++statFlushBarrier;
        break;
      case FlushCause::Drain:
        ++statFlushDrain;
        break;
      case FlushCause::None:
        break;
    }
    statEpochLines.sample(static_cast<std::uint64_t>(e.linesLive));
    issueCheckpoint(e);
    maybeBeginBankPhase(e);
}

void
EpochArbiter::issueCheckpoint(Epoch &e)
{
    const unsigned n = _pc.config().checkpointLines;
    if (n == 0)
        return;
    const EpochId id = e.id;
    e.checkpointPending += n;
    for (unsigned i = 0; i < n; ++i) {
        ++statCheckpointLines;
        _l1->issueNvmWrite(_undoLog.nextCheckpointLine(), _core, id,
                           /*isLog=*/true,
                           [this, id] { onCheckpointPersisted(id); });
    }
}

void
EpochArbiter::issueLogWrite(EpochId epoch)
{
    Epoch *e = mustFind(epoch);
    ++e->logWritesPending;
    ++statLogWrites;
    _l1->issueNvmWrite(_undoLog.nextLogLine(), _core, epoch,
                       /*isLog=*/true,
                       [this, epoch] { onLogWritePersisted(epoch); });
}

void
EpochArbiter::maybeBeginBankPhase(Epoch &e)
{
    if (e.state != EpochState::Flushing || e.bankPhaseStarted)
        return;
    // Undo semantics: old values must be durable before new data flushes.
    if (e.logWritesPending > 0)
        return;
    beginBankPhase(e);
}

void
EpochArbiter::beginBankPhase(Epoch &e)
{
    e.bankPhaseStarted = true;
    if (e.linesLive == 0 && e.flushesInFlight == 0) {
        ++statTrivialEpochs;
        maybeFinishFlush(e);
        return;
    }
    e.usedHandshake = true;
    // Step 1 (§4.1): flush this epoch's L1-resident lines into the LLC.
    // Snapshot (not take): each writeback moves its own engine entry.
    const std::vector<Addr> lines =
        _l1->flushEngine().snapshot(_core, e.id);
    const Tick ready = _l1->flushLines(lines,
                                       _pc.config().invalidatingFlush,
                                       _pc.config().flushIssueInterval);
    if (trace::probing()) [[unlikely]] {
        trace::span(curTick(), ready, _l1->name(),
                    "flush walk e" + std::to_string(e.id), "Flush");
    }
    // Step 2: broadcast FlushEpoch once the walk has drained.
    e.bankAcksPending = _pc.numBanks();
    const EpochId id = e.id;
    const CoreId core = _core;
    scheduleIn(ready - curTick(), [this, id, core] {
        for (unsigned b = 0; b < _pc.numBanks(); ++b) {
            cache::LlcBank *bank = &_pc.bank(b);
            ++_pc.statProtocolMessages;
            _l1->ni().sendControl(bank->nodeId(), [bank, core, id] {
                bank->handleFlushEpoch(core, id);
            });
        }
    });
}

void
EpochArbiter::onBankAck(EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    Epoch *e = mustFind(epoch);
    simAssert(e->state == EpochState::Flushing && e->bankAcksPending > 0,
              name(), ": unexpected BankAck");
    --e->bankAcksPending;
    maybeFinishFlush(*e);
}

void
EpochArbiter::onFlushIssued(EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    ++mustFind(epoch)->flushesInFlight;
}

void
EpochArbiter::onLinePersisted(EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    Epoch *e = mustFind(epoch);
    simAssert(e->flushesInFlight > 0 && e->linesLive > 0, name(),
              ": flush-ack accounting underflow");
    --e->flushesInFlight;
    --e->linesLive;
}

void
EpochArbiter::onLogWritePersisted(EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    Epoch *e = mustFind(epoch);
    simAssert(e->logWritesPending > 0, name(), ": log-ack underflow");
    --e->logWritesPending;
    maybeBeginBankPhase(*e);
}

void
EpochArbiter::onCheckpointPersisted(EpochId epoch)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    Epoch *e = mustFind(epoch);
    simAssert(e->checkpointPending > 0, name(),
              ": checkpoint-ack underflow");
    --e->checkpointPending;
    maybeFinishFlush(*e);
}

void
EpochArbiter::maybeFinishFlush(Epoch &e)
{
    if (e.state != EpochState::Flushing || !e.bankPhaseStarted ||
        e.bankAcksPending != 0 || e.checkpointPending != 0 ||
        e.logWritesPending != 0) {
        return;
    }
    declarePersisted(e);
}

void
EpochArbiter::declarePersisted(Epoch &e)
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    simAssert(e.linesLive == 0 && e.flushesInFlight == 0, name(),
              ": epoch declared persisted with live lines");
    e.state = EpochState::Persisted;
    tracef("Flush", *this, "epoch ", e.id, " persisted");
    ++statEpochsPersisted;
    if (e.conflicted)
        ++statEpochsConflicted;
    statFlushLatency.sample(curTick() - e.flushStartTick);
    if (trace::probing()) [[unlikely]] {
        // The whole lifecycle (open .. persisted) and the flush phase
        // within it; recorded at close, when both endpoints are known.
        trace::span(e.openTick, curTick(), name(),
                    "epoch " + std::to_string(e.id), "Epoch");
        if (e.flushStartTick != kTickNever) {
            trace::span(e.flushStartTick, curTick(), name(),
                        "flush " + std::to_string(e.id), "Flush");
        }
    }

    const EpochId id = e.id;
    const CoreId core = _core;
    const bool handshake = e.usedHandshake;
    const auto informs = e.informRegs.entries();
    auto waiters = std::move(e.persistWaiters);

    // Step 4 (§4.1): PersistCMP broadcast updates bank-side state.
    if (handshake) {
        for (unsigned b = 0; b < _pc.numBanks(); ++b) {
            cache::LlcBank *bank = &_pc.bank(b);
            ++_pc.statProtocolMessages;
            _l1->ni().sendControl(bank->nodeId(), [bank, core, id] {
                bank->handlePersistCmp(core, id);
            });
        }
    }
    if (_pc.observer())
        _pc.observer()->onEpochPersisted(core, id, curTick());

    // Inform dependents listed in the inform registers (§4.2).
    for (const IdtEntry &d : informs) {
        EpochArbiter *dep = &_pc.arbiter(d.core);
        const IdtEntry src{core, id};
        ++_pc.statProtocolMessages;
        _l1->ni().sendControl(_pc.l1(d.core).nodeId(),
                              [dep, src] { dep->onSourcePersisted(src); });
    }

    // NOTE: the retire below (or a serviced waiter opening a new
    // epoch) may recycle e's ring slot; use only the copies above.
    _table.retirePersisted();
    serviceRetireWaiters();
    for (auto &w : waiters)
        w();
    tryAdvance();
}

void
EpochArbiter::addLiveLine(EpochId epoch)
{
    ++mustFind(epoch)->linesLive;
}

void
EpochArbiter::removeLiveLine(EpochId epoch)
{
    Epoch *e = mustFind(epoch);
    simAssert(e->linesLive > 0, name(), ": live-line underflow");
    --e->linesLive;
}

void
EpochArbiter::debugDump(std::ostream &os)
{
    os << name() << ": flushDemanded=" << _flushDemanded
       << " target=" << _flushTarget
       << " retireWaiters=" << _retireWaiters.size() << " window:";
    for (EpochId i = _table.headId(); i < _table.nextId(); ++i) {
        const Epoch &e = _table.at(i);
        const char *st = "?";
        switch (e.state) {
          case EpochState::Ongoing:
            st = "ongoing";
            break;
          case EpochState::Completed:
            st = "completed";
            break;
          case EpochState::Flushing:
            st = "FLUSHING";
            break;
          case EpochState::Persisted:
            st = "persisted";
            break;
        }
        os << " [" << e.id << " " << st << (e.closed ? "/closed" : "")
           << " lines=" << e.linesLive << " fif=" << e.flushesInFlight
           << " acks=" << e.bankAcksPending
           << " logs=" << e.logWritesPending
           << " ckpt=" << e.checkpointPending
           << " deps=" << e.depRegs.size()
           << " waiters=" << e.persistWaiters.size()
           << " closeW=" << e.closeWaiters.size() << "]";
    }
    os << "\n";
}

void
EpochArbiter::serviceRetireWaiters()
{
    prof::ScopedPhase profPhase(prof::Phase::PersistArbiter);
    while (!_retireWaiters.empty() && _table.canOpen()) {
        auto w = std::move(_retireWaiters.front());
        _retireWaiters.erase(_retireWaiters.begin());
        w();
    }
    // A serviced waiter may have refilled the window (its barrier or
    // split consumed the freed slot). Keep the flush pipe moving for
    // the waiters still queued, or they would strand forever.
    if (!_retireWaiters.empty())
        demandHeadroom(FlushCause::Barrier);
}

} // namespace persim::persist
