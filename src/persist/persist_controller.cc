#include "persist/persist_controller.hh"

#include <utility>

#include "cache/l1_cache.hh"
#include "cache/llc_bank.hh"
#include "noc/network_interface.hh"
#include "nvm/memory_controller.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::persist
{

PersistController::PersistController(const std::string &name,
                                     EventQueue &eq,
                                     const BarrierConfig &cfg,
                                     unsigned numCores)
    : SimObject(name, eq),
      statGroup(name),
      statIntraConflicts(&statGroup, "intraConflicts",
                         "intra-thread epoch conflicts (§3.2)"),
      statInterConflicts(&statGroup, "interConflicts",
                         "inter-thread epoch conflicts (§3.1)"),
      statReplacementConflicts(&statGroup, "replacementConflicts",
                               "replacement epoch conflicts"),
      statIdtResolutions(&statGroup, "idtResolutions",
                         "inter-thread conflicts absorbed by IDT"),
      statOnlineFlushWaits(&statGroup, "onlineFlushWaits",
                           "requests that waited for an online flush"),
      statStealsClean(&statGroup, "stealsClean",
                      "incarnations stolen before their flush"),
      statStealsInFlight(&statGroup, "stealsInFlight",
                         "incarnations stolen with a flush in flight"),
      statProtocolMessages(&statGroup, "protocolMessages",
                           "flush-protocol control messages"),
      statConflictWait(&statGroup, "conflictWait",
                       "cycles a conflicting request waited online"),
      _cfg(cfg)
{
    // The sharers bitmask (and `1 << core` in the banks) is 64 bits
    // wide; a larger system would silently alias core ids.
    simAssert(numCores <= kMaxCores, name, ": numCores (", numCores,
              ") exceeds kMaxCores (", kMaxCores, ")");
    _arbiters.reserve(numCores);
    for (unsigned c = 0; c < numCores; ++c) {
        _arbiters.push_back(std::make_unique<EpochArbiter>(
            name + ".arbiter[" + std::to_string(c) + "]", eq, *this,
            static_cast<CoreId>(c)));
    }
}

PersistController::~PersistController() = default;

void
PersistController::connect(std::vector<cache::L1Cache *> l1s,
                           std::vector<cache::LlcBank *> banks,
                           std::vector<nvm::MemoryController *> mcs,
                           noc::Mesh *mesh)
{
    simAssert(l1s.size() == _arbiters.size(),
              "one L1 per core expected");
    simAssert(!mcs.empty(), "at least one memory controller expected");
    _l1s = std::move(l1s);
    _banks = std::move(banks);
    _mcs = std::move(mcs);
    _mesh = mesh;
    for (std::size_t c = 0; c < _arbiters.size(); ++c)
        _arbiters[c]->setL1(_l1s[c]);
}

nvm::MemoryController &
PersistController::mcFor(Addr addr)
{
    return *_mcs[nvm::mcIndexFor(addr,
                                 static_cast<unsigned>(_mcs.size()))];
}

// ---------------------------------------------------------------------
// L1-side hooks
// ---------------------------------------------------------------------

void
PersistController::beforeL1Store(CoreId core, cache::CacheLine &line,
                                 InlineCallback cont)
{
    if (!_cfg.enabled) {
        cont();
        return;
    }
    resolveL1StoreConflict(core, line.addr(), std::move(cont));
}

void
PersistController::resolveL1StoreConflict(CoreId core, Addr addr,
                                          InlineCallback cont)
{
    // Fixpoint: each round may wait for a flush, during which other
    // stores or third-party splits can change the line's tag or advance
    // the core's current epoch; re-check until the store may proceed.
    cache::CacheLine *line = l1(core).find(addr);
    if (!line || !line->tagged()) {
        cont();
        return;
    }
    // An L1 line carries a tag only for the owning core's own epochs.
    simAssert(line->epochCore() == core,
              "L1 line tagged by another core");
    const EpochId cur = arbiter(core).currentEpoch();
    simAssert(line->epochId() <= cur,
              "L1 line tagged by a future epoch");
    if (line->epochId() == cur) {
        cont(); // coalescing within the current epoch (§2.1)
        return;
    }
    const EpochId old = line->epochId();
    if (arbiter(core).isPersisted(old)) {
        // A clwb-retained line keeps its tag until the epoch persists;
        // the stale tag ends here and the store starts a fresh
        // incarnation.
        simAssert(!line->dirty(), "stale epoch tag on a dirty L1 line");
        line->clearTag();
        cont();
        return;
    }
    // Intra-thread conflict (§3.2): epochs up to the line's must persist
    // before this store may overwrite the value.
    tracef("Conflict", *this, "intra-thread: core ", core, " store to 0x",
           std::hex, addr, std::dec, " hits epoch ", old);
    ++statIntraConflicts;
    ++statOnlineFlushWaits;
    const Tick began = curTick();
    arbiter(core).ensureFlushedUpTo(
        old, FlushCause::IntraThread,
        [this, core, addr, began, cont = std::move(cont)]() mutable {
            statConflictWait.sample(curTick() - began);
            resolveL1StoreConflict(core, addr, std::move(cont));
        });
}

void
PersistController::afterL1StoreTagNew(CoreId core, cache::CacheLine &line,
                                      Epoch &e)
{
    line.setTag(core, e.id);
    l1(core).flushEngine().addLine(core, e.id, line.addr());
    ++e.linesLive;
    if (_observer)
        _observer->onStoreTagged(core, e.id, line.addr());
    if (_cfg.logging) {
        // First modification of the line in this epoch: persist the old
        // value to the undo log (§5.2.1).
        arbiter(core).issueLogWrite(e.id);
    }
}

void
PersistController::onL1Writeback(CoreId core,
                                 const cache::CacheLine &l1Line,
                                 cache::CacheLine &llcLine,
                                 unsigned bankIdx)
{
    simAssert(_cfg.enabled, "tagged writeback with persistence off");
    simAssert(l1Line.epochCore() == core,
              "writeback of a foreign incarnation");
    simAssert(!llcLine.tagged(),
              "two incarnations of one line (LLC already tagged)");
    const bool present = l1(core).flushEngine().removeLine(
        core, l1Line.epochId(), l1Line.addr());
    simAssert(present, "L1 incarnation missing from its flush engine");
    bank(bankIdx).flushEngine().addLine(core, l1Line.epochId(),
                                        l1Line.addr());
    llcLine.setTag(core, l1Line.epochId());
}

// ---------------------------------------------------------------------
// Bank-side hooks
// ---------------------------------------------------------------------

void
PersistController::toArbiter(unsigned fromNode, CoreId core,
                             InlineCallback atArbiter)
{
    ++statProtocolMessages;
    _mesh->send(fromNode, l1(core).nodeId(), noc::kControlBytes,
                std::move(atArbiter));
}

void
PersistController::resolveBankAccess(unsigned bankIdx, CoreId reqCore,
                                     bool isWrite, Addr addr,
                                     InlineCallback cont)
{
    if (!_cfg.enabled) {
        cont();
        return;
    }
    cache::CacheLine *line = bank(bankIdx).find(addr);
    if (!line || !line->tagged()) {
        cont();
        return;
    }
    const CoreId srcCore = line->epochCore();
    const EpochId srcEpoch = line->epochId();
    const unsigned bankNode = bank(bankIdx).nodeId();

    if (srcCore == reqCore) {
        const EpochId reqEpoch = arbiter(reqCore).currentEpoch();
        if (!isWrite || srcEpoch == reqEpoch ||
            arbiter(reqCore).isPersisted(srcEpoch)) {
            cont(); // reads never conflict intra-thread (§3.2); a
                    // same-epoch write transfers at grant time; a
                    // persisted tag is stale and is cleared at grant.
            return;
        }
        simAssert(srcEpoch < reqEpoch,
                  "line tagged by a future epoch of the requester");
        (void)reqEpoch;
        // Intra-thread conflict detected at the bank (store miss path).
        ++statIntraConflicts;
        ++statOnlineFlushWaits;
        toArbiter(bankNode, reqCore,
                  [this, reqCore, srcEpoch, bankNode,
                   cont = std::move(cont)]() mutable {
                      arbiter(reqCore).ensureFlushedUpTo(
                          srcEpoch, FlushCause::IntraThread,
                          [this, reqCore, bankNode,
                           cont = std::move(cont)]() mutable {
                              ++statProtocolMessages;
                              _mesh->send(l1(reqCore).nodeId(), bankNode,
                                          noc::kControlBytes,
                                          std::move(cont));
                          });
                  });
        return;
    }

    // Inter-thread conflict (§3.1). First make sure the source epoch is
    // closed (splitting an ongoing epoch per §3.3), then resolve.
    tracef("Conflict", *this, "inter-thread: core ", reqCore,
           (isWrite ? " store" : " load"), " to 0x", std::hex, addr,
           std::dec, " hits core ", srcCore, " epoch ", srcEpoch);
    ++statInterConflicts;
    toArbiter(bankNode, srcCore,
              [this, reqCore, isWrite, srcCore, srcEpoch, bankIdx,
               cont = std::move(cont)]() mutable {
                  arbiter(srcCore).prepareClosedEpoch(
                      srcEpoch, FlushCause::InterThread,
                      [this, reqCore, isWrite, srcCore, bankIdx,
                       cont = std::move(cont)](EpochId closed) mutable {
                          resolveInterThreadClosed(reqCore, isWrite,
                                                   srcCore, closed,
                                                   bankIdx,
                                                   std::move(cont));
                      });
              });
}

void
PersistController::resolveInterThreadClosed(CoreId reqCore, bool isWrite,
                                            CoreId srcCore,
                                            EpochId srcEpoch,
                                            unsigned bankIdx,
                                            InlineCallback cont)
{
    EpochArbiter &srcArb = arbiter(srcCore);
    auto replyToBank = [this, srcCore, bankIdx,
                        cont = std::move(cont)]() mutable {
        ++statProtocolMessages;
        _mesh->send(l1(srcCore).nodeId(), bank(bankIdx).nodeId(),
                    noc::kControlBytes, std::move(cont));
    };
    if (srcArb.isPersisted(srcEpoch)) {
        replyToBank();
        return;
    }
    if (_cfg.idt) {
        // The requesting operation will complete in (and therefore
        // belongs to) the requester's current ongoing epoch.
        (void)isWrite;
        const EpochId depEpoch = arbiter(reqCore).currentEpoch();
        const bool infOk =
            srcArb.recordInform(srcEpoch, IdtEntry{reqCore, depEpoch});
        const bool depOk =
            infOk && arbiter(reqCore).recordDependence(
                         depEpoch, IdtEntry{srcCore, srcEpoch});
        if (infOk && depOk) {
            ++statIdtResolutions;
            if (_observer) {
                _observer->onDependence(reqCore, depEpoch, srcCore,
                                        srcEpoch);
            }
            // The request proceeds immediately; the source still flushes
            // — but offline, off the critical path (Figure 4b).
            srcArb.ensureFlushedUpTo(srcEpoch, FlushCause::InterThread,
                                     {});
            // Charge the register-update notification to the dependent.
            toArbiter(l1(srcCore).nodeId(), reqCore, [] {});
            replyToBank();
            return;
        }
        // Register overflow: fall back to the LB online flush.
    }
    ++statOnlineFlushWaits;
    srcArb.ensureFlushedUpTo(srcEpoch, FlushCause::InterThread,
                             std::move(replyToBank));
}

bool
PersistController::writeGrantNeedsResolve(unsigned bankIdx,
                                          CoreId reqCore, Addr addr)
{
    if (!_cfg.enabled)
        return false;
    cache::CacheLine *line = bank(bankIdx).find(addr);
    if (!line || !line->tagged() || line->epochCore() != reqCore)
        return false;
    // A split may have advanced the requester's epoch between conflict
    // resolution and the grant; an unpersisted same-core tag from an
    // older epoch is an intra-thread conflict that must resolve first.
    return line->epochId() != arbiter(reqCore).currentEpoch() &&
           !arbiter(reqCore).isPersisted(line->epochId());
}

IdtEntry
PersistController::onBankGrantWrite(unsigned bankIdx, CoreId reqCore,
                                    cache::CacheLine &line)
{
    const IdtEntry none{kNoCore, kNoEpoch};
    if (!_cfg.enabled || !line.tagged())
        return none;
    const CoreId srcCore = line.epochCore();
    const EpochId srcEpoch = line.epochId();

    if (arbiter(srcCore).isPersisted(srcEpoch)) {
        // Stale tag (the epoch persisted while the request was in
        // flight): the line carries no obligation any more.
        line.clearTag();
        return none;
    }

    if (srcCore == reqCore) {
        const EpochId reqEpoch = arbiter(reqCore).currentEpoch();
        simAssert(srcEpoch == reqEpoch,
                  "unresolved same-core tag at write grant (the bank "
                  "must re-resolve via writeGrantNeedsResolve)");
        // The same-epoch incarnation moves back into the writer's L1.
        const bool present = bank(bankIdx).flushEngine().removeLine(
            srcCore, srcEpoch, line.addr());
        simAssert(present, "LLC tag without a flush-engine entry");
        l1(reqCore).flushEngine().addLine(srcCore, srcEpoch,
                                          line.addr());
        line.clearTag();
        return IdtEntry{srcCore, srcEpoch};
    }

    // Inter-thread overwrite: the new epoch steals the incarnation. The
    // persist-order edge src -> dep was recorded (IDT) or the source was
    // flushed online before we got here; if the old incarnation's flush
    // is already in flight it still persists with the old tags.
    const EpochId reqEpoch = arbiter(reqCore).currentEpoch();
    const bool present = bank(bankIdx).flushEngine().removeLine(
        srcCore, srcEpoch, line.addr());
    if (present) {
        ++statStealsClean;
        arbiter(srcCore).removeLiveLine(srcEpoch);
    } else {
        ++statStealsInFlight;
    }
    if (_observer) {
        _observer->onSteal(srcCore, srcEpoch, reqCore, reqEpoch,
                           line.addr(), !present);
    }
    line.clearTag();
    return none;
}

void
PersistController::beforeLlcEviction(unsigned bankIdx,
                                     cache::CacheLine &victim,
                                     InlineCallback cont)
{
    simAssert(_cfg.enabled && victim.tagged(),
              "replacement conflict without a tagged victim");
    ++statReplacementConflicts;
    ++statOnlineFlushWaits;
    const CoreId core = victim.epochCore();
    const EpochId epoch = victim.epochId();
    const unsigned bankNode = bank(bankIdx).nodeId();
    toArbiter(bankNode, core,
              [this, core, epoch, bankNode,
               cont = std::move(cont)]() mutable {
                  arbiter(core).prepareClosedEpoch(
                      epoch, FlushCause::Replacement,
                      [this, core, bankNode,
                       cont = std::move(cont)](EpochId closed) mutable {
                          arbiter(core).ensureFlushedUpTo(
                              closed, FlushCause::Replacement,
                              [this, core, bankNode,
                               cont = std::move(cont)]() mutable {
                                  ++statProtocolMessages;
                                  _mesh->send(l1(core).nodeId(), bankNode,
                                              noc::kControlBytes,
                                              std::move(cont));
                              });
                      });
              });
}

// ---------------------------------------------------------------------
// Drain / stats
// ---------------------------------------------------------------------

void
PersistController::drainAll(InlineCallback cont)
{
    if (!_cfg.enabled) {
        cont();
        return;
    }
    auto remaining = std::make_shared<unsigned>(
        static_cast<unsigned>(_arbiters.size()));
    auto done = std::make_shared<InlineCallback>(std::move(cont));
    for (auto &arb : _arbiters) {
        arb->drain([this, remaining, done] {
            if (--*remaining == 0) {
                for (auto &a : _arbiters) {
                    simAssert(a->fullyPersisted(), a->name(),
                              ": not fully persisted after drain");
                }
                (*done)();
            }
        });
    }
}

void
PersistController::dumpStats(std::ostream &os)
{
    statGroup.dump(os);
    for (auto &arb : _arbiters)
        arb->statGroup.dump(os);
}

void
PersistController::statsToMap(std::map<std::string, double> &out)
{
    statGroup.toMap(out);
    for (auto &arb : _arbiters)
        arb->statGroup.toMap(out);
}

void
PersistController::collectStatGroups(
    std::vector<const StatGroup *> &out) const
{
    out.push_back(&statGroup);
    for (const auto &arb : _arbiters)
        out.push_back(&arb->statGroup);
}

} // namespace persim::persist
