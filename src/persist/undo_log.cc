#include "persist/undo_log.hh"

// Header-only; anchors the translation unit.

namespace persim::persist
{
} // namespace persim::persist
