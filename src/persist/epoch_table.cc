#include "persist/epoch_table.hh"

#include "sim/logging.hh"

namespace persim::persist
{

EpochTable::EpochTable(CoreId core, unsigned maxInflight,
                       unsigned idtCapacity)
    : _core(core), _maxInflight(maxInflight)
{
    simAssert(maxInflight >= 2,
              "epoch window must hold at least 2 epochs");
    // Ring capacity: maxInflight rounded up to a power of two, so the
    // slot of epoch id is just id & mask.
    EpochId cap = 1;
    while (cap < maxInflight)
        cap <<= 1;
    _mask = cap - 1;
    _ring.reserve(cap);
    for (EpochId i = 0; i < cap; ++i)
        _ring.emplace_back(i, idtCapacity);
    // Epoch 0 opens immediately; a core always has a current epoch.
    // Slot 0 was just constructed in exactly the fresh-epoch state.
    _nextId = 1;
}

Epoch &
EpochTable::at(EpochId id)
{
    simAssert(id >= _headId && id < _nextId, "core ", _core, ": epoch ",
              id, " not in window [", _headId, ", ", _nextId, ")");
    return slot(id);
}

Epoch &
EpochTable::closeCurrentAndOpen(Tick now)
{
    simAssert(canOpen(), "core ", _core,
              ": epoch window full; caller must stall");
    Epoch &prefix = current();
    simAssert(!prefix.closed, "closing an already-closed epoch");
    prefix.closed = true;
    const EpochId id = _nextId++;
    slot(id).reset(id);
    slot(id).openTick = now;
    return prefix;
}

unsigned
EpochTable::retirePersisted()
{
    unsigned retired = 0;
    // The current Ongoing epoch (the newest) never retires.
    while (_nextId - _headId > 1 && slot(_headId).persisted()) {
        ++_headId;
        ++retired;
    }
    return retired;
}

Epoch *
EpochTable::predecessorOf(EpochId id)
{
    if (id < _headId || id >= _nextId)
        panic("core ", _core, ": predecessorOf(", id, ") not in window");
    if (id == _headId)
        return nullptr;
    return &slot(id - 1);
}

} // namespace persim::persist
