#include "persist/epoch_table.hh"

#include "sim/logging.hh"

namespace persim::persist
{

EpochTable::EpochTable(CoreId core, unsigned maxInflight,
                       unsigned idtCapacity)
    : _core(core), _maxInflight(maxInflight), _idtCapacity(idtCapacity)
{
    simAssert(maxInflight >= 2,
              "epoch window must hold at least 2 epochs");
    // Epoch 0 opens immediately; a core always has a current epoch.
    _window.push_back(std::make_unique<Epoch>(_nextId++, _idtCapacity));
}

Epoch *
EpochTable::find(EpochId id)
{
    for (auto &e : _window) {
        if (e->id == id)
            return e.get();
    }
    return nullptr;
}

bool
EpochTable::isPersisted(EpochId id) const
{
    // Anything older than the window's front has retired as Persisted.
    if (_window.empty() || id < _window.front()->id)
        return true;
    for (const auto &e : _window) {
        if (e->id == id)
            return e->persisted();
    }
    // Not retired and not in the window: an epoch id from the future.
    return false;
}

Epoch &
EpochTable::closeCurrentAndOpen()
{
    simAssert(canOpen(), "core ", _core,
              ": epoch window full; caller must stall");
    Epoch &prefix = *_window.back();
    simAssert(!prefix.closed, "closing an already-closed epoch");
    prefix.closed = true;
    _window.push_back(std::make_unique<Epoch>(_nextId++, _idtCapacity));
    return prefix;
}

unsigned
EpochTable::retirePersisted()
{
    unsigned retired = 0;
    // The current Ongoing epoch (back) never retires.
    while (_window.size() > 1 && _window.front()->persisted()) {
        _window.pop_front();
        ++retired;
    }
    return retired;
}

Epoch *
EpochTable::predecessorOf(EpochId id)
{
    Epoch *prev = nullptr;
    for (auto &e : _window) {
        if (e->id == id)
            return prev;
        prev = e.get();
    }
    panic("core ", _core, ": predecessorOf(", id, ") not in window");
}

} // namespace persim::persist
