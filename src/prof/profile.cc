#include "prof/profile.hh"

#include "sim/logging.hh"

namespace persim::prof
{

exp::JsonValue
phaseCountsToJson(const PhaseCounts &counts)
{
    exp::JsonValue out = exp::JsonValue::object();
    for (std::size_t i = 0; i < kPhaseCount; ++i)
        out[phaseName(static_cast<Phase>(i))] =
            exp::JsonValue(counts.samples[i]);
    return out;
}

PhaseCounts
phaseCountsFromJson(const exp::JsonValue &v)
{
    PhaseCounts out;
    for (const auto &[key, value] : v.members()) {
        Phase p;
        if (phaseFromName(key.c_str(), p))
            out.samples[static_cast<std::size_t>(p)] =
                static_cast<std::uint64_t>(value.asNumber());
    }
    return out;
}

exp::JsonValue
JobProfile::toJson() const
{
    exp::JsonValue out = exp::JsonValue::object();
    out["id"] = exp::JsonValue(id);
    out["samples"] = exp::JsonValue(phases.total());
    out["phases"] = phaseCountsToJson(phases);
    out["counters"] = counters.toJson();
    return out;
}

JobProfile
JobProfile::fromJson(const exp::JsonValue &v)
{
    JobProfile out;
    if (const exp::JsonValue *id = v.get("id"))
        out.id = id->asString();
    if (const exp::JsonValue *ph = v.get("phases"))
        out.phases = phaseCountsFromJson(*ph);
    if (const exp::JsonValue *c = v.get("counters"))
        out.counters = CounterReading::fromJson(*c);
    return out;
}

double
SweepProfile::attributionRatio() const
{
    const std::uint64_t total = phases.total();
    return total > 0 ? static_cast<double>(phases.attributed()) /
                           static_cast<double>(total)
                     : 0.0;
}

exp::JsonValue
SweepProfile::toJson() const
{
    exp::JsonValue out = exp::JsonValue::object();
    out["persimProf"] = exp::JsonValue(1);
    out["sweep"] = exp::JsonValue(sweep);
    out["periodUsec"] = exp::JsonValue(periodUsec);
    out["hostCpus"] = exp::JsonValue(hostCpus);
    if (loadAvg1 >= 0.0)
        out["loadAvg1"] = exp::JsonValue(loadAvg1);
    out["samples"] = exp::JsonValue(phases.total());
    out["attributionRatio"] = exp::JsonValue(attributionRatio());
    out["unattributed"] = exp::JsonValue(unattributed);
    out["phases"] = phaseCountsToJson(phases);
    out["counters"] = counters.toJson();
    exp::JsonValue arr = exp::JsonValue::array();
    for (const JobProfile &j : jobs)
        arr.push(j.toJson());
    out["jobs"] = std::move(arr);
    return out;
}

SweepProfile
SweepProfile::fromJson(const exp::JsonValue &v)
{
    const exp::JsonValue *ver = v.get("persimProf");
    if (!ver || static_cast<int>(ver->asNumber()) != 1)
        fatal("not a persim_prof v1 profile document");
    SweepProfile out;
    if (const exp::JsonValue *s = v.get("sweep"))
        out.sweep = s->asString();
    if (const exp::JsonValue *p = v.get("periodUsec"))
        out.periodUsec = static_cast<unsigned>(p->asNumber());
    if (const exp::JsonValue *h = v.get("hostCpus"))
        out.hostCpus = static_cast<unsigned>(h->asNumber());
    if (const exp::JsonValue *l = v.get("loadAvg1"))
        out.loadAvg1 = l->asNumber();
    if (const exp::JsonValue *u = v.get("unattributed"))
        out.unattributed = static_cast<std::uint64_t>(u->asNumber());
    if (const exp::JsonValue *ph = v.get("phases"))
        out.phases = phaseCountsFromJson(*ph);
    if (const exp::JsonValue *c = v.get("counters"))
        out.counters = CounterReading::fromJson(*c);
    if (const exp::JsonValue *jobs = v.get("jobs"))
        for (const exp::JsonValue &j : jobs->items())
            out.jobs.push_back(JobProfile::fromJson(j));
    return out;
}

} // namespace persim::prof
