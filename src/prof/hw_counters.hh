/**
 * @file
 * Per-job hardware counter telemetry with a graceful fallback ladder.
 *
 * The preferred source is a perf_event_open(2) counter group on the
 * calling thread — cycles, instructions, LLC misses, branch misses,
 * scheduled and torn down together so the ratios are consistent. The
 * syscall is routinely unavailable (kernel.perf_event_paranoid in CI
 * containers → EPERM/EACCES, no PMU in VMs → ENOENT, seccomp →
 * ENOSYS), so unavailability is never an error: the group degrades to
 * getrusage(RUSAGE_THREAD) (user/system CPU time, faults, context
 * switches) and, where even that fails, to a plain monotonic clock.
 * The reading always names its source so downstream artifacts stay
 * self-describing ("counters unavailable" is a named field, not a
 * failure — see ISSUE/DESIGN.md §3d).
 *
 * Set PERSIM_PROF_NO_PERF=1 to skip perf_event_open and exercise the
 * fallback ladder deliberately (CI does).
 */

#ifndef PERSIM_PROF_HW_COUNTERS_HH
#define PERSIM_PROF_HW_COUNTERS_HH

#include <cstdint>
#include <string>

#include "exp/json.hh"

namespace persim::prof
{

/** One start()/stop() interval's counter deltas, source-tagged. */
struct CounterReading
{
    /**
     * "perf_event", "getrusage", or "clock"; a parenthesized reason
     * follows when a richer source was probed and refused, e.g.
     * "getrusage (perf_event unavailable: EPERM)".
     */
    std::string source;

    /** perf_event group values (valid only when perfValid). */
    bool perfValid = false;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t branchMisses = 0;

    /** getrusage(RUSAGE_THREAD) deltas (valid when rusageValid). */
    bool rusageValid = false;
    double userSec = 0.0;
    double sysSec = 0.0;
    std::uint64_t minorFaults = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t volCtxSwitches = 0;
    std::uint64_t involCtxSwitches = 0;

    /** Wall clock of the interval (always valid). */
    double wallSec = 0.0;

    /** instructions/cycles; 0 when cycles is 0 or perf is invalid. */
    double ipc() const;

    /** Element-wise sum keeping the first non-empty source. */
    void add(const CounterReading &b);

    exp::JsonValue toJson() const;
    static CounterReading fromJson(const exp::JsonValue &v);
};

/**
 * RAII counter group bound to the constructing thread. Construct and
 * start() on the thread that runs the job; stop() returns the deltas.
 * Never throws: every failure just walks down the fallback ladder.
 */
class HwCounterGroup
{
  public:
    HwCounterGroup();
    ~HwCounterGroup();

    HwCounterGroup(const HwCounterGroup &) = delete;
    HwCounterGroup &operator=(const HwCounterGroup &) = delete;

    /** Reset and enable the group / record the fallback baseline. */
    void start();

    /** Disable the group and return the interval's deltas. */
    CounterReading stop();

    /** The source stop() will report (decided at construction). */
    const std::string &source() const { return _source; }

  private:
    static constexpr int kEvents = 4;

    int _fds[kEvents] = {-1, -1, -1, -1};
    std::string _source;
    bool _usePerf = false;
    bool _useRusage = false;

    // Fallback baselines captured by start().
    double _u0 = 0.0, _s0 = 0.0;
    std::uint64_t _minflt0 = 0, _majflt0 = 0, _nvcsw0 = 0, _nivcsw0 = 0;
    double _wall0 = 0.0;
};

} // namespace persim::prof

#endif // PERSIM_PROF_HW_COUNTERS_HH
