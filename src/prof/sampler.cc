#include "prof/sampler.hh"

#include <csignal>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>

#include <sys/time.h>

namespace persim::prof
{

namespace
{

/**
 * Registry of every ThreadBlock ever attached. Blocks are never freed
 * while the process lives (they are ~100 bytes each and a sweep
 * attaches one per worker thread), so aggregation from the monitor or
 * after run() can never chase a dangling pointer even after the
 * worker threads have exited.
 */
std::mutex gRegistryMutex;
std::deque<std::unique_ptr<detail::ThreadBlock>> gBlocks;

std::atomic<std::uint64_t> gUnattributed{0};
bool gRunning = false;
unsigned gPeriodUsec = 0;
struct sigaction gOldAction;

/**
 * The counting step, shared by the SIGPROF handler and testTick().
 * Async-signal-safe: one TLS load, one bounds check, one lock-free
 * relaxed fetch_add.
 */
inline void
recordSample()
{
    if (detail::ThreadBlock *b = detail::tlBlock) {
        unsigned char p = b->phase.load(std::memory_order_relaxed);
        if (p >= kPhaseCount)
            p = 0;
        b->samples[p].fetch_add(1, std::memory_order_relaxed);
    } else {
        gUnattributed.fetch_add(1, std::memory_order_relaxed);
    }
}

extern "C" void
onSigprof(int)
{
    recordSample();
}

} // namespace

std::uint64_t
PhaseCounts::total() const
{
    std::uint64_t n = 0;
    for (std::uint64_t s : samples)
        n += s;
    return n;
}

std::uint64_t
PhaseCounts::attributed() const
{
    return total() - samples[static_cast<std::size_t>(Phase::Other)];
}

PhaseCounts
PhaseCounts::minus(const PhaseCounts &b) const
{
    PhaseCounts out;
    for (std::size_t i = 0; i < kPhaseCount; ++i)
        out.samples[i] = samples[i] - b.samples[i];
    return out;
}

void
PhaseCounts::add(const PhaseCounts &b)
{
    for (std::size_t i = 0; i < kPhaseCount; ++i)
        samples[i] += b.samples[i];
}

bool
Sampler::start(unsigned periodUsec)
{
    if (gRunning || periodUsec == 0)
        return false;
    attachThread();
    resetCounts();

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSigprof;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &sa, &gOldAction) != 0)
        return false;

    itimerval tv;
    tv.it_interval.tv_sec = periodUsec / 1000000;
    tv.it_interval.tv_usec = periodUsec % 1000000;
    tv.it_value = tv.it_interval;
    if (setitimer(ITIMER_PROF, &tv, nullptr) != 0) {
        sigaction(SIGPROF, &gOldAction, nullptr);
        return false;
    }
    gPeriodUsec = periodUsec;
    gRunning = true;
    return true;
}

void
Sampler::stop()
{
    if (!gRunning)
        return;
    itimerval off;
    std::memset(&off, 0, sizeof(off));
    setitimer(ITIMER_PROF, &off, nullptr);
    sigaction(SIGPROF, &gOldAction, nullptr);
    gRunning = false;
}

bool
Sampler::running()
{
    return gRunning;
}

unsigned
Sampler::periodUsec()
{
    return gPeriodUsec;
}

void
Sampler::attachThread()
{
    if (detail::tlBlock)
        return;
    auto block = std::make_unique<detail::ThreadBlock>();
    detail::ThreadBlock *raw = block.get();
    {
        std::lock_guard<std::mutex> lock(gRegistryMutex);
        gBlocks.push_back(std::move(block));
    }
    detail::tlBlock = raw;
}

void
Sampler::detachThread()
{
    detail::tlBlock = nullptr;
}

PhaseCounts
Sampler::threadCounts()
{
    PhaseCounts out;
    if (const detail::ThreadBlock *b = detail::tlBlock) {
        for (std::size_t i = 0; i < kPhaseCount; ++i)
            out.samples[i] =
                b->samples[i].load(std::memory_order_relaxed);
    }
    return out;
}

PhaseCounts
Sampler::totalCounts()
{
    PhaseCounts out;
    std::lock_guard<std::mutex> lock(gRegistryMutex);
    for (const auto &b : gBlocks)
        for (std::size_t i = 0; i < kPhaseCount; ++i)
            out.samples[i] +=
                b->samples[i].load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
Sampler::unattributedSamples()
{
    return gUnattributed.load(std::memory_order_relaxed);
}

void
Sampler::resetCounts()
{
    std::lock_guard<std::mutex> lock(gRegistryMutex);
    for (const auto &b : gBlocks)
        for (std::size_t i = 0; i < kPhaseCount; ++i)
            b->samples[i].store(0, std::memory_order_relaxed);
    gUnattributed.store(0, std::memory_order_relaxed);
}

void
Sampler::testTick()
{
    recordSample();
}

} // namespace persim::prof
