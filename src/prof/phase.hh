/**
 * @file
 * Host-time phase tags: the cheap half of the sampling profiler.
 *
 * Every hot component (event loop, L1 access, LLC bank, flush engine,
 * persist arbiter, NoC, NVM, workload gen, stat export) opens a
 * ScopedPhase at its entry points. A scope writes the component's
 * phase id into a thread-local slot and restores the enclosing phase
 * on exit — two relaxed byte stores when the profiler is attached to
 * the thread, one inlined thread-local load and a predictable branch
 * when it is not (the same guard discipline as trace::probing(), so
 * the disabled cost is pinned by the same microbench family:
 * BM_ScheduleRun_DisabledPhaseScope in bench_eventqueue).
 *
 * The expensive half lives in prof/sampler.hh: a POSIX interval timer
 * whose async-signal-safe SIGPROF handler reads the tag and bumps a
 * per-thread, per-phase sample counter. Simulated time is never
 * touched — the profiler observes the host, exactly like
 * exp/telemetry, and therefore cannot perturb determinism.
 */

#ifndef PERSIM_PROF_PHASE_HH
#define PERSIM_PROF_PHASE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace persim::prof
{

/**
 * Simulator phases a host-time sample can be attributed to. "Other"
 * covers everything outside an instrumented scope (system
 * construction, JSON writing outside statExport, libc).
 */
enum class Phase : unsigned char
{
    Other = 0,
    /** System::run dispatch loop (event-queue machinery itself). */
    EventLoop,
    /** Workload generators (MemOp production, trace replay decode). */
    WorkloadGen,
    /** L1 access path: staged access, fills, downgrades, flush walks. */
    L1Access,
    /** LLC bank request/flush/writeback machinery. */
    LlcBank,
    /** FlushEngine bucket maintenance (add/remove/takeAll). */
    FlushEngine,
    /** Epoch arbiter: barriers, IDT, flush orchestration, persists. */
    PersistArbiter,
    /** Mesh route walk + link reservation. */
    Noc,
    /** Memory controller + NVRAM service. */
    Nvm,
    /** Stat-tree export and sweep JSON assembly. */
    StatExport,
};

/** Number of distinct Phase values (Other included). */
inline constexpr std::size_t kPhaseCount = 10;

/** Stable camelCase name of @p p; doubles as the JSON key. */
const char *phaseName(Phase p);

/** Inverse of phaseName; returns false when @p name is unknown. */
bool phaseFromName(const char *name, Phase &out);

namespace detail
{

/**
 * Per-thread profiling block. The phase slot is written only by the
 * owning thread's scopes; the sample counters are written only by the
 * SIGPROF handler running *on* the owning thread. Relaxed atomics make
 * the cross-thread reads (live monitor, aggregation) well-defined, and
 * fetch_add/load are lock-free on every supported target, so the
 * handler stays async-signal-safe.
 */
struct ThreadBlock
{
    std::atomic<unsigned char> phase{0};
    std::atomic<std::uint64_t> samples[kPhaseCount] = {};
};

/** The calling thread's block; nullptr until Sampler::attachThread. */
extern thread_local ThreadBlock *tlBlock;

} // namespace detail

/**
 * True when the calling thread has an attached profiling block (phase
 * scopes are live). Mirrors trace::probing().
 */
inline bool profiling() { return detail::tlBlock != nullptr; }

/**
 * RAII phase tag. Enter at a component's host-time entry point;
 * nested scopes restore the enclosing phase, so a bank handler that
 * calls into the flush engine attributes the inner samples to
 * FlushEngine and the rest to LlcBank.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase p)
    {
        if (detail::ThreadBlock *b = detail::tlBlock) [[unlikely]] {
            _block = b;
            _prev = b->phase.load(std::memory_order_relaxed);
            b->phase.store(static_cast<unsigned char>(p),
                           std::memory_order_relaxed);
        }
    }

    ~ScopedPhase()
    {
        if (_block) [[unlikely]]
            _block->phase.store(_prev, std::memory_order_relaxed);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    detail::ThreadBlock *_block = nullptr;
    unsigned char _prev = 0;
};

} // namespace persim::prof

#endif // PERSIM_PROF_PHASE_HH
