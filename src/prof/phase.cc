#include "prof/phase.hh"

#include <cstring>

namespace persim::prof
{

namespace detail
{
thread_local ThreadBlock *tlBlock = nullptr;
} // namespace detail

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Other:
        return "other";
      case Phase::EventLoop:
        return "eventLoop";
      case Phase::WorkloadGen:
        return "workloadGen";
      case Phase::L1Access:
        return "l1Access";
      case Phase::LlcBank:
        return "llcBank";
      case Phase::FlushEngine:
        return "flushEngine";
      case Phase::PersistArbiter:
        return "persistArbiter";
      case Phase::Noc:
        return "noc";
      case Phase::Nvm:
        return "nvm";
      case Phase::StatExport:
        return "statExport";
    }
    return "other";
}

bool
phaseFromName(const char *name, Phase &out)
{
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        const Phase p = static_cast<Phase>(i);
        if (std::strcmp(name, phaseName(p)) == 0) {
            out = p;
            return true;
        }
    }
    return false;
}

} // namespace persim::prof
