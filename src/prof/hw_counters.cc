#include "prof/hw_counters.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace persim::prof
{

namespace
{

double
nowSec()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

const char *
errnoName(int e)
{
    switch (e) {
      case EPERM:
        return "EPERM";
      case EACCES:
        return "EACCES";
      case ENOENT:
        return "ENOENT";
      case ENOSYS:
        return "ENOSYS";
      case ENODEV:
        return "ENODEV";
      case EOPNOTSUPP:
        return "EOPNOTSUPP";
      default:
        return "errno";
    }
}

#ifdef __linux__

int
perfOpen(std::uint32_t type, std::uint64_t config, int groupFd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = groupFd == -1 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.inherit = 0;
    attr.read_format = PERF_FORMAT_GROUP;
    return static_cast<int>(syscall(__NR_perf_event_open, &attr, 0, -1,
                                    groupFd, 0));
}

bool
readRusage(double &u, double &s, std::uint64_t &minflt,
           std::uint64_t &majflt, std::uint64_t &nvcsw,
           std::uint64_t &nivcsw)
{
    rusage ru;
    if (getrusage(RUSAGE_THREAD, &ru) != 0)
        return false;
    u = static_cast<double>(ru.ru_utime.tv_sec) +
        static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    s = static_cast<double>(ru.ru_stime.tv_sec) +
        static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    minflt = static_cast<std::uint64_t>(ru.ru_minflt);
    majflt = static_cast<std::uint64_t>(ru.ru_majflt);
    nvcsw = static_cast<std::uint64_t>(ru.ru_nvcsw);
    nivcsw = static_cast<std::uint64_t>(ru.ru_nivcsw);
    return true;
}

#endif // __linux__

} // namespace

double
CounterReading::ipc() const
{
    return perfValid && cycles > 0
               ? static_cast<double>(instructions) /
                     static_cast<double>(cycles)
               : 0.0;
}

void
CounterReading::add(const CounterReading &b)
{
    if (source.empty())
        source = b.source;
    perfValid = perfValid || b.perfValid;
    cycles += b.cycles;
    instructions += b.instructions;
    llcMisses += b.llcMisses;
    branchMisses += b.branchMisses;
    rusageValid = rusageValid || b.rusageValid;
    userSec += b.userSec;
    sysSec += b.sysSec;
    minorFaults += b.minorFaults;
    majorFaults += b.majorFaults;
    volCtxSwitches += b.volCtxSwitches;
    involCtxSwitches += b.involCtxSwitches;
    wallSec += b.wallSec;
}

exp::JsonValue
CounterReading::toJson() const
{
    exp::JsonValue out = exp::JsonValue::object();
    out["source"] = exp::JsonValue(source);
    if (perfValid) {
        out["cycles"] = exp::JsonValue(cycles);
        out["instructions"] = exp::JsonValue(instructions);
        out["llcMisses"] = exp::JsonValue(llcMisses);
        out["branchMisses"] = exp::JsonValue(branchMisses);
        out["ipc"] = exp::JsonValue(ipc());
    }
    if (rusageValid) {
        out["userSec"] = exp::JsonValue(userSec);
        out["sysSec"] = exp::JsonValue(sysSec);
        out["minorFaults"] = exp::JsonValue(minorFaults);
        out["majorFaults"] = exp::JsonValue(majorFaults);
        out["volCtxSwitches"] = exp::JsonValue(volCtxSwitches);
        out["involCtxSwitches"] = exp::JsonValue(involCtxSwitches);
    }
    out["wallSec"] = exp::JsonValue(wallSec);
    return out;
}

CounterReading
CounterReading::fromJson(const exp::JsonValue &v)
{
    CounterReading out;
    auto num = [&](const char *key, auto &field) {
        if (const exp::JsonValue *j = v.get(key))
            field = static_cast<std::remove_reference_t<decltype(field)>>(
                j->asNumber());
    };
    if (const exp::JsonValue *s = v.get("source"))
        out.source = s->asString();
    out.perfValid = v.get("cycles") != nullptr;
    num("cycles", out.cycles);
    num("instructions", out.instructions);
    num("llcMisses", out.llcMisses);
    num("branchMisses", out.branchMisses);
    out.rusageValid = v.get("userSec") != nullptr;
    num("userSec", out.userSec);
    num("sysSec", out.sysSec);
    num("minorFaults", out.minorFaults);
    num("majorFaults", out.majorFaults);
    num("volCtxSwitches", out.volCtxSwitches);
    num("involCtxSwitches", out.involCtxSwitches);
    num("wallSec", out.wallSec);
    return out;
}

HwCounterGroup::HwCounterGroup()
{
#ifdef __linux__
    const char *noPerf = std::getenv("PERSIM_PROF_NO_PERF");
    std::string perfReason;
    if (noPerf && noPerf[0] && noPerf[0] != '0') {
        perfReason = "perf_event disabled by PERSIM_PROF_NO_PERF";
    } else {
        _fds[0] = perfOpen(PERF_TYPE_HARDWARE,
                           PERF_COUNT_HW_CPU_CYCLES, -1);
        if (_fds[0] < 0) {
            perfReason = std::string("perf_event unavailable: ") +
                         errnoName(errno);
        } else {
            // Siblings are best-effort: a PMU with fewer programmable
            // counters still yields cycles+instructions.
            _fds[1] = perfOpen(PERF_TYPE_HARDWARE,
                               PERF_COUNT_HW_INSTRUCTIONS, _fds[0]);
            _fds[2] = perfOpen(PERF_TYPE_HARDWARE,
                               PERF_COUNT_HW_CACHE_MISSES, _fds[0]);
            _fds[3] = perfOpen(PERF_TYPE_HARDWARE,
                               PERF_COUNT_HW_BRANCH_MISSES, _fds[0]);
            _usePerf = true;
            _source = "perf_event";
            return;
        }
    }
    double u, s;
    std::uint64_t a, b, c, d;
    if (readRusage(u, s, a, b, c, d)) {
        _useRusage = true;
        _source = "getrusage (" + perfReason + ")";
        return;
    }
    _source = "clock (" + perfReason + "; getrusage failed)";
#else
    _source = "clock (perf_event unavailable: not linux)";
#endif
}

HwCounterGroup::~HwCounterGroup()
{
#ifdef __linux__
    for (int fd : _fds)
        if (fd >= 0)
            close(fd);
#endif
}

void
HwCounterGroup::start()
{
    _wall0 = nowSec();
#ifdef __linux__
    if (_usePerf) {
        ioctl(_fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(_fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        return;
    }
    if (_useRusage)
        readRusage(_u0, _s0, _minflt0, _majflt0, _nvcsw0, _nivcsw0);
#endif
}

CounterReading
HwCounterGroup::stop()
{
    CounterReading out;
    out.source = _source;
    out.wallSec = nowSec() - _wall0;
#ifdef __linux__
    if (_usePerf) {
        ioctl(_fds[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
        // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per member
        // in creation order (failed siblings are simply absent).
        std::uint64_t buf[1 + kEvents] = {};
        const ssize_t n = read(_fds[0], buf, sizeof(buf));
        if (n >= static_cast<ssize_t>(2 * sizeof(std::uint64_t))) {
            out.perfValid = true;
            std::uint64_t *vals = buf + 1;
            std::size_t slot = 0;
            std::uint64_t got[kEvents] = {};
            for (int i = 0; i < kEvents; ++i)
                if (_fds[i] >= 0)
                    got[i] = slot < buf[0] ? vals[slot++] : 0;
            out.cycles = got[0];
            out.instructions = got[1];
            out.llcMisses = got[2];
            out.branchMisses = got[3];
        }
        return out;
    }
    if (_useRusage) {
        double u, s;
        std::uint64_t minflt, majflt, nvcsw, nivcsw;
        if (readRusage(u, s, minflt, majflt, nvcsw, nivcsw)) {
            out.rusageValid = true;
            out.userSec = u - _u0;
            out.sysSec = s - _s0;
            out.minorFaults = minflt - _minflt0;
            out.majorFaults = majflt - _majflt0;
            out.volCtxSwitches = nvcsw - _nvcsw0;
            out.involCtxSwitches = nivcsw - _nivcsw0;
        }
    }
#endif
    return out;
}

} // namespace persim::prof
