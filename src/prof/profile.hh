/**
 * @file
 * The on-disk profile document behind `persim_sweep --prof-out` and
 * everything `tools/persim_prof` renders/diffs.
 *
 * A profile is strictly host-side (sample counts, hardware counters,
 * load average) and therefore lives in its own file, never inside the
 * deterministic sweep JSON — the same separation exp/telemetry keeps.
 * The document round-trips through exp::JsonValue so persim_prof can
 * parse, tabulate, and diff profiles produced by any build.
 */

#ifndef PERSIM_PROF_PROFILE_HH
#define PERSIM_PROF_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "prof/hw_counters.hh"
#include "prof/sampler.hh"

namespace persim::prof
{

/** One job's slice of the profile. */
struct JobProfile
{
    std::string id;
    PhaseCounts phases;
    CounterReading counters;

    exp::JsonValue toJson() const;
    static JobProfile fromJson(const exp::JsonValue &v);
};

/** A whole sweep's profile (`--prof-out` document, version 1). */
struct SweepProfile
{
    std::string sweep;
    unsigned periodUsec = 0;
    unsigned hostCpus = 0;
    /** 1-minute load average at the end of the run; < 0 = unknown. */
    double loadAvg1 = -1.0;
    /** Aggregate phase samples across every profiled thread. */
    PhaseCounts phases;
    /** Timer ticks that landed on unattached threads. */
    std::uint64_t unattributed = 0;
    /** Counter deltas summed over jobs; source names the ladder rung. */
    CounterReading counters;
    std::vector<JobProfile> jobs;

    /** Fraction of samples on a named (non-Other) phase, in [0, 1]. */
    double attributionRatio() const;

    exp::JsonValue toJson() const;

    /** Parse; throws SimFatal when @p v is not a v1 profile. */
    static SweepProfile fromJson(const exp::JsonValue &v);
};

/** Serialize @p counts as an object keyed by phaseName. */
exp::JsonValue phaseCountsToJson(const PhaseCounts &counts);

/** Inverse of phaseCountsToJson; unknown keys are ignored. */
PhaseCounts phaseCountsFromJson(const exp::JsonValue &v);

} // namespace persim::prof

#endif // PERSIM_PROF_PROFILE_HH
