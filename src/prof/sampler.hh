/**
 * @file
 * The sampling half of the host-time profiler: a POSIX interval timer
 * (ITIMER_PROF / SIGPROF) whose handler attributes each tick to the
 * interrupted thread's current phase tag (prof/phase.hh).
 *
 * Safety rules (see DESIGN.md §3d):
 *   - the handler touches only the interrupted thread's own
 *     ThreadBlock (lock-free relaxed atomics) or one global atomic
 *     for unattached threads — no locks, no allocation, no libc I/O;
 *   - thread blocks are allocated by attachThread() on the profiled
 *     thread *before* any sample can land on it, and are owned by a
 *     process-lifetime registry so aggregation never races thread
 *     exit;
 *   - ITIMER_PROF counts process CPU time and the kernel delivers
 *     SIGPROF to a currently running thread, so a multi-worker sweep
 *     gets a statistically fair per-thread breakdown with one timer
 *     (the classic profil(3)/gprof discipline — which also means the
 *     sampler must not run in a -pg build, where gprof owns SIGPROF).
 *
 * Tests drive the same counting step deterministically through
 * testTick() instead of a timer.
 */

#ifndef PERSIM_PROF_SAMPLER_HH
#define PERSIM_PROF_SAMPLER_HH

#include <array>
#include <cstdint>

#include "prof/phase.hh"

namespace persim::prof
{

/** Per-phase sample counts (index by static_cast<size_t>(Phase)). */
struct PhaseCounts
{
    std::array<std::uint64_t, kPhaseCount> samples{};

    std::uint64_t total() const;

    /** Samples attributed to a named phase (everything but Other). */
    std::uint64_t attributed() const;

    std::uint64_t
    operator[](Phase p) const
    {
        return samples[static_cast<std::size_t>(p)];
    }

    /** Element-wise difference (per-job deltas; callers keep a >= b). */
    PhaseCounts minus(const PhaseCounts &b) const;

    /** Element-wise sum. */
    void add(const PhaseCounts &b);

    bool operator==(const PhaseCounts &) const = default;
};

/**
 * Process-wide sampler control. All static: there is at most one
 * interval timer per process, so a second concurrent start() fails.
 */
class Sampler
{
  public:
    /**
     * Install the SIGPROF handler and arm ITIMER_PROF at @p periodUsec
     * microseconds of process CPU time per sample. Also attaches the
     * calling thread and zeroes all counters. Returns false (and does
     * nothing) when a sampler is already running or the timer cannot
     * be armed.
     */
    static bool start(unsigned periodUsec);

    /** Disarm the timer and restore the previous SIGPROF action. */
    static void stop();

    static bool running();

    /** Sampling period of the active/last start(), microseconds. */
    static unsigned periodUsec();

    /**
     * Give the calling thread a profiling block (idempotent), making
     * its phase scopes live. Must run on the profiled thread before
     * work starts; the SIGPROF handler null-checks, so a thread that
     * never attaches just accrues unattributed samples.
     */
    static void attachThread();

    /** Make the calling thread's scopes inert again (block persists). */
    static void detachThread();

    /** Snapshot of the calling thread's counters (attached threads). */
    static PhaseCounts threadCounts();

    /** Sum over every thread attached since the last reset/start. */
    static PhaseCounts totalCounts();

    /** Samples that landed on threads without a block since start. */
    static std::uint64_t unattributedSamples();

    /** Zero every registered block and the unattributed counter. */
    static void resetCounts();

    /**
     * Deterministic test hook: run exactly the SIGPROF handler's
     * counting step on the calling thread, as if a timer tick had
     * landed right now.
     */
    static void testTick();
};

} // namespace persim::prof

#endif // PERSIM_PROF_SAMPLER_HH
