/**
 * @file
 * The memory-operation stream a workload feeds to a core.
 */

#ifndef PERSIM_CPU_MEM_OP_HH
#define PERSIM_CPU_MEM_OP_HH

#include <cstdint>

#include "sim/types.hh"

namespace persim::cpu
{

/** One operation of a workload's instruction stream. */
struct MemOp
{
    enum class Kind : std::uint8_t
    {
        Load,    // blocking read of `addr`
        Store,   // buffered write of `addr`
        Barrier, // persist barrier (epoch boundary)
        Compute, // `cycles` of non-memory work
        Halt,    // thread finished
    };

    Kind kind = Kind::Halt;
    Addr addr = 0;
    std::uint32_t cycles = 0;

    static MemOp load(Addr a) { return {Kind::Load, a, 0}; }
    static MemOp store(Addr a) { return {Kind::Store, a, 0}; }
    static MemOp barrier() { return {Kind::Barrier, 0, 0}; }
    static MemOp compute(std::uint32_t c) { return {Kind::Compute, 0, c}; }
    static MemOp halt() { return {Kind::Halt, 0, 0}; }
};

} // namespace persim::cpu

#endif // PERSIM_CPU_MEM_OP_HH
