#include "cpu/write_buffer.hh"

#include "sim/logging.hh"

namespace persim::cpu
{

void
WriteBuffer::push(Addr addr)
{
    simAssert(!full(), "write-buffer overflow");
    _fifo.push_back(Entry{lineAlign(addr)});
    ++_lineCounts[lineNum(addr)];
}

void
WriteBuffer::pop()
{
    simAssert(!empty(), "write-buffer underflow");
    const Addr line = lineNum(_fifo.front().addr);
    auto it = _lineCounts.find(line);
    simAssert(it != _lineCounts.end(), "write-buffer count corrupt");
    if (--it->second == 0)
        _lineCounts.erase(it);
    _fifo.pop_front();
}

} // namespace persim::cpu
