/**
 * @file
 * The core model: in-order issue with a TSO store write buffer.
 */

#ifndef PERSIM_CPU_CORE_HH
#define PERSIM_CPU_CORE_HH

#include <array>
#include <string>

#include "cpu/mem_op.hh"
#include "cpu/workload_iface.hh"
#include "cpu/write_buffer.hh"
#include "sim/inline_callback.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::cache
{
class L1Cache;
} // namespace persim::cache

namespace persim::persist
{
class EpochArbiter;
} // namespace persim::persist

namespace persim::cpu
{

/** Core parameters. */
struct CoreConfig
{
    unsigned writeBufferEntries = 32;
    /**
     * Issue an exclusive (RFO) prefetch when a store enters the write
     * buffer, modelling the store-miss overlap an OoO core extracts.
     * Completion stays strictly in order (TSO), so a store stalled on
     * a persist conflict back-pressures everything younger — the
     * effect the paper's conflict costs rest on.
     */
    bool rfoPrefetch = true;
    /**
     * BSP bulk mode: the hardware persistence engine inserts a persist
     * barrier every N dynamic stores (§5.2). 0 disables auto-barriers.
     */
    unsigned autoBarrierEvery = 0;
    /** Persist-barrier machinery on (off for NP and write-through SP). */
    bool persistEnabled = true;
    /**
     * Naive strict persistency: every store writes through to NVRAM and
     * the next store waits for the ack (§7.2's 8x strawman).
     */
    bool writeThrough = false;
};

/**
 * One core executing a workload.
 *
 * The model approximates the paper's OoO cores with the properties the
 * persist study depends on: stores are asynchronous (they retire into the
 * write buffer and drain in TSO order) while loads expose their latency;
 * persist barriers cost nothing by themselves under BEP and block under
 * EP. See DESIGN.md §5 for the substitution rationale.
 */
class Core : public SimObject
{
  public:
    Core(const std::string &name, EventQueue &eq, CoreId id,
         const CoreConfig &cfg, cache::L1Cache *l1,
         persist::EpochArbiter *arbiter, Workload *workload);

    /** Begin executing at the current tick. */
    void start();

    CoreId id() const { return _id; }

    /** The workload returned Halt and the write buffer drained. */
    bool done() const
    {
        return _halted && _wb.empty() && _drainInflight == 0;
    }
    bool halted() const { return _halted; }

    /** Tick at which the core became done (kTickNever before that). */
    Tick doneTick() const { return _doneTick; }

    /** Callback invoked once when the core becomes done. */
    void setOnDone(InlineCallback cb) { _onDone = std::move(cb); }

    Workload *workload() { return _workload; }
    StatGroup &stats() { return _stats; }

    std::uint64_t committedOps() const { return _ops.value(); }

  private:
    void step();
    void issueLoad(Addr addr);
    void issueStore(Addr addr);
    void issueBarrier();
    /** Barrier phase 2: the write buffer drained; close the epoch. */
    void barrierAfterDrain();
    /** Issue drains until drainWays are outstanding. */
    void pumpDrain();
    void onDrainComplete(Addr addr);
    void maybeDone();

    CoreId _id;
    CoreConfig _cfg;
    cache::L1Cache *_l1;
    persist::EpochArbiter *_arbiter;
    Workload *_workload;
    WriteBuffer _wb;

    bool _halted = false;
    bool _stalledOnWb = false;
    bool _barrierPending = false;
    Addr _pendingStoreAddr = 0;
    unsigned _drainInflight = 0;
    /**
     * Lines with an in-flight drained store (load forwarding). The
     * drain pump keeps at most drainWays (= 1) stores outstanding, so
     * a tiny fixed scan array replaces the hash map the per-op path
     * used to probe; slots is sized with slack and overflow panics.
     */
    struct InflightLine
    {
        Addr line = 0;
        unsigned refs = 0;
    };
    std::array<InflightLine, 4> _inflightLines{};
    unsigned _inflightCount = 0;

    bool
    inflightContains(Addr line) const
    {
        for (unsigned i = 0; i < _inflightCount; ++i) {
            if (_inflightLines[i].line == line)
                return true;
        }
        return false;
    }
    void inflightAdd(Addr line);
    void inflightRemove(Addr line);

    Tick _startTick = 0;
    Tick _doneTick = kTickNever;
    std::uint64_t _storesSinceBarrier = 0;
    InlineCallback _onDone;

    StatGroup _stats;
    Scalar _ops;
    Scalar _loads;
    Scalar _stores;
    Scalar _barriers;
    Scalar _computeCycles;
    Scalar _wbStallEvents;
    Scalar _forwards;
    Distribution _loadLatency;
};

} // namespace persim::cpu

#endif // PERSIM_CPU_CORE_HH
