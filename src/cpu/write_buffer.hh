/**
 * @file
 * The core's TSO store write buffer (32 entries in Table 1).
 */

#ifndef PERSIM_CPU_WRITE_BUFFER_HH
#define PERSIM_CPU_WRITE_BUFFER_HH

#include <deque>
#include <unordered_map>

#include "sim/types.hh"

namespace persim::cpu
{

/**
 * A FIFO store buffer.
 *
 * Stores retire into the buffer immediately and drain to the L1 in
 * program order (TSO); loads snoop the buffer for forwarding. Entries
 * record the epoch the store was tagged with at execution time.
 */
class WriteBuffer
{
  public:
    struct Entry
    {
        Addr addr = 0;
    };

    explicit WriteBuffer(unsigned capacity) : _capacity(capacity) {}

    bool full() const { return _fifo.size() >= _capacity; }
    bool empty() const { return _fifo.empty(); }
    std::size_t size() const { return _fifo.size(); }
    unsigned capacity() const { return _capacity; }

    /** Append a store; the buffer must not be full. */
    void push(Addr addr);

    /** Oldest store (drain candidate); buffer must be non-empty. */
    const Entry &front() const { return _fifo.front(); }

    /** Remove the oldest store after it performed. */
    void pop();

    /** True if a buffered store targets @p addr's line (forwarding). */
    bool containsLine(Addr addr) const
    {
        return _lineCounts.contains(lineNum(addr));
    }

  private:
    unsigned _capacity;
    std::deque<Entry> _fifo;
    std::unordered_map<Addr, unsigned> _lineCounts;
};

} // namespace persim::cpu

#endif // PERSIM_CPU_WRITE_BUFFER_HH
