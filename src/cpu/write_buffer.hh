/**
 * @file
 * The core's TSO store write buffer (32 entries in Table 1).
 */

#ifndef PERSIM_CPU_WRITE_BUFFER_HH
#define PERSIM_CPU_WRITE_BUFFER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace persim::cpu
{

/**
 * A FIFO store buffer.
 *
 * Stores retire into the buffer immediately and drain to the L1 in
 * program order (TSO); loads snoop the buffer for forwarding.
 *
 * The buffer is a fixed ring sized at construction (capacity rounded
 * up to a power of two — one allocation, ever), so push and pop are a
 * slot write and an index bump with no heap traffic. Load forwarding
 * (containsLine) is answered by a 64-slot line-hash filter of small
 * reference counts: the common negative probe is one array read, and
 * only a filter hit pays the exact scan over the (at most
 * capacity-entry) ring. The filter counts are exact per hash slot, so
 * the scan answer — and therefore forwarding behaviour — is identical
 * to the address-set bookkeeping this replaced.
 */
class WriteBuffer
{
  public:
    struct Entry
    {
        Addr addr = 0;
    };

    explicit WriteBuffer(unsigned capacity) : _capacity(capacity)
    {
        simAssert(capacity > 0, "write buffer needs at least one entry");
        simAssert(capacity <= 255,
                  "write-buffer filter counts are 8-bit; capacity > 255 "
                  "needs wider counters");
        unsigned ringSize = 1;
        while (ringSize < capacity)
            ringSize <<= 1;
        _mask = ringSize - 1;
        _ring.resize(ringSize);
    }

    bool full() const { return _size >= _capacity; }
    bool empty() const { return _size == 0; }
    std::size_t size() const { return _size; }
    unsigned capacity() const { return _capacity; }

    /** Append a store; the buffer must not be full. */
    void
    push(Addr addr)
    {
        simAssert(!full(), "write-buffer overflow");
        const Addr line = lineAlign(addr);
        _ring[(_head + _size) & _mask].addr = line;
        ++_size;
        ++_lineRefs[filterSlot(line)];
    }

    /** Oldest store (drain candidate); buffer must be non-empty. */
    const Entry &
    front() const
    {
        simAssert(!empty(), "write-buffer front on empty buffer");
        return _ring[_head];
    }

    /** Remove the oldest store after it performed. */
    void
    pop()
    {
        simAssert(!empty(), "write-buffer underflow");
        std::uint8_t &refs = _lineRefs[filterSlot(_ring[_head].addr)];
        simAssert(refs != 0, "write-buffer count corrupt");
        --refs;
        _head = (_head + 1) & _mask;
        --_size;
    }

    /** True if a buffered store targets @p addr's line (forwarding). */
    bool
    containsLine(Addr addr) const
    {
        const Addr line = lineAlign(addr);
        if (_lineRefs[filterSlot(line)] == 0)
            return false;
        for (unsigned i = 0; i < _size; ++i) {
            if (_ring[(_head + i) & _mask].addr == line)
                return true;
        }
        return false;
    }

  private:
    /** Fibonacci-hash the line number into one of 64 filter slots. */
    static unsigned
    filterSlot(Addr line)
    {
        return static_cast<unsigned>(
            (lineNum(line) * UINT64_C(0x9E3779B97F4A7C15)) >> 58);
    }

    unsigned _capacity;
    unsigned _mask;
    unsigned _head = 0;
    unsigned _size = 0;
    std::vector<Entry> _ring;
    /** Per-hash-slot count of buffered stores; 0 means "definitely not
     * buffered", the exactness the forwarding check needs. */
    std::array<std::uint8_t, 64> _lineRefs{};
};

} // namespace persim::cpu

#endif // PERSIM_CPU_WRITE_BUFFER_HH
