/**
 * @file
 * The execution-driven workload interface.
 */

#ifndef PERSIM_CPU_WORKLOAD_IFACE_HH
#define PERSIM_CPU_WORKLOAD_IFACE_HH

#include <cstdint>

#include "cpu/mem_op.hh"
#include "sim/types.hh"

namespace persim::cpu
{

/**
 * A per-thread workload: the core asks for the next operation whenever it
 * is ready to issue one.
 *
 * Workloads are execution-driven, not trace-driven: next() may depend on
 * simulated time and on the completion feedback delivered through
 * onLoadComplete(), which is how spinlocks and other timing-dependent
 * behaviour (workload/lock_manager.hh) are expressed.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the thread's next operation. Called once per issue. */
    virtual MemOp next(Tick now) = 0;

    /** Timing feedback: the load of @p addr completed at @p now. */
    virtual void onLoadComplete(Addr addr, Tick now)
    {
        (void)addr;
        (void)now;
    }

    /** Completed application-level transactions (throughput metric). */
    virtual std::uint64_t transactions() const { return 0; }
};

} // namespace persim::cpu

#endif // PERSIM_CPU_WORKLOAD_IFACE_HH
