#include "cpu/core.hh"

#include <algorithm>

#include "cache/l1_cache.hh"
#include "persist/epoch_arbiter.hh"
#include "prof/phase.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::cpu
{

Core::Core(const std::string &name, EventQueue &eq, CoreId id,
           const CoreConfig &cfg, cache::L1Cache *l1,
           persist::EpochArbiter *arbiter, Workload *workload)
    : SimObject(name, eq),
      _id(id),
      _cfg(cfg),
      _l1(l1),
      _arbiter(arbiter),
      _workload(workload),
      _wb(cfg.writeBufferEntries),
      _stats(name),
      _ops(&_stats, "ops", "operations committed"),
      _loads(&_stats, "loads", "loads issued"),
      _stores(&_stats, "stores", "stores issued"),
      _barriers(&_stats, "barriers", "persist barriers executed"),
      _computeCycles(&_stats, "computeCycles", "non-memory work cycles"),
      _wbStallEvents(&_stats, "wbStalls",
                     "stores stalled on a full write buffer"),
      _forwards(&_stats, "forwards", "loads forwarded from the buffer"),
      _loadLatency(&_stats, "loadLatency", "load latency (cycles)")
{
    simAssert(workload, name, ": core without a workload");
    simAssert(!cfg.persistEnabled || arbiter, name,
              ": persistence enabled without an arbiter");
}

void
Core::start()
{
    _startTick = curTick();
    scheduleIn(0, [this] { step(); });
}

void
Core::step()
{
    if (_halted)
        return;
    MemOp op;
    {
        prof::ScopedPhase profPhase(prof::Phase::WorkloadGen);
        op = _workload->next(curTick());
    }
    switch (op.kind) {
      case MemOp::Kind::Halt:
        _halted = true;
        maybeDone();
        return;
      case MemOp::Kind::Compute:
        ++_ops;
        _computeCycles.inc(op.cycles);
        scheduleIn(std::max<Tick>(op.cycles, 1), [this] { step(); });
        return;
      case MemOp::Kind::Load:
        issueLoad(op.addr);
        return;
      case MemOp::Kind::Store:
        issueStore(op.addr);
        return;
      case MemOp::Kind::Barrier:
        issueBarrier();
        return;
    }
}

void
Core::issueLoad(Addr addr)
{
    ++_loads;
    ++_ops;
    if (_wb.containsLine(addr) || inflightContains(lineNum(addr))) {
        ++_forwards;
        scheduleIn(1, [this, addr] {
            _workload->onLoadComplete(addr, curTick());
            step();
        });
        return;
    }
    const Tick start = curTick();
    _l1->access(addr, false, [this, addr, start] {
        _loadLatency.sample(curTick() - start);
        _workload->onLoadComplete(addr, curTick());
        scheduleIn(1, [this] { step(); });
    });
}

void
Core::issueStore(Addr addr)
{
    if (_wb.full()) {
        ++_wbStallEvents;
        _stalledOnWb = true;
        _pendingStoreAddr = addr;
        return; // onDrainComplete() resumes
    }
    ++_stores;
    ++_ops;
    _wb.push(addr);
    if (_cfg.rfoPrefetch && !_cfg.writeThrough)
        _l1->prefetchExclusive(addr);
    pumpDrain();
    if (_cfg.autoBarrierEvery != 0 &&
        ++_storesSinceBarrier >= _cfg.autoBarrierEvery) {
        _storesSinceBarrier = 0;
        issueBarrier();
        return;
    }
    scheduleIn(1, [this] { step(); });
}

void
Core::issueBarrier()
{
    ++_barriers;
    ++_ops;
    if (!_cfg.persistEnabled) {
        scheduleIn(1, [this] { step(); });
        return;
    }
    // Persist barriers have store-fence semantics: stores ahead of the
    // barrier must complete (and so tag the closing epoch) first. The
    // expensive part — waiting for persists — still only happens under
    // blocking (EP) barriers.
    if (!_wb.empty() || _drainInflight != 0) {
        _barrierPending = true;
        return; // onDrainComplete() resumes
    }
    barrierAfterDrain();
}

void
Core::barrierAfterDrain()
{
    _arbiter->barrier([this] { scheduleIn(1, [this] { step(); }); });
}

void
Core::pumpDrain()
{
    // Stores complete strictly in order (TSO write buffer); the RFO
    // prefetch issued at execution time supplies the miss overlap.
    const unsigned ways = 1;
    while (_drainInflight < ways && !_wb.empty()) {
        const Addr addr = _wb.front().addr;
        _wb.pop();
        ++_drainInflight;
        inflightAdd(lineNum(addr));
        _l1->access(addr, true, [this, addr] {
            if (_cfg.writeThrough) {
                // Naive strict persistency: the store is not complete
                // until its line is durable. The write carries no epoch
                // tag; SP's ordering is structural (serial drain).
                _l1->issueNvmWrite(addr, kNoCore, kNoEpoch, false,
                                   [this, addr] {
                                       onDrainComplete(addr);
                                   });
            } else {
                onDrainComplete(addr);
            }
        });
    }
}

void
Core::onDrainComplete(Addr addr)
{
    --_drainInflight;
    inflightRemove(lineNum(addr));
    if (_stalledOnWb) {
        _stalledOnWb = false;
        issueStore(_pendingStoreAddr);
    }
    if (_wb.empty() && _drainInflight == 0) {
        if (_barrierPending) {
            _barrierPending = false;
            barrierAfterDrain();
        }
        maybeDone();
    } else {
        pumpDrain();
    }
}

void
Core::inflightAdd(Addr line)
{
    for (unsigned i = 0; i < _inflightCount; ++i) {
        if (_inflightLines[i].line == line) {
            ++_inflightLines[i].refs;
            return;
        }
    }
    simAssert(_inflightCount < _inflightLines.size(), name(),
              ": in-flight line table overflow (raise the array size "
              "alongside the drain-way count)");
    _inflightLines[_inflightCount].line = line;
    _inflightLines[_inflightCount].refs = 1;
    ++_inflightCount;
}

void
Core::inflightRemove(Addr line)
{
    for (unsigned i = 0; i < _inflightCount; ++i) {
        if (_inflightLines[i].line != line)
            continue;
        if (--_inflightLines[i].refs == 0) {
            _inflightLines[i] = _inflightLines[_inflightCount - 1];
            --_inflightCount;
        }
        return;
    }
    panic(name(), ": in-flight line 0x", std::hex, line << kLineShift,
          std::dec, " completed without a table entry");
}

void
Core::maybeDone()
{
    if (_halted && _wb.empty() && _drainInflight == 0 &&
        _doneTick == kTickNever) {
        _doneTick = curTick();
        if (trace::probing()) [[unlikely]]
            trace::span(_startTick, _doneTick, name(), "execute", "Exec");
        if (_onDone)
            _onDone();
    }
}

} // namespace persim::cpu
