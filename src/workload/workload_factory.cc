#include "workload/workload_factory.hh"

#include "sim/logging.hh"
#include "workload/micro/hash.hh"
#include "workload/micro/queue.hh"
#include "workload/micro/rbtree.hh"
#include "workload/micro/sdg.hh"
#include "workload/micro/sps.hh"
#include "workload/synthetic/presets.hh"
#include "workload/trace/trace_replay.hh"

namespace persim::workload
{

const char *
toString(MicroKind kind)
{
    switch (kind) {
      case MicroKind::Hash:
        return "hash";
      case MicroKind::Queue:
        return "queue";
      case MicroKind::RbTree:
        return "rbtree";
      case MicroKind::Sdg:
        return "sdg";
      case MicroKind::Sps:
        return "sps";
    }
    return "?";
}

const std::vector<MicroKind> &
allMicroKinds()
{
    static const std::vector<MicroKind> kinds = {
        MicroKind::Hash, MicroKind::Queue, MicroKind::RbTree,
        MicroKind::Sdg, MicroKind::Sps,
    };
    return kinds;
}

MicroKind
microKindFromName(const std::string &name)
{
    for (MicroKind k : allMicroKinds()) {
        if (name == toString(k))
            return k;
    }
    fatal("unknown micro-benchmark '", name, "'");
}

namespace
{

MicroParams
paramsFor(const MicroConfig &cfg, CoreId thread)
{
    MicroParams p;
    p.thread = thread;
    p.numThreads = cfg.numThreads;
    p.opsPerThread = cfg.opsPerThread;
    p.seed = cfg.seed;
    p.searchFraction = cfg.searchFraction;
    p.crossFraction = cfg.crossFraction;
    p.thinkCycles = cfg.thinkCycles;
    p.useLocks = cfg.useLocks < 0 ? (cfg.kind == MicroKind::Queue)
                                  : cfg.useLocks != 0;
    return p;
}

} // namespace

namespace
{

unsigned
defaultStructureSize(MicroKind kind)
{
    switch (kind) {
      case MicroKind::Hash:
        return 32; // buckets per thread
      case MicroKind::Queue:
        return 256; // shared ring slots
      case MicroKind::RbTree:
        return 0; // trees size themselves
      case MicroKind::Sdg:
        return 16; // vertices per thread
      case MicroKind::Sps:
        return 64; // array entries per thread
    }
    return 32;
}

} // namespace

std::vector<std::unique_ptr<cpu::Workload>>
makeMicroWorkloads(const MicroConfig &cfg_)
{
    MicroConfig cfg = cfg_;
    if (cfg.structureSize == 0)
        cfg.structureSize = defaultStructureSize(cfg.kind);
    std::vector<std::unique_ptr<cpu::Workload>> out;
    out.reserve(cfg.numThreads);
    switch (cfg.kind) {
      case MicroKind::Hash: {
        auto state = std::make_shared<HashTableState>(cfg.structureSize,
                                                       cfg.numThreads);
        for (unsigned t = 0; t < cfg.numThreads; ++t) {
            out.push_back(std::make_unique<HashBenchmark>(
                paramsFor(cfg, static_cast<CoreId>(t)), state));
        }
        break;
      }
      case MicroKind::Queue: {
        auto state = std::make_shared<QueueState>(cfg.structureSize);
        for (unsigned t = 0; t < cfg.numThreads; ++t) {
            out.push_back(std::make_unique<QueueBenchmark>(
                paramsFor(cfg, static_cast<CoreId>(t)), state));
        }
        break;
      }
      case MicroKind::RbTree: {
        auto state = std::make_shared<RbTreeState>(cfg.numThreads);
        for (unsigned t = 0; t < cfg.numThreads; ++t) {
            out.push_back(std::make_unique<RbTreeBenchmark>(
                paramsFor(cfg, static_cast<CoreId>(t)), state));
        }
        break;
      }
      case MicroKind::Sdg: {
        auto state = std::make_shared<SdgState>(cfg.structureSize,
                                                cfg.numThreads);
        for (unsigned t = 0; t < cfg.numThreads; ++t) {
            out.push_back(std::make_unique<SdgBenchmark>(
                paramsFor(cfg, static_cast<CoreId>(t)), state));
        }
        break;
      }
      case MicroKind::Sps: {
        auto state = std::make_shared<SpsState>(cfg.structureSize,
                                                cfg.numThreads);
        for (unsigned t = 0; t < cfg.numThreads; ++t) {
            out.push_back(std::make_unique<SpsBenchmark>(
                paramsFor(cfg, static_cast<CoreId>(t)), state));
        }
        break;
      }
    }
    return out;
}

std::vector<std::unique_ptr<cpu::Workload>>
makeSyntheticWorkloads(const std::string &preset, unsigned numThreads,
                       std::uint64_t opsPerThread, std::uint64_t seed)
{
    TraceGenParams params = syntheticPreset(preset);
    params.opsPerThread = opsPerThread;
    std::vector<std::unique_ptr<cpu::Workload>> out;
    out.reserve(numThreads);
    for (unsigned t = 0; t < numThreads; ++t) {
        out.push_back(std::make_unique<TraceGen>(
            params, static_cast<CoreId>(t), numThreads, seed));
    }
    return out;
}

std::vector<std::unique_ptr<cpu::Workload>>
makeTraceReplayWorkloads(const std::string &path, unsigned numThreads)
{
    return trace::makeTraceReplay(path, numThreads);
}

} // namespace persim::workload
