#include "workload/nv_heap.hh"

#include "sim/logging.hh"

namespace persim::workload
{

NvHeap::NvHeap(Addr base, Addr sizeBytes) : _base(base), _size(sizeBytes)
{
    simAssert(lineAlign(base) == base, "heap base must be line-aligned");
}

Addr
NvHeap::alloc(std::uint64_t bytes, CoreId thread)
{
    const std::uint64_t sz = roundUp(bytes);
    _liveBytes += sz;
    auto it = _freeLists.find(classKey(sz, thread));
    if (it != _freeLists.end() && !it->second.empty()) {
        Addr a = it->second.back();
        it->second.pop_back();
        return a;
    }
    if (_cursor + sz > _size)
        fatal("NvHeap exhausted (", _size, " bytes)");
    Addr a = _base + _cursor;
    _cursor += sz;
    return a;
}

void
NvHeap::free(Addr addr, std::uint64_t bytes, CoreId thread)
{
    const std::uint64_t sz = roundUp(bytes);
    simAssert(_liveBytes >= sz, "NvHeap double free");
    _liveBytes -= sz;
    _freeLists[classKey(sz, thread)].push_back(addr);
}

} // namespace persim::workload
