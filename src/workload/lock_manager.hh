/**
 * @file
 * Functional spinlocks for the execution-driven workloads.
 */

#ifndef PERSIM_WORKLOAD_LOCK_MANAGER_HH
#define PERSIM_WORKLOAD_LOCK_MANAGER_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace persim::workload
{

/**
 * Host-side lock state keyed by the lock word's simulated address.
 *
 * The simulator carries no data values, so lock *semantics* live here
 * while lock *traffic* (the probe load and the CAS store of the lock
 * word) is emitted into the memory stream by the workloads — those
 * shared writes are exactly what creates the paper's inter-thread
 * conflicts.
 */
class LockManager
{
  public:
    /**
     * Attempt to take the lock at @p lockAddr for @p thread.
     * @return true on acquisition.
     */
    bool tryAcquire(Addr lockAddr, CoreId thread);

    /** Release a lock held by @p thread. */
    void release(Addr lockAddr, CoreId thread);

    /** Holder of the lock, or kNoCore. */
    CoreId holder(Addr lockAddr) const;

    std::uint64_t acquisitions() const { return _acquisitions; }
    std::uint64_t contendedTries() const { return _contended; }

  private:
    std::unordered_map<Addr, CoreId> _held;
    std::uint64_t _acquisitions = 0;
    std::uint64_t _contended = 0;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_LOCK_MANAGER_HH
