/**
 * @file
 * Construction of complete multi-threaded workloads.
 */

#ifndef PERSIM_WORKLOAD_WORKLOAD_FACTORY_HH
#define PERSIM_WORKLOAD_WORKLOAD_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/workload_iface.hh"
#include "workload/micro/micro_benchmark.hh"

namespace persim::workload
{

/** The Table 2 micro-benchmarks. */
enum class MicroKind
{
    Hash,
    Queue,
    RbTree,
    Sdg,
    Sps,
};

const char *toString(MicroKind kind);

/** All five, in the paper's figure order. */
const std::vector<MicroKind> &allMicroKinds();

/** Parse "hash" / "queue" / "rbtree" / "sdg" / "sps". */
MicroKind microKindFromName(const std::string &name);

/** Sizing of a micro-benchmark run. */
struct MicroConfig
{
    MicroKind kind = MicroKind::Hash;
    unsigned numThreads = 32;
    std::uint64_t opsPerThread = 500;
    std::uint64_t seed = 1;
    /**
     * Per-thread structure size: buckets (hash), vertices (sdg) or
     * array entries (sps) per thread. The queue interprets it as the
     * total slot count of the single shared ring. 0 picks the tuned
     * per-benchmark default (hash 32, queue 256, sdg 16, sps 64).
     */
    unsigned structureSize = 0;
    double searchFraction = 0.2;
    /** Fraction of ops that target another thread's partition. */
    double crossFraction = 0.1;
    unsigned thinkCycles = 20;
    /**
     * Force lock traffic on/off; -1 keeps per-benchmark defaults
     * (queue locked, the partitioned micros lockless).
     */
    int useLocks = -1;
};

/**
 * Build one workload per thread, all sharing the benchmark's structure.
 * Index i is the workload for core i.
 */
std::vector<std::unique_ptr<cpu::Workload>>
makeMicroWorkloads(const MicroConfig &cfg);

/**
 * Build the synthetic stand-in for PARSEC/SPLASH/STAMP benchmark
 * @p preset (see synthetic/presets.hh), one thread per core.
 *
 * @param opsPerThread Memory operations per thread.
 */
std::vector<std::unique_ptr<cpu::Workload>>
makeSyntheticWorkloads(const std::string &preset, unsigned numThreads,
                       std::uint64_t opsPerThread, std::uint64_t seed);

/**
 * Build replay workloads (one per core) from the trace file at
 * @p path, binary or text form. Fatal if the trace's thread count
 * differs from @p numThreads.
 */
std::vector<std::unique_ptr<cpu::Workload>>
makeTraceReplayWorkloads(const std::string &path, unsigned numThreads);

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_WORKLOAD_FACTORY_HH
