#include "workload/micro/rbtree.hh"

#include "sim/logging.hh"

namespace persim::workload
{

RbTree::RbTree(NvHeap &heap, CoreId owner) : _heap(heap), _owner(owner)
{
    _nil = new Node();
    _nil->red = false;
    _nil->left = _nil->right = _nil->parent = _nil;
    _root = _nil;
}

RbTree::~RbTree()
{
    destroy(_root);
    delete _nil;
}

void
RbTree::destroy(Node *n)
{
    if (n == _nil)
        return;
    destroy(n->left);
    destroy(n->right);
    delete n;
}

void
RbTree::touch(Node *n)
{
    if (n != _nil && _touchLog)
        _touchLog->push_back(n->addr);
}

void
RbTree::rotateLeft(Node *x)
{
    Node *y = x->right;
    x->right = y->left;
    if (y->left != _nil)
        y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == _nil)
        _root = y;
    else if (x == x->parent->left)
        x->parent->left = y;
    else
        x->parent->right = y;
    y->left = x;
    x->parent = y;
    touch(x);
    touch(y);
    touch(y->parent);
}

void
RbTree::rotateRight(Node *x)
{
    Node *y = x->left;
    x->left = y->right;
    if (y->right != _nil)
        y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == _nil)
        _root = y;
    else if (x == x->parent->right)
        x->parent->right = y;
    else
        x->parent->left = y;
    y->right = x;
    x->parent = y;
    touch(x);
    touch(y);
    touch(y->parent);
}

bool
RbTree::insert(std::uint64_t key, std::vector<Addr> &path,
               std::vector<Addr> &touched)
{
    Node *y = _nil;
    Node *x = _root;
    while (x != _nil) {
        path.push_back(x->addr);
        y = x;
        if (key == x->key)
            return false;
        x = key < x->key ? x->left : x->right;
    }
    Node *z = new Node();
    z->key = key;
    z->left = z->right = _nil;
    z->parent = y;
    z->red = true;
    z->addr = _heap.alloc(kEntryBytes, _owner);

    _touchLog = &touched;
    touch(z);
    if (y == _nil)
        _root = z;
    else if (key < y->key)
        y->left = z;
    else
        y->right = z;
    touch(y);
    insertFixup(z);
    _touchLog = nullptr;
    ++_size;
    return true;
}

void
RbTree::insertFixup(Node *z)
{
    while (z->parent->red) {
        if (z->parent == z->parent->parent->left) {
            Node *uncle = z->parent->parent->right;
            if (uncle->red) {
                z->parent->red = false;
                uncle->red = false;
                z->parent->parent->red = true;
                touch(z->parent);
                touch(uncle);
                touch(z->parent->parent);
                z = z->parent->parent;
            } else {
                if (z == z->parent->right) {
                    z = z->parent;
                    rotateLeft(z);
                }
                z->parent->red = false;
                z->parent->parent->red = true;
                touch(z->parent);
                touch(z->parent->parent);
                rotateRight(z->parent->parent);
            }
        } else {
            Node *uncle = z->parent->parent->left;
            if (uncle->red) {
                z->parent->red = false;
                uncle->red = false;
                z->parent->parent->red = true;
                touch(z->parent);
                touch(uncle);
                touch(z->parent->parent);
                z = z->parent->parent;
            } else {
                if (z == z->parent->left) {
                    z = z->parent;
                    rotateRight(z);
                }
                z->parent->red = false;
                z->parent->parent->red = true;
                touch(z->parent);
                touch(z->parent->parent);
                rotateLeft(z->parent->parent);
            }
        }
    }
    if (_root->red) {
        _root->red = false;
        touch(_root);
    }
}

void
RbTree::transplant(Node *u, Node *v)
{
    if (u->parent == _nil)
        _root = v;
    else if (u == u->parent->left)
        u->parent->left = v;
    else
        u->parent->right = v;
    v->parent = u->parent;
    touch(u->parent);
    touch(v);
}

RbTree::Node *
RbTree::minimum(Node *n) const
{
    while (n->left != _nil)
        n = n->left;
    return n;
}

bool
RbTree::erase(std::uint64_t key, std::vector<Addr> &path,
              std::vector<Addr> &touched)
{
    Node *z = _root;
    while (z != _nil) {
        path.push_back(z->addr);
        if (key == z->key)
            break;
        z = key < z->key ? z->left : z->right;
    }
    if (z == _nil)
        return false;

    _touchLog = &touched;
    Node *y = z;
    bool yWasRed = y->red;
    Node *x;
    if (z->left == _nil) {
        x = z->right;
        transplant(z, z->right);
    } else if (z->right == _nil) {
        x = z->left;
        transplant(z, z->left);
    } else {
        y = minimum(z->right);
        yWasRed = y->red;
        x = y->right;
        if (y->parent == z) {
            x->parent = y;
        } else {
            transplant(y, y->right);
            y->right = z->right;
            y->right->parent = y;
            touch(y);
        }
        transplant(z, y);
        y->left = z->left;
        y->left->parent = y;
        y->red = z->red;
        touch(y);
        touch(y->left);
    }
    if (!yWasRed)
        eraseFixup(x);
    _touchLog = nullptr;

    _heap.free(z->addr, kEntryBytes, _owner);
    delete z;
    --_size;
    return true;
}

void
RbTree::eraseFixup(Node *x)
{
    while (x != _root && !x->red) {
        if (x == x->parent->left) {
            Node *w = x->parent->right;
            if (w->red) {
                w->red = false;
                x->parent->red = true;
                touch(w);
                touch(x->parent);
                rotateLeft(x->parent);
                w = x->parent->right;
            }
            if (!w->left->red && !w->right->red) {
                w->red = true;
                touch(w);
                x = x->parent;
            } else {
                if (!w->right->red) {
                    w->left->red = false;
                    w->red = true;
                    touch(w->left);
                    touch(w);
                    rotateRight(w);
                    w = x->parent->right;
                }
                w->red = x->parent->red;
                x->parent->red = false;
                w->right->red = false;
                touch(w);
                touch(x->parent);
                touch(w->right);
                rotateLeft(x->parent);
                x = _root;
            }
        } else {
            Node *w = x->parent->left;
            if (w->red) {
                w->red = false;
                x->parent->red = true;
                touch(w);
                touch(x->parent);
                rotateRight(x->parent);
                w = x->parent->left;
            }
            if (!w->right->red && !w->left->red) {
                w->red = true;
                touch(w);
                x = x->parent;
            } else {
                if (!w->left->red) {
                    w->right->red = false;
                    w->red = true;
                    touch(w->right);
                    touch(w);
                    rotateLeft(w);
                    w = x->parent->left;
                }
                w->red = x->parent->red;
                x->parent->red = false;
                w->left->red = false;
                touch(w);
                touch(x->parent);
                touch(w->left);
                rotateRight(x->parent);
                x = _root;
            }
        }
    }
    if (x->red) {
        x->red = false;
        touch(x);
    }
}

bool
RbTree::lookup(std::uint64_t key, std::vector<Addr> &path) const
{
    const Node *n = _root;
    while (n != _nil) {
        path.push_back(n->addr);
        if (key == n->key)
            return true;
        n = key < n->key ? n->left : n->right;
    }
    return false;
}

int
RbTree::blackHeight(const Node *n, bool &ok) const
{
    if (n == _nil)
        return 1;
    if (n->red && (n->left->red || n->right->red))
        ok = false; // red-red edge
    const int lh = blackHeight(n->left, ok);
    const int rh = blackHeight(n->right, ok);
    if (lh != rh)
        ok = false;
    return lh + (n->red ? 0 : 1);
}

bool
RbTree::validate() const
{
    if (_root->red)
        return false;
    bool ok = true;
    blackHeight(_root, ok);
    return ok;
}

RbTreeState::RbTreeState(unsigned numThreads_)
    : numThreads(numThreads_), trees(numThreads_)
{
    for (unsigned t = 0; t < numThreads_; ++t) {
        trees[t].tree =
            std::make_unique<RbTree>(heap, static_cast<CoreId>(t));
        trees[t].lockWord =
            NvHeap::kDefaultBase - static_cast<Addr>(t + 1) * kLineBytes;
    }
}

void
RbTreeBenchmark::buildTransaction()
{
    unsigned slot = params().thread;
    if (_state->numThreads > 1 && rng().chance(params().crossFraction))
        slot = static_cast<unsigned>(rng().below(_state->numThreads));
    auto &st = _state->trees[slot];
    std::vector<Addr> path;
    std::vector<Addr> touched;
    const double r = rng().real();

    emitLockAcquire(st.lockWord);
    if (r < params().searchFraction && !st.liveKeys.empty()) {
        const std::uint64_t key =
            st.liveKeys[rng().below(st.liveKeys.size())];
        st.tree->lookup(key, path);
        for (Addr a : path)
            emitLoad(a);
    } else if (rng().chance(0.5) && st.liveKeys.size() > 8) {
        const std::size_t idx = rng().below(st.liveKeys.size());
        const std::uint64_t key = st.liveKeys[idx];
        st.liveKeys[idx] = st.liveKeys.back();
        st.liveKeys.pop_back();
        st.tree->erase(key, path, touched);
        for (Addr a : path)
            emitLoad(a);
        for (Addr a : touched)
            emitStore(a); // fixup writes (header lines)
        emitBarrier();
    } else {
        const std::uint64_t key = st.nextKey++;
        st.liveKeys.push_back(key);
        const bool inserted = st.tree->insert(key, path, touched);
        simAssert(inserted, "duplicate rbtree key generated");
        for (Addr a : path)
            emitLoad(a);
        // Epoch A: initialize the new node's full 512B entry (the first
        // touched address is the new node).
        if (!touched.empty())
            emitEntryWrite(touched.front());
        emitBarrier();
        // Epoch B: link + rebalance writes.
        for (std::size_t i = 1; i < touched.size(); ++i)
            emitStore(touched[i]);
        emitBarrier();
    }
    emitLockRelease(st.lockWord);
    emitCompute(params().thinkCycles);
    emitTxnDone();
}

} // namespace persim::workload
