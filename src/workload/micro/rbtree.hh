/**
 * @file
 * Red-black-tree micro-benchmark (Table 2).
 *
 * The tree is a full CLRS red-black tree maintained host-side, with each
 * node bound to a 512B simulated NVRAM entry. Every node an operation
 * reads (the search path) or writes (insertions, rotations, recolors,
 * fixups) is recorded so the benchmark emits an address-accurate memory
 * stream for it.
 */

#ifndef PERSIM_WORKLOAD_MICRO_RBTREE_HH
#define PERSIM_WORKLOAD_MICRO_RBTREE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/micro/micro_benchmark.hh"

namespace persim::workload
{

/** A red-black tree over simulated NVRAM entries. */
class RbTree
{
  public:
    /**
     * @param heap Backing allocator.
     * @param owner Thread whose allocation pool node entries use.
     */
    explicit RbTree(NvHeap &heap, CoreId owner = 0);
    ~RbTree();

    RbTree(const RbTree &) = delete;
    RbTree &operator=(const RbTree &) = delete;

    /**
     * Insert @p key.
     *
     * @param path Entry addresses read while descending (out).
     * @param touched Entry addresses written, in write order (out).
     * @return false if the key already existed (nothing written).
     */
    bool insert(std::uint64_t key, std::vector<Addr> &path,
                std::vector<Addr> &touched);

    /**
     * Erase @p key.
     * @return false if the key was absent.
     */
    bool erase(std::uint64_t key, std::vector<Addr> &path,
               std::vector<Addr> &touched);

    /** Record the search path for @p key; @return found. */
    bool lookup(std::uint64_t key, std::vector<Addr> &path) const;

    std::size_t size() const { return _size; }

    /**
     * Check the red-black invariants (root black, no red-red edge,
     * equal black height on every path). @return true when valid.
     */
    bool validate() const;

  private:
    struct Node
    {
        std::uint64_t key = 0;
        Node *left = nullptr;
        Node *right = nullptr;
        Node *parent = nullptr;
        bool red = false;
        Addr addr = 0;
    };

    void touch(Node *n);
    void rotateLeft(Node *x);
    void rotateRight(Node *x);
    void insertFixup(Node *z);
    void eraseFixup(Node *x);
    void transplant(Node *u, Node *v);
    Node *minimum(Node *n) const;
    int blackHeight(const Node *n, bool &ok) const;
    void destroy(Node *n);

    NvHeap &_heap;
    CoreId _owner;
    Node *_nil;
    Node *_root;
    std::size_t _size = 0;
    std::vector<Addr> *_touchLog = nullptr;
};

/**
 * Shared state of the rbtree micro-benchmark: one tree per thread
 * (NVHeaps-style partitioning), each with its own lock so that
 * cross-thread operations stay safe.
 */
struct RbTreeState
{
    explicit RbTreeState(unsigned numThreads);

    struct PerTree
    {
        std::unique_ptr<RbTree> tree;
        std::vector<std::uint64_t> liveKeys;
        Addr lockWord = 0;
        std::uint64_t nextKey = 1;
    };

    NvHeap heap;
    LockManager locks;
    unsigned numThreads;
    std::vector<PerTree> trees;
};

/** One thread of the rbtree micro-benchmark (global tree lock). */
class RbTreeBenchmark : public MicroBenchmark
{
  public:
    RbTreeBenchmark(const MicroParams &params,
                    std::shared_ptr<RbTreeState> state)
        : MicroBenchmark(params, state->locks), _state(std::move(state))
    {
    }

  protected:
    void buildTransaction() override;

  private:
    std::shared_ptr<RbTreeState> _state;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_MICRO_RBTREE_HH
