#include "workload/micro/sdg.hh"

#include <algorithm>

namespace persim::workload
{

SdgState::SdgState(unsigned verticesPerThread_, unsigned numThreads_)
    : verticesPerThread(verticesPerThread_),
      numThreads(numThreads_),
      numVertices(verticesPerThread_ * numThreads_),
      metaBase(NvHeap::kDefaultBase -
               static_cast<Addr>(numVertices) * 2 * kLineBytes),
      adjacency(numVertices)
{
}

unsigned
SdgBenchmark::pickVertex(bool allowCross)
{
    unsigned part = params().thread;
    if (allowCross && _state->numThreads > 1 &&
        rng().chance(params().crossFraction)) {
        part = static_cast<unsigned>(rng().below(_state->numThreads));
    }
    return part * _state->verticesPerThread +
           static_cast<unsigned>(rng().below(_state->verticesPerThread));
}

void
SdgBenchmark::buildTransaction()
{
    const unsigned u = pickVertex(/*allowCross=*/false);
    const double r = rng().real();
    if (r < params().searchFraction) {
        buildSearch(u);
    } else if (rng().chance(0.5) && !_state->adjacency[u].empty()) {
        buildDelete(u);
    } else {
        unsigned v = pickVertex(/*allowCross=*/true);
        if (v == u)
            v = params().thread * _state->verticesPerThread +
                (v + 1 - params().thread * _state->verticesPerThread) %
                    _state->verticesPerThread;
        buildInsert(u, v);
    }
    emitCompute(params().thinkCycles);
    emitTxnDone();
}

void
SdgBenchmark::buildSearch(unsigned u)
{
    emitLoad(_state->headAddr(u));
    auto &adj = _state->adjacency[u];
    if (!adj.empty()) {
        const auto &edge = adj[rng().below(adj.size())];
        emitEntryRead(edge.entry);
    }
}

void
SdgBenchmark::buildInsert(unsigned u, unsigned v)
{
    // Lock both endpoints in address order (no lock-order deadlocks;
    // persistence deadlocks are the persist machinery's job, §3.3).
    const unsigned lo = std::min(u, v);
    const unsigned hi = std::max(u, v);
    const Addr entry = _state->heap.alloc(kEntryBytes, params().thread);
    _state->adjacency[u].push_back(SdgState::Edge{entry, v});
    _state->adjacency[v].push_back(SdgState::Edge{entry, u});

    emitLockAcquire(_state->lockAddr(lo));
    emitLockAcquire(_state->lockAddr(hi));
    emitLoad(_state->headAddr(u));
    emitLoad(_state->headAddr(v));
    emitEntryWrite(entry); // Epoch A: the edge record
    emitBarrier();
    emitStore(_state->headAddr(u)); // Epoch B: publish on both lists
    emitStore(_state->headAddr(v));
    emitBarrier();
    emitLockRelease(_state->lockAddr(hi));
    emitLockRelease(_state->lockAddr(lo));
}

void
SdgBenchmark::buildDelete(unsigned u)
{
    auto &adjU = _state->adjacency[u];
    const std::size_t idx = rng().below(adjU.size());
    const SdgState::Edge edge = adjU[idx];
    const unsigned v = edge.peer;
    adjU[idx] = adjU.back();
    adjU.pop_back();
    auto &adjV = _state->adjacency[v];
    for (std::size_t i = 0; i < adjV.size(); ++i) {
        if (adjV[i].entry == edge.entry && adjV[i].peer == u) {
            adjV[i] = adjV.back();
            adjV.pop_back();
            break;
        }
    }
    _state->heap.free(edge.entry, kEntryBytes, params().thread);

    const unsigned lo = std::min(u, v);
    const unsigned hi = std::max(u, v);
    emitLockAcquire(_state->lockAddr(lo));
    emitLockAcquire(_state->lockAddr(hi));
    emitLoad(_state->headAddr(u));
    emitLoad(_state->headAddr(v));
    emitLoad(edge.entry);           // read the edge's link fields
    emitStore(_state->headAddr(u)); // Epoch A: unlink from both lists
    emitStore(_state->headAddr(v));
    emitBarrier();
    emitLockRelease(_state->lockAddr(hi));
    emitLockRelease(_state->lockAddr(lo));
}

} // namespace persim::workload
