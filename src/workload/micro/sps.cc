#include "workload/micro/sps.hh"

namespace persim::workload
{

unsigned
SpsBenchmark::pickIndex(bool allowCross)
{
    unsigned segment = params().thread;
    if (allowCross && _state->numThreads > 1 &&
        rng().chance(params().crossFraction)) {
        segment = static_cast<unsigned>(rng().below(_state->numThreads));
    }
    return segment * _state->entriesPerThread +
           static_cast<unsigned>(rng().below(_state->entriesPerThread));
}

void
SpsBenchmark::buildTransaction()
{
    const unsigned i = pickIndex(/*allowCross=*/false);
    unsigned j = pickIndex(/*allowCross=*/true);
    if (j == i)
        j = params().thread * _state->entriesPerThread +
            (j + 1 - params().thread * _state->entriesPerThread) %
                _state->entriesPerThread;

    // Read both entries, then write both; the barrier makes the swap a
    // recoverable unit (a torn swap is undone by re-running it).
    emitEntryRead(_state->entryAddr(i));
    emitEntryRead(_state->entryAddr(j));
    emitEntryWrite(_state->entryAddr(i));
    emitEntryWrite(_state->entryAddr(j));
    emitBarrier();
    emitCompute(params().thinkCycles);
    emitTxnDone();
}

} // namespace persim::workload
