/**
 * @file
 * SPS micro-benchmark (Table 2): random swaps between array entries.
 *
 * The array is segmented per thread; swaps stay inside the thread's
 * segment except for a configurable fraction that picks one index from
 * a random segment (the inter-thread component).
 */

#ifndef PERSIM_WORKLOAD_MICRO_SPS_HH
#define PERSIM_WORKLOAD_MICRO_SPS_HH

#include <memory>

#include "workload/micro/micro_benchmark.hh"

namespace persim::workload
{

/** Shared state: a persistent array of 512B entries. */
struct SpsState
{
    SpsState(unsigned entriesPerThread_, unsigned numThreads_)
        : entriesPerThread(entriesPerThread_),
          numThreads(numThreads_),
          base(NvHeap::kDefaultBase)
    {
    }

    LockManager locks; // unused (SPS is lock-free) but required by base
    unsigned entriesPerThread;
    unsigned numThreads;
    Addr base;

    unsigned totalEntries() const
    {
        return entriesPerThread * numThreads;
    }

    Addr entryAddr(unsigned i) const
    {
        return base + static_cast<Addr>(i) * kEntryBytes;
    }
};

/** One thread performing random persistent swaps. */
class SpsBenchmark : public MicroBenchmark
{
  public:
    SpsBenchmark(const MicroParams &params,
                 std::shared_ptr<SpsState> state)
        : MicroBenchmark(params, state->locks), _state(std::move(state))
    {
    }

  protected:
    void buildTransaction() override;

  private:
    unsigned pickIndex(bool allowCross);

    std::shared_ptr<SpsState> _state;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_MICRO_SPS_HH
