#include "workload/micro/hash.hh"

namespace persim::workload
{

HashTableState::HashTableState(unsigned bucketsPerThread_,
                               unsigned numThreads_)
    : bucketsPerThread(bucketsPerThread_),
      numThreads(numThreads_),
      metaBase(NvHeap::kDefaultBase -
               static_cast<Addr>(bucketsPerThread_) * numThreads_ * 2 *
                   kLineBytes),
      chains(bucketsPerThread_ * numThreads_)
{
}

unsigned
HashBenchmark::pickBucket()
{
    unsigned slice = params().thread;
    if (_state->numThreads > 1 && rng().chance(params().crossFraction)) {
        slice = static_cast<unsigned>(rng().below(_state->numThreads));
    }
    return slice * _state->bucketsPerThread +
           static_cast<unsigned>(rng().below(_state->bucketsPerThread));
}

void
HashBenchmark::buildTransaction()
{
    const unsigned b = pickBucket();
    const double r = rng().real();
    if (r < params().searchFraction) {
        buildSearch(b);
    } else if (rng().chance(0.5) && !_state->chains[b].empty()) {
        buildDelete(b);
    } else {
        buildInsert(b);
    }
    emitCompute(params().thinkCycles);
    emitTxnDone();
}

void
HashBenchmark::buildSearch(unsigned b)
{
    emitLoad(_state->headAddr(b));
    auto &chain = _state->chains[b];
    if (!chain.empty()) {
        const Addr entry = chain[rng().below(chain.size())].addr;
        emitEntryRead(entry);
    }
}

void
HashBenchmark::buildInsert(unsigned b)
{
    const Addr lock = _state->lockAddr(b);
    const Addr entry =
        _state->heap.alloc(kEntryBytes, params().thread);
    _state->chains[b].push_back(
        HashTableState::Entry{entry, params().thread});

    emitLockAcquire(lock);
    emitLoad(_state->headAddr(b)); // read the old head for the link
    emitEntryWrite(entry);         // Epoch A: the new entry's payload
    emitBarrier();
    emitStore(_state->headAddr(b)); // Epoch B: publish the entry
    emitBarrier();
    emitLockRelease(lock);
}

void
HashBenchmark::buildDelete(unsigned b)
{
    const Addr lock = _state->lockAddr(b);
    auto &chain = _state->chains[b];
    // Prefer an entry we inserted ourselves (it returns to our pool).
    std::size_t idx = chain.size() - 1;
    for (std::size_t i = chain.size(); i-- > 0;) {
        if (chain[i].owner == params().thread) {
            idx = i;
            break;
        }
    }
    const Addr victim = chain[idx].addr;
    chain[idx] = chain.back();
    chain.pop_back();
    _state->heap.free(victim, kEntryBytes, params().thread);

    emitLockAcquire(lock);
    emitLoad(_state->headAddr(b));
    emitLoad(victim);               // read the victim's next pointer
    emitStore(_state->headAddr(b)); // Epoch A: unlink
    emitBarrier();
    emitLockRelease(lock);
}

} // namespace persim::workload
