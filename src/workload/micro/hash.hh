/**
 * @file
 * Hash-table micro-benchmark (Table 2): insert/delete/search of 512B
 * entries, NVHeaps-style.
 *
 * The table is partitioned: each thread owns a slice of the buckets and
 * mostly operates there (reusing its own freed entries — the source of
 * the intra-thread conflicts that dominate the paper's BEP results);
 * a configurable fraction of operations crosses into a neighbour's
 * slice under that bucket's lock, producing inter-thread conflicts.
 */

#ifndef PERSIM_WORKLOAD_MICRO_HASH_HH
#define PERSIM_WORKLOAD_MICRO_HASH_HH

#include <memory>
#include <vector>

#include "workload/micro/micro_benchmark.hh"

namespace persim::workload
{

/** Shared (host-side) state of one hash table. */
struct HashTableState
{
    /**
     * @param bucketsPerThread Buckets in each thread's slice.
     * @param numThreads Number of slices.
     */
    HashTableState(unsigned bucketsPerThread, unsigned numThreads);

    NvHeap heap;
    LockManager locks;
    unsigned bucketsPerThread;
    unsigned numThreads;
    Addr metaBase;

    unsigned totalBuckets() const
    {
        return bucketsPerThread * numThreads;
    }

    /** Line holding bucket @p b's head pointer. */
    Addr headAddr(unsigned b) const
    {
        return metaBase + static_cast<Addr>(b) * 2 * kLineBytes;
    }
    /** Line holding bucket @p b's lock word. */
    Addr lockAddr(unsigned b) const
    {
        return headAddr(b) + kLineBytes;
    }

    /** Host-side chains: entry base + inserting thread, per bucket. */
    struct Entry
    {
        Addr addr;
        CoreId owner;
    };
    std::vector<std::vector<Entry>> chains;
};

/** One thread of the hash micro-benchmark. */
class HashBenchmark : public MicroBenchmark
{
  public:
    HashBenchmark(const MicroParams &params,
                  std::shared_ptr<HashTableState> state)
        : MicroBenchmark(params, state->locks), _state(std::move(state))
    {
    }

  protected:
    void buildTransaction() override;

  private:
    /** Pick a bucket: usually in our slice, sometimes a neighbour's. */
    unsigned pickBucket();
    void buildInsert(unsigned bucket);
    void buildDelete(unsigned bucket);
    void buildSearch(unsigned bucket);

    std::shared_ptr<HashTableState> _state;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_MICRO_HASH_HH
