#include "workload/micro/queue.hh"

namespace persim::workload
{

QueueState::QueueState(unsigned slots)
    : numSlots(slots),
      dataBase(NvHeap::kDefaultBase - Addr{16} * 1024 * 1024),
      headAddr(dataBase - 4 * kLineBytes),
      tailAddr(dataBase - 3 * kLineBytes),
      lockWord(dataBase - 2 * kLineBytes)
{
}

void
QueueBenchmark::buildTransaction()
{
    // Keep the queue roughly half full: insert when empty, delete when
    // full, otherwise flip a coin.
    if (_state->empty() || (!_state->full() && rng().chance(0.5)))
        buildInsert();
    else
        buildDelete();
    emitCompute(params().thinkCycles);
    emitTxnDone();
}

void
QueueBenchmark::buildInsert()
{
    const unsigned slot = _state->head;
    _state->head = (_state->head + 1) % _state->numSlots;

    emitLockAcquire(_state->lockWord);
    emitLoad(_state->headAddr);
    // QUEUE_INSERT (Figure 10): Epoch A copies the entry at Head...
    emitEntryWrite(_state->slotAddr(slot));
    emitBarrier();
    // ...Epoch B bumps the Head pointer.
    emitStore(_state->headAddr);
    emitBarrier();
    emitLockRelease(_state->lockWord);
}

void
QueueBenchmark::buildDelete()
{
    const unsigned slot = _state->tail;
    _state->tail = (_state->tail + 1) % _state->numSlots;

    emitLockAcquire(_state->lockWord);
    emitLoad(_state->tailAddr);
    emitEntryRead(_state->slotAddr(slot)); // consume the entry
    emitStore(_state->tailAddr);           // bump the tail
    emitBarrier();
    emitLockRelease(_state->lockWord);
}

} // namespace persim::workload
