/**
 * @file
 * Queue micro-benchmark: the copy-while-locked persistent queue of
 * Pelley et al. (§5.1, Figure 10).
 */

#ifndef PERSIM_WORKLOAD_MICRO_QUEUE_HH
#define PERSIM_WORKLOAD_MICRO_QUEUE_HH

#include <memory>

#include "workload/micro/micro_benchmark.hh"

namespace persim::workload
{

/** Shared state of the persistent ring queue. */
struct QueueState
{
    explicit QueueState(unsigned slots);

    NvHeap heap;
    LockManager locks;
    unsigned numSlots;
    Addr dataBase;  // slots of kEntryBytes each
    Addr headAddr;  // line holding the head index
    Addr tailAddr;  // line holding the tail index
    Addr lockWord;  // the queue's global lock

    unsigned head = 0; // host-side indices
    unsigned tail = 0;

    Addr slotAddr(unsigned s) const
    {
        return dataBase + static_cast<Addr>(s) * kEntryBytes;
    }
    bool empty() const { return head == tail; }
    bool full() const { return (head + 1) % numSlots == tail; }
};

/** One thread of the queue micro-benchmark. */
class QueueBenchmark : public MicroBenchmark
{
  public:
    QueueBenchmark(const MicroParams &params,
                   std::shared_ptr<QueueState> state)
        : MicroBenchmark(params, state->locks), _state(std::move(state))
    {
    }

  protected:
    void buildTransaction() override;

  private:
    void buildInsert();
    void buildDelete();

    std::shared_ptr<QueueState> _state;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_MICRO_QUEUE_HH
