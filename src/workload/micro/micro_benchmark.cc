#include "workload/micro/micro_benchmark.hh"

#include "sim/logging.hh"

namespace persim::workload
{

MicroBenchmark::MicroBenchmark(const MicroParams &params,
                               LockManager &locks)
    : _params(params),
      _locks(locks),
      _rng(params.seed * 0x5851F42D4C957F2DULL + params.thread + 1)
{
}

void
MicroBenchmark::emitLoad(Addr a)
{
    _steps.push_back(Step{Step::Kind::Op, cpu::MemOp::load(a), 0});
}

void
MicroBenchmark::emitStore(Addr a)
{
    _steps.push_back(Step{Step::Kind::Op, cpu::MemOp::store(a), 0});
}

void
MicroBenchmark::emitBarrier()
{
    _steps.push_back(Step{Step::Kind::Op, cpu::MemOp::barrier(), 0});
}

void
MicroBenchmark::emitCompute(std::uint32_t cycles)
{
    _steps.push_back(Step{Step::Kind::Op, cpu::MemOp::compute(cycles), 0});
}

void
MicroBenchmark::emitEntryRead(Addr base, unsigned lines)
{
    for (unsigned i = 0; i < lines; ++i)
        emitLoad(base + static_cast<Addr>(i) * kLineBytes);
}

void
MicroBenchmark::emitEntryWrite(Addr base, unsigned lines)
{
    for (unsigned i = 0; i < lines; ++i)
        emitStore(base + static_cast<Addr>(i) * kLineBytes);
}

void
MicroBenchmark::emitLockAcquire(Addr lockAddr)
{
    if (!_params.useLocks)
        return;
    _steps.push_back(
        Step{Step::Kind::LockAcquire, cpu::MemOp::halt(), lockAddr});
}

void
MicroBenchmark::emitLockRelease(Addr lockAddr)
{
    if (!_params.useLocks)
        return;
    _steps.push_back(
        Step{Step::Kind::LockRelease, cpu::MemOp::halt(), lockAddr});
}

void
MicroBenchmark::emitTxnDone()
{
    _steps.push_back(Step{Step::Kind::TxnDone, cpu::MemOp::halt(), 0});
}

cpu::MemOp
MicroBenchmark::next(Tick now)
{
    (void)now;
    while (true) {
        if (_haltEmitted)
            return cpu::MemOp::halt();
        if (_steps.empty()) {
            if (_transactions >= _params.opsPerThread) {
                _haltEmitted = true;
                return cpu::MemOp::halt();
            }
            buildTransaction();
            simAssert(!_steps.empty(),
                      "buildTransaction emitted nothing");
        }
        Step &front = _steps.front();
        switch (front.kind) {
          case Step::Kind::Op: {
            cpu::MemOp op = front.op;
            _steps.pop_front();
            return op;
          }
          case Step::Kind::LockAcquire:
            // Probe the lock word; onLoadComplete decides the outcome.
            simAssert(!_probeOutstanding, "nested lock probe");
            _probeOutstanding = true;
            return cpu::MemOp::load(front.lock);
          case Step::Kind::LockRelease: {
            const Addr lock = front.lock;
            _steps.pop_front();
            _locks.release(lock, _params.thread);
            return cpu::MemOp::store(lock);
          }
          case Step::Kind::TxnDone:
            _steps.pop_front();
            ++_transactions;
            continue;
        }
    }
}

void
MicroBenchmark::onLoadComplete(Addr addr, Tick now)
{
    (void)now;
    if (!_probeOutstanding)
        return;
    simAssert(!_steps.empty() &&
                  _steps.front().kind == Step::Kind::LockAcquire &&
                  lineAlign(_steps.front().lock) == lineAlign(addr),
              "lock probe completion out of order");
    _probeOutstanding = false;
    if (_locks.tryAcquire(addr, _params.thread)) {
        // Acquired: replace the probe with the CAS store.
        _steps.front() =
            Step{Step::Kind::Op, cpu::MemOp::store(addr), 0};
    } else {
        // Contended: back off, then probe again.
        _steps.push_front(Step{
            Step::Kind::Op,
            cpu::MemOp::compute(
                static_cast<std::uint32_t>(20 + _rng.below(80))),
            0});
    }
}

} // namespace persim::workload
