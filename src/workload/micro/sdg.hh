/**
 * @file
 * SDG micro-benchmark (Table 2): insert/delete edges in a scalable
 * graph with per-vertex adjacency lists and per-vertex locks.
 */

#ifndef PERSIM_WORKLOAD_MICRO_SDG_HH
#define PERSIM_WORKLOAD_MICRO_SDG_HH

#include <memory>
#include <vector>

#include "workload/micro/micro_benchmark.hh"

namespace persim::workload
{

/** Shared state of the graph (vertex set partitioned per thread). */
struct SdgState
{
    SdgState(unsigned verticesPerThread, unsigned numThreads);

    NvHeap heap;
    LockManager locks;
    unsigned verticesPerThread;
    unsigned numThreads;
    unsigned numVertices;
    Addr metaBase;

    /** Line holding vertex @p v's adjacency-list head. */
    Addr headAddr(unsigned v) const
    {
        return metaBase + static_cast<Addr>(v) * 2 * kLineBytes;
    }
    /** Line holding vertex @p v's lock word. */
    Addr lockAddr(unsigned v) const
    {
        return headAddr(v) + kLineBytes;
    }

    /** Host-side edge entries per vertex (edge entry base, peer). */
    struct Edge
    {
        Addr entry;
        unsigned peer;
    };
    std::vector<std::vector<Edge>> adjacency;
};

/** One thread inserting/deleting edges. */
class SdgBenchmark : public MicroBenchmark
{
  public:
    SdgBenchmark(const MicroParams &params,
                 std::shared_ptr<SdgState> state)
        : MicroBenchmark(params, state->locks), _state(std::move(state))
    {
    }

  protected:
    void buildTransaction() override;

  private:
    unsigned pickVertex(bool allowCross);
    void buildInsert(unsigned u, unsigned v);
    void buildDelete(unsigned u);
    void buildSearch(unsigned u);

    std::shared_ptr<SdgState> _state;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_MICRO_SDG_HH
