/**
 * @file
 * Shared infrastructure for the Table 2 micro-benchmarks.
 */

#ifndef PERSIM_WORKLOAD_MICRO_MICRO_BENCHMARK_HH
#define PERSIM_WORKLOAD_MICRO_MICRO_BENCHMARK_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "cpu/workload_iface.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "workload/lock_manager.hh"
#include "workload/nv_heap.hh"

namespace persim::workload
{

/** Table 2 entries are 512 bytes -> 8 cache lines. */
constexpr unsigned kEntryBytes = 512;
constexpr unsigned kEntryLines = kEntryBytes / kLineBytes;

/** Parameters common to every micro-benchmark thread. */
struct MicroParams
{
    CoreId thread = 0;
    unsigned numThreads = 1;
    /** Transactions (insert/delete/search ops) this thread performs. */
    std::uint64_t opsPerThread = 1000;
    std::uint64_t seed = 1;
    /** Probability of a search (the rest split insert/delete evenly). */
    double searchFraction = 0.2;

    /**
     * Probability an operation targets another thread's partition
     * (NVHeaps-style benchmarks are partitioned per thread; occasional
     * cross-thread operations produce the inter-thread conflicts).
     */
    double crossFraction = 0.1;

    /**
     * Emit lock traffic. The NVHeaps-style partitioned micros run
     * lockless (each thread owns its slice; the rare cross-partition
     * op races only on host-side bookkeeping, which is harmless in an
     * address-trace simulation); the copy-while-locked queue keeps its
     * global lock, as in Pelley et al.
     */
    bool useLocks = false;
    /** Compute cycles between transactions. */
    unsigned thinkCycles = 20;
};

/**
 * Base class: a step machine translating transaction scripts into the
 * MemOp stream the core consumes, with spinlock support.
 *
 * Subclasses implement buildTransaction(), emitting steps with the
 * protected helpers; the base interleaves lock probing (functional state
 * in LockManager, traffic in the op stream) and counts transactions.
 */
class MicroBenchmark : public cpu::Workload
{
  public:
    MicroBenchmark(const MicroParams &params, LockManager &locks);

    cpu::MemOp next(Tick now) final;
    void onLoadComplete(Addr addr, Tick now) final;
    std::uint64_t transactions() const final { return _transactions; }

  protected:
    /** Emit the whole next transaction; must end with emitTxnDone(). */
    virtual void buildTransaction() = 0;

    void emitLoad(Addr a);
    void emitStore(Addr a);
    void emitBarrier();
    void emitCompute(std::uint32_t cycles);
    /** Read all @p lines lines of the entry at @p base. */
    void emitEntryRead(Addr base, unsigned lines = kEntryLines);
    /** Write all @p lines lines of the entry at @p base. */
    void emitEntryWrite(Addr base, unsigned lines = kEntryLines);
    /** Spin (probe load + CAS store) until the lock is taken. */
    void emitLockAcquire(Addr lockAddr);
    /** Release the lock (one store to the lock word). */
    void emitLockRelease(Addr lockAddr);
    void emitTxnDone();

    const MicroParams &params() const { return _params; }
    Rng &rng() { return _rng; }

  private:
    struct Step
    {
        enum class Kind : std::uint8_t
        {
            Op,
            LockAcquire,
            LockRelease,
            TxnDone,
        };
        Kind kind;
        cpu::MemOp op;
        Addr lock = 0;
    };

    MicroParams _params;
    LockManager &_locks;
    Rng _rng;
    std::deque<Step> _steps;
    std::uint64_t _transactions = 0;
    bool _probeOutstanding = false;
    bool _haltEmitted = false;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_MICRO_MICRO_BENCHMARK_HH
