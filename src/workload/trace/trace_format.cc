#include "workload/trace/trace_format.hh"

#include <array>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace persim::workload::trace
{

const char kTraceMagic[8] = {'P', 'E', 'R', 'S', 'I', 'M', 'T', 'R'};

const char *
toString(TraceRecord::Kind kind)
{
    switch (kind) {
      case TraceRecord::Kind::Load:
        return "load";
      case TraceRecord::Kind::Store:
        return "store";
      case TraceRecord::Kind::Barrier:
        return "barrier";
      case TraceRecord::Kind::Compute:
        return "compute";
      case TraceRecord::Kind::Lock:
        return "lock";
      case TraceRecord::Kind::Unlock:
        return "unlock";
      case TraceRecord::Kind::TxnMark:
        return "txn";
      case TraceRecord::Kind::Halt:
        return "halt";
    }
    return "?";
}

// ---------------------------------------------------------------------
// CRC32 and varints
// ---------------------------------------------------------------------

namespace
{

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto &table = crcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
appendVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

bool
decodeVarint(const char *&p, const char *end, std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p != end) {
        const auto byte = static_cast<unsigned char>(*p++);
        if (shift >= 64 || (shift == 63 && (byte & 0x7E)))
            return false; // would overflow 64 bits
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if (!(byte & 0x80)) {
            out = v;
            return true;
        }
        shift += 7;
    }
    return false; // buffer ended mid-varint
}

// ---------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------

void
appendRecord(std::string &out, const TraceRecord &r)
{
    out.push_back(static_cast<char>(r.kind));
    appendVarint(out, r.tick);
    switch (r.kind) {
      case TraceRecord::Kind::Load:
      case TraceRecord::Kind::Store:
      case TraceRecord::Kind::Lock:
      case TraceRecord::Kind::Unlock:
        appendVarint(out, r.addr);
        break;
      case TraceRecord::Kind::Compute:
        appendVarint(out, r.cycles);
        break;
      case TraceRecord::Kind::TxnMark:
        appendVarint(out, r.count);
        break;
      case TraceRecord::Kind::Barrier:
      case TraceRecord::Kind::Halt:
        break;
    }
}

bool
decodeRecord(const char *&p, const char *end, TraceRecord &out,
             std::string &err)
{
    if (p == end) {
        err = "record truncated (no opcode byte)";
        return false;
    }
    const auto opcode = static_cast<unsigned char>(*p++);
    if (opcode >= kNumRecordKinds) {
        err = detail::concat("unknown opcode ", unsigned(opcode));
        return false;
    }
    out = TraceRecord{};
    out.kind = static_cast<TraceRecord::Kind>(opcode);
    std::uint64_t v = 0;
    if (!decodeVarint(p, end, v)) {
        err = "record truncated (timestamp varint)";
        return false;
    }
    out.tick = v;
    switch (out.kind) {
      case TraceRecord::Kind::Load:
      case TraceRecord::Kind::Store:
      case TraceRecord::Kind::Lock:
      case TraceRecord::Kind::Unlock:
        if (!decodeVarint(p, end, v)) {
            err = "record truncated (address varint)";
            return false;
        }
        out.addr = v;
        break;
      case TraceRecord::Kind::Compute:
        if (!decodeVarint(p, end, v) || v > 0xFFFFFFFFull) {
            err = "record truncated or oversized (compute cycles)";
            return false;
        }
        out.cycles = static_cast<std::uint32_t>(v);
        break;
      case TraceRecord::Kind::TxnMark:
        if (!decodeVarint(p, end, v)) {
            err = "record truncated (transaction count)";
            return false;
        }
        out.count = v;
        break;
      case TraceRecord::Kind::Barrier:
      case TraceRecord::Kind::Halt:
        break;
    }
    return true;
}

// ---------------------------------------------------------------------
// Whole-trace binary encoding
// ---------------------------------------------------------------------

std::string
encodeTrace(const TraceData &data)
{
    std::string out;
    out.append(kTraceMagic, sizeof(kTraceMagic));
    appendU32(out, data.meta.version);
    appendU32(out, static_cast<std::uint32_t>(data.streams.size()));
    appendU64(out, data.meta.seed);
    appendU32(out, static_cast<std::uint32_t>(data.meta.name.size()));
    out.append(data.meta.name);
    appendU32(out, crc32(out.data(), out.size()));

    for (std::size_t t = 0; t < data.streams.size(); ++t) {
        std::string stream;
        for (const TraceRecord &r : data.streams[t])
            appendRecord(stream, r);
        appendU32(out, static_cast<std::uint32_t>(t));
        appendU64(out, data.streams[t].size());
        appendU64(out, stream.size());
        appendU32(out, crc32(stream.data(), stream.size()));
        out.append(stream);
    }
    return out;
}

bool
looksBinary(const std::string &head)
{
    return head.size() >= sizeof(kTraceMagic) &&
           std::memcmp(head.data(), kTraceMagic, sizeof(kTraceMagic)) ==
               0;
}

// ---------------------------------------------------------------------
// Text form
// ---------------------------------------------------------------------

namespace
{

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    if (auto pos = s.find('#'); pos != std::string::npos)
        s.erase(pos);
    const auto first = s.find_first_not_of(" \t\r\n");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r\n");
    return s.substr(first, last - first + 1);
}

[[noreturn]] void
parseError(const std::string &src, std::size_t lineNo,
           const std::string &msg)
{
    fatal("trace text ", src, ":", lineNo, ": ", msg);
}

std::uint64_t
parseUint(const std::string &src, std::size_t lineNo,
          const std::string &tok, const char *what)
{
    if (tok.empty())
        parseError(src, lineNo, detail::concat("missing ", what));
    const int base =
        tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')
            ? 16
            : 10;
    std::uint64_t v = 0;
    std::size_t consumed = 0;
    try {
        v = std::stoull(base == 16 ? tok.substr(2) : tok, &consumed,
                        base);
    } catch (const std::exception &) {
        parseError(src, lineNo,
                   detail::concat("bad ", what, " '", tok, "'"));
    }
    const std::size_t expect =
        base == 16 ? tok.size() - 2 : tok.size();
    if (consumed != expect)
        parseError(src, lineNo,
                   detail::concat("bad ", what, " '", tok, "'"));
    return v;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> toks;
    std::istringstream ss(line);
    std::string tok;
    while (ss >> tok)
        toks.push_back(tok);
    return toks;
}

} // namespace

TraceData
parseTextTrace(std::istream &is, const std::string &sourceName)
{
    TraceData data;
    data.meta.name = "trace";

    std::string raw;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    bool sawThreads = false;
    int curThread = -1;
    Tick prevTick = 0;
    bool halted = false;

    while (std::getline(is, raw)) {
        ++lineNo;
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        const std::vector<std::string> toks = tokenize(line);

        if (!sawHeader) {
            if (toks.size() != 2 || toks[0] != "ptrace" ||
                toks[1] != "v1") {
                parseError(sourceName, lineNo,
                           "expected 'ptrace v1' header, got '" + line +
                               "'");
            }
            sawHeader = true;
            continue;
        }

        if (toks[0] == "name") {
            if (toks.size() != 2)
                parseError(sourceName, lineNo, "name wants one token");
            data.meta.name = toks[1];
            continue;
        }
        if (toks[0] == "seed") {
            if (toks.size() != 2)
                parseError(sourceName, lineNo, "seed wants one value");
            data.meta.seed = parseUint(sourceName, lineNo, toks[1],
                                       "seed");
            continue;
        }
        if (toks[0] == "threads") {
            if (sawThreads)
                parseError(sourceName, lineNo, "duplicate threads line");
            if (toks.size() != 2)
                parseError(sourceName, lineNo, "threads wants a count");
            const std::uint64_t n =
                parseUint(sourceName, lineNo, toks[1], "thread count");
            if (n == 0 || n > kMaxCores)
                parseError(sourceName, lineNo,
                           detail::concat("thread count ", n,
                                          " out of range [1, ",
                                          kMaxCores, "]"));
            sawThreads = true;
            data.meta.threadCount = static_cast<std::uint32_t>(n);
            data.streams.resize(n);
            continue;
        }
        if (toks[0] == "thread") {
            if (!sawThreads)
                parseError(sourceName, lineNo,
                           "'thread' before 'threads N'");
            if (toks.size() != 2)
                parseError(sourceName, lineNo, "thread wants an id");
            const std::uint64_t id =
                parseUint(sourceName, lineNo, toks[1], "thread id");
            if (static_cast<int>(id) != curThread + 1)
                parseError(sourceName, lineNo,
                           detail::concat("thread sections must be "
                                          "sequential: expected thread ",
                                          curThread + 1, ", got ", id));
            if (id >= data.meta.threadCount)
                parseError(sourceName, lineNo,
                           detail::concat("thread ", id,
                                          " >= declared thread count ",
                                          data.meta.threadCount));
            curThread = static_cast<int>(id);
            prevTick = 0;
            halted = false;
            continue;
        }

        // Anything else must be a record line: "@TICK kind [arg]".
        if (curThread < 0)
            parseError(sourceName, lineNo,
                       "record before the first 'thread' section: '" +
                           line + "'");
        if (toks[0].size() < 2 || toks[0][0] != '@')
            parseError(sourceName, lineNo,
                       "expected '@tick op ...', got '" + line + "'");
        if (halted)
            parseError(sourceName, lineNo,
                       detail::concat("thread ", curThread,
                                      ": record after halt"));
        TraceRecord r;
        r.tick = parseUint(sourceName, lineNo, toks[0].substr(1),
                           "timestamp");
        if (r.tick < prevTick)
            parseError(sourceName, lineNo,
                       detail::concat("thread ", curThread,
                                      ": timestamp ", r.tick,
                                      " is out of order (previous ",
                                      prevTick, ")"));
        prevTick = r.tick;
        if (toks.size() < 2)
            parseError(sourceName, lineNo, "missing op after timestamp");
        const std::string &op = toks[1];
        auto wantArg = [&](const char *what) -> std::uint64_t {
            if (toks.size() != 3)
                parseError(sourceName, lineNo,
                           detail::concat(op, " wants a ", what));
            return parseUint(sourceName, lineNo, toks[2], what);
        };
        auto wantNone = [&] {
            if (toks.size() != 2)
                parseError(sourceName, lineNo,
                           op + " takes no argument");
        };
        if (op == "load") {
            r.kind = TraceRecord::Kind::Load;
            r.addr = wantArg("address");
        } else if (op == "store") {
            r.kind = TraceRecord::Kind::Store;
            r.addr = wantArg("address");
        } else if (op == "barrier") {
            r.kind = TraceRecord::Kind::Barrier;
            wantNone();
        } else if (op == "compute") {
            const std::uint64_t c = wantArg("cycle count");
            if (c > 0xFFFFFFFFull)
                parseError(sourceName, lineNo,
                           detail::concat("compute cycles ", c,
                                          " exceed 32 bits"));
            r.kind = TraceRecord::Kind::Compute;
            r.cycles = static_cast<std::uint32_t>(c);
        } else if (op == "lock") {
            r.kind = TraceRecord::Kind::Lock;
            r.addr = wantArg("address");
        } else if (op == "unlock") {
            r.kind = TraceRecord::Kind::Unlock;
            r.addr = wantArg("address");
        } else if (op == "txn") {
            r.kind = TraceRecord::Kind::TxnMark;
            r.count = wantArg("transaction count");
        } else if (op == "halt") {
            r.kind = TraceRecord::Kind::Halt;
            wantNone();
            halted = true;
        } else {
            parseError(sourceName, lineNo, "unknown op '" + op + "'");
        }
        data.streams[static_cast<std::size_t>(curThread)].push_back(r);
    }

    if (!sawHeader)
        fatal("trace text ", sourceName, ": empty input (no 'ptrace v1' "
              "header)");
    if (!sawThreads)
        fatal("trace text ", sourceName, ": missing 'threads N' line");
    if (curThread + 1 != static_cast<int>(data.meta.threadCount))
        fatal("trace text ", sourceName, ": found ", curThread + 1,
              " thread section(s) but the header declares ",
              data.meta.threadCount);
    return data;
}

void
writeTextTrace(std::ostream &os, const TraceData &data)
{
    os << "ptrace v1\n";
    os << "name " << data.meta.name << "\n";
    os << "seed " << data.meta.seed << "\n";
    os << "threads " << data.streams.size() << "\n";
    char buf[32];
    for (std::size_t t = 0; t < data.streams.size(); ++t) {
        os << "thread " << t << "\n";
        for (const TraceRecord &r : data.streams[t]) {
            os << '@' << r.tick << ' ' << toString(r.kind);
            switch (r.kind) {
              case TraceRecord::Kind::Load:
              case TraceRecord::Kind::Store:
              case TraceRecord::Kind::Lock:
              case TraceRecord::Kind::Unlock:
                std::snprintf(buf, sizeof(buf), " 0x%llx",
                              static_cast<unsigned long long>(r.addr));
                os << buf;
                break;
              case TraceRecord::Kind::Compute:
                os << ' ' << r.cycles;
                break;
              case TraceRecord::Kind::TxnMark:
                os << ' ' << r.count;
                break;
              case TraceRecord::Kind::Barrier:
              case TraceRecord::Kind::Halt:
                break;
            }
            os << '\n';
        }
    }
}

} // namespace persim::workload::trace
