/**
 * @file
 * Capture hook: record any execution-driven workload into the trace
 * format while it runs, without perturbing the simulation.
 *
 * CapturingWorkload wraps an inner Workload and forwards every call
 * verbatim; as a side effect it stream-encodes each MemOp the inner
 * workload emits (plus transaction markers derived from the inner
 * transactions() counter) into a shared TraceCaptureWriter. The
 * capture run's simulated behaviour — and therefore its figure
 * output — is byte-identical to an uncaptured run, which is what makes
 * capture → replay round-trips testable end to end.
 */

#ifndef PERSIM_WORKLOAD_TRACE_TRACE_CAPTURE_HH
#define PERSIM_WORKLOAD_TRACE_TRACE_CAPTURE_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/workload_iface.hh"
#include "workload/trace/trace_format.hh"

namespace persim::workload::trace
{

/**
 * Accumulates one trace across all threads of a run.
 *
 * Streams are encoded incrementally (a few bytes per record), so
 * capturing a long run costs far less memory than materializing
 * TraceRecord vectors. One writer belongs to one simulated system;
 * within it, each thread only ever appends from that system's single
 * simulation thread, so no locking is needed.
 */
class TraceCaptureWriter
{
  public:
    TraceCaptureWriter(std::string name, unsigned threads,
                       std::uint64_t seed);

    /** Record the MemOp thread @p t issued at @p now. */
    void record(unsigned thread, const cpu::MemOp &op, Tick now);

    /** Record @p delta completed transactions on thread @p t. */
    void noteTransactions(unsigned thread, std::uint64_t delta,
                          Tick now);

    const TraceMeta &meta() const { return _meta; }

    /** Records captured so far over all threads. */
    std::uint64_t totalRecords() const;

    /** Assemble the complete binary trace. */
    std::string encode() const;

    /** Write the binary trace to @p path (SimFatal on I/O error). */
    void writeBinaryFile(const std::string &path) const;

  private:
    void append(unsigned thread, const TraceRecord &r);

    TraceMeta _meta;
    std::vector<std::string> _streams; // encoded bytes per thread
    std::vector<std::uint64_t> _counts;
    std::vector<bool> _halted;
};

/** Wraps a workload, forwarding everything and recording the stream. */
class CapturingWorkload : public cpu::Workload
{
  public:
    CapturingWorkload(std::unique_ptr<cpu::Workload> inner,
                      std::shared_ptr<TraceCaptureWriter> writer,
                      unsigned thread);

    cpu::MemOp next(Tick now) override;
    void onLoadComplete(Addr addr, Tick now) override;
    std::uint64_t transactions() const override;

  private:
    std::unique_ptr<cpu::Workload> _inner;
    std::shared_ptr<TraceCaptureWriter> _writer;
    unsigned _thread;
    std::uint64_t _seenTxns = 0;
    bool _haltRecorded = false;
};

/**
 * Wrap every workload of a run for capture into a fresh writer named
 * @p name. Returns the shared writer; @p workloads is rewritten in
 * place.
 */
std::shared_ptr<TraceCaptureWriter>
wrapWithCapture(std::vector<std::unique_ptr<cpu::Workload>> &workloads,
                std::string name, std::uint64_t seed);

} // namespace persim::workload::trace

#endif // PERSIM_WORKLOAD_TRACE_TRACE_CAPTURE_HH
