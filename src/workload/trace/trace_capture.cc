#include "workload/trace/trace_capture.hh"

#include <fstream>

#include "sim/logging.hh"

namespace persim::workload::trace
{

TraceCaptureWriter::TraceCaptureWriter(std::string name,
                                       unsigned threads,
                                       std::uint64_t seed)
    : _streams(threads), _counts(threads, 0), _halted(threads, false)
{
    simAssert(threads >= 1 && threads <= kMaxCores,
              "TraceCaptureWriter: thread count ", threads,
              " out of range");
    _meta.name = std::move(name);
    _meta.threadCount = threads;
    _meta.seed = seed;
}

void
TraceCaptureWriter::append(unsigned thread, const TraceRecord &r)
{
    simAssert(thread < _streams.size(), "capture: thread ", thread,
              " out of range");
    appendRecord(_streams[thread], r);
    ++_counts[thread];
}

void
TraceCaptureWriter::record(unsigned thread, const cpu::MemOp &op,
                           Tick now)
{
    if (_halted[thread])
        return; // cores may poll next() again after halt; keep the
                // stream well-formed (halt is the last record)
    TraceRecord r;
    r.tick = now;
    switch (op.kind) {
      case cpu::MemOp::Kind::Load:
        r.kind = TraceRecord::Kind::Load;
        r.addr = op.addr;
        break;
      case cpu::MemOp::Kind::Store:
        r.kind = TraceRecord::Kind::Store;
        r.addr = op.addr;
        break;
      case cpu::MemOp::Kind::Barrier:
        r.kind = TraceRecord::Kind::Barrier;
        break;
      case cpu::MemOp::Kind::Compute:
        r.kind = TraceRecord::Kind::Compute;
        r.cycles = op.cycles;
        break;
      case cpu::MemOp::Kind::Halt:
        r.kind = TraceRecord::Kind::Halt;
        _halted[thread] = true;
        break;
    }
    append(thread, r);
}

void
TraceCaptureWriter::noteTransactions(unsigned thread,
                                     std::uint64_t delta, Tick now)
{
    if (delta == 0 || _halted[thread])
        return;
    TraceRecord r;
    r.kind = TraceRecord::Kind::TxnMark;
    r.tick = now;
    r.count = delta;
    append(thread, r);
}

std::uint64_t
TraceCaptureWriter::totalRecords() const
{
    std::uint64_t total = 0;
    for (std::uint64_t c : _counts)
        total += c;
    return total;
}

std::string
TraceCaptureWriter::encode() const
{
    std::string out;
    out.append(kTraceMagic, sizeof(kTraceMagic));
    appendU32(out, _meta.version);
    appendU32(out, static_cast<std::uint32_t>(_streams.size()));
    appendU64(out, _meta.seed);
    appendU32(out, static_cast<std::uint32_t>(_meta.name.size()));
    out.append(_meta.name);
    appendU32(out, crc32(out.data(), out.size()));
    for (std::size_t t = 0; t < _streams.size(); ++t) {
        appendU32(out, static_cast<std::uint32_t>(t));
        appendU64(out, _counts[t]);
        appendU64(out, _streams[t].size());
        appendU32(out, crc32(_streams[t].data(), _streams[t].size()));
        out.append(_streams[t]);
    }
    return out;
}

void
TraceCaptureWriter::writeBinaryFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("trace capture: cannot write ", path);
    const std::string bytes = encode();
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    if (!os)
        fatal("trace capture: short write to ", path);
}

CapturingWorkload::CapturingWorkload(
    std::unique_ptr<cpu::Workload> inner,
    std::shared_ptr<TraceCaptureWriter> writer, unsigned thread)
    : _inner(std::move(inner)), _writer(std::move(writer)),
      _thread(thread)
{
    simAssert(_inner != nullptr, "CapturingWorkload: null inner");
    simAssert(_writer != nullptr, "CapturingWorkload: null writer");
}

cpu::MemOp
CapturingWorkload::next(Tick now)
{
    cpu::MemOp op = _inner->next(now);
    if (_haltRecorded)
        return op;
    // Transactions completed inside this next() call are marked before
    // the op so halt stays the final record of the stream.
    const std::uint64_t txns = _inner->transactions();
    if (txns > _seenTxns) {
        _writer->noteTransactions(_thread, txns - _seenTxns, now);
        _seenTxns = txns;
    }
    _writer->record(_thread, op, now);
    if (op.kind == cpu::MemOp::Kind::Halt)
        _haltRecorded = true;
    return op;
}

void
CapturingWorkload::onLoadComplete(Addr addr, Tick now)
{
    _inner->onLoadComplete(addr, now);
}

std::uint64_t
CapturingWorkload::transactions() const
{
    return _inner->transactions();
}

std::shared_ptr<TraceCaptureWriter>
wrapWithCapture(std::vector<std::unique_ptr<cpu::Workload>> &workloads,
                std::string name, std::uint64_t seed)
{
    auto writer = std::make_shared<TraceCaptureWriter>(
        std::move(name), static_cast<unsigned>(workloads.size()), seed);
    for (std::size_t t = 0; t < workloads.size(); ++t) {
        workloads[t] = std::make_unique<CapturingWorkload>(
            std::move(workloads[t]), writer,
            static_cast<unsigned>(t));
    }
    return writer;
}

} // namespace persim::workload::trace
