/**
 * @file
 * Trace-driven workload: replay a captured or hand-written trace
 * through the simulated machine.
 *
 * Each thread streams its records off a shared TraceReader cursor and
 * turns them back into the MemOp stream the core consumes. Plain
 * records (load/store/barrier/compute) replay verbatim — a trace
 * captured from an execution-driven workload therefore reproduces that
 * run exactly, op for op. Lock/Unlock records are execution-driven on
 * replay: the lock word is probed with a load, the outcome is decided
 * by the shared LockManager when the probe completes, and contended
 * probes back off and retry — the same spin protocol the
 * micro-benchmarks use, so hand-written traces can express real
 * inter-thread contention. TxnMark records feed the transactions()
 * throughput metric without issuing any operation.
 */

#ifndef PERSIM_WORKLOAD_TRACE_TRACE_REPLAY_HH
#define PERSIM_WORKLOAD_TRACE_TRACE_REPLAY_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cpu/workload_iface.hh"
#include "sim/rng.hh"
#include "workload/lock_manager.hh"
#include "workload/trace/trace_reader.hh"

namespace persim::workload::trace
{

/** One thread of a trace replay. */
class TraceReplayWorkload : public cpu::Workload
{
  public:
    TraceReplayWorkload(std::shared_ptr<const TraceReader> reader,
                        unsigned thread,
                        std::shared_ptr<LockManager> locks);

    cpu::MemOp next(Tick now) override;
    void onLoadComplete(Addr addr, Tick now) override;
    std::uint64_t transactions() const override { return _txns; }

    /** Records consumed so far (tests, bench). */
    std::uint64_t recordsReplayed() const { return _cursor.decoded(); }

  private:
    /** Pending lock step awaiting issue or probe completion. */
    enum class LockPhase : std::uint8_t
    {
        None,    // no lock step in progress
        Backoff, // contended probe: emit a compute, then re-probe
        Probe,   // probe load issued; waiting for onLoadComplete
        Acquire, // probe won: emit the CAS store
    };

    std::shared_ptr<const TraceReader> _reader;
    std::shared_ptr<LockManager> _locks;
    unsigned _thread;
    TraceReader::Cursor _cursor;
    Rng _rng;

    LockPhase _lockPhase = LockPhase::None;
    Addr _lockAddr = 0;
    std::uint64_t _txns = 0;
    bool _haltEmitted = false;
};

/**
 * Build one replay workload per thread from the trace at @p path
 * (binary or text form).
 *
 * @param expectThreads The experiment's core count; a mismatch with
 *        the trace's thread count is a fatal error naming both.
 */
std::vector<std::unique_ptr<cpu::Workload>>
makeTraceReplay(const std::string &path, unsigned expectThreads);

/** Same, over an already opened (validated) reader. */
std::vector<std::unique_ptr<cpu::Workload>>
makeTraceReplay(std::shared_ptr<const TraceReader> reader,
                unsigned expectThreads);

} // namespace persim::workload::trace

#endif // PERSIM_WORKLOAD_TRACE_TRACE_REPLAY_HH
