/**
 * @file
 * Streaming reader for binary workload traces, with strict validation.
 *
 * The reader keeps the encoded bytes in memory and hands out per-thread
 * cursors that decode one record at a time, so replay never
 * materializes whole record vectors. Construction validates the
 * envelope (magic, version, header CRC, thread directory, per-stream
 * CRC and length); validate() additionally decodes every record and
 * enforces stream invariants (monotonic timestamps, nothing after
 * halt), producing errors that name the offending thread and record.
 *
 * Text traces are transparently supported: openTrace() sniffs the
 * magic and, for text input, parses and re-encodes it in memory so
 * every consumer runs the same binary path.
 */

#ifndef PERSIM_WORKLOAD_TRACE_TRACE_READER_HH
#define PERSIM_WORKLOAD_TRACE_TRACE_READER_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/trace/trace_format.hh"

namespace persim::workload::trace
{

/** A validated, immutable, shareable binary trace. */
class TraceReader
{
  public:
    /**
     * Wrap (and envelope-validate) complete binary-trace bytes.
     * @param sourceName Label used in error messages.
     * Throws SimFatal on any envelope violation.
     */
    explicit TraceReader(std::string bytes,
                         std::string sourceName = "<buffer>");

    const TraceMeta &meta() const { return _meta; }
    const std::string &sourceName() const { return _source; }

    /** Records in thread @p t's stream (from the directory). */
    std::uint64_t recordCount(unsigned t) const;

    /** Encoded byte size of thread @p t's stream. */
    std::uint64_t streamBytes(unsigned t) const;

    /** Total records over all threads. */
    std::uint64_t totalRecords() const;

    /** Streaming decoder over one thread's records. */
    class Cursor
    {
      public:
        /**
         * Decode the next record into @p out.
         * @return false at end of stream; throws SimFatal (naming the
         *         thread, record index, and source) on a malformed
         *         record, a non-monotonic timestamp, or a record after
         *         halt.
         */
        bool next(TraceRecord &out);

        /** Records decoded so far. */
        std::uint64_t decoded() const { return _index; }

      private:
        friend class TraceReader;
        Cursor(const TraceReader *reader, unsigned thread);

        const TraceReader *_reader;
        unsigned _thread;
        const char *_p;
        const char *_end;
        std::uint64_t _index = 0;
        Tick _prevTick = 0;
        bool _halted = false;
    };

    /** Cursor over thread @p t (must be < meta().threadCount). */
    Cursor stream(unsigned t) const;

    /**
     * Decode every stream start to finish, enforcing all record-level
     * invariants and the directory's record counts. Throws SimFatal
     * naming the first violation.
     */
    void validate() const;

    /** Materialize the whole trace (persim_trace conversions/stats). */
    TraceData toData() const;

  private:
    struct StreamDir
    {
        std::uint64_t recordCount = 0;
        std::uint64_t byteOffset = 0; // into _bytes
        std::uint64_t byteLen = 0;
    };

    std::string _bytes;
    std::string _source;
    TraceMeta _meta;
    std::vector<StreamDir> _dir;
};

/**
 * Open @p path as a trace: binary files are wrapped directly, text
 * files ("ptrace v1") are parsed and re-encoded. The result is fully
 * validated (validate() has run). Throws SimFatal on I/O or format
 * errors naming the file.
 */
std::shared_ptr<const TraceReader> openTrace(const std::string &path);

} // namespace persim::workload::trace

#endif // PERSIM_WORKLOAD_TRACE_TRACE_READER_HH
