/**
 * @file
 * The Persimmon workload trace format (version 1).
 *
 * A trace is the complete per-thread operation stream of one
 * multi-threaded workload run: loads, stores, persist barriers,
 * compute (think-time) gaps, lock/unlock operations, transaction
 * markers, and a final halt, each stamped with the simulated tick at
 * which the operation was issued. Traces exist in two interconvertible
 * forms:
 *
 *   - A compact binary form (magic / version / CRC32-protected header
 *     and per-thread streams of varint-encoded records) produced by
 *     TraceCapture and consumed by the streaming TraceReader.
 *   - A line-oriented text form ("ptrace v1") for hand-written tests
 *     and human inspection, converted both ways by tools/persim_trace.
 *
 * The format is self-describing (thread count, originating workload
 * name, base seed) so a replay run can validate itself against the
 * experiment it is plugged into. All multi-byte header integers are
 * little-endian; record payloads are unsigned LEB128 varints.
 */

#ifndef PERSIM_WORKLOAD_TRACE_TRACE_FORMAT_HH
#define PERSIM_WORKLOAD_TRACE_TRACE_FORMAT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace persim::workload::trace
{

/** 8-byte file magic ("PERSIMTR"). */
extern const char kTraceMagic[8];

/** Current (and only) binary format version. */
constexpr std::uint32_t kTraceVersion = 1;

/** One operation of a per-thread trace stream. */
struct TraceRecord
{
    /**
     * Wire opcodes; values are part of the versioned format and must
     * never be renumbered.
     */
    enum class Kind : std::uint8_t
    {
        Load = 0,    // blocking read of addr
        Store = 1,   // buffered write of addr
        Barrier = 2, // persist barrier / epoch boundary
        Compute = 3, // cycles of non-memory think time
        Lock = 4,    // acquire the lock word at addr (spin until held)
        Unlock = 5,  // release the lock word at addr
        TxnMark = 6, // count application transactions completed
        Halt = 7,    // thread finished; must be the last record
    };

    Kind kind = Kind::Halt;

    /** Issue timestamp (simulated tick); monotonic within a thread. */
    Tick tick = 0;

    /** Target address (Load/Store/Lock/Unlock). */
    Addr addr = 0;

    /** Think time in cycles (Compute). */
    std::uint32_t cycles = 0;

    /** Completed-transaction increment (TxnMark). */
    std::uint64_t count = 0;

    bool operator==(const TraceRecord &o) const = default;
};

/** Wire name of a record kind ("load", "store", ...). */
const char *toString(TraceRecord::Kind kind);

/** Number of distinct record kinds (histogram sizing). */
constexpr unsigned kNumRecordKinds = 8;

/** Trace-wide metadata carried in the binary header. */
struct TraceMeta
{
    std::uint32_t version = kTraceVersion;

    /** Originating workload name ("hash", "canneal", or free-form). */
    std::string name = "trace";

    /** Number of per-thread streams. */
    std::uint32_t threadCount = 0;

    /** Base workload seed of the captured run (replay RNG derivation). */
    std::uint64_t seed = 1;
};

/** A fully materialized trace: metadata plus per-thread record lists. */
struct TraceData
{
    TraceMeta meta;
    /** streams[t] is thread t's record list (may be empty). */
    std::vector<std::vector<TraceRecord>> streams;
};

// ---------------------------------------------------------------------
// Low-level encoding primitives (exposed so tests can craft malformed
// files byte by byte and so the capture writer can stream-encode).
// ---------------------------------------------------------------------

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of @p len bytes. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/** Append @p v to @p out as an unsigned LEB128 varint. */
void appendVarint(std::string &out, std::uint64_t v);

/** Append @p v little-endian. */
void appendU32(std::string &out, std::uint32_t v);
void appendU64(std::string &out, std::uint64_t v);

/**
 * Decode a varint from [@p p, @p end); advances @p p past it.
 * @return false when the buffer ends mid-varint or the value would
 *         overflow 64 bits.
 */
bool decodeVarint(const char *&p, const char *end, std::uint64_t &out);

/** Append one encoded record to @p out. */
void appendRecord(std::string &out, const TraceRecord &r);

/**
 * Decode one record from [@p p, @p end); advances @p p.
 * @return false on a truncated or malformed record (unknown opcode,
 *         varint overrun); @p err then holds a description.
 */
bool decodeRecord(const char *&p, const char *end, TraceRecord &out,
                  std::string &err);

// ---------------------------------------------------------------------
// Whole-trace conversions
// ---------------------------------------------------------------------

/** Serialize @p data to complete binary-trace bytes. */
std::string encodeTrace(const TraceData &data);

/**
 * Parse the line-oriented text form from @p is.
 *
 * Throws SimFatal naming the offending line on any syntax error,
 * missing/duplicate thread section, non-monotonic timestamp, or
 * record after halt. @p sourceName labels error messages (file name).
 */
TraceData parseTextTrace(std::istream &is,
                         const std::string &sourceName = "<text>");

/** Write @p data in canonical text form. */
void writeTextTrace(std::ostream &os, const TraceData &data);

/** True when @p bytes begin with the binary-trace magic. */
bool looksBinary(const std::string &head);

} // namespace persim::workload::trace

#endif // PERSIM_WORKLOAD_TRACE_TRACE_FORMAT_HH
