#include "workload/trace/trace_reader.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace persim::workload::trace
{

namespace
{

/** Little-endian fixed-width reads with bounds checking. */
struct ByteCursor
{
    const char *p;
    const char *end;
    const std::string &src;

    bool
    need(std::size_t n, const char *what)
    {
        if (static_cast<std::size_t>(end - p) < n)
            fatal("trace ", src, ": truncated file (", what, ")");
        return true;
    }

    std::uint32_t
    u32(const char *what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
        p += 4;
        return v;
    }

    std::uint64_t
    u64(const char *what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
        p += 8;
        return v;
    }
};

} // namespace

TraceReader::TraceReader(std::string bytes, std::string sourceName)
    : _bytes(std::move(bytes)), _source(std::move(sourceName))
{
    ByteCursor c{_bytes.data(), _bytes.data() + _bytes.size(), _source};

    c.need(sizeof(kTraceMagic), "magic");
    if (std::memcmp(c.p, kTraceMagic, sizeof(kTraceMagic)) != 0)
        fatal("trace ", _source,
              ": bad magic (not a persimmon binary trace)");
    c.p += sizeof(kTraceMagic);

    _meta.version = c.u32("version");
    if (_meta.version != kTraceVersion)
        fatal("trace ", _source, ": unsupported version ", _meta.version,
              " (this build reads version ", kTraceVersion, ")");
    _meta.threadCount = c.u32("thread count");
    if (_meta.threadCount == 0 || _meta.threadCount > kMaxCores)
        fatal("trace ", _source, ": thread count ", _meta.threadCount,
              " out of range [1, ", kMaxCores, "]");
    _meta.seed = c.u64("seed");
    const std::uint32_t nameLen = c.u32("name length");
    if (nameLen > 4096)
        fatal("trace ", _source, ": implausible name length ", nameLen);
    c.need(nameLen, "name");
    _meta.name.assign(c.p, nameLen);
    c.p += nameLen;

    const auto headerLen =
        static_cast<std::size_t>(c.p - _bytes.data());
    const std::uint32_t wantHeaderCrc = c.u32("header CRC");
    const std::uint32_t gotHeaderCrc = crc32(_bytes.data(), headerLen);
    if (wantHeaderCrc != gotHeaderCrc)
        fatal("trace ", _source, ": header CRC mismatch (stored ",
              wantHeaderCrc, ", computed ", gotHeaderCrc, ")");

    _dir.resize(_meta.threadCount);
    for (std::uint32_t t = 0; t < _meta.threadCount; ++t) {
        const std::uint32_t id = c.u32("thread id");
        if (id != t)
            fatal("trace ", _source, ": thread directory out of order "
                  "(expected thread ", t, ", found ", id, ")");
        StreamDir &d = _dir[t];
        d.recordCount = c.u64("record count");
        d.byteLen = c.u64("stream length");
        const std::uint32_t wantCrc = c.u32("stream CRC");
        c.need(d.byteLen, "stream bytes");
        d.byteOffset = static_cast<std::uint64_t>(c.p - _bytes.data());
        const std::uint32_t gotCrc =
            crc32(c.p, static_cast<std::size_t>(d.byteLen));
        if (wantCrc != gotCrc)
            fatal("trace ", _source, ": thread ", t,
                  " stream CRC mismatch (stored ", wantCrc,
                  ", computed ", gotCrc, ")");
        c.p += d.byteLen;
    }
    if (c.p != c.end)
        fatal("trace ", _source, ": ", c.end - c.p,
              " trailing byte(s) after the last thread stream");
}

std::uint64_t
TraceReader::recordCount(unsigned t) const
{
    simAssert(t < _dir.size(), "recordCount: thread ", t,
              " out of range");
    return _dir[t].recordCount;
}

std::uint64_t
TraceReader::streamBytes(unsigned t) const
{
    simAssert(t < _dir.size(), "streamBytes: thread ", t,
              " out of range");
    return _dir[t].byteLen;
}

std::uint64_t
TraceReader::totalRecords() const
{
    std::uint64_t total = 0;
    for (const StreamDir &d : _dir)
        total += d.recordCount;
    return total;
}

TraceReader::Cursor::Cursor(const TraceReader *reader, unsigned thread)
    : _reader(reader), _thread(thread)
{
    const StreamDir &d = reader->_dir[thread];
    _p = reader->_bytes.data() + d.byteOffset;
    _end = _p + d.byteLen;
}

bool
TraceReader::Cursor::next(TraceRecord &out)
{
    if (_p == _end) {
        if (_index != _reader->_dir[_thread].recordCount)
            fatal("trace ", _reader->_source, ": thread ", _thread,
                  " stream ended after ", _index,
                  " record(s) but the directory declares ",
                  _reader->_dir[_thread].recordCount);
        return false;
    }
    std::string err;
    if (!decodeRecord(_p, _end, out, err))
        fatal("trace ", _reader->_source, ": thread ", _thread,
              " record ", _index, ": ", err);
    if (_halted)
        fatal("trace ", _reader->_source, ": thread ", _thread,
              " record ", _index, ": ", toString(out.kind),
              " after halt");
    if (out.tick < _prevTick)
        fatal("trace ", _reader->_source, ": thread ", _thread,
              " record ", _index, ": timestamp ", out.tick,
              " is out of order (previous ", _prevTick, ")");
    _prevTick = out.tick;
    if (out.kind == TraceRecord::Kind::Halt)
        _halted = true;
    ++_index;
    return true;
}

TraceReader::Cursor
TraceReader::stream(unsigned t) const
{
    simAssert(t < _dir.size(), "stream: thread ", t, " out of range (",
              _dir.size(), " threads)");
    return Cursor(this, t);
}

void
TraceReader::validate() const
{
    for (std::uint32_t t = 0; t < _meta.threadCount; ++t) {
        Cursor c = stream(t);
        TraceRecord r;
        while (c.next(r)) {
        }
        if (c.decoded() != _dir[t].recordCount)
            fatal("trace ", _source, ": thread ", t, " decodes to ",
                  c.decoded(), " record(s) but the directory declares ",
                  _dir[t].recordCount);
    }
}

TraceData
TraceReader::toData() const
{
    TraceData data;
    data.meta = _meta;
    data.streams.resize(_meta.threadCount);
    for (std::uint32_t t = 0; t < _meta.threadCount; ++t) {
        data.streams[t].reserve(
            static_cast<std::size_t>(_dir[t].recordCount));
        Cursor c = stream(t);
        TraceRecord r;
        while (c.next(r))
            data.streams[t].push_back(r);
    }
    return data;
}

std::shared_ptr<const TraceReader>
openTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("trace ", path, ": cannot open file");
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string bytes = buf.str();
    if (bytes.empty())
        fatal("trace ", path, ": empty file");

    if (!looksBinary(bytes)) {
        // Text form: parse (which validates), then re-encode so replay
        // exercises one code path regardless of the input form.
        std::istringstream text(bytes);
        bytes = encodeTrace(parseTextTrace(text, path));
    }
    auto reader =
        std::make_shared<const TraceReader>(std::move(bytes), path);
    reader->validate();
    return reader;
}

} // namespace persim::workload::trace
