#include "workload/trace/trace_replay.hh"

#include "sim/logging.hh"

namespace persim::workload::trace
{

TraceReplayWorkload::TraceReplayWorkload(
    std::shared_ptr<const TraceReader> reader, unsigned thread,
    std::shared_ptr<LockManager> locks)
    : _reader(std::move(reader)), _locks(std::move(locks)),
      _thread(thread), _cursor(_reader->stream(thread)),
      // Same derivation as MicroBenchmark so identical seeds give
      // identical backoff draws.
      _rng(_reader->meta().seed * 0x5851F42D4C957F2DULL + thread + 1)
{
    simAssert(_locks != nullptr, "TraceReplayWorkload: null locks");
}

cpu::MemOp
TraceReplayWorkload::next(Tick now)
{
    (void)now;
    if (_haltEmitted)
        return cpu::MemOp::halt();

    switch (_lockPhase) {
      case LockPhase::Backoff:
        // Contended: pay the backoff, then re-probe on the next issue.
        _lockPhase = LockPhase::Probe;
        return cpu::MemOp::compute(
            static_cast<std::uint32_t>(20 + _rng.below(80)));
      case LockPhase::Probe:
        return cpu::MemOp::load(_lockAddr);
      case LockPhase::Acquire:
        // Probe won: the CAS store publishes the acquisition.
        _lockPhase = LockPhase::None;
        return cpu::MemOp::store(_lockAddr);
      case LockPhase::None:
        break;
    }

    TraceRecord r;
    while (_cursor.next(r)) {
        switch (r.kind) {
          case TraceRecord::Kind::Load:
            return cpu::MemOp::load(r.addr);
          case TraceRecord::Kind::Store:
            return cpu::MemOp::store(r.addr);
          case TraceRecord::Kind::Barrier:
            return cpu::MemOp::barrier();
          case TraceRecord::Kind::Compute:
            return cpu::MemOp::compute(r.cycles);
          case TraceRecord::Kind::Lock:
            _lockAddr = r.addr;
            _lockPhase = LockPhase::Probe;
            return cpu::MemOp::load(_lockAddr);
          case TraceRecord::Kind::Unlock:
            _locks->release(r.addr, static_cast<CoreId>(_thread));
            return cpu::MemOp::store(r.addr);
          case TraceRecord::Kind::TxnMark:
            _txns += r.count;
            continue;
          case TraceRecord::Kind::Halt:
            _haltEmitted = true;
            return cpu::MemOp::halt();
        }
    }
    // Stream exhausted without an explicit halt (e.g. an empty
    // per-thread stream): halt implicitly.
    _haltEmitted = true;
    return cpu::MemOp::halt();
}

void
TraceReplayWorkload::onLoadComplete(Addr addr, Tick now)
{
    (void)now;
    if (_lockPhase != LockPhase::Probe)
        return; // an ordinary replayed load; nothing to decide
    if (lineAlign(addr) != lineAlign(_lockAddr))
        return; // completion of an earlier in-flight line, not ours
    if (_locks->tryAcquire(addr, static_cast<CoreId>(_thread))) {
        _lockPhase = LockPhase::Acquire;
    } else {
        _lockPhase = LockPhase::Backoff;
    }
}

std::vector<std::unique_ptr<cpu::Workload>>
makeTraceReplay(std::shared_ptr<const TraceReader> reader,
                unsigned expectThreads)
{
    simAssert(reader != nullptr, "makeTraceReplay: null reader");
    if (reader->meta().threadCount != expectThreads) {
        fatal("trace ", reader->sourceName(), ": recorded for ",
              reader->meta().threadCount,
              " thread(s) but the experiment wants ", expectThreads,
              " core(s); rerun with --cores ",
              reader->meta().threadCount,
              " or recapture the trace at the desired width");
    }
    auto locks = std::make_shared<LockManager>();
    std::vector<std::unique_ptr<cpu::Workload>> out;
    out.reserve(expectThreads);
    for (unsigned t = 0; t < expectThreads; ++t) {
        out.push_back(std::make_unique<TraceReplayWorkload>(
            reader, t, locks));
    }
    return out;
}

std::vector<std::unique_ptr<cpu::Workload>>
makeTraceReplay(const std::string &path, unsigned expectThreads)
{
    return makeTraceReplay(openTrace(path), expectThreads);
}

} // namespace persim::workload::trace
