/**
 * @file
 * Simulated persistent-heap allocator for the micro-benchmarks.
 */

#ifndef PERSIM_WORKLOAD_NV_HEAP_HH
#define PERSIM_WORKLOAD_NV_HEAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace persim::workload
{

/**
 * A host-side allocator handing out simulated NVRAM addresses.
 *
 * The micro-benchmarks allocate 512-byte entries (Table 2); reusing
 * freed entries is what produces the intra-thread conflict behaviour the
 * paper studies, so the allocator is LIFO per size class (a freed entry
 * is the next one handed out).
 */
class NvHeap
{
  public:
    /** Default base of the workload heap (below the log regions). */
    static constexpr Addr kDefaultBase = Addr{1} << 32;

    explicit NvHeap(Addr base = kDefaultBase, Addr sizeBytes = Addr{1}
                                                              << 32);

    /**
     * Allocate @p bytes (rounded up to a line multiple) on behalf of
     * @p thread. A thread's own freed entries are reused first (LIFO) —
     * NVHeaps-style per-thread allocation pools, which is what makes
     * re-allocation produce intra-thread (not inter-thread) conflicts.
     * @return Line-aligned address.
     */
    Addr alloc(std::uint64_t bytes, CoreId thread = 0);

    /** Return @p addr (from alloc(bytes)) to @p thread's free list. */
    void free(Addr addr, std::uint64_t bytes, CoreId thread = 0);

    /** Bytes handed out and never freed. */
    std::uint64_t liveBytes() const { return _liveBytes; }

    /** Current bump-pointer offset (diagnostics). */
    Addr used() const { return _cursor; }

  private:
    static std::uint64_t roundUp(std::uint64_t bytes)
    {
        return (bytes + kLineBytes - 1) & ~std::uint64_t{kLineBytes - 1};
    }

    static std::uint64_t
    classKey(std::uint64_t sz, CoreId thread)
    {
        return (static_cast<std::uint64_t>(thread) << 48) | sz;
    }

    Addr _base;
    Addr _size;
    Addr _cursor = 0;
    std::uint64_t _liveBytes = 0;
    std::unordered_map<std::uint64_t, std::vector<Addr>> _freeLists;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_NV_HEAP_HH
