#include "workload/lock_manager.hh"

#include "sim/logging.hh"

namespace persim::workload
{

bool
LockManager::tryAcquire(Addr lockAddr, CoreId thread)
{
    auto [it, inserted] = _held.try_emplace(lineAlign(lockAddr), thread);
    if (inserted) {
        ++_acquisitions;
        return true;
    }
    simAssert(it->second != thread, "recursive lock acquisition");
    ++_contended;
    return false;
}

void
LockManager::release(Addr lockAddr, CoreId thread)
{
    auto it = _held.find(lineAlign(lockAddr));
    simAssert(it != _held.end() && it->second == thread,
              "release of a lock not held by thread ", thread);
    _held.erase(it);
}

CoreId
LockManager::holder(Addr lockAddr) const
{
    auto it = _held.find(lineAlign(lockAddr));
    return it == _held.end() ? kNoCore : it->second;
}

} // namespace persim::workload
