/**
 * @file
 * Per-benchmark presets for the synthetic PARSEC/SPLASH/STAMP stand-ins.
 */

#ifndef PERSIM_WORKLOAD_SYNTHETIC_PRESETS_HH
#define PERSIM_WORKLOAD_SYNTHETIC_PRESETS_HH

#include <string>
#include <vector>

#include "workload/synthetic/trace_gen.hh"

namespace persim::workload
{

/**
 * The nine workloads of Figures 13/14, in the paper's order:
 * canneal, dedup, freqmine (PARSEC); barnes, cholesky, radix
 * (SPLASH-2); intruder, ssca2, vacation (STAMP).
 */
const std::vector<std::string> &syntheticPresetNames();

/**
 * Memory-behaviour preset for @p name; throws SimFatal for unknown
 * names. See presets.cc for the tuning rationale per benchmark.
 */
TraceGenParams syntheticPreset(const std::string &name);

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_SYNTHETIC_PRESETS_HH
