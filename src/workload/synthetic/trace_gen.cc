#include "workload/synthetic/trace_gen.hh"

#include "workload/nv_heap.hh"

namespace persim::workload
{

TraceGen::TraceGen(const TraceGenParams &params, CoreId thread,
                   unsigned numThreads, std::uint64_t seed)
    : _params(params),
      _thread(thread),
      _rng(seed * 0x9E3779B97F4A7C15ULL + thread * 7919 + 13)
{
    (void)numThreads;
    // Shared region first, private regions behind it, per thread.
    _sharedBase = NvHeap::kDefaultBase;
    _privateBase = _sharedBase + _params.sharedLines * kLineBytes +
                   static_cast<Addr>(thread) *
                       (_params.privateLines + 64) * kLineBytes;
    _lastAddr = _privateBase;
}

Addr
TraceGen::pickAddr(bool shared)
{
    // Spatial locality: extend a sequential run.
    if (_rng.chance(_params.sequentialProbability))
        return _lastAddr + kLineBytes;

    const Addr base = shared ? _sharedBase : _privateBase;
    const std::uint64_t lines =
        shared ? _params.sharedLines : _params.privateLines;
    const std::uint64_t hot =
        shared ? _params.sharedHotLines : _params.privateHotLines;

    std::uint64_t line;
    if (hot > 0 && hot < lines && _rng.chance(_params.hotProbability))
        line = _rng.below(hot);
    else
        line = _rng.below(lines);
    return base + line * kLineBytes;
}

cpu::MemOp
TraceGen::next(Tick now)
{
    (void)now;
    if (_opsIssued >= _params.opsPerThread)
        return cpu::MemOp::halt();

    // Interleave compute gaps between memory operations.
    if (!_pendingCompute && _params.computeMax > 0 &&
        _rng.chance(0.5)) {
        _pendingCompute = true;
        return cpu::MemOp::compute(static_cast<std::uint32_t>(
            _rng.range(_params.computeMin, _params.computeMax)));
    }
    _pendingCompute = false;

    ++_opsIssued;
    const bool isStore = _rng.chance(_params.storeFraction);
    if (isStore && _lastStore != 0 &&
        _rng.chance(_params.rewriteProbability)) {
        return cpu::MemOp::store(_lastStore); // in-place update
    }
    const bool shared = _rng.chance(_params.sharedFraction);
    const Addr addr = pickAddr(shared);
    _lastAddr = addr;
    if (isStore) {
        _lastStore = addr;
        return cpu::MemOp::store(addr);
    }
    return cpu::MemOp::load(addr);
}

} // namespace persim::workload
