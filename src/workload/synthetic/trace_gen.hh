/**
 * @file
 * Parameterized synthetic workload generator (PARSEC/SPLASH/STAMP
 * stand-ins for the BSP experiments; see DESIGN.md §5).
 */

#ifndef PERSIM_WORKLOAD_SYNTHETIC_TRACE_GEN_HH
#define PERSIM_WORKLOAD_SYNTHETIC_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/workload_iface.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace persim::workload
{

/**
 * Memory-behaviour parameters of one synthetic workload.
 *
 * The BSP experiments depend on each benchmark's *memory shape* — how
 * many stores coalesce within a hardware epoch, how large the footprint
 * is, and how much fine-grained inter-thread sharing creates
 * inter-thread conflicts — not on its computation. Each preset
 * (presets.cc) encodes those properties as published in the PARSEC /
 * SPLASH-2 / STAMP characterization papers.
 */
struct TraceGenParams
{
    std::string name = "generic";

    /** Memory operations per thread. */
    std::uint64_t opsPerThread = 50000;

    /** Fraction of memory operations that are stores. */
    double storeFraction = 0.3;

    /** Fraction of accesses that go to the shared region. */
    double sharedFraction = 0.2;

    /** Per-thread private footprint, in lines. */
    std::uint64_t privateLines = 4096;

    /** Shared footprint, in lines. */
    std::uint64_t sharedLines = 16384;

    /**
     * Temporal locality: probability an access targets the hot subset
     * (hotLines of the region) instead of the whole region.
     */
    double hotProbability = 0.6;
    std::uint64_t privateHotLines = 96;
    std::uint64_t sharedHotLines = 2048;

    /** Spatial locality: probability the next access is sequential. */
    double sequentialProbability = 0.4;

    /**
     * Probability a store re-writes the most recently stored line
     * (accumulators, in-place updates). Rewrites within one hardware
     * epoch coalesce; across epochs they re-persist and re-log — the
     * mechanism behind Figure 13's epoch-size sensitivity.
     */
    double rewriteProbability = 0.35;

    /** Compute cycles between memory operations (uniform range). */
    unsigned computeMin = 1;
    unsigned computeMax = 8;
};

/** One thread of a synthetic workload. */
class TraceGen : public cpu::Workload
{
  public:
    /**
     * @param params Behaviour preset.
     * @param thread This thread's id.
     * @param numThreads Threads sharing the shared region.
     * @param seed Workload seed (same seed + thread -> same stream).
     */
    TraceGen(const TraceGenParams &params, CoreId thread,
             unsigned numThreads, std::uint64_t seed);

    cpu::MemOp next(Tick now) override;
    std::uint64_t transactions() const override { return _opsIssued; }

    const TraceGenParams &params() const { return _params; }

  private:
    Addr pickAddr(bool shared);

    TraceGenParams _params;
    CoreId _thread;
    Rng _rng;
    Addr _privateBase;
    Addr _sharedBase;
    std::uint64_t _opsIssued = 0;
    Addr _lastAddr = 0;
    Addr _lastStore = 0;
    bool _pendingCompute = false;
};

} // namespace persim::workload

#endif // PERSIM_WORKLOAD_SYNTHETIC_TRACE_GEN_HH
