#include "workload/synthetic/presets.hh"

#include "sim/logging.hh"

namespace persim::workload
{

const std::vector<std::string> &
syntheticPresetNames()
{
    static const std::vector<std::string> names = {
        "canneal", "dedup",    "freqmine", "barnes",   "cholesky",
        "radix",   "intruder", "ssca2",    "vacation",
    };
    return names;
}

TraceGenParams
syntheticPreset(const std::string &name)
{
    TraceGenParams p;
    p.name = name;
    if (name == "canneal") {
        // Simulated annealing over a huge netlist: random pointer
        // chasing over a large footprint, element swaps across threads.
        p.storeFraction = 0.30;
        p.sharedFraction = 0.15;
        p.privateLines = 32768;
        p.sharedLines = 65536;
        p.hotProbability = 0.25; // poor temporal locality
        p.sequentialProbability = 0.10;
        p.computeMax = 6;
    } else if (name == "dedup") {
        // Pipelined compression: store-heavy, hashed shared dictionary.
        p.storeFraction = 0.40;
        p.sharedFraction = 0.12;
        p.privateLines = 8192;
        p.sharedLines = 32768;
        p.hotProbability = 0.45;
        p.sequentialProbability = 0.45;
        p.computeMax = 6;
    } else if (name == "freqmine") {
        // FP-growth mining: read-dominated traversal of a shared tree.
        p.storeFraction = 0.18;
        p.sharedFraction = 0.18;
        p.privateLines = 8192;
        p.sharedLines = 32768;
        p.hotProbability = 0.55;
        p.sequentialProbability = 0.30;
        p.computeMax = 10;
    } else if (name == "barnes") {
        // N-body: good locality on the body arrays, tree sharing.
        p.storeFraction = 0.30;
        p.sharedFraction = 0.10;
        p.privateLines = 8192;
        p.sharedLines = 16384;
        p.hotProbability = 0.65;
        p.sequentialProbability = 0.40;
        p.computeMax = 12;
    } else if (name == "cholesky") {
        // Blocked factorization: high spatial locality, block reuse.
        p.storeFraction = 0.35;
        p.sharedFraction = 0.08;
        p.privateLines = 16384;
        p.sharedLines = 16384;
        p.hotProbability = 0.70;
        p.sequentialProbability = 0.60;
        p.computeMax = 10;
    } else if (name == "radix") {
        // Radix sort: streaming partitioned writes, little sharing.
        p.storeFraction = 0.50;
        p.sharedFraction = 0.04;
        p.privateLines = 16384;
        p.sharedLines = 8192;
        p.hotProbability = 0.20;
        p.sequentialProbability = 0.70;
        p.computeMax = 3;
    } else if (name == "intruder") {
        // Network intrusion detection: small shared structures under
        // heavy contention (transactional in STAMP).
        p.storeFraction = 0.30;
        p.sharedFraction = 0.22;
        p.privateLines = 2048;
        p.sharedLines = 8192;
        p.hotProbability = 0.60;
        p.sharedHotLines = 2048;
        p.sequentialProbability = 0.25;
        p.computeMax = 5;
    } else if (name == "ssca2") {
        // Graph kernel: write-intensive with fine-grained inter-thread
        // sharing — the paper's stress case (4.22x under LB).
        p.storeFraction = 0.45;
        p.sharedFraction = 0.30;
        p.privateLines = 2048;
        p.sharedLines = 16384;
        p.hotProbability = 0.65;
        p.sharedHotLines = 1024;
        p.sequentialProbability = 0.15;
        p.computeMax = 3;
    } else if (name == "vacation") {
        // Travel-reservation trees: moderate sharing, random lookups.
        p.storeFraction = 0.35;
        p.sharedFraction = 0.15;
        p.privateLines = 4096;
        p.sharedLines = 32768;
        p.hotProbability = 0.50;
        p.sequentialProbability = 0.20;
        p.computeMax = 6;
    } else {
        fatal("unknown synthetic preset '", name, "'");
    }
    return p;
}

} // namespace persim::workload
