#include "exp/sandbox.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "exp/journal.hh"
#include "sim/logging.hh"

namespace persim::exp
{

namespace
{

/** write(2) everything; returns false on a real error (not EINTR). */
bool
writeAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

} // namespace

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGABRT:
        return "SIGABRT";
      case SIGBUS:
        return "SIGBUS";
      case SIGFPE:
        return "SIGFPE";
      case SIGILL:
        return "SIGILL";
      case SIGKILL:
        return "SIGKILL";
      case SIGTERM:
        return "SIGTERM";
      case SIGINT:
        return "SIGINT";
      default: {
        // Rare path; a static buffer per signal number would be
        // overkill, and thread-safety matters more than elegance.
        static thread_local char buf[16];
        std::snprintf(buf, sizeof(buf), "SIG%d", sig);
        return buf;
      }
    }
}

SandboxResult
runJobSandboxed(const ExperimentSpec &spec, std::size_t gridIndex,
                std::atomic<int> *childPid)
{
    SandboxResult sr;
    sr.outcome.spec = spec;
    sr.outcome.attempts = 1;

    int fds[2];
    if (::pipe(fds) != 0) {
        sr.outcome.ok = false;
        sr.outcome.error =
            std::string("sandbox pipe failed: ") + std::strerror(errno);
        return sr;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        sr.outcome.ok = false;
        sr.outcome.error =
            std::string("sandbox fork failed: ") + std::strerror(errno);
        return sr;
    }

    if (pid == 0) {
        // Child: run exactly one attempt (the parent owns retry and
        // backoff policy) and ship the outcome. SIGPIPE must not kill
        // us if the parent died first; _exit skips static destructors
        // shared with the parent's address space.
        ::close(fds[0]);
        ::signal(SIGPIPE, SIG_IGN);
        JobControl ctl;
        ctl.maxAttempts = 1;
        ctl.index = gridIndex;
        JobOutcome out = runJob(spec, ctl);
        const std::string doc = outcomeToWire(out).dump(0);
        writeAll(fds[1], doc.data(), doc.size());
        ::close(fds[1]);
        ::_exit(out.ok ? 0 : 1);
    }

    // Parent: read to EOF first (so a large document cannot deadlock
    // against a full pipe), then reap.
    ::close(fds[1]);
    if (childPid)
        childPid->store(static_cast<int>(pid),
                        std::memory_order_relaxed);
    std::string doc;
    char buf[4096];
    while (true) {
        const ssize_t r = ::read(fds[0], buf, sizeof(buf));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (r == 0)
            break;
        doc.append(buf, static_cast<std::size_t>(r));
    }
    ::close(fds[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (childPid)
        childPid->store(0, std::memory_order_relaxed);

    if (!doc.empty()) {
        try {
            const JsonValue wire = JsonValue::parse(doc);
            sr.outcome = outcomeFromWire(wire, spec, /*index=*/0);
            if (WIFEXITED(status))
                sr.outcome.exitCode = WEXITSTATUS(status);
            return sr;
        } catch (const std::exception &) {
            // Torn document: the child died mid-write. Fall through
            // to the crash classification below.
        }
    }

    sr.childCrashed = true;
    sr.outcome.ok = false;
    if (WIFSIGNALED(status)) {
        sr.outcome.termSignal = signalName(WTERMSIG(status));
        sr.outcome.error =
            std::string("signal: ") + sr.outcome.termSignal;
    } else if (WIFEXITED(status)) {
        sr.outcome.exitCode = WEXITSTATUS(status);
        sr.outcome.error = "child exited with status " +
                           std::to_string(WEXITSTATUS(status)) +
                           " before reporting a result";
    } else {
        sr.outcome.error = "child vanished without a result";
    }
    return sr;
}

} // namespace persim::exp
