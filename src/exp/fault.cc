#include "exp/fault.hh"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/logging.hh"

namespace persim::exp::fault
{

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::None:
        return "none";
      case Kind::Throw:
        return "throw";
      case Kind::Hang:
        return "hang";
      case Kind::Segv:
        return "segv";
      case Kind::Abort:
        return "abort";
    }
    return "unknown";
}

Spec
parse(std::string_view text)
{
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos)
        fatal("PERSIM_FAULT wants <kind>:<jobIndex>, got '",
              std::string(text), "'");
    const std::string_view kind = text.substr(0, colon);
    const std::string_view index = text.substr(colon + 1);

    Spec spec;
    if (kind == "throw")
        spec.kind = Kind::Throw;
    else if (kind == "hang")
        spec.kind = Kind::Hang;
    else if (kind == "segv")
        spec.kind = Kind::Segv;
    else if (kind == "abort")
        spec.kind = Kind::Abort;
    else
        fatal("PERSIM_FAULT kind must be throw|hang|segv|abort, got '",
              std::string(kind), "'");

    if (index.empty())
        fatal("PERSIM_FAULT wants a job index after ':', got '",
              std::string(text), "'");
    std::size_t value = 0;
    for (char c : index) {
        if (c < '0' || c > '9')
            fatal("PERSIM_FAULT job index must be a non-negative "
                  "integer, got '",
                  std::string(index), "'");
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    spec.jobIndex = value;
    return spec;
}

Spec
fromEnv()
{
    // Re-read every call (it is on the once-per-attempt path, far off
    // any hot loop) so tests can set and clear the variable freely.
    const char *env = std::getenv("PERSIM_FAULT");
    if (!env || !*env)
        return {};
    return parse(env);
}

void
maybeInject(std::size_t jobIndex, const std::atomic<bool> *cancel)
{
    const Spec spec = fromEnv();
    if (spec.kind == Kind::None || spec.jobIndex != jobIndex)
        return;

    switch (spec.kind) {
      case Kind::Throw:
        throw std::runtime_error("injected fault: throw");
      case Kind::Hang:
        // A cancellable hang: the loop does nothing but watch the
        // watchdog flag, which is exactly the contract the in-process
        // watchdog can break. Without a flag this never returns and
        // only an external kill (the sandbox path) ends the job.
        while (!(cancel &&
                 cancel->load(std::memory_order_relaxed)))
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw SimCancelled("injected fault: hang cancelled by watchdog");
      case Kind::Segv:
        std::raise(SIGSEGV);
        break;
      case Kind::Abort:
        std::abort();
      case Kind::None:
        break;
    }
}

} // namespace persim::exp::fault
