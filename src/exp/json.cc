#include "exp/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace persim::exp
{

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; serialize as null so output stays valid.
        os << "null";
        return;
    }
    // Integral values within int64 range render without a fraction;
    // everything else uses the shortest round-trip representation.
    if (v == std::floor(v) && std::fabs(v) < 9.2e18) {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf),
                                 static_cast<std::int64_t>(v));
        os.write(buf, res.ptr - buf);
        return;
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

JsonValue &
JsonValue::push(JsonValue v)
{
    simAssert(_kind == Kind::Array, "JsonValue::push on non-array");
    _items.push_back(std::move(v));
    return _items.back();
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    simAssert(_kind == Kind::Object, "JsonValue::[] on non-object");
    for (auto &[k, v] : _members) {
        if (k == key)
            return v;
    }
    _members.emplace_back(key, JsonValue());
    return _members.back().second;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (_kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : _members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
JsonValue::write(std::ostream &os, unsigned indent, unsigned depth) const
{
    const std::string pad =
        indent ? std::string(indent * (depth + 1), ' ') : std::string();
    const std::string closePad =
        indent ? std::string(indent * depth, ' ') : std::string();
    const char *nl = indent ? "\n" : "";
    const char *colon = indent ? ": " : ":";

    switch (_kind) {
    case Kind::Null:
        os << "null";
        break;
    case Kind::Bool:
        os << (_bool ? "true" : "false");
        break;
    case Kind::Number:
        writeJsonNumber(os, _num);
        break;
    case Kind::String:
        writeJsonString(os, _str);
        break;
    case Kind::Array:
        if (_items.empty()) {
            os << "[]";
            break;
        }
        os << '[' << nl;
        for (std::size_t i = 0; i < _items.size(); ++i) {
            os << pad;
            _items[i].write(os, indent, depth + 1);
            if (i + 1 < _items.size())
                os << ',';
            os << nl;
        }
        os << closePad << ']';
        break;
    case Kind::Object:
        if (_members.empty()) {
            os << "{}";
            break;
        }
        os << '{' << nl;
        for (std::size_t i = 0; i < _members.size(); ++i) {
            os << pad;
            writeJsonString(os, _members[i].first);
            os << colon;
            _members[i].second.write(os, indent, depth + 1);
            if (i + 1 < _members.size())
                os << ',';
            os << nl;
        }
        os << closePad << '}';
        break;
    }
}

std::string
JsonValue::dump(unsigned indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (_kind != other._kind)
        return false;
    switch (_kind) {
    case Kind::Null:
        return true;
    case Kind::Bool:
        return _bool == other._bool;
    case Kind::Number:
        return _num == other._num;
    case Kind::String:
        return _str == other._str;
    case Kind::Array:
        return _items == other._items;
    case Kind::Object:
        return _members == other._members;
    }
    return false;
}

// ---------------------------------------------------------------------
// Parser: plain recursive descent over the full JSON grammar.
// ---------------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : _s(text) {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (_pos != _s.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        persim::fatal("JSON parse error at offset ", _pos, ": ", why);
    }

    void skipWs()
    {
        while (_pos < _s.size() &&
               (_s[_pos] == ' ' || _s[_pos] == '\t' || _s[_pos] == '\n' ||
                _s[_pos] == '\r'))
            ++_pos;
    }

    char peek()
    {
        skipWs();
        if (_pos >= _s.size())
            fail("unexpected end of input");
        return _s[_pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool consumeLiteral(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (_s.compare(_pos, n, lit) == 0) {
            _pos += n;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        switch (peek()) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return JsonValue(parseString());
        case 't':
            if (consumeLiteral("true"))
                return JsonValue(true);
            fail("bad literal");
        case 'f':
            if (consumeLiteral("false"))
                return JsonValue(false);
            fail("bad literal");
        case 'n':
            if (consumeLiteral("null"))
                return JsonValue();
            fail("bad literal");
        default:
            return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue obj = JsonValue::object();
        if (peek() == '}') {
            ++_pos;
            return obj;
        }
        while (true) {
            if (peek() != '"')
                fail("expected member name");
            std::string key = parseString();
            expect(':');
            obj[key] = parseValue();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue arr = JsonValue::array();
        if (peek() == ']') {
            ++_pos;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _s.size())
                fail("unterminated string");
            char c = _s[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _s.size())
                fail("unterminated escape");
            char e = _s[_pos++];
            switch (e) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (_pos + 4 > _s.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _s[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Encode as UTF-8 (no surrogate-pair handling; the
                // writer only emits \u for control characters).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    JsonValue parseNumber()
    {
        skipWs();
        const std::size_t start = _pos;
        if (_pos < _s.size() && (_s[_pos] == '-' || _s[_pos] == '+'))
            ++_pos;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' || _s[_pos] == 'E' ||
                _s[_pos] == '+' || _s[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            fail("expected a value");
        double v = 0.0;
        auto res = std::from_chars(_s.data() + start, _s.data() + _pos, v);
        if (res.ec != std::errc() || res.ptr != _s.data() + _pos)
            fail("bad number");
        return JsonValue(v);
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace persim::exp
