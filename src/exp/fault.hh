/**
 * @file
 * Deterministic fault injection for the sweep harness.
 *
 * The fault-tolerance machinery (watchdog, sandbox isolation, journal
 * resume) is only trustworthy if it is exercised against real faults,
 * so the environment variable
 *
 *     PERSIM_FAULT=<kind>:<jobIndex>
 *
 * injects exactly one fault at the start of every attempt of the job
 * with that grid index. Kinds:
 *
 *     throw  - throw a std::runtime_error ("injected fault: throw")
 *     hang   - spin until the watchdog's cancel flag fires (or, with
 *              no watchdog, forever - an external kill is required),
 *              then surface as a timeout
 *     segv   - raise SIGSEGV (contained only by --isolate)
 *     abort  - std::abort() (contained only by --isolate)
 *
 * The hook is keyed by job index, not id, so the same injection works
 * unchanged across figures and filters; an index of SIZE_MAX (the
 * default for standalone runJob callers) never matches, so library
 * users cannot be faulted by a stray environment variable. Tests and
 * the CI fault-injection job are the only intended users.
 */

#ifndef PERSIM_EXP_FAULT_HH
#define PERSIM_EXP_FAULT_HH

#include <atomic>
#include <cstddef>
#include <string_view>

namespace persim::exp::fault
{

enum class Kind
{
    None,
    Throw,
    Hang,
    Segv,
    Abort,
};

/** One parsed injection directive. */
struct Spec
{
    Kind kind = Kind::None;
    std::size_t jobIndex = 0;
};

const char *kindName(Kind k);

/**
 * Parse "<kind>:<jobIndex>"; throws SimFatal naming the defect on
 * malformed input (unknown kind, missing colon, non-numeric index).
 */
Spec parse(std::string_view text);

/** Parse PERSIM_FAULT from the environment; Kind::None when unset. */
Spec fromEnv();

/**
 * Inject the configured fault if PERSIM_FAULT targets @p jobIndex.
 * Called at the start of every job attempt (so a retried job faults
 * again — a persistent fault, which is what the containment tests
 * need). @p cancel is the attempt's watchdog flag: Hang spins on it
 * and converts to SimCancelled when it fires; nullptr hangs forever.
 */
void maybeInject(std::size_t jobIndex, const std::atomic<bool> *cancel);

} // namespace persim::exp::fault

#endif // PERSIM_EXP_FAULT_HH
