/**
 * @file
 * Minimal JSON document model for the experiment subsystem.
 *
 * Design goals, in order:
 *   1. Deterministic serialization — the same document always renders
 *      to the same bytes, regardless of thread count or locale, so a
 *      parallel sweep can be diffed against a serial one.
 *   2. Order preservation — objects keep insertion order, so emitted
 *      files read in the order the code builds them.
 *   3. Round-trip — parse(dump(v)) reproduces v (used by tests and by
 *      tools that post-process sweep output).
 *
 * Numbers serialize via std::to_chars (shortest round-trip form);
 * integral values within int64 range render without a decimal point.
 */

#ifndef PERSIM_EXP_JSON_HH
#define PERSIM_EXP_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace persim::exp
{

/** One JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() : _kind(Kind::Null) {}
    JsonValue(bool b) : _kind(Kind::Bool), _bool(b) {}
    JsonValue(double d) : _kind(Kind::Number), _num(d) {}
    JsonValue(int i) : _kind(Kind::Number), _num(i) {}
    JsonValue(unsigned u) : _kind(Kind::Number), _num(u) {}
    JsonValue(std::uint64_t u)
        : _kind(Kind::Number), _num(static_cast<double>(u))
    {
    }
    JsonValue(std::int64_t i)
        : _kind(Kind::Number), _num(static_cast<double>(i))
    {
    }
    JsonValue(const char *s) : _kind(Kind::String), _str(s) {}
    JsonValue(std::string s) : _kind(Kind::String), _str(std::move(s)) {}

    static JsonValue array() { return JsonValue(Kind::Array); }
    static JsonValue object() { return JsonValue(Kind::Object); }

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }

    bool asBool() const { return _bool; }
    double asNumber() const { return _num; }
    const std::string &asString() const { return _str; }

    /** Array: append an element (value must be an array). */
    JsonValue &push(JsonValue v);
    const std::vector<JsonValue> &items() const { return _items; }
    std::size_t size() const { return _items.size(); }
    const JsonValue &at(std::size_t i) const { return _items.at(i); }

    /** Object: insert-or-get a member (value must be an object). */
    JsonValue &operator[](const std::string &key);
    /** Object: lookup; nullptr when missing or not an object. */
    const JsonValue *get(const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return _members;
    }

    /**
     * Render the document. @p indent > 0 pretty-prints with that many
     * spaces per level; 0 renders compact.
     */
    void write(std::ostream &os, unsigned indent = 2,
               unsigned depth = 0) const;
    std::string dump(unsigned indent = 2) const;

    /** Parse a complete JSON document; throws SimFatal on bad input. */
    static JsonValue parse(const std::string &text);

    bool operator==(const JsonValue &other) const;

  private:
    explicit JsonValue(Kind k) : _kind(k) {}

    Kind _kind;
    bool _bool = false;
    double _num = 0.0;
    std::string _str;
    std::vector<JsonValue> _items;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

/** Append @p v to @p os in shortest round-trip form, JSON-compatible. */
void writeJsonNumber(std::ostream &os, double v);

/** Append the JSON string literal (quotes + escapes) for @p s. */
void writeJsonString(std::ostream &os, const std::string &s);

} // namespace persim::exp

#endif // PERSIM_EXP_JSON_HH
