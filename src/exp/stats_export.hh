/**
 * @file
 * Structured export of simulation statistics.
 *
 * Three views of the same data:
 *   - statGroupsToJson(): the full StatGroup tree — scalars plus
 *     distributions with count/mean/stdev/min/max/sum/p50/p95/p99.
 *   - flatStatsToJson(): the flat "<component>.<stat>" -> value map
 *     (what System::stats() returns), for easy diffing.
 *   - writeCsv(): RFC-4180-style CSV tables for figure data.
 *
 * All output is deterministic: group and stat order follow registration
 * order, numbers use shortest round-trip formatting.
 */

#ifndef PERSIM_EXP_STATS_EXPORT_HH
#define PERSIM_EXP_STATS_EXPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "model/system.hh"
#include "sim/stats.hh"

namespace persim::exp
{

/** Serialize one distribution's summary (count, moments, tails). */
JsonValue distributionToJson(const Distribution &d);

/**
 * Serialize stat groups as
 * {"<group>": {"scalars": {...}, "distributions": {...}}}.
 */
JsonValue statGroupsToJson(const std::vector<const StatGroup *> &groups);

/** Serialize a flat stats map as one JSON object. */
JsonValue flatStatsToJson(const std::map<std::string, double> &stats);

/** Serialize a SimResult (exec/drain ticks, flags, violations). */
JsonValue simResultToJson(const model::SimResult &res);

/**
 * Rebuild a SimResult from simResultToJson() output (journal resume,
 * sandbox pipe). Derived fields ("throughput") are recomputed, so
 * simResultToJson(simResultFromJson(j)) == j byte for byte. Missing
 * members keep their defaults.
 */
model::SimResult simResultFromJson(const JsonValue &j);

/** Quote a CSV field when it needs quoting (comma, quote, newline). */
std::string csvField(const std::string &s);

/** Write a header row plus data rows, all fields escaped. */
void writeCsv(std::ostream &os, const std::vector<std::string> &header,
              const std::vector<std::vector<std::string>> &rows);

} // namespace persim::exp

#endif // PERSIM_EXP_STATS_EXPORT_HH
