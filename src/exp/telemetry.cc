#include "exp/telemetry.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace persim::exp
{

namespace
{

/** Parse "<key>:   <n> kB" from /proc/self/status; 0 if absent. */
std::uint64_t
procStatusKb(const char *key)
{
    std::ifstream in("/proc/self/status");
    if (!in)
        return 0;
    std::string line;
    const std::size_t keyLen = std::strlen(key);
    while (std::getline(in, line)) {
        if (line.compare(0, keyLen, key) != 0 ||
            line.size() <= keyLen || line[keyLen] != ':')
            continue;
        return std::strtoull(line.c_str() + keyLen + 1, nullptr, 10);
    }
    return 0;
}

} // namespace

std::uint64_t
currentRssKb()
{
    return procStatusKb("VmRSS");
}

std::uint64_t
peakRssKb()
{
    return procStatusKb("VmHWM");
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Retrying:
        return "retrying";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
    }
    return "unknown";
}

JsonValue
JobTelemetry::toJson() const
{
    JsonValue out = JsonValue::object();
    out["id"] = JsonValue(id);
    out["state"] = JsonValue(jobStateName(state));
    out["attempts"] = JsonValue(attempts);
    out["worker"] = JsonValue(worker);
    out["wallMs"] = JsonValue(wallMs);
    out["events"] = JsonValue(events);
    out["rssAfterKb"] = JsonValue(rssAfterKb);
    return out;
}

std::uint64_t
SweepTelemetry::totalEvents() const
{
    std::uint64_t total = 0;
    for (const JobTelemetry &j : jobs)
        total += j.events;
    return total;
}

std::size_t
SweepTelemetry::failedJobs() const
{
    std::size_t n = 0;
    for (const JobTelemetry &j : jobs)
        n += j.state == JobState::Failed ? 1 : 0;
    return n;
}

std::size_t
SweepTelemetry::retriedJobs() const
{
    std::size_t n = 0;
    for (const JobTelemetry &j : jobs)
        n += j.attempts > 1 ? 1 : 0;
    return n;
}

double
SweepTelemetry::eventsPerSec() const
{
    return wallMs > 0.0
               ? static_cast<double>(totalEvents()) * 1e3 / wallMs
               : 0.0;
}

JsonValue
SweepTelemetry::toJson() const
{
    JsonValue out = JsonValue::object();
    out["sweep"] = JsonValue(sweep);
    out["workers"] = JsonValue(workers);
    out["wallMs"] = JsonValue(wallMs);
    out["peakRssKb"] = JsonValue(peakRssKb);
    out["totalEvents"] = JsonValue(totalEvents());
    out["eventsPerSec"] = JsonValue(eventsPerSec());
    out["failed"] = JsonValue(failedJobs());
    out["retried"] = JsonValue(retriedJobs());
    JsonValue arr = JsonValue::array();
    for (const JobTelemetry &j : jobs)
        arr.push(j.toJson());
    out["jobs"] = std::move(arr);
    return out;
}

std::string
SweepTelemetry::summaryLine() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s: %zu jobs (%zu failed, %zu retried) in %.1f s, "
                  "%.2f Mevents/s, peak RSS %.1f MB",
                  sweep.c_str(), jobs.size(), failedJobs(),
                  retriedJobs(), wallMs / 1e3, eventsPerSec() / 1e6,
                  static_cast<double>(peakRssKb) / 1024.0);
    return buf;
}

} // namespace persim::exp
