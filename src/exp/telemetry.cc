#include "exp/telemetry.hh"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "prof/profile.hh"

namespace persim::exp
{

namespace
{

/** Slurp a /proc file; empty string where /proc is unavailable. */
std::string
readProcFile(const char *path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

std::uint64_t
parseStatusKb(std::string_view text, std::string_view key)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = text.size();
        const std::string_view line = text.substr(pos, eol - pos);
        pos = eol + 1;
        // "<key>:" exactly — "VmRSS" must not match "VmRSSExtra:".
        if (line.size() <= key.size() ||
            line.compare(0, key.size(), key) != 0 ||
            line[key.size()] != ':')
            continue;
        std::size_t i = key.size() + 1;
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
        if (i >= line.size() ||
            !std::isdigit(static_cast<unsigned char>(line[i])))
            return 0; // malformed value: refuse rather than guess
        std::uint64_t value = 0;
        for (; i < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[i]));
             ++i)
            value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
        return value;
    }
    return 0;
}

std::uint64_t
currentRssKb()
{
    return parseStatusKb(readProcFile("/proc/self/status"), "VmRSS");
}

std::uint64_t
peakRssKb()
{
    return parseStatusKb(readProcFile("/proc/self/status"), "VmHWM");
}

unsigned
hostCpuCount()
{
    return std::thread::hardware_concurrency();
}

double
loadAverage1()
{
    // First field of /proc/loadavg; strtod-style parse keeps this
    // locale-independent (the kernel always writes "0.42").
    const std::string text = readProcFile("/proc/loadavg");
    if (text.empty())
        return -1.0;
    double whole = 0.0;
    std::size_t i = 0;
    bool any = false;
    for (; i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]));
         ++i, any = true)
        whole = whole * 10.0 + (text[i] - '0');
    if (!any)
        return -1.0;
    if (i < text.size() && text[i] == '.') {
        double scale = 0.1;
        for (++i; i < text.size() &&
                  std::isdigit(static_cast<unsigned char>(text[i]));
             ++i, scale *= 0.1)
            whole += (text[i] - '0') * scale;
    }
    return whole;
}

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Retrying:
        return "retrying";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::TimedOut:
        return "timed-out";
      case JobState::Isolated:
        return "isolated";
    }
    return "unknown";
}

JsonValue
JobTelemetry::toJson() const
{
    JsonValue out = JsonValue::object();
    out["id"] = JsonValue(id);
    out["state"] = JsonValue(jobStateName(state));
    out["attempts"] = JsonValue(attempts);
    out["worker"] = JsonValue(worker);
    out["wallMs"] = JsonValue(wallMs);
    out["events"] = JsonValue(events);
    out["rssAfterKb"] = JsonValue(rssAfterKb);
    if (isolated) {
        out["isolated"] = JsonValue(true);
        if (exitCode >= 0)
            out["exitCode"] = JsonValue(exitCode);
        if (!termSignal.empty())
            out["signal"] = JsonValue(termSignal);
    }
    if (profiled) {
        JsonValue p = JsonValue::object();
        p["samples"] = JsonValue(profPhases.total());
        p["phases"] = prof::phaseCountsToJson(profPhases);
        out["prof"] = std::move(p);
        out["counters"] = counters.toJson();
    }
    return out;
}

std::uint64_t
SweepTelemetry::totalEvents() const
{
    std::uint64_t total = 0;
    for (const JobTelemetry &j : jobs)
        total += j.events;
    return total;
}

std::size_t
SweepTelemetry::failedJobs() const
{
    std::size_t n = 0;
    for (const JobTelemetry &j : jobs)
        n += (j.state == JobState::Failed ||
              j.state == JobState::TimedOut)
                 ? 1
                 : 0;
    return n;
}

std::size_t
SweepTelemetry::timedOutJobs() const
{
    std::size_t n = 0;
    for (const JobTelemetry &j : jobs)
        n += j.state == JobState::TimedOut ? 1 : 0;
    return n;
}

std::size_t
SweepTelemetry::retriedJobs() const
{
    std::size_t n = 0;
    for (const JobTelemetry &j : jobs)
        n += j.attempts > 1 ? 1 : 0;
    return n;
}

double
SweepTelemetry::eventsPerSec() const
{
    return wallMs > 0.0
               ? static_cast<double>(totalEvents()) * 1e3 / wallMs
               : 0.0;
}

JsonValue
SweepTelemetry::toJson() const
{
    JsonValue out = JsonValue::object();
    out["sweep"] = JsonValue(sweep);
    out["workers"] = JsonValue(workers);
    out["hostCpus"] = JsonValue(hostCpus);
    if (loadAvg1 >= 0.0)
        out["loadAvg1"] = JsonValue(loadAvg1);
    out["wallMs"] = JsonValue(wallMs);
    out["peakRssKb"] = JsonValue(peakRssKb);
    out["totalEvents"] = JsonValue(totalEvents());
    out["eventsPerSec"] = JsonValue(eventsPerSec());
    out["failed"] = JsonValue(failedJobs());
    out["timedOut"] = JsonValue(timedOutJobs());
    out["retried"] = JsonValue(retriedJobs());
    if (profiled) {
        JsonValue p = JsonValue::object();
        p["periodUsec"] = JsonValue(profPeriodUsec);
        p["samples"] = JsonValue(profPhases.total());
        p["phases"] = prof::phaseCountsToJson(profPhases);
        out["prof"] = std::move(p);
        out["counterSource"] = JsonValue(counters.source);
        out["counters"] = counters.toJson();
    }
    JsonValue arr = JsonValue::array();
    for (const JobTelemetry &j : jobs)
        arr.push(j.toJson());
    out["jobs"] = std::move(arr);
    return out;
}

std::string
SweepTelemetry::summaryLine() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s: %zu jobs (%zu failed, %zu timed out, "
                  "%zu retried) in %.1f s, "
                  "%.2f Mevents/s, peak RSS %.1f MB",
                  sweep.c_str(), jobs.size(), failedJobs(),
                  timedOutJobs(), retriedJobs(), wallMs / 1e3,
                  eventsPerSec() / 1e6,
                  static_cast<double>(peakRssKb) / 1024.0);
    return buf;
}

} // namespace persim::exp
