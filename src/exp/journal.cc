#include "exp/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "exp/stats_export.hh"
#include "sim/logging.hh"

namespace persim::exp
{

namespace
{

/** FNV-1a over a byte range, continuing from @p h. */
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    // Hash the length too so field boundaries cannot alias
    // ("ab"+"c" vs "a"+"bc").
    const std::size_t n = s.size();
    h = fnv1a(h, &n, sizeof(n));
    return fnv1a(h, s.data(), n);
}

/** write(2) the whole buffer, retrying on EINTR/short writes. */
bool
writeAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

} // namespace

JsonValue
outcomeToWire(const JobOutcome &outcome)
{
    JsonValue wire = JsonValue::object();
    wire["id"] = JsonValue(outcome.spec.id());
    wire["ok"] = JsonValue(outcome.ok);
    wire["attempts"] = JsonValue(outcome.attempts);
    wire["error"] = JsonValue(outcome.error);
    wire["wallMs"] = JsonValue(outcome.wallMs);
    wire["result"] = simResultToJson(outcome.result);
    wire["stats"] = flatStatsToJson(outcome.stats);
    wire["groups"] = outcome.statTree;
    return wire;
}

JobOutcome
outcomeFromWire(const JsonValue &wire, const ExperimentSpec &spec,
                std::size_t index)
{
    JobOutcome out;
    out.index = index;
    out.spec = spec;
    if (const JsonValue *v = wire.get("ok"))
        out.ok = v->asBool();
    if (const JsonValue *v = wire.get("attempts"))
        out.attempts = static_cast<unsigned>(v->asNumber());
    if (const JsonValue *v = wire.get("error"))
        out.error = v->asString();
    if (const JsonValue *v = wire.get("wallMs"))
        out.wallMs = v->asNumber();
    if (const JsonValue *v = wire.get("result"))
        out.result = simResultFromJson(*v);
    if (const JsonValue *v = wire.get("stats"))
        for (const auto &[key, value] : v->members())
            out.stats[key] = value.asNumber();
    if (const JsonValue *v = wire.get("groups"))
        out.statTree = *v;
    return out;
}

std::uint64_t
gridFingerprint(const std::vector<ExperimentSpec> &jobs)
{
    std::uint64_t h = 1469598103934665603ULL; // FNV offset basis
    for (const ExperimentSpec &spec : jobs) {
        h = fnv1a(h, spec.id());
        const std::uint64_t ops = spec.ops;
        const std::uint64_t cores = spec.cores;
        const std::uint64_t pinned = spec.pinnedRetryInterval;
        h = fnv1a(h, &ops, sizeof(ops));
        h = fnv1a(h, &cores, sizeof(cores));
        h = fnv1a(h, &pinned, sizeof(pinned));
        h = fnv1a(h, spec.traceFile);
    }
    return h;
}

// ---------------------------------------------------------------------
// SweepJournal
// ---------------------------------------------------------------------

SweepJournal::~SweepJournal()
{
    close();
}

void
SweepJournal::open(const std::string &path, const JournalHeader &header,
                   bool fresh)
{
    close();
    int flags = O_CREAT | O_WRONLY | O_APPEND;
    if (fresh)
        flags |= O_TRUNC;
    _fd = ::open(path.c_str(), flags, 0644);
    if (_fd < 0)
        fatal("cannot open journal ", path, ": ",
              std::strerror(errno));
    _path = path;

    const off_t size = ::lseek(_fd, 0, SEEK_END);
    if (size == 0) {
        JsonValue hdr = JsonValue::object();
        hdr["persimJournal"] = JsonValue(1);
        hdr["sweep"] = JsonValue(header.sweep);
        hdr["jobCount"] = JsonValue(header.jobCount);
        char hash[32];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(header.gridHash));
        hdr["gridHash"] = JsonValue(std::string(hash));
        const std::string line = hdr.dump(0) + "\n";
        if (!writeAll(_fd, line.data(), line.size()) ||
            ::fsync(_fd) != 0)
            fatal("cannot write journal header to ", path, ": ",
                  std::strerror(errno));
    }
}

void
SweepJournal::append(const JobOutcome &outcome)
{
    if (_fd < 0)
        return;
    // One line, one write(2), one fsync: the entry is durable before
    // the runner reports the job done, and concurrent appends from
    // worker threads cannot interleave bytes (O_APPEND).
    const std::string line = outcomeToWire(outcome).dump(0) + "\n";
    std::lock_guard<std::mutex> lock(_mutex);
    if (!writeAll(_fd, line.data(), line.size()))
        fatal("cannot append to journal ", _path, ": ",
              std::strerror(errno));
    if (::fsync(_fd) != 0)
        fatal("cannot fsync journal ", _path, ": ",
              std::strerror(errno));
}

void
SweepJournal::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

// ---------------------------------------------------------------------
// loadJournal / merge
// ---------------------------------------------------------------------

JournalContents
loadJournal(const std::string &path)
{
    JournalContents out;
    std::ifstream in(path);
    if (!in)
        return out;
    out.exists = true;

    std::string line;
    bool first = true;
    std::map<std::string, std::size_t> seen; // id -> entries index
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonValue v;
        try {
            v = JsonValue::parse(line);
        } catch (const std::exception &) {
            // A torn line: the process died mid-append. Anything this
            // line would have recorded simply re-runs on resume.
            ++out.dropped;
            continue;
        }
        if (first) {
            first = false;
            const JsonValue *magic = v.get("persimJournal");
            const JsonValue *sweep = v.get("sweep");
            const JsonValue *count = v.get("jobCount");
            const JsonValue *hash = v.get("gridHash");
            if (!magic || !sweep || !count || !hash)
                continue; // headerOk stays false
            out.headerOk = true;
            out.header.sweep = sweep->asString();
            out.header.jobCount =
                static_cast<std::size_t>(count->asNumber());
            out.header.gridHash = std::strtoull(
                hash->asString().c_str(), nullptr, 16);
            continue;
        }
        const JsonValue *id = v.get("id");
        if (!id) {
            ++out.dropped;
            continue;
        }
        const auto [it, inserted] =
            seen.try_emplace(id->asString(), out.entries.size());
        if (inserted) {
            out.entries.emplace_back(id->asString(), std::move(v));
        } else {
            ++out.duplicates;
            out.entries[it->second].second = std::move(v);
        }
    }
    return out;
}

std::vector<JobOutcome>
mergeResumedOutcomes(
    const Sweep &fullSweep,
    const std::vector<std::pair<std::string, JsonValue>> &entries,
    std::vector<JobOutcome> fresh)
{
    std::map<std::string, const JsonValue *> journaled;
    for (const auto &[id, wire] : entries)
        journaled[id] = &wire;
    std::map<std::string, JobOutcome *> ran;
    for (JobOutcome &o : fresh)
        ran[o.spec.id()] = &o;

    std::vector<JobOutcome> merged;
    merged.reserve(fullSweep.jobs.size());
    for (std::size_t i = 0; i < fullSweep.jobs.size(); ++i) {
        const ExperimentSpec &spec = fullSweep.jobs[i];
        const std::string id = spec.id();
        // A cell both journaled and re-run keeps the fresh outcome
        // (it only re-ran because the caller chose to re-run it).
        if (auto it = ran.find(id); it != ran.end()) {
            JobOutcome o = std::move(*it->second);
            o.index = i;
            merged.push_back(std::move(o));
            continue;
        }
        if (auto it = journaled.find(id); it != journaled.end()) {
            merged.push_back(outcomeFromWire(*it->second, spec, i));
            continue;
        }
        fatal("resume merge: cell '", id,
              "' is neither journaled nor freshly run");
    }
    return merged;
}

// ---------------------------------------------------------------------
// writeFileAtomic
// ---------------------------------------------------------------------

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
        fatal("cannot write ", tmp, ": ", std::strerror(errno));
    if (!writeAll(fd, content.data(), content.size()) ||
        ::fsync(fd) != 0) {
        ::close(fd);
        fatal("cannot write ", tmp, ": ", std::strerror(errno));
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename ", tmp, " to ", path, ": ",
              std::strerror(errno));

    // Make the rename itself durable.
    std::string dir = path;
    const std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

} // namespace persim::exp
