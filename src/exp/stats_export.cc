#include "exp/stats_export.hh"

#include <type_traits>

#include "prof/phase.hh"

namespace persim::exp
{

JsonValue
distributionToJson(const Distribution &d)
{
    JsonValue out = JsonValue::object();
    out["count"] = JsonValue(d.count());
    out["mean"] = JsonValue(d.mean());
    out["stdev"] = JsonValue(d.stdev());
    out["min"] = JsonValue(d.min());
    out["max"] = JsonValue(d.max());
    out["sum"] = JsonValue(d.sum());
    out["p50"] = JsonValue(d.p50());
    out["p95"] = JsonValue(d.p95());
    out["p99"] = JsonValue(d.p99());
    return out;
}

JsonValue
statGroupsToJson(const std::vector<const StatGroup *> &groups)
{
    prof::ScopedPhase profPhase(prof::Phase::StatExport);
    JsonValue out = JsonValue::object();
    for (const StatGroup *g : groups) {
        JsonValue &entry = out[g->name()];
        entry = JsonValue::object();
        JsonValue scalars = JsonValue::object();
        for (const Scalar *s : g->scalars())
            scalars[s->name()] = JsonValue(s->value());
        JsonValue dists = JsonValue::object();
        for (const Distribution *d : g->distributions())
            dists[d->name()] = distributionToJson(*d);
        entry["scalars"] = std::move(scalars);
        entry["distributions"] = std::move(dists);
    }
    return out;
}

JsonValue
flatStatsToJson(const std::map<std::string, double> &stats)
{
    JsonValue out = JsonValue::object();
    for (const auto &[k, v] : stats)
        out[k] = JsonValue(v);
    return out;
}

JsonValue
simResultToJson(const model::SimResult &res)
{
    JsonValue out = JsonValue::object();
    out["completed"] = JsonValue(res.completed);
    out["deadlocked"] = JsonValue(res.deadlocked);
    out["timedOut"] = JsonValue(res.timedOut);
    out["execTicks"] = JsonValue(res.execTicks);
    out["drainTicks"] = JsonValue(res.drainTicks);
    out["events"] = JsonValue(res.events);
    out["transactions"] = JsonValue(res.transactions);
    out["throughput"] = JsonValue(res.throughput());
    JsonValue viol = JsonValue::array();
    for (const std::string &v : res.violations)
        viol.push(JsonValue(v));
    out["violations"] = std::move(viol);
    return out;
}

model::SimResult
simResultFromJson(const JsonValue &j)
{
    model::SimResult res;
    auto boolAt = [&](const char *key, bool &out) {
        if (const JsonValue *v = j.get(key))
            out = v->asBool();
    };
    auto u64At = [&](const char *key, auto &out) {
        if (const JsonValue *v = j.get(key))
            out = static_cast<std::remove_reference_t<decltype(out)>>(
                v->asNumber());
    };
    boolAt("completed", res.completed);
    boolAt("deadlocked", res.deadlocked);
    boolAt("timedOut", res.timedOut);
    u64At("execTicks", res.execTicks);
    u64At("drainTicks", res.drainTicks);
    u64At("events", res.events);
    u64At("transactions", res.transactions);
    if (const JsonValue *viol = j.get("violations"))
        for (std::size_t i = 0; i < viol->size(); ++i)
            res.violations.push_back(viol->at(i).asString());
    return res;
}

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeCsv(std::ostream &os, const std::vector<std::string> &header,
         const std::vector<std::vector<std::string>> &rows)
{
    auto writeRow = [&os](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ',';
            os << csvField(row[i]);
        }
        os << '\n';
    };
    writeRow(header);
    for (const auto &row : rows)
        writeRow(row);
}

} // namespace persim::exp
