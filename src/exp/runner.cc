#include "exp/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include <signal.h>

#include "exp/fault.hh"
#include "exp/journal.hh"
#include "exp/sandbox.hh"
#include "exp/stats_export.hh"
#include "prof/hw_counters.hh"
#include "prof/phase.hh"
#include "prof/sampler.hh"
#include "sim/logging.hh"
#include "workload/trace/trace_capture.hh"

namespace persim::exp
{

namespace
{

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Backoff before the @p retryIdx'th retry (1-based):
 * min(base << (retryIdx - 1), cap) ms, 0 when backoff is disabled.
 */
unsigned
backoffDelayMs(unsigned base, unsigned cap, unsigned retryIdx)
{
    if (base == 0 || retryIdx == 0)
        return 0;
    const unsigned shift = std::min(retryIdx - 1, 20u);
    const std::uint64_t delay = static_cast<std::uint64_t>(base)
                                << shift;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(delay, cap ? cap : delay));
}

} // namespace

JsonValue
JobOutcome::toJson(bool includeStats) const
{
    JsonValue out = JsonValue::object();
    out["id"] = JsonValue(spec.id());
    out["spec"] = spec.toJson();
    out["ok"] = JsonValue(ok);
    out["attempts"] = JsonValue(attempts);
    if (!ok)
        out["error"] = JsonValue(error);
    out["result"] = simResultToJson(result);
    if (includeStats)
        out["groups"] = statTree;
    return out;
}

JobOutcome
runJob(const ExperimentSpec &spec, const JobControl &ctl)
{
    JobOutcome out;
    out.spec = spec;
    const unsigned maxAttempts = ctl.maxAttempts ? ctl.maxAttempts : 1;

    for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
        out.attempts = attempt;
        if (attempt > 1) {
            // Bounded exponential backoff before each retry; an
            // immediate re-attempt just re-hits whatever transient
            // host condition (OOM pressure, fd exhaustion) failed the
            // last one.
            const unsigned delay = backoffDelayMs(
                ctl.backoffBaseMs, ctl.backoffCapMs, attempt - 1);
            if (delay)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
        }
        // onAttempt fires after the backoff sleep so the watchdog
        // deadline measures simulation time, not backoff time.
        if (ctl.onAttempt)
            ctl.onAttempt(attempt);
        if (ctl.cancel)
            ctl.cancel->store(false, std::memory_order_relaxed);
        out.timedOut = false;
        const auto start = std::chrono::steady_clock::now();
        try {
            fault::maybeInject(ctl.index, ctl.cancel);
            model::SystemConfig cfg = spec.toSystemConfig();
            if (ctl.tweak)
                ctl.tweak(cfg);
            model::System sys(cfg);
            sys.setCancelFlag(ctl.cancel);
            std::shared_ptr<workload::trace::TraceCaptureWriter>
                capture;
            auto workloads = spec.buildWorkloads(&capture);
            for (unsigned t = 0; t < cfg.numCores; ++t)
                sys.setWorkload(static_cast<CoreId>(t),
                                std::move(workloads[t]));
            out.result = sys.run();
            {
                prof::ScopedPhase profPhase(prof::Phase::StatExport);
                out.stats = sys.stats();
                out.statTree = statGroupsToJson(sys.statGroups());
            }
            // Captures are written only for completed runs, so a
            // retried attempt never leaves a partial trace behind.
            if (capture)
                capture->writeBinaryFile(spec.captureFile);
            out.ok = true;
            out.error.clear();
            out.wallMs = msSince(start);
            return out;
        } catch (const SimCancelled &) {
            // Watchdog deadline. Retried like any failure (a deadline
            // miss can be host pressure, not just a real hang); the
            // per-attempt cancel-flag reset above re-arms the clock.
            out.ok = false;
            out.timedOut = true;
            out.error = "timeout";
            out.wallMs = msSince(start);
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
            out.wallMs = msSince(start);
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
            out.wallMs = msSince(start);
        }
    }
    return out;
}

JobOutcome
runJob(const ExperimentSpec &spec, unsigned maxAttempts,
       const std::function<void(model::SystemConfig &)> &tweak,
       const std::function<void(unsigned)> &onAttempt)
{
    JobControl ctl;
    ctl.maxAttempts = maxAttempts;
    ctl.tweak = tweak;
    ctl.onAttempt = onAttempt;
    return runJob(spec, ctl);
}

// ---------------------------------------------------------------------
// WorkStealingPool
// ---------------------------------------------------------------------

WorkStealingPool::WorkStealingPool(unsigned numWorkers,
                                   std::size_t numJobs)
    : _numWorkers(numWorkers ? numWorkers : 1),
      _executed(_numWorkers, 0), _steals(_numWorkers, 0)
{
    _deques.reserve(_numWorkers);
    for (unsigned w = 0; w < _numWorkers; ++w)
        _deques.push_back(std::make_unique<WorkerDeque>());
    // Deal jobs round-robin so every worker starts with a local run
    // of the grid; imbalance is fixed dynamically by stealing.
    for (std::size_t j = 0; j < numJobs; ++j)
        _deques[j % _numWorkers]->jobs.push_back(j);
}

bool
WorkStealingPool::popOwn(unsigned worker, std::size_t &out)
{
    WorkerDeque &dq = *_deques[worker];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.jobs.empty())
        return false;
    out = dq.jobs.back();
    dq.jobs.pop_back();
    return true;
}

bool
WorkStealingPool::stealFrom(unsigned victim, std::size_t &out)
{
    WorkerDeque &dq = *_deques[victim];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.jobs.empty())
        return false;
    out = dq.jobs.front();
    dq.jobs.pop_front();
    return true;
}

void
WorkStealingPool::run(
    const std::function<void(std::size_t, unsigned)> &fn)
{
    auto workerLoop = [this, &fn](unsigned worker) {
        while (true) {
            std::size_t job;
            if (popOwn(worker, job)) {
                fn(job, worker);
                ++_executed[worker];
                continue;
            }
            bool stole = false;
            for (unsigned i = 1; i < _numWorkers && !stole; ++i) {
                const unsigned victim = (worker + i) % _numWorkers;
                if (stealFrom(victim, job)) {
                    fn(job, worker);
                    ++_executed[worker];
                    ++_steals[worker];
                    stole = true;
                }
            }
            if (!stole)
                return; // every deque empty: no new work is ever added
        }
    };

    if (_numWorkers == 1) {
        workerLoop(0);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(_numWorkers);
    for (unsigned w = 0; w < _numWorkers; ++w)
        threads.emplace_back(workerLoop, w);
    for (auto &t : threads)
        t.join();
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

std::vector<JobOutcome>
SweepRunner::run(const Sweep &sweep)
{
    const std::size_t total = sweep.jobs.size();
    std::vector<JobOutcome> outcomes(total);
    _traceRecords.clear();
    _telemetry = SweepTelemetry{};

    // Which job (if any) records a trace.
    std::size_t traceIndex = SIZE_MAX;
    if (!_opts.traceFlags.empty()) {
        traceIndex = 0;
        if (!_opts.traceJobId.empty()) {
            traceIndex = SIZE_MAX;
            for (std::size_t i = 0; i < total; ++i) {
                if (sweep.jobs[i].id() == _opts.traceJobId) {
                    traceIndex = i;
                    break;
                }
            }
        }
    }

    std::atomic<std::size_t> done{0};
    std::atomic<std::uint64_t> doneEvents{0};
    std::mutex progressMutex;
    _recorder = std::make_unique<trace::Recorder>(_opts.traceFlags,
                                                  _opts.counterWindow);

    // Host-time profiling rides the whole sweep: one interval timer,
    // per-thread phase counters, and a hardware counter group around
    // each job. All of it observes the host only — the deterministic
    // sweep output cannot see whether profiling was on.
    _profile = prof::SweepProfile{};
    const bool profOn = _opts.prof;
    if (profOn)
        prof::Sampler::start(_opts.profPeriodUsec);
    std::vector<prof::PhaseCounts> jobProf(total);
    std::vector<prof::CounterReading> jobCounters(total);

    // Host-side per-job state, shared with the live monitor thread.
    std::vector<std::atomic<unsigned char>> states(total);
    for (auto &s : states)
        s.store(static_cast<unsigned char>(JobState::Queued));
    std::vector<unsigned> jobWorker(total, 0);
    std::vector<std::uint64_t> jobRssKb(total, 0);

    // Watchdog bookkeeping. attemptStartMs holds msSince(start)+1 for
    // the running attempt (0 = no attempt in flight, so the epoch
    // itself can never read as idle); cancelFlags is the cooperative
    // cancel handshake with model::System; childPids names the live
    // sandbox child (if any) so an over-deadline job can be SIGKILLed.
    std::vector<std::atomic<std::uint64_t>> attemptStartMs(total);
    std::vector<std::atomic<bool>> cancelFlags(total);
    std::vector<std::atomic<int>> childPids(total);
    for (std::size_t i = 0; i < total; ++i) {
        attemptStartMs[i].store(0);
        cancelFlags[i].store(false);
        childPids[i].store(0);
    }

    const auto start = std::chrono::steady_clock::now();

    std::atomic<bool> stopWatchdog{false};
    std::thread watchdog;
    if (_opts.jobTimeoutMs > 0) {
        watchdog = std::thread([&] {
            const std::uint64_t limit = _opts.jobTimeoutMs;
            while (!stopWatchdog.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(25));
                const std::uint64_t now =
                    static_cast<std::uint64_t>(msSince(start)) + 1;
                for (std::size_t i = 0; i < total; ++i) {
                    const std::uint64_t began =
                        attemptStartMs[i].load(
                            std::memory_order_relaxed);
                    if (began == 0 || now < began ||
                        now - began <= limit)
                        continue;
                    // Re-read before firing: if the worker moved on to
                    // a new attempt between the check and the store,
                    // cancelling now would shoot the fresh attempt.
                    if (attemptStartMs[i].load(
                            std::memory_order_relaxed) != began)
                        continue;
                    cancelFlags[i].store(true,
                                         std::memory_order_relaxed);
                    const int pid =
                        childPids[i].load(std::memory_order_relaxed);
                    if (pid > 0)
                        ::kill(static_cast<pid_t>(pid), SIGKILL);
                }
            }
        });
    }

    // The monitor only reads atomics and /proc: it cannot touch any
    // simulation state, so determinism is unaffected.
    std::atomic<bool> stopMonitor{false};
    std::thread monitor;
    if (_opts.liveProgress) {
        monitor = std::thread([&] {
            while (!stopMonitor.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    _opts.liveIntervalMs));
                std::size_t counts[kJobStateCount] = {};
                for (const auto &s : states)
                    ++counts[s.load(std::memory_order_relaxed)];
                // A sandbox child doing useful work is "running" as
                // far as a human watching progress is concerned.
                counts[static_cast<unsigned>(JobState::Running)] +=
                    counts[static_cast<unsigned>(JobState::Isolated)];
                const double elapsed = msSince(start);
                const double evPerSec =
                    elapsed > 0.0 ? static_cast<double>(
                                        doneEvents.load()) *
                                        1e3 / elapsed
                                  : 0.0;
                // Live top-phase readout: which named phase owns the
                // largest share of host samples so far.
                char profLine[64] = "";
                if (profOn) {
                    const prof::PhaseCounts pc =
                        prof::Sampler::totalCounts();
                    const std::uint64_t totalSamples = pc.total();
                    std::size_t top = 0;
                    for (std::size_t p = 1; p < prof::kPhaseCount; ++p)
                        if (pc.samples[p] > pc.samples[top])
                            top = p;
                    if (totalSamples > 0) {
                        std::snprintf(
                            profLine, sizeof(profLine),
                            " | top %s %.0f%%",
                            prof::phaseName(
                                static_cast<prof::Phase>(top)),
                            100.0 *
                                static_cast<double>(
                                    pc.samples[top]) /
                                static_cast<double>(totalSamples));
                    }
                }
                std::lock_guard<std::mutex> lock(progressMutex);
                std::fprintf(
                    stderr,
                    "  -- %zu queued, %zu running, %zu retrying, "
                    "%zu done, %zu failed, %zu timed-out | %.1f s | "
                    "%.2f Mev/s | RSS %.1f MB (peak %.1f MB)%s\n",
                    counts[static_cast<unsigned>(JobState::Queued)],
                    counts[static_cast<unsigned>(JobState::Running)],
                    counts[static_cast<unsigned>(JobState::Retrying)],
                    counts[static_cast<unsigned>(JobState::Done)],
                    counts[static_cast<unsigned>(JobState::Failed)],
                    counts[static_cast<unsigned>(JobState::TimedOut)],
                    elapsed / 1e3, evPerSec / 1e6,
                    static_cast<double>(currentRssKb()) / 1024.0,
                    static_cast<double>(peakRssKb()) / 1024.0,
                    profLine);
            }
        });
    }

    WorkStealingPool pool(_opts.jobs, total);
    pool.run([&](std::size_t index, unsigned worker) {
        const ExperimentSpec &spec = sweep.jobs[index];
        auto &state = states[index];
        state.store(static_cast<unsigned char>(JobState::Running),
                    std::memory_order_relaxed);

        // Tracing records in-process simulation events, which a
        // sandbox child cannot deliver back; --isolate sweeps run
        // untraced (persim_sweep refuses the combination up front).
        const bool tracing = !_opts.isolate && index == traceIndex;
        if (tracing)
            trace::attachRecorder(_recorder.get());

        // Per-job profiling bracket: worker threads attach lazily (the
        // block persists across this worker's jobs), and a fresh
        // counter group scopes exactly this job's hardware activity.
        prof::PhaseCounts profBefore;
        std::unique_ptr<prof::HwCounterGroup> counters;
        if (profOn) {
            prof::Sampler::attachThread();
            profBefore = prof::Sampler::threadCounts();
            counters = std::make_unique<prof::HwCounterGroup>();
            counters->start();
        }

        const unsigned maxAttempts =
            _opts.maxAttempts ? _opts.maxAttempts : 1;
        JobOutcome outcome;
        if (_opts.isolate) {
            // Sandboxed: the child runs exactly one attempt; retry,
            // backoff, and the deadline clock stay in the parent where
            // they survive any way the child can die.
            for (unsigned attempt = 1; attempt <= maxAttempts;
                 ++attempt) {
                if (attempt > 1) {
                    state.store(static_cast<unsigned char>(
                                    JobState::Retrying),
                                std::memory_order_relaxed);
                    const unsigned delay = backoffDelayMs(
                        _opts.retryBackoffMs, _opts.retryBackoffCapMs,
                        attempt - 1);
                    if (delay)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(delay));
                }
                cancelFlags[index].store(false,
                                         std::memory_order_relaxed);
                attemptStartMs[index].store(
                    static_cast<std::uint64_t>(msSince(start)) + 1,
                    std::memory_order_relaxed);
                state.store(static_cast<unsigned char>(
                                JobState::Isolated),
                            std::memory_order_relaxed);
                SandboxResult sr = runJobSandboxed(spec, index,
                                                   &childPids[index]);
                attemptStartMs[index].store(
                    0, std::memory_order_relaxed);
                outcome = std::move(sr.outcome);
                outcome.attempts = attempt;
                if (!outcome.ok &&
                    cancelFlags[index].load(
                        std::memory_order_relaxed)) {
                    // The watchdog armed this kill; report it as a
                    // timeout, not as an anonymous SIGKILL.
                    outcome.timedOut = true;
                    outcome.error = "timeout";
                }
                if (outcome.ok)
                    break;
            }
        } else {
            JobControl ctl;
            ctl.maxAttempts = maxAttempts;
            ctl.backoffBaseMs = _opts.retryBackoffMs;
            ctl.backoffCapMs = _opts.retryBackoffCapMs;
            ctl.index = index;
            ctl.cancel = &cancelFlags[index];
            ctl.onAttempt = [&](unsigned attempt) {
                if (attempt > 1)
                    state.store(static_cast<unsigned char>(
                                    JobState::Retrying),
                                std::memory_order_relaxed);
                attemptStartMs[index].store(
                    static_cast<std::uint64_t>(msSince(start)) + 1,
                    std::memory_order_relaxed);
            };
            outcome = runJob(spec, ctl);
            attemptStartMs[index].store(0, std::memory_order_relaxed);
        }

        if (profOn) {
            jobCounters[index] = counters->stop();
            jobProf[index] =
                prof::Sampler::threadCounts().minus(profBefore);
        }
        if (tracing)
            trace::detachRecorder();

        outcome.index = index;
        state.store(
            static_cast<unsigned char>(
                outcome.ok ? JobState::Done
                           : (outcome.timedOut ? JobState::TimedOut
                                               : JobState::Failed)),
            std::memory_order_relaxed);
        // Journal the cell before announcing it done: once a line is
        // fsync'd, a crash anywhere later cannot lose this result.
        if (_opts.journal && outcome.ok)
            _opts.journal->append(outcome);
        jobWorker[index] = worker;
        jobRssKb[index] = currentRssKb();
        doneEvents.fetch_add(outcome.result.events,
                             std::memory_order_relaxed);
        const std::size_t finished = done.fetch_add(1) + 1;
        if (_opts.progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            if (outcome.ok) {
                std::fprintf(stderr,
                             "  [%zu/%zu] %-28s ok    %8.3f Mcycles  "
                             "%7.0f ms  (w%u)\n",
                             finished, total, spec.id().c_str(),
                             outcome.result.execTicks / 1e6,
                             outcome.wallMs, worker);
            } else {
                std::fprintf(stderr,
                             "  [%zu/%zu] %-28s FAILED after %u "
                             "attempt(s): %s\n",
                             finished, total, spec.id().c_str(),
                             outcome.attempts, outcome.error.c_str());
            }
        }
        outcomes[index] = std::move(outcome);
    });
    if (watchdog.joinable()) {
        stopWatchdog.store(true);
        watchdog.join();
    }
    if (monitor.joinable()) {
        stopMonitor.store(true);
        monitor.join();
    }
    _wallMs = msSince(start);
    _traceRecords = _recorder->records();
    if (profOn)
        prof::Sampler::stop();

    _telemetry.sweep = sweep.name;
    _telemetry.workers = _opts.jobs ? _opts.jobs : 1;
    _telemetry.wallMs = _wallMs;
    _telemetry.peakRssKb = peakRssKb();
    _telemetry.hostCpus = hostCpuCount();
    _telemetry.loadAvg1 = loadAverage1();
    _telemetry.jobs.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        const JobOutcome &o = outcomes[i];
        JobTelemetry jt;
        jt.id = o.spec.id();
        jt.state = o.ok ? JobState::Done
                        : (o.timedOut ? JobState::TimedOut
                                      : JobState::Failed);
        jt.isolated = _opts.isolate;
        jt.exitCode = o.exitCode;
        jt.termSignal = o.termSignal;
        jt.attempts = o.attempts;
        jt.worker = jobWorker[i];
        jt.wallMs = o.wallMs;
        jt.events = o.result.events;
        jt.rssAfterKb = jobRssKb[i];
        if (profOn) {
            jt.profiled = true;
            jt.profPhases = jobProf[i];
            jt.counters = jobCounters[i];
        }
        _telemetry.jobs.push_back(std::move(jt));
    }

    if (profOn) {
        _telemetry.profiled = true;
        _telemetry.profPeriodUsec = _opts.profPeriodUsec;
        _telemetry.profPhases = prof::Sampler::totalCounts();

        _profile.sweep = sweep.name;
        _profile.periodUsec = _opts.profPeriodUsec;
        _profile.hostCpus = _telemetry.hostCpus;
        _profile.loadAvg1 = _telemetry.loadAvg1;
        _profile.phases = _telemetry.profPhases;
        _profile.unattributed = prof::Sampler::unattributedSamples();
        _profile.jobs.reserve(total);
        for (std::size_t i = 0; i < total; ++i) {
            prof::JobProfile jp;
            jp.id = outcomes[i].spec.id();
            jp.phases = jobProf[i];
            jp.counters = jobCounters[i];
            _profile.counters.add(jobCounters[i]);
            _profile.jobs.push_back(std::move(jp));
        }
        _telemetry.counters = _profile.counters;
    }
    return outcomes;
}

JsonValue
sweepToJson(const Sweep &sweep, const std::vector<JobOutcome> &outcomes,
            bool includeStats)
{
    prof::ScopedPhase profPhase(prof::Phase::StatExport);
    JsonValue out = JsonValue::object();
    out["sweep"] = JsonValue(sweep.name);
    out["jobCount"] = JsonValue(outcomes.size());
    std::size_t failed = 0;
    for (const JobOutcome &o : outcomes)
        failed += o.ok ? 0 : 1;
    out["failed"] = JsonValue(failed);
    JsonValue jobs = JsonValue::array();
    for (const JobOutcome &o : outcomes)
        jobs.push(o.toJson(includeStats));
    out["jobs"] = std::move(jobs);
    return out;
}

} // namespace persim::exp
