#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include "exp/stats_export.hh"

namespace persim::exp
{

namespace
{

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

JsonValue
JobOutcome::toJson(bool includeStats) const
{
    JsonValue out = JsonValue::object();
    out["id"] = JsonValue(spec.id());
    out["spec"] = spec.toJson();
    out["ok"] = JsonValue(ok);
    out["attempts"] = JsonValue(attempts);
    if (!ok)
        out["error"] = JsonValue(error);
    out["result"] = simResultToJson(result);
    if (includeStats)
        out["groups"] = statTree;
    return out;
}

JobOutcome
runJob(const ExperimentSpec &spec, unsigned maxAttempts,
       const std::function<void(model::SystemConfig &)> &tweak)
{
    JobOutcome out;
    out.spec = spec;
    if (maxAttempts == 0)
        maxAttempts = 1;

    for (unsigned attempt = 1; attempt <= maxAttempts; ++attempt) {
        out.attempts = attempt;
        const auto start = std::chrono::steady_clock::now();
        try {
            model::SystemConfig cfg = spec.toSystemConfig();
            if (tweak)
                tweak(cfg);
            model::System sys(cfg);
            auto workloads = spec.buildWorkloads();
            for (unsigned t = 0; t < cfg.numCores; ++t)
                sys.setWorkload(static_cast<CoreId>(t),
                                std::move(workloads[t]));
            out.result = sys.run();
            out.stats = sys.stats();
            out.statTree = statGroupsToJson(sys.statGroups());
            out.ok = true;
            out.error.clear();
            out.wallMs = msSince(start);
            return out;
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
            out.wallMs = msSince(start);
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
            out.wallMs = msSince(start);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// WorkStealingPool
// ---------------------------------------------------------------------

WorkStealingPool::WorkStealingPool(unsigned numWorkers,
                                   std::size_t numJobs)
    : _numWorkers(numWorkers ? numWorkers : 1),
      _executed(_numWorkers, 0), _steals(_numWorkers, 0)
{
    _deques.reserve(_numWorkers);
    for (unsigned w = 0; w < _numWorkers; ++w)
        _deques.push_back(std::make_unique<WorkerDeque>());
    // Deal jobs round-robin so every worker starts with a local run
    // of the grid; imbalance is fixed dynamically by stealing.
    for (std::size_t j = 0; j < numJobs; ++j)
        _deques[j % _numWorkers]->jobs.push_back(j);
}

bool
WorkStealingPool::popOwn(unsigned worker, std::size_t &out)
{
    WorkerDeque &dq = *_deques[worker];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.jobs.empty())
        return false;
    out = dq.jobs.back();
    dq.jobs.pop_back();
    return true;
}

bool
WorkStealingPool::stealFrom(unsigned victim, std::size_t &out)
{
    WorkerDeque &dq = *_deques[victim];
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.jobs.empty())
        return false;
    out = dq.jobs.front();
    dq.jobs.pop_front();
    return true;
}

void
WorkStealingPool::run(
    const std::function<void(std::size_t, unsigned)> &fn)
{
    auto workerLoop = [this, &fn](unsigned worker) {
        while (true) {
            std::size_t job;
            if (popOwn(worker, job)) {
                fn(job, worker);
                ++_executed[worker];
                continue;
            }
            bool stole = false;
            for (unsigned i = 1; i < _numWorkers && !stole; ++i) {
                const unsigned victim = (worker + i) % _numWorkers;
                if (stealFrom(victim, job)) {
                    fn(job, worker);
                    ++_executed[worker];
                    ++_steals[worker];
                    stole = true;
                }
            }
            if (!stole)
                return; // every deque empty: no new work is ever added
        }
    };

    if (_numWorkers == 1) {
        workerLoop(0);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(_numWorkers);
    for (unsigned w = 0; w < _numWorkers; ++w)
        threads.emplace_back(workerLoop, w);
    for (auto &t : threads)
        t.join();
}

// ---------------------------------------------------------------------
// SweepRunner
// ---------------------------------------------------------------------

std::vector<JobOutcome>
SweepRunner::run(const Sweep &sweep)
{
    const std::size_t total = sweep.jobs.size();
    std::vector<JobOutcome> outcomes(total);
    _traceRecords.clear();

    // Which job (if any) records a trace.
    std::size_t traceIndex = SIZE_MAX;
    if (!_opts.traceFlags.empty()) {
        traceIndex = 0;
        if (!_opts.traceJobId.empty()) {
            traceIndex = SIZE_MAX;
            for (std::size_t i = 0; i < total; ++i) {
                if (sweep.jobs[i].id() == _opts.traceJobId) {
                    traceIndex = i;
                    break;
                }
            }
        }
    }

    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;
    trace::Recorder recorder(_opts.traceFlags);

    const auto start = std::chrono::steady_clock::now();
    WorkStealingPool pool(_opts.jobs, total);
    pool.run([&](std::size_t index, unsigned worker) {
        const ExperimentSpec &spec = sweep.jobs[index];

        const bool tracing = index == traceIndex;
        if (tracing)
            trace::attachRecorder(&recorder);
        JobOutcome outcome = runJob(spec, _opts.maxAttempts);
        if (tracing)
            trace::detachRecorder();

        outcome.index = index;
        const std::size_t finished = done.fetch_add(1) + 1;
        if (_opts.progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            if (outcome.ok) {
                std::fprintf(stderr,
                             "  [%zu/%zu] %-28s ok    %8.3f Mcycles  "
                             "%7.0f ms  (w%u)\n",
                             finished, total, spec.id().c_str(),
                             outcome.result.execTicks / 1e6,
                             outcome.wallMs, worker);
            } else {
                std::fprintf(stderr,
                             "  [%zu/%zu] %-28s FAILED after %u "
                             "attempt(s): %s\n",
                             finished, total, spec.id().c_str(),
                             outcome.attempts, outcome.error.c_str());
            }
        }
        outcomes[index] = std::move(outcome);
    });
    _wallMs = msSince(start);
    _traceRecords = recorder.records();
    return outcomes;
}

JsonValue
sweepToJson(const Sweep &sweep, const std::vector<JobOutcome> &outcomes,
            bool includeStats)
{
    JsonValue out = JsonValue::object();
    out["sweep"] = JsonValue(sweep.name);
    out["jobCount"] = JsonValue(outcomes.size());
    std::size_t failed = 0;
    for (const JobOutcome &o : outcomes)
        failed += o.ok ? 0 : 1;
    out["failed"] = JsonValue(failed);
    JsonValue jobs = JsonValue::array();
    for (const JobOutcome &o : outcomes)
        jobs.push(o.toJson(includeStats));
    out["jobs"] = std::move(jobs);
    return out;
}

} // namespace persim::exp
