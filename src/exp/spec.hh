/**
 * @file
 * Experiment specification and sweep expansion.
 *
 * An ExperimentSpec is one fully-determined simulation cell: workload,
 * persistency model, barrier variant, epoch size, core count, run
 * length, and seed. It is a plain value — serializable, hashable into
 * an id, and independently runnable — so a sweep is nothing more than a
 * vector of specs, and any subset can run on any thread in any order
 * without changing the results.
 *
 * figureSweep() expands the exact config grids of the paper's
 * Figures 11-14, so the bench binaries, the persim_sweep driver, and
 * the tests all share one definition of each figure.
 */

#ifndef PERSIM_EXP_SPEC_HH
#define PERSIM_EXP_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/workload_iface.hh"
#include "exp/json.hh"
#include "model/system_config.hh"

namespace persim::workload::trace
{
class TraceCaptureWriter;
} // namespace persim::workload::trace

namespace persim::exp
{

/** One fully-determined simulation cell. */
struct ExperimentSpec
{
    /** Sweep label, e.g. "fig11". */
    std::string sweep;

    /** Micro name (hash, queue, ...) or synthetic preset (canneal...). */
    std::string workload = "hash";

    /** Column label in the figure, e.g. "LB++", "LB1K", "NP". */
    std::string configLabel;

    model::PersistencyModel pm = model::PersistencyModel::BufferedEpoch;
    persist::BarrierKind barrier = persist::BarrierKind::LBPP;

    /** BSP hardware epoch size in dynamic stores. */
    unsigned epochSize = 10000;

    /** BSP undo logging (false models the LB++NOLOG ablation). */
    bool logging = true;

    unsigned cores = 32;
    std::uint64_t ops = 300;
    std::uint64_t seed = 1;

    /**
     * Backoff (cycles) before an LLC miss re-scans for a victim when
     * every way of its set is pinned; see
     * LlcBankConfig::pinnedRetryInterval. The default matches the
     * historical hardcoded value, so figure outputs are unchanged
     * unless a sweep overrides it.
     */
    Tick pinnedRetryInterval = kDefaultPinnedRetryInterval;

    static constexpr Tick kDefaultPinnedRetryInterval = 8;

    /**
     * When non-empty, the cell's cores replay this trace file (binary
     * or text) instead of executing `workload`. Host-path state: never
     * serialized into toJson(), so a replay run's figure output is
     * comparable byte for byte with a direct run of the captured
     * workload.
     */
    std::string traceFile;

    /**
     * When non-empty, the run is captured and the trace written here
     * after the simulation completes. Also host-path state, excluded
     * from toJson(); capture wraps the workloads without perturbing
     * them, so the run's own output is unchanged.
     */
    std::string captureFile;

    /** True when workload names a Table 2 micro-benchmark. */
    bool isMicro() const;

    /** Unique, filesystem-friendly id: "<workload>/<config>/s<seed>". */
    std::string id() const;

    /** Build the Table-1 (or scaled-down) SystemConfig for this cell. */
    model::SystemConfig toSystemConfig() const;

    /**
     * Build one workload per core (replay workloads when traceFile is
     * set). If @p capture is non-null and captureFile is set, the
     * workloads are wrapped for capture and the shared writer is
     * returned through @p capture; the caller writes captureFile once
     * the run finishes (see runJob).
     */
    std::vector<std::unique_ptr<cpu::Workload>> buildWorkloads(
        std::shared_ptr<workload::trace::TraceCaptureWriter> *capture =
            nullptr) const;

    JsonValue toJson() const;
};

/** An ordered set of independent jobs. */
struct Sweep
{
    std::string name;
    std::vector<ExperimentSpec> jobs;

    /**
     * Cross the current job list with @p seeds: every job is repeated
     * once per seed, each with a distinct deterministic seed derived
     * from its base seed and the entry in @p seeds.
     */
    void crossSeeds(const std::vector<std::uint64_t> &seeds);

    /**
     * Keep only shard @p index (1-based) of @p count round-robin
     * shards: job j survives iff j % count == index - 1. Applied after
     * any grid expansion, the partition is deterministic, disjoint, and
     * exhaustive, so N processes running --shard 1/N .. N/N cover the
     * grid exactly once and their outputs can be merged (see
     * tools/README.md for the jq recipe). Round-robin (not block)
     * assignment spreads each workload row's expensive cells across
     * shards. No-op when count <= 1.
     */
    void shard(unsigned index, unsigned count);
};

/**
 * The full config grid of paper figure @p figure (11, 12, 13 or 14).
 *
 * @param ops   Operations per thread; 0 picks the figure's default
 *              (300 for the micro figures, 20000 for the BSP ones).
 * @param cores Core count (32 reproduces Table 1).
 * @param seed  Base workload seed.
 */
Sweep figureSweep(int figure, std::uint64_t ops = 0, unsigned cores = 32,
                  std::uint64_t seed = 1);

/** The figures figureSweep() understands. */
const std::vector<int> &knownFigures();

/** Deterministic seed mixing (splitmix64) for derived per-job seeds. */
std::uint64_t mixSeed(std::uint64_t base, std::uint64_t salt);

} // namespace persim::exp

#endif // PERSIM_EXP_SPEC_HH
