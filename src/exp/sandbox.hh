/**
 * @file
 * Process isolation for sweep jobs.
 *
 * Exceptions cover misconfiguration; they do not cover a segfault, an
 * abort(), or the OOM killer. With RunnerOptions::isolate each job
 * attempt forks into a sandbox child that runs the simulation and
 * streams its JobOutcome back over a pipe as one compact JSON
 * document (the same wire format the journal uses), then _exit()s
 * without running static destructors. The parent reads to EOF, reaps
 * the child, and classifies the result:
 *
 *   - document delivered  -> the child's outcome, verbatim (its sweep
 *     JSON is byte-identical to an in-process run);
 *   - killed by a signal  -> failed outcome naming the signal
 *     ("signal: SIGSEGV"); the watchdog's SIGKILL is reported as
 *     "timeout" by the runner, which knows it armed the kill;
 *   - exited without a document -> failed outcome naming the status.
 *
 * The child inherits PERSIM_FAULT, so injected segv/abort/hang faults
 * land inside the sandbox — which is exactly how CI proves a crash
 * costs one cell, not the sweep.
 */

#ifndef PERSIM_EXP_SANDBOX_HH
#define PERSIM_EXP_SANDBOX_HH

#include <atomic>
#include <cstddef>

#include "exp/runner.hh"
#include "exp/spec.hh"

namespace persim::exp
{

/** What came back from one sandboxed attempt. */
struct SandboxResult
{
    /** Fully-populated outcome (failed when the child crashed). */
    JobOutcome outcome;

    /** The child died without delivering an outcome document. */
    bool childCrashed = false;
};

/**
 * Run one attempt of @p spec in a forked child.
 *
 * @param gridIndex Grid index, forwarded for PERSIM_FAULT injection.
 * @param childPid  Published (> 0) while the child is alive so the
 *                  watchdog can SIGKILL an over-deadline job; reset
 *                  to 0 before returning. May be nullptr.
 */
SandboxResult runJobSandboxed(const ExperimentSpec &spec,
                              std::size_t gridIndex,
                              std::atomic<int> *childPid);

/** Stable name for a signal number: "SIGSEGV", else "SIG<n>". */
const char *signalName(int sig);

} // namespace persim::exp

#endif // PERSIM_EXP_SANDBOX_HH
