/**
 * @file
 * Chrome-tracing (Perfetto) export of captured simulator trace events.
 *
 * Records captured by a trace::Recorder become a JSON document in the
 * Chrome trace-event format: open it at chrome://tracing or
 * https://ui.perfetto.dev. Each simulated component ("persist.arbiter3",
 * "l1[0]", ...) becomes its own named track; every trace event becomes
 * an instant event at its simulated tick (rendered as microseconds, so
 * 1 us on the timeline = 1 core cycle).
 */

#ifndef PERSIM_EXP_TRACE_EXPORT_HH
#define PERSIM_EXP_TRACE_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace persim::exp
{

/**
 * Write @p records as a complete Chrome trace-event JSON document.
 *
 * @param processName Shown as the process label in the UI (use the
 *                    job id, e.g. "fig11/hash/LB++").
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<trace::Record> &records,
                      const std::string &processName);

} // namespace persim::exp

#endif // PERSIM_EXP_TRACE_EXPORT_HH
