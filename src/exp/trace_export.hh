/**
 * @file
 * Chrome-tracing (Perfetto) export of captured simulator trace events.
 *
 * Everything captured by a trace::Recorder becomes a JSON document in
 * the Chrome trace-event format: open it at chrome://tracing or
 * https://ui.perfetto.dev. Each simulated component
 * ("persist.arbiter[3]", "l1[0]", ...) becomes its own named track;
 * ticks render as microseconds, so 1 us on the timeline = 1 core cycle.
 *
 * Three event classes are emitted:
 *  - instant events (ph:"i") for plain tracef records;
 *  - duration spans (ph:"B"/"E", or ph:"X" when zero-length) for epoch
 *    lifecycles, flush drains, MSHR busy episodes, core execution, and
 *    NVM write-queue residency — Chrome requires B/E to nest per track,
 *    so overlapping spans of one component (concurrent epochs!) are
 *    splayed onto greedily-allocated lanes ("persist.arbiter[0]",
 *    "persist.arbiter[0] #2", ...); the lanes sit side by side and the
 *    overlap reads directly off the UI;
 *  - counter tracks (ph:"C") for the interval-stat samples (IPC,
 *    epochs in flight, queue depths, link utilization).
 */

#ifndef PERSIM_EXP_TRACE_EXPORT_HH
#define PERSIM_EXP_TRACE_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace persim::exp
{

/**
 * Write everything captured by @p rec (instants, duration spans,
 * counter samples) as a complete Chrome trace-event JSON document.
 *
 * @param processName Shown as the process label in the UI (use the
 *                    job id, e.g. "fig11/hash/LB++").
 */
void writeChromeTrace(std::ostream &os, const trace::Recorder &rec,
                      const std::string &processName);

/**
 * Instants-only overload kept for callers that hold a bare record
 * vector (no spans or counters).
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<trace::Record> &records,
                      const std::string &processName);

/**
 * Write counter samples as a CSV time series: one "tick" column plus
 * one column per counter track (first-appearance order), one row per
 * sample tick. Cells are blank for tracks without a sample at a tick.
 */
void writeCounterCsv(std::ostream &os,
                     const std::vector<trace::Counter> &counters);

} // namespace persim::exp

#endif // PERSIM_EXP_TRACE_EXPORT_HH
