/**
 * @file
 * Parallel sweep execution.
 *
 * Every Persimmon System is single-threaded and deterministic, so a
 * sweep is embarrassingly parallel: the runner hands each job its own
 * System on one worker thread and collects results by job index. The
 * output is therefore byte-identical no matter how many workers run it
 * or how the jobs interleave.
 *
 * Scheduling is work-stealing: jobs are dealt round-robin into
 * per-worker deques; a worker pops from the back of its own deque and,
 * when empty, steals from the front of a victim's. Simulated cells vary
 * wildly in cost (a 10K-epoch BSP run is orders of magnitude longer
 * than an NP baseline), so stealing — not static partitioning — is
 * what keeps all cores busy until the tail.
 *
 * Jobs are isolated: an exception inside one job (bad config, panic,
 * bug) is caught, retried up to maxAttempts times, and recorded as a
 * failed outcome; it never takes down the sweep.
 */

#ifndef PERSIM_EXP_RUNNER_HH
#define PERSIM_EXP_RUNNER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "exp/spec.hh"
#include "exp/telemetry.hh"
#include "model/system.hh"
#include "prof/profile.hh"
#include "sim/trace.hh"

namespace persim::exp
{

/** Result of running one ExperimentSpec (successfully or not). */
struct JobOutcome
{
    std::size_t index = 0;
    ExperimentSpec spec;

    /** The job ran to the end without throwing. */
    bool ok = false;

    /** Attempts used (> 1 means at least one retry happened). */
    unsigned attempts = 0;

    /** Exception text of the last failed attempt (failed jobs only). */
    std::string error;

    model::SimResult result;
    std::map<std::string, double> stats;

    /** Structured StatGroup tree (statGroupsToJson). */
    JsonValue statTree;

    /**
     * Host wall-clock of the last attempt, milliseconds. Never included
     * in toJson(): deterministic output must not depend on the host.
     */
    double wallMs = 0.0;

    /** Deterministic serialization (spec, status, result, stats). */
    JsonValue toJson(bool includeStats = true) const;
};

/**
 * Run one job synchronously on the calling thread.
 *
 * @param tweak Optional config hook applied after the spec's own
 *              SystemConfig is built (ablation benches use this).
 * @param onAttempt Optional observer called at the start of every
 *                  attempt (1-based); telemetry flips a job to
 *                  "retrying" from attempt 2 on.
 */
JobOutcome runJob(const ExperimentSpec &spec, unsigned maxAttempts = 1,
                  const std::function<void(model::SystemConfig &)> &tweak =
                      {},
                  const std::function<void(unsigned)> &onAttempt = {});

/**
 * Generic work-stealing index pool: runs fn(jobIndex) for every index
 * in [0, numJobs) across numWorkers threads. Exposed for tests; the
 * deques are mutex-guarded (contention is negligible next to the
 * milliseconds-to-minutes cost of one simulation job).
 */
class WorkStealingPool
{
  public:
    WorkStealingPool(unsigned numWorkers, std::size_t numJobs);

    /** Run all jobs; returns when every index has been executed. */
    void run(const std::function<void(std::size_t jobIndex,
                                      unsigned workerId)> &fn);

    /** Jobs executed by each worker (after run(); for tests/telemetry). */
    const std::vector<std::uint64_t> &executedPerWorker() const
    {
        return _executed;
    }

    /** Successful steals per worker (after run()). */
    const std::vector<std::uint64_t> &stealsPerWorker() const
    {
        return _steals;
    }

  private:
    struct WorkerDeque
    {
        std::mutex mutex;
        std::deque<std::size_t> jobs;
    };

    bool popOwn(unsigned worker, std::size_t &out);
    bool stealFrom(unsigned victim, std::size_t &out);

    unsigned _numWorkers;
    std::vector<std::unique_ptr<WorkerDeque>> _deques;
    std::vector<std::uint64_t> _executed;
    std::vector<std::uint64_t> _steals;
};

/** Sweep execution options. */
struct RunnerOptions
{
    /** Worker threads (1 = serial). */
    unsigned jobs = 1;

    /** Attempts per job (>= 1; retries happen only after exceptions). */
    unsigned maxAttempts = 2;

    /** Print "[done/total] id status" lines to stderr as jobs finish. */
    bool progress = true;

    /**
     * When non-empty: capture this trace-flag set ("Epoch,Flush" or
     * "all") for the job whose spec id matches traceJobId (or the first
     * job when traceJobId is empty). Recorded events are available from
     * traceRecords() after run().
     */
    std::string traceFlags;
    std::string traceJobId;

    /**
     * Interval-stat sampling window (ticks) for the traced job; 0
     * disables the windowed sampler. Only meaningful with traceFlags
     * (the sampler hangs off the attached Recorder).
     */
    Tick counterWindow = 0;

    /**
     * Live telemetry: print a periodic one-line state summary
     * (queued/running/retrying/done/failed counts, events/sec, RSS) to
     * stderr while the sweep runs, in addition to per-job progress.
     */
    bool liveProgress = false;

    /** Milliseconds between live telemetry lines. */
    unsigned liveIntervalMs = 2000;

    /**
     * Host-time profiling: arm the SIGPROF phase sampler for the whole
     * sweep and open a hardware counter group around every job. The
     * breakdown lands in telemetry() and profile(); the deterministic
     * sweep JSON is untouched. Do not combine with -pg builds (gprof
     * owns ITIMER_PROF there).
     */
    bool prof = false;

    /**
     * Sampling period in microseconds of process CPU time. The
     * default is prime so the sampler cannot phase-lock with any
     * periodic simulator behavior.
     */
    unsigned profPeriodUsec = 997;
};

/** Runs a Sweep and owns the optional trace capture. */
class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opts) : _opts(std::move(opts)) {}

    /** Run every job; outcomes are ordered by job index. */
    std::vector<JobOutcome> run(const Sweep &sweep);

    /** Captured trace events (empty unless traceFlags was set). */
    const std::vector<trace::Record> &traceRecords() const
    {
        return _traceRecords;
    }

    /**
     * The full trace capture of the last run() — records, duration
     * spans, counter samples — for writeChromeTrace; nullptr before
     * run() or when traceFlags was empty.
     */
    const trace::Recorder *recorder() const { return _recorder.get(); }

    /** Host-side telemetry of the last run() (--telemetry-out). */
    const SweepTelemetry &telemetry() const { return _telemetry; }

    /**
     * Host-time profile of the last run() (--prof-out document);
     * empty unless RunnerOptions::prof was set.
     */
    const prof::SweepProfile &profile() const { return _profile; }

    /** Total wall-clock of the last run() in milliseconds. */
    double wallMs() const { return _wallMs; }

  private:
    RunnerOptions _opts;
    std::vector<trace::Record> _traceRecords;
    std::unique_ptr<trace::Recorder> _recorder;
    SweepTelemetry _telemetry;
    prof::SweepProfile _profile;
    double _wallMs = 0.0;
};

/**
 * Deterministic JSON document for a completed sweep: options-independent
 * (no worker count, no wall clock), so serial and parallel runs of the
 * same Sweep produce identical bytes.
 */
JsonValue sweepToJson(const Sweep &sweep,
                      const std::vector<JobOutcome> &outcomes,
                      bool includeStats = true);

} // namespace persim::exp

#endif // PERSIM_EXP_RUNNER_HH
