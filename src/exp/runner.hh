/**
 * @file
 * Parallel sweep execution.
 *
 * Every Persimmon System is single-threaded and deterministic, so a
 * sweep is embarrassingly parallel: the runner hands each job its own
 * System on one worker thread and collects results by job index. The
 * output is therefore byte-identical no matter how many workers run it
 * or how the jobs interleave.
 *
 * Scheduling is work-stealing: jobs are dealt round-robin into
 * per-worker deques; a worker pops from the back of its own deque and,
 * when empty, steals from the front of a victim's. Simulated cells vary
 * wildly in cost (a 10K-epoch BSP run is orders of magnitude longer
 * than an NP baseline), so stealing — not static partitioning — is
 * what keeps all cores busy until the tail.
 *
 * Jobs are isolated: an exception inside one job (bad config, panic,
 * bug) is caught, retried up to maxAttempts times with bounded
 * exponential backoff, and recorded as a failed outcome; it never
 * takes down the sweep. Two optional layers harden that guarantee
 * against faults exceptions cannot catch:
 *
 *   - Watchdog (RunnerOptions::jobTimeoutMs): a monitor thread tracks
 *     every attempt's deadline and flips a per-job cancel flag that
 *     System::run polls, so a runaway cell becomes a failed outcome
 *     (error "timeout") instead of a stuck sweep.
 *   - Sandbox isolation (RunnerOptions::isolate): each job forks into
 *     a child that streams its JobOutcome JSON back over a pipe, so a
 *     segfault/abort/OOM kills one cell (exit status and signal name
 *     recorded) instead of the whole process. The watchdog SIGKILLs
 *     over-deadline children.
 *
 * With RunnerOptions::journal set, every completed cell is appended
 * to a crash-safe journal (one fsync'd JSON line per job) so an
 * interrupted sweep can resume without re-running finished cells
 * (exp/journal.hh, persim_sweep --resume).
 */

#ifndef PERSIM_EXP_RUNNER_HH
#define PERSIM_EXP_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "exp/spec.hh"
#include "exp/telemetry.hh"
#include "model/system.hh"
#include "prof/profile.hh"
#include "sim/trace.hh"

namespace persim::exp
{

class SweepJournal;

/** Result of running one ExperimentSpec (successfully or not). */
struct JobOutcome
{
    std::size_t index = 0;
    ExperimentSpec spec;

    /** The job ran to the end without throwing. */
    bool ok = false;

    /** Attempts used (> 1 means at least one retry happened). */
    unsigned attempts = 0;

    /** Exception text of the last failed attempt (failed jobs only). */
    std::string error;

    /**
     * The last attempt was cancelled by the watchdog (error is
     * "timeout"). Never serialized on its own — the error string is
     * the deterministic record; this flag feeds telemetry's TimedOut
     * state.
     */
    bool timedOut = false;

    /**
     * Sandbox child's exit status (isolated jobs that exited; -1
     * otherwise) and terminating signal name ("SIGSEGV", "" = none).
     * Serialized only for failed jobs, so a green isolated sweep is
     * byte-identical to an in-process one.
     */
    int exitCode = -1;
    std::string termSignal;

    model::SimResult result;
    std::map<std::string, double> stats;

    /** Structured StatGroup tree (statGroupsToJson). */
    JsonValue statTree;

    /**
     * Host wall-clock of the last attempt, milliseconds. Never included
     * in toJson(): deterministic output must not depend on the host.
     */
    double wallMs = 0.0;

    /** Deterministic serialization (spec, status, result, stats). */
    JsonValue toJson(bool includeStats = true) const;
};

/** Per-job execution controls for runJob (all optional). */
struct JobControl
{
    /** Attempts (>= 1; retries happen only after exceptions/timeouts). */
    unsigned maxAttempts = 1;

    /**
     * Backoff before retry k (k >= 1 retries already happened):
     * min(backoffBaseMs << (k - 1), backoffCapMs) milliseconds.
     * 0 disables the sleep (the historical immediate re-attempt).
     */
    unsigned backoffBaseMs = 100;
    unsigned backoffCapMs = 5000;

    /**
     * Grid index of this job, used by the PERSIM_FAULT injection hook
     * (exp/fault.hh). SIZE_MAX (default) never matches an injection.
     */
    std::size_t index = SIZE_MAX;

    /**
     * Watchdog flag: runJob clears it at the start of every attempt
     * and hands it to System::run, which throws SimCancelled once a
     * monitor sets it; the attempt is then recorded as "timeout".
     */
    std::atomic<bool> *cancel = nullptr;

    /** Config hook applied after the spec's own SystemConfig is built. */
    std::function<void(model::SystemConfig &)> tweak;

    /**
     * Observer called at the start of every attempt (1-based), after
     * any backoff sleep — so watchdog deadlines restarted here do not
     * count the backoff against the job.
     */
    std::function<void(unsigned)> onAttempt;
};

/** Run one job synchronously on the calling thread. */
JobOutcome runJob(const ExperimentSpec &spec, const JobControl &ctl);

/**
 * Legacy convenience overload (tests, ablation benches).
 *
 * @param tweak Optional config hook applied after the spec's own
 *              SystemConfig is built (ablation benches use this).
 * @param onAttempt Optional observer called at the start of every
 *                  attempt (1-based); telemetry flips a job to
 *                  "retrying" from attempt 2 on.
 */
JobOutcome runJob(const ExperimentSpec &spec, unsigned maxAttempts = 1,
                  const std::function<void(model::SystemConfig &)> &tweak =
                      {},
                  const std::function<void(unsigned)> &onAttempt = {});

/**
 * Generic work-stealing index pool: runs fn(jobIndex) for every index
 * in [0, numJobs) across numWorkers threads. Exposed for tests; the
 * deques are mutex-guarded (contention is negligible next to the
 * milliseconds-to-minutes cost of one simulation job).
 */
class WorkStealingPool
{
  public:
    WorkStealingPool(unsigned numWorkers, std::size_t numJobs);

    /** Run all jobs; returns when every index has been executed. */
    void run(const std::function<void(std::size_t jobIndex,
                                      unsigned workerId)> &fn);

    /** Jobs executed by each worker (after run(); for tests/telemetry). */
    const std::vector<std::uint64_t> &executedPerWorker() const
    {
        return _executed;
    }

    /** Successful steals per worker (after run()). */
    const std::vector<std::uint64_t> &stealsPerWorker() const
    {
        return _steals;
    }

  private:
    struct WorkerDeque
    {
        std::mutex mutex;
        std::deque<std::size_t> jobs;
    };

    bool popOwn(unsigned worker, std::size_t &out);
    bool stealFrom(unsigned victim, std::size_t &out);

    unsigned _numWorkers;
    std::vector<std::unique_ptr<WorkerDeque>> _deques;
    std::vector<std::uint64_t> _executed;
    std::vector<std::uint64_t> _steals;
};

/** Sweep execution options. */
struct RunnerOptions
{
    /** Worker threads (1 = serial). */
    unsigned jobs = 1;

    /** Attempts per job (>= 1; retries happen only after exceptions). */
    unsigned maxAttempts = 2;

    /**
     * Bounded exponential backoff between attempts: retry k sleeps
     * min(retryBackoffMs << (k - 1), retryBackoffCapMs) ms. 0 restores
     * the historical immediate re-attempt.
     */
    unsigned retryBackoffMs = 100;
    unsigned retryBackoffCapMs = 5000;

    /**
     * Per-job wall-clock deadline in milliseconds, enforced per
     * attempt by a monitor thread; 0 disables the watchdog. A
     * timed-out attempt is recorded exactly like a thrown exception
     * (error "timeout", telemetry state "timed-out") and retried up
     * to maxAttempts. In-process enforcement is cooperative
     * (System::run polls between events); with isolate the child is
     * SIGKILLed, which also contains hangs inside a single event.
     */
    unsigned jobTimeoutMs = 0;

    /**
     * Fork every job into a sandbox child process (exp/sandbox.hh).
     * A crash (segfault, abort, OOM kill) becomes one failed cell
     * with the exit status / signal name in its outcome instead of a
     * dead sweep. Successful cells produce byte-identical sweep JSON
     * either way. Per-job tracing and profiling counters do not cross
     * the fork, so --trace/--prof readouts cover only the parent.
     */
    bool isolate = false;

    /**
     * When set, every completed (ok) job is appended to this journal
     * as one fsync'd JSON line, enabling crash-safe resume
     * (exp/journal.hh). The runner only appends; opening, validating
     * and finalizing the journal is the caller's business.
     */
    std::shared_ptr<SweepJournal> journal;

    /** Print "[done/total] id status" lines to stderr as jobs finish. */
    bool progress = true;

    /**
     * When non-empty: capture this trace-flag set ("Epoch,Flush" or
     * "all") for the job whose spec id matches traceJobId (or the first
     * job when traceJobId is empty). Recorded events are available from
     * traceRecords() after run().
     */
    std::string traceFlags;
    std::string traceJobId;

    /**
     * Interval-stat sampling window (ticks) for the traced job; 0
     * disables the windowed sampler. Only meaningful with traceFlags
     * (the sampler hangs off the attached Recorder).
     */
    Tick counterWindow = 0;

    /**
     * Live telemetry: print a periodic one-line state summary
     * (queued/running/retrying/done/failed counts, events/sec, RSS) to
     * stderr while the sweep runs, in addition to per-job progress.
     */
    bool liveProgress = false;

    /** Milliseconds between live telemetry lines. */
    unsigned liveIntervalMs = 2000;

    /**
     * Host-time profiling: arm the SIGPROF phase sampler for the whole
     * sweep and open a hardware counter group around every job. The
     * breakdown lands in telemetry() and profile(); the deterministic
     * sweep JSON is untouched. Do not combine with -pg builds (gprof
     * owns ITIMER_PROF there).
     */
    bool prof = false;

    /**
     * Sampling period in microseconds of process CPU time. The
     * default is prime so the sampler cannot phase-lock with any
     * periodic simulator behavior.
     */
    unsigned profPeriodUsec = 997;
};

/** Runs a Sweep and owns the optional trace capture. */
class SweepRunner
{
  public:
    explicit SweepRunner(RunnerOptions opts) : _opts(std::move(opts)) {}

    /** Run every job; outcomes are ordered by job index. */
    std::vector<JobOutcome> run(const Sweep &sweep);

    /** Captured trace events (empty unless traceFlags was set). */
    const std::vector<trace::Record> &traceRecords() const
    {
        return _traceRecords;
    }

    /**
     * The full trace capture of the last run() — records, duration
     * spans, counter samples — for writeChromeTrace; nullptr before
     * run() or when traceFlags was empty.
     */
    const trace::Recorder *recorder() const { return _recorder.get(); }

    /** Host-side telemetry of the last run() (--telemetry-out). */
    const SweepTelemetry &telemetry() const { return _telemetry; }

    /**
     * Host-time profile of the last run() (--prof-out document);
     * empty unless RunnerOptions::prof was set.
     */
    const prof::SweepProfile &profile() const { return _profile; }

    /** Total wall-clock of the last run() in milliseconds. */
    double wallMs() const { return _wallMs; }

  private:
    RunnerOptions _opts;
    std::vector<trace::Record> _traceRecords;
    std::unique_ptr<trace::Recorder> _recorder;
    SweepTelemetry _telemetry;
    prof::SweepProfile _profile;
    double _wallMs = 0.0;
};

/**
 * Deterministic JSON document for a completed sweep: options-independent
 * (no worker count, no wall clock), so serial and parallel runs of the
 * same Sweep produce identical bytes.
 */
JsonValue sweepToJson(const Sweep &sweep,
                      const std::vector<JobOutcome> &outcomes,
                      bool includeStats = true);

} // namespace persim::exp

#endif // PERSIM_EXP_RUNNER_HH
