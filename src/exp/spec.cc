#include "exp/spec.hh"

#include "sim/logging.hh"
#include "workload/synthetic/presets.hh"
#include "workload/trace/trace_capture.hh"
#include "workload/workload_factory.hh"

namespace persim::exp
{

namespace
{

const std::vector<persist::BarrierKind> kBepVariants = {
    persist::BarrierKind::LB,
    persist::BarrierKind::LBIDT,
    persist::BarrierKind::LBPF,
    persist::BarrierKind::LBPP,
};

} // namespace

bool
ExperimentSpec::isMicro() const
{
    for (auto k : workload::allMicroKinds()) {
        if (workload == workload::toString(k))
            return true;
    }
    return false;
}

std::string
ExperimentSpec::id() const
{
    return workload + "/" + configLabel + "/s" + std::to_string(seed);
}

model::SystemConfig
ExperimentSpec::toSystemConfig() const
{
    model::SystemConfig cfg =
        cores == 32 ? model::SystemConfig::paperTable1()
                    : model::SystemConfig::smallTest(cores);
    applyPersistencyModel(cfg, pm, barrier, epochSize);
    if (pm == model::PersistencyModel::BufferedStrict && !logging) {
        cfg.barrier.logging = false; // LB++NOLOG ablation
        cfg.barrier.checkpointLines = 0;
    }
    cfg.seed = seed;
    cfg.llcBank.pinnedRetryInterval = pinnedRetryInterval;
    return cfg;
}

std::vector<std::unique_ptr<cpu::Workload>>
ExperimentSpec::buildWorkloads(
    std::shared_ptr<workload::trace::TraceCaptureWriter> *capture) const
{
    std::vector<std::unique_ptr<cpu::Workload>> ws;
    if (!traceFile.empty()) {
        ws = workload::makeTraceReplayWorkloads(traceFile, cores);
    } else if (isMicro()) {
        workload::MicroConfig mc;
        mc.kind = workload::microKindFromName(workload);
        mc.numThreads = cores;
        mc.opsPerThread = ops;
        mc.seed = seed;
        ws = workload::makeMicroWorkloads(mc);
    } else {
        ws = workload::makeSyntheticWorkloads(workload, cores, ops,
                                              seed);
    }
    if (capture != nullptr && !captureFile.empty())
        *capture = workload::trace::wrapWithCapture(ws, workload, seed);
    return ws;
}

JsonValue
ExperimentSpec::toJson() const
{
    JsonValue out = JsonValue::object();
    out["sweep"] = JsonValue(sweep);
    out["workload"] = JsonValue(workload);
    out["config"] = JsonValue(configLabel);
    out["model"] = JsonValue(model::toString(pm));
    out["barrier"] = JsonValue(persist::toString(barrier));
    out["epochSize"] = JsonValue(epochSize);
    out["logging"] = JsonValue(logging);
    out["cores"] = JsonValue(cores);
    out["ops"] = JsonValue(ops);
    out["seed"] = JsonValue(seed);
    // Emitted only when overridden so existing golden outputs (which
    // predate the knob) stay byte-identical.
    if (pinnedRetryInterval != kDefaultPinnedRetryInterval)
        out["pinnedRetryInterval"] = JsonValue(pinnedRetryInterval);
    return out;
}

void
Sweep::crossSeeds(const std::vector<std::uint64_t> &seeds)
{
    if (seeds.size() <= 1)
        return;
    std::vector<ExperimentSpec> expanded;
    expanded.reserve(jobs.size() * seeds.size());
    for (const ExperimentSpec &base : jobs) {
        for (std::uint64_t s : seeds) {
            ExperimentSpec spec = base;
            spec.seed = mixSeed(base.seed, s);
            expanded.push_back(std::move(spec));
        }
    }
    jobs = std::move(expanded);
}

void
Sweep::shard(unsigned index, unsigned count)
{
    if (count <= 1)
        return;
    simAssert(index >= 1 && index <= count, "shard ", index, "/", count,
              ": index must be in [1, count]");
    std::vector<ExperimentSpec> kept;
    kept.reserve(jobs.size() / count + 1);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (j % count == index - 1)
            kept.push_back(std::move(jobs[j]));
    }
    jobs = std::move(kept);
}

std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t salt)
{
    // splitmix64 over base ^ golden-ratio-scaled salt: cheap, well
    // distributed, and identical on every platform.
    std::uint64_t z = base + salt * UINT64_C(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)) * UINT64_C(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)) * UINT64_C(0x94D049BB133111EB);
    return z ^ (z >> 31);
}

const std::vector<int> &
knownFigures()
{
    static const std::vector<int> figs = {11, 12, 13, 14};
    return figs;
}

Sweep
figureSweep(int figure, std::uint64_t ops, unsigned cores,
            std::uint64_t seed)
{
    Sweep sweep;
    sweep.name = "fig" + std::to_string(figure);

    auto addMicroGrid = [&](std::uint64_t defOps) {
        const std::uint64_t n = ops ? ops : defOps;
        for (auto kind : workload::allMicroKinds()) {
            for (auto barrier : kBepVariants) {
                ExperimentSpec spec;
                spec.sweep = sweep.name;
                spec.workload = workload::toString(kind);
                spec.configLabel = persist::toString(barrier);
                spec.pm = model::PersistencyModel::BufferedEpoch;
                spec.barrier = barrier;
                spec.cores = cores;
                spec.ops = n;
                spec.seed = seed;
                sweep.jobs.push_back(std::move(spec));
            }
        }
    };

    struct BspConfig
    {
        const char *label;
        model::PersistencyModel pm;
        persist::BarrierKind barrier;
        unsigned epochSize;
        bool logging;
    };

    auto addBspGrid = [&](const std::vector<BspConfig> &configs,
                          std::uint64_t defOps) {
        const std::uint64_t n = ops ? ops : defOps;
        for (const auto &preset : workload::syntheticPresetNames()) {
            for (const BspConfig &c : configs) {
                ExperimentSpec spec;
                spec.sweep = sweep.name;
                spec.workload = preset;
                spec.configLabel = c.label;
                spec.pm = c.pm;
                spec.barrier = c.barrier;
                spec.epochSize = c.epochSize;
                spec.logging = c.logging;
                spec.cores = cores;
                spec.ops = n;
                spec.seed = seed;
                sweep.jobs.push_back(std::move(spec));
            }
        }
    };

    using model::PersistencyModel;
    using persist::BarrierKind;

    switch (figure) {
    case 11: // BEP throughput, micros x {LB, LB+IDT, LB+PF, LB++}
    case 12: // same grid; the metric (conflict %) differs
        addMicroGrid(300);
        break;
    case 13: // BSP epoch-size study: NP baseline + LB at 300/1K/10K
        addBspGrid(
            {
                {"NP", PersistencyModel::NoPersistency, BarrierKind::None,
                 0, false},
                {"LB300", PersistencyModel::BufferedStrict,
                 BarrierKind::LB, 300, true},
                {"LB1K", PersistencyModel::BufferedStrict, BarrierKind::LB,
                 1000, true},
                {"LB10K", PersistencyModel::BufferedStrict,
                 BarrierKind::LB, 10000, true},
            },
            20000);
        break;
    case 14: // BSP variants at epoch size 10000
        addBspGrid(
            {
                {"NP", PersistencyModel::NoPersistency, BarrierKind::None,
                 0, false},
                {"LB", PersistencyModel::BufferedStrict, BarrierKind::LB,
                 10000, true},
                {"LB+IDT", PersistencyModel::BufferedStrict,
                 BarrierKind::LBIDT, 10000, true},
                {"LB++", PersistencyModel::BufferedStrict,
                 BarrierKind::LBPP, 10000, true},
                {"LB++NOLOG", PersistencyModel::BufferedStrict,
                 BarrierKind::LBPP, 10000, false},
            },
            20000);
        break;
    default:
        fatal("figureSweep: unknown figure ", figure,
              " (known: 11, 12, 13, 14)");
    }
    return sweep;
}

} // namespace persim::exp
