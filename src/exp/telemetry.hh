/**
 * @file
 * Live sweep telemetry: per-job state tracking, host RSS probes, and
 * the machine-readable telemetry document behind persim_sweep's
 * --progress / --telemetry-out flags.
 *
 * Telemetry is strictly host-side observability: it reads the
 * simulation's outputs (events, wall clock) and /proc, never the
 * simulated machine, so it cannot perturb determinism. It is also
 * explicitly NON-deterministic (wall clock, RSS, worker ids) and so
 * lives in its own document, never in the sweep JSON.
 *
 * When a sweep runs with profiling (RunnerOptions::prof), each job
 * additionally carries its phase-sample breakdown and hardware
 * counter reading (prof/sampler.hh, prof/hw_counters.hh), and the
 * document header carries the aggregate — so a single telemetry file
 * answers both "where did the wall clock go" and "what did the host
 * look like while it went".
 */

#ifndef PERSIM_EXP_TELEMETRY_HH
#define PERSIM_EXP_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exp/json.hh"
#include "prof/hw_counters.hh"
#include "prof/sampler.hh"

namespace persim::exp
{

/**
 * Parse "<key>:   <n> kB" out of a /proc/self/status-shaped text.
 * Returns 0 when the key is absent, matches only as a prefix of a
 * longer key, or has a malformed (non-numeric) value. Exposed so the
 * parser is testable against canned snippets.
 */
std::uint64_t parseStatusKb(std::string_view text, std::string_view key);

/**
 * Current resident-set size of this process in kB (VmRSS from
 * /proc/self/status); 0 where /proc is unavailable.
 */
std::uint64_t currentRssKb();

/**
 * Peak resident-set size of this process in kB (VmHWM from
 * /proc/self/status); 0 where /proc is unavailable.
 */
std::uint64_t peakRssKb();

/** Online CPU count of this host (0 when unknown). */
unsigned hostCpuCount();

/** 1-minute load average from /proc/loadavg; < 0 when unavailable. */
double loadAverage1();

/** Lifecycle of one sweep job, as shown by --progress. */
enum class JobState : unsigned char
{
    Queued,
    Running,
    Retrying,
    Done,
    Failed,
    /** Final attempt cancelled by the per-job watchdog. */
    TimedOut,
    /** Currently running inside a sandbox child (--isolate). */
    Isolated,
};

/** Number of JobState values (size of per-state count arrays). */
inline constexpr std::size_t kJobStateCount = 7;

const char *jobStateName(JobState s);

/** Telemetry for one finished job. */
struct JobTelemetry
{
    std::string id;
    JobState state = JobState::Queued;
    unsigned attempts = 0;
    /** Worker thread that ran the job. */
    unsigned worker = 0;
    double wallMs = 0.0;
    /** Simulated events executed (0 for failed jobs). */
    std::uint64_t events = 0;
    /** Process RSS right after the job finished, kB. */
    std::uint64_t rssAfterKb = 0;

    /** The job ran in a sandbox child (--isolate). */
    bool isolated = false;

    /** Sandbox child's exit status (-1 = n/a) and fatal signal (""). */
    int exitCode = -1;
    std::string termSignal;

    /** Host-time profile of this job (profiled sweeps only). */
    bool profiled = false;
    prof::PhaseCounts profPhases;
    prof::CounterReading counters;

    JsonValue toJson() const;
};

/** Telemetry for a whole sweep run (--telemetry-out document). */
struct SweepTelemetry
{
    std::string sweep;
    unsigned workers = 0;
    double wallMs = 0.0;
    std::uint64_t peakRssKb = 0;
    /** Host shape, mirroring scripts/bench_lib.py's BENCH envelope. */
    unsigned hostCpus = 0;
    /** 1-minute load average at the end of the run; < 0 = unknown. */
    double loadAvg1 = -1.0;

    /** Aggregate host-time profile (profiled sweeps only). */
    bool profiled = false;
    unsigned profPeriodUsec = 0;
    prof::PhaseCounts profPhases;
    prof::CounterReading counters;

    std::vector<JobTelemetry> jobs;

    std::uint64_t totalEvents() const;
    std::size_t failedJobs() const;
    std::size_t retriedJobs() const;
    /** Jobs whose final attempt was cancelled by the watchdog. */
    std::size_t timedOutJobs() const;

    /** Simulated events per wall-clock second; 0 when wallMs is 0. */
    double eventsPerSec() const;

    JsonValue toJson() const;

    /** One-line human summary for the end of a sweep. */
    std::string summaryLine() const;
};

} // namespace persim::exp

#endif // PERSIM_EXP_TELEMETRY_HH
