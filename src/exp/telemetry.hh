/**
 * @file
 * Live sweep telemetry: per-job state tracking, host RSS probes, and
 * the machine-readable telemetry document behind persim_sweep's
 * --progress / --telemetry-out flags.
 *
 * Telemetry is strictly host-side observability: it reads the
 * simulation's outputs (events, wall clock) and /proc, never the
 * simulated machine, so it cannot perturb determinism. It is also
 * explicitly NON-deterministic (wall clock, RSS, worker ids) and so
 * lives in its own document, never in the sweep JSON.
 */

#ifndef PERSIM_EXP_TELEMETRY_HH
#define PERSIM_EXP_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/json.hh"

namespace persim::exp
{

/**
 * Current resident-set size of this process in kB (VmRSS from
 * /proc/self/status); 0 where /proc is unavailable.
 */
std::uint64_t currentRssKb();

/**
 * Peak resident-set size of this process in kB (VmHWM from
 * /proc/self/status); 0 where /proc is unavailable.
 */
std::uint64_t peakRssKb();

/** Lifecycle of one sweep job, as shown by --progress. */
enum class JobState : unsigned char
{
    Queued,
    Running,
    Retrying,
    Done,
    Failed,
};

const char *jobStateName(JobState s);

/** Telemetry for one finished job. */
struct JobTelemetry
{
    std::string id;
    JobState state = JobState::Queued;
    unsigned attempts = 0;
    /** Worker thread that ran the job. */
    unsigned worker = 0;
    double wallMs = 0.0;
    /** Simulated events executed (0 for failed jobs). */
    std::uint64_t events = 0;
    /** Process RSS right after the job finished, kB. */
    std::uint64_t rssAfterKb = 0;

    JsonValue toJson() const;
};

/** Telemetry for a whole sweep run (--telemetry-out document). */
struct SweepTelemetry
{
    std::string sweep;
    unsigned workers = 0;
    double wallMs = 0.0;
    std::uint64_t peakRssKb = 0;
    std::vector<JobTelemetry> jobs;

    std::uint64_t totalEvents() const;
    std::size_t failedJobs() const;
    std::size_t retriedJobs() const;

    /** Simulated events per wall-clock second; 0 when wallMs is 0. */
    double eventsPerSec() const;

    JsonValue toJson() const;

    /** One-line human summary for the end of a sweep. */
    std::string summaryLine() const;
};

} // namespace persim::exp

#endif // PERSIM_EXP_TELEMETRY_HH
