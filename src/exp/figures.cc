#include "exp/figures.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "exp/stats_export.hh"
#include "sim/logging.hh"

namespace persim::exp
{

namespace
{

/** Sum "<prefix>[<i>]<suffix>" over all per-core stat instances. */
double
sumPerCore(const std::map<std::string, double> &stats,
           const std::string &prefix, const std::string &suffix,
           unsigned cores)
{
    double total = 0;
    for (unsigned c = 0; c < cores; ++c) {
        auto it =
            stats.find(prefix + "[" + std::to_string(c) + "]" + suffix);
        if (it != stats.end())
            total += it->second;
    }
    return total;
}

/** First outcome matching (workload, config); nullptr if missing. */
const JobOutcome *
findOutcome(const std::vector<JobOutcome> &outcomes,
            const std::string &workload, const std::string &config)
{
    for (const JobOutcome &o : outcomes) {
        if (o.spec.workload == workload && o.spec.configLabel == config)
            return &o;
    }
    return nullptr;
}

/** Distinct workloads / config labels in first-appearance order. */
void
collectAxes(const std::vector<JobOutcome> &outcomes,
            std::vector<std::string> &rows, std::vector<std::string> &cols)
{
    for (const JobOutcome &o : outcomes) {
        if (std::find(rows.begin(), rows.end(), o.spec.workload) ==
            rows.end())
            rows.push_back(o.spec.workload);
        if (std::find(cols.begin(), cols.end(), o.spec.configLabel) ==
            cols.end())
            cols.push_back(o.spec.configLabel);
    }
}

} // namespace

double
gmean(const std::vector<double> &xs)
{
    double logSum = 0;
    std::size_t n = 0;
    for (double x : xs) {
        if (x > 0) {
            logSum += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(logSum / static_cast<double>(n)) : 0.0;
}

double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
conflictPct(const JobOutcome &outcome)
{
    const unsigned cores = outcome.spec.cores;
    const double conflicted =
        sumPerCore(outcome.stats, "persist.arbiter", ".flushIntra",
                   cores) +
        sumPerCore(outcome.stats, "persist.arbiter", ".flushInter",
                   cores) +
        sumPerCore(outcome.stats, "persist.arbiter", ".flushReplacement",
                   cores);
    const double total = sumPerCore(outcome.stats, "persist.arbiter",
                                    ".epochsPersisted", cores);
    return total > 0 ? 100.0 * conflicted / total : 0.0;
}

FigureTable
figureTable(int figure, const std::vector<JobOutcome> &outcomes)
{
    FigureTable table;
    std::vector<std::string> allCols;
    collectAxes(outcomes, table.rows, allCols);

    // (workload, config) -> cell value.
    auto cellValue = [&](const std::string &w,
                         const std::string &c) -> double {
        const JobOutcome *o = findOutcome(outcomes, w, c);
        if (!o || !o->ok)
            return 0.0;
        switch (figure) {
        case 11: { // throughput normalized to LB
            const JobOutcome *base = findOutcome(outcomes, w, "LB");
            if (!base || !base->ok ||
                base->result.throughput() == 0)
                return 0.0;
            return o->result.throughput() / base->result.throughput();
        }
        case 12: // % epochs flushed because of a conflict
            return conflictPct(*o);
        case 13:
        case 14: { // execution time normalized to NP
            const JobOutcome *base = findOutcome(outcomes, w, "NP");
            if (!base || !base->ok || base->result.execTicks == 0)
                return 0.0;
            return static_cast<double>(o->result.execTicks) /
                   static_cast<double>(base->result.execTicks);
        }
        default:
            fatal("figureTable: unknown figure ", figure);
        }
    };

    switch (figure) {
    case 11:
        table.title = "Figure 11: transaction throughput normalized to "
                      "LB (higher is better)";
        table.meanLabel = "gmean";
        table.useGmean = true;
        table.cols = allCols;
        break;
    case 12:
        table.title = "Figure 12: % epochs flushed because of a "
                      "conflict (lower is better)";
        table.meanLabel = "amean";
        table.useGmean = false;
        table.cols = allCols;
        break;
    case 13:
        table.title = "Figure 13: BSP execution time normalized to NP, "
                      "varying epoch size (lower is better)";
        table.meanLabel = "gmean";
        table.useGmean = true;
        break;
    case 14:
        table.title = "Figure 14: BSP execution time normalized to NP "
                      "at epoch size 10000 (lower is better)";
        table.meanLabel = "gmean";
        table.useGmean = true;
        break;
    default:
        fatal("figureTable: unknown figure ", figure);
    }
    if (figure == 13 || figure == 14) {
        // The NP baseline normalizes the other columns; drop it.
        for (const std::string &c : allCols) {
            if (c != "NP")
                table.cols.push_back(c);
        }
    }

    for (const std::string &w : table.rows) {
        std::vector<double> row;
        row.reserve(table.cols.size());
        for (const std::string &c : table.cols)
            row.push_back(cellValue(w, c));
        table.cells.push_back(std::move(row));
    }
    for (std::size_t c = 0; c < table.cols.size(); ++c) {
        std::vector<double> colVals;
        colVals.reserve(table.rows.size());
        for (std::size_t r = 0; r < table.rows.size(); ++r)
            colVals.push_back(table.cells[r][c]);
        table.means.push_back(table.useGmean ? gmean(colVals)
                                             : amean(colVals));
    }
    return table;
}

void
printFigureTable(std::ostream &os, const FigureTable &table)
{
    char buf[64];
    os << "\n=== " << table.title << " ===\n";
    std::snprintf(buf, sizeof(buf), "%-12s", "workload");
    os << buf;
    for (const auto &c : table.cols) {
        std::snprintf(buf, sizeof(buf), " %12s", c.c_str());
        os << buf;
    }
    os << '\n';
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        std::snprintf(buf, sizeof(buf), "%-12s", table.rows[r].c_str());
        os << buf;
        for (double v : table.cells[r]) {
            std::snprintf(buf, sizeof(buf), " %12.3f", v);
            os << buf;
        }
        os << '\n';
    }
    std::snprintf(buf, sizeof(buf), "%-12s", table.meanLabel.c_str());
    os << buf;
    for (double m : table.means) {
        std::snprintf(buf, sizeof(buf), " %12.3f", m);
        os << buf;
    }
    os << '\n';
}

JsonValue
figureTableToJson(const FigureTable &table)
{
    JsonValue out = JsonValue::object();
    out["title"] = JsonValue(table.title);
    out["meanLabel"] = JsonValue(table.meanLabel);
    JsonValue rows = JsonValue::array();
    for (const auto &r : table.rows)
        rows.push(JsonValue(r));
    out["rows"] = std::move(rows);
    JsonValue cols = JsonValue::array();
    for (const auto &c : table.cols)
        cols.push(JsonValue(c));
    out["cols"] = std::move(cols);
    JsonValue cells = JsonValue::array();
    for (const auto &row : table.cells) {
        JsonValue jr = JsonValue::array();
        for (double v : row)
            jr.push(JsonValue(v));
        cells.push(std::move(jr));
    }
    out["cells"] = std::move(cells);
    JsonValue means = JsonValue::array();
    for (double m : table.means)
        means.push(JsonValue(m));
    out["means"] = std::move(means);
    return out;
}

void
figureTableToCsv(std::ostream &os, const FigureTable &table)
{
    std::vector<std::string> header = {"workload"};
    header.insert(header.end(), table.cols.begin(), table.cols.end());
    std::vector<std::vector<std::string>> rows;
    auto fmt = [](double v) {
        std::ostringstream ss;
        writeJsonNumber(ss, v);
        return ss.str();
    };
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        std::vector<std::string> row = {table.rows[r]};
        for (double v : table.cells[r])
            row.push_back(fmt(v));
        rows.push_back(std::move(row));
    }
    std::vector<std::string> meanRow = {table.meanLabel};
    for (double m : table.means)
        meanRow.push_back(fmt(m));
    rows.push_back(std::move(meanRow));
    writeCsv(os, header, rows);
}

} // namespace persim::exp
