#include "exp/figures.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "exp/stats_export.hh"
#include "sim/logging.hh"

namespace persim::exp
{

namespace
{

/** Sum "<prefix>[<i>]<suffix>" over all per-core stat instances. */
double
sumPerCore(const std::map<std::string, double> &stats,
           const std::string &prefix, const std::string &suffix,
           unsigned cores)
{
    double total = 0;
    for (unsigned c = 0; c < cores; ++c) {
        auto it =
            stats.find(prefix + "[" + std::to_string(c) + "]" + suffix);
        if (it != stats.end())
            total += it->second;
    }
    return total;
}

/** First outcome matching (workload, config, seed); nullptr if missing. */
const JobOutcome *
findOutcome(const std::vector<JobOutcome> &outcomes,
            const std::string &workload, const std::string &config,
            std::uint64_t seed)
{
    for (const JobOutcome &o : outcomes) {
        if (o.spec.workload == workload &&
            o.spec.configLabel == config && o.spec.seed == seed)
            return &o;
    }
    return nullptr;
}

/** Distinct seeds in first-appearance order. */
std::vector<std::uint64_t>
collectSeeds(const std::vector<JobOutcome> &outcomes)
{
    std::vector<std::uint64_t> seeds;
    for (const JobOutcome &o : outcomes) {
        if (std::find(seeds.begin(), seeds.end(), o.spec.seed) ==
            seeds.end())
            seeds.push_back(o.spec.seed);
    }
    return seeds;
}

/** Two-sided 95% critical value of Student's t with @p df dof. */
double
tCritical95(std::size_t df)
{
    static const double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return kTable[df - 1];
    return 1.960; // normal approximation beyond the table
}

/** Distinct workloads / config labels in first-appearance order. */
void
collectAxes(const std::vector<JobOutcome> &outcomes,
            std::vector<std::string> &rows, std::vector<std::string> &cols)
{
    for (const JobOutcome &o : outcomes) {
        if (std::find(rows.begin(), rows.end(), o.spec.workload) ==
            rows.end())
            rows.push_back(o.spec.workload);
        if (std::find(cols.begin(), cols.end(), o.spec.configLabel) ==
            cols.end())
            cols.push_back(o.spec.configLabel);
    }
}

} // namespace

double
gmean(const std::vector<double> &xs)
{
    double logSum = 0;
    std::size_t n = 0;
    for (double x : xs) {
        if (x > 0) {
            logSum += std::log(x);
            ++n;
        }
    }
    return n ? std::exp(logSum / static_cast<double>(n)) : 0.0;
}

double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
ciHalfWidth95(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mean = amean(xs);
    double ss = 0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    const double stddev = std::sqrt(ss / static_cast<double>(n - 1));
    return tCritical95(n - 1) * stddev /
           std::sqrt(static_cast<double>(n));
}

double
conflictPct(const JobOutcome &outcome)
{
    const unsigned cores = outcome.spec.cores;
    const double conflicted =
        sumPerCore(outcome.stats, "persist.arbiter", ".flushIntra",
                   cores) +
        sumPerCore(outcome.stats, "persist.arbiter", ".flushInter",
                   cores) +
        sumPerCore(outcome.stats, "persist.arbiter", ".flushReplacement",
                   cores);
    const double total = sumPerCore(outcome.stats, "persist.arbiter",
                                    ".epochsPersisted", cores);
    return total > 0 ? 100.0 * conflicted / total : 0.0;
}

FigureTable
figureTable(int figure, const std::vector<JobOutcome> &outcomes)
{
    FigureTable table;
    std::vector<std::string> allCols;
    collectAxes(outcomes, table.rows, allCols);
    const std::vector<std::uint64_t> seeds = collectSeeds(outcomes);
    table.seedCount = static_cast<unsigned>(seeds.size());

    // (workload, config, seed) -> value; normalized figures use the
    // same seed's baseline so each replicate is self-consistent.
    auto seedValue = [&](const std::string &w, const std::string &c,
                         std::uint64_t seed) -> double {
        const JobOutcome *o = findOutcome(outcomes, w, c, seed);
        if (!o || !o->ok)
            return 0.0;
        switch (figure) {
        case 11: { // throughput normalized to LB
            const JobOutcome *base =
                findOutcome(outcomes, w, "LB", seed);
            if (!base || !base->ok ||
                base->result.throughput() == 0)
                return 0.0;
            return o->result.throughput() / base->result.throughput();
        }
        case 12: // % epochs flushed because of a conflict
            return conflictPct(*o);
        case 13:
        case 14: { // execution time normalized to NP
            const JobOutcome *base =
                findOutcome(outcomes, w, "NP", seed);
            if (!base || !base->ok || base->result.execTicks == 0)
                return 0.0;
            return static_cast<double>(o->result.execTicks) /
                   static_cast<double>(base->result.execTicks);
        }
        default:
            fatal("figureTable: unknown figure ", figure);
        }
    };

    // (workload, config) -> the per-seed replicate values.
    auto seedValues = [&](const std::string &w, const std::string &c) {
        std::vector<double> vals;
        vals.reserve(seeds.size());
        for (std::uint64_t s : seeds)
            vals.push_back(seedValue(w, c, s));
        return vals;
    };

    switch (figure) {
    case 11:
        table.title = "Figure 11: transaction throughput normalized to "
                      "LB (higher is better)";
        table.meanLabel = "gmean";
        table.useGmean = true;
        table.cols = allCols;
        break;
    case 12:
        table.title = "Figure 12: % epochs flushed because of a "
                      "conflict (lower is better)";
        table.meanLabel = "amean";
        table.useGmean = false;
        table.cols = allCols;
        break;
    case 13:
        table.title = "Figure 13: BSP execution time normalized to NP, "
                      "varying epoch size (lower is better)";
        table.meanLabel = "gmean";
        table.useGmean = true;
        break;
    case 14:
        table.title = "Figure 14: BSP execution time normalized to NP "
                      "at epoch size 10000 (lower is better)";
        table.meanLabel = "gmean";
        table.useGmean = true;
        break;
    default:
        fatal("figureTable: unknown figure ", figure);
    }
    if (figure == 13 || figure == 14) {
        // The NP baseline normalizes the other columns; drop it.
        for (const std::string &c : allCols) {
            if (c != "NP")
                table.cols.push_back(c);
        }
    }

    const bool multiSeed = seeds.size() > 1;
    for (const std::string &w : table.rows) {
        std::vector<double> row;
        std::vector<double> rowCi;
        row.reserve(table.cols.size());
        for (const std::string &c : table.cols) {
            const std::vector<double> vals = seedValues(w, c);
            row.push_back(amean(vals));
            if (multiSeed)
                rowCi.push_back(ciHalfWidth95(vals));
        }
        table.cells.push_back(std::move(row));
        if (multiSeed)
            table.cellsCi.push_back(std::move(rowCi));
    }
    for (std::size_t c = 0; c < table.cols.size(); ++c) {
        std::vector<double> colVals;
        colVals.reserve(table.rows.size());
        for (std::size_t r = 0; r < table.rows.size(); ++r)
            colVals.push_back(table.cells[r][c]);
        table.means.push_back(table.useGmean ? gmean(colVals)
                                             : amean(colVals));
    }
    return table;
}

void
printFigureTable(std::ostream &os, const FigureTable &table)
{
    char buf[64];
    const bool ci = !table.cellsCi.empty();
    const int width = ci ? 18 : 12;
    os << "\n=== " << table.title << " ===";
    if (table.seedCount > 1)
        os << " [mean \xc2\xb1 95% CI over " << table.seedCount
           << " seeds]";
    os << '\n';
    std::snprintf(buf, sizeof(buf), "%-12s", "workload");
    os << buf;
    for (const auto &c : table.cols) {
        std::snprintf(buf, sizeof(buf), " %*s", width, c.c_str());
        os << buf;
    }
    os << '\n';
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        std::snprintf(buf, sizeof(buf), "%-12s", table.rows[r].c_str());
        os << buf;
        for (std::size_t c = 0; c < table.cells[r].size(); ++c) {
            if (ci) {
                char cell[40];
                std::snprintf(cell, sizeof(cell), "%.3f \xc2\xb1%.3f",
                              table.cells[r][c], table.cellsCi[r][c]);
                // The +/- sign is two UTF-8 bytes but one column.
                std::snprintf(buf, sizeof(buf), " %*s", width + 1,
                              cell);
            } else {
                std::snprintf(buf, sizeof(buf), " %12.3f",
                              table.cells[r][c]);
            }
            os << buf;
        }
        os << '\n';
    }
    std::snprintf(buf, sizeof(buf), "%-12s", table.meanLabel.c_str());
    os << buf;
    for (double m : table.means) {
        std::snprintf(buf, sizeof(buf), " %*.3f", width, m);
        os << buf;
    }
    os << '\n';
}

JsonValue
figureTableToJson(const FigureTable &table)
{
    JsonValue out = JsonValue::object();
    out["title"] = JsonValue(table.title);
    out["meanLabel"] = JsonValue(table.meanLabel);
    JsonValue rows = JsonValue::array();
    for (const auto &r : table.rows)
        rows.push(JsonValue(r));
    out["rows"] = std::move(rows);
    JsonValue cols = JsonValue::array();
    for (const auto &c : table.cols)
        cols.push(JsonValue(c));
    out["cols"] = std::move(cols);
    JsonValue cells = JsonValue::array();
    for (const auto &row : table.cells) {
        JsonValue jr = JsonValue::array();
        for (double v : row)
            jr.push(JsonValue(v));
        cells.push(std::move(jr));
    }
    out["cells"] = std::move(cells);
    JsonValue means = JsonValue::array();
    for (double m : table.means)
        means.push(JsonValue(m));
    out["means"] = std::move(means);
    // Only multi-seed sweeps emit the CI keys, so single-seed output
    // stays byte-identical with documents written before --seeds
    // aggregation existed.
    if (table.seedCount > 1) {
        out["seedCount"] = JsonValue(table.seedCount);
        JsonValue ci = JsonValue::array();
        for (const auto &row : table.cellsCi) {
            JsonValue jr = JsonValue::array();
            for (double v : row)
                jr.push(JsonValue(v));
            ci.push(std::move(jr));
        }
        out["cellsCi95"] = std::move(ci);
    }
    return out;
}

void
figureTableToCsv(std::ostream &os, const FigureTable &table)
{
    const bool ci = !table.cellsCi.empty();
    std::vector<std::string> header = {"workload"};
    header.insert(header.end(), table.cols.begin(), table.cols.end());
    if (ci) {
        for (const std::string &c : table.cols)
            header.push_back(c + "_ci95");
    }
    std::vector<std::vector<std::string>> rows;
    auto fmt = [](double v) {
        std::ostringstream ss;
        writeJsonNumber(ss, v);
        return ss.str();
    };
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        std::vector<std::string> row = {table.rows[r]};
        for (double v : table.cells[r])
            row.push_back(fmt(v));
        if (ci) {
            for (double v : table.cellsCi[r])
                row.push_back(fmt(v));
        }
        rows.push_back(std::move(row));
    }
    std::vector<std::string> meanRow = {table.meanLabel};
    for (double m : table.means)
        meanRow.push_back(fmt(m));
    if (ci) {
        for (std::size_t c = 0; c < table.cols.size(); ++c)
            meanRow.push_back("");
    }
    rows.push_back(std::move(meanRow));
    writeCsv(os, header, rows);
}

} // namespace persim::exp
