/**
 * @file
 * Crash-safe sweep journal and the outcome wire codec.
 *
 * A multi-hour sweep must survive the death of its own process: a
 * segfaulting cell (without isolation), an OOM kill, a ctrl-C, a node
 * reboot. The journal makes every finished cell durable the moment it
 * completes:
 *
 *   - `<out>.journal` is append-only. Line 1 is a header binding the
 *     journal to one exact grid (sweep name, job count, and a
 *     fingerprint over every cell's identity-relevant fields); every
 *     further line is one completed cell's full outcome as compact
 *     JSON, written with a single write(2) and fsync'd before the
 *     runner moves on. A crash can lose at most the in-flight cells.
 *   - `persim_sweep --resume` loads the journal, skips journaled
 *     cells, runs the rest, and merges both sets back into grid
 *     order. Because the codec round-trips outcomes exactly (shortest
 *     round-trip number formatting end to end), the merged document
 *     is byte-identical to an uninterrupted run — CI enforces this.
 *   - The final output file is written to `<out>.tmp`, fsync'd, and
 *     renamed over `<out>` (writeFileAtomic), after which the journal
 *     is deleted: observers see either the old document or the
 *     complete new one, never a torn write.
 *
 * Failed cells are deliberately NOT journaled: a resume retries them,
 * which is what you want after fixing whatever killed them.
 */

#ifndef PERSIM_EXP_JOURNAL_HH
#define PERSIM_EXP_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "exp/json.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"

namespace persim::exp
{

/**
 * Full-fidelity serialization of one JobOutcome for the journal and
 * the sandbox pipe: everything JobOutcome::toJson() emits plus the
 * flat stats map and wallMs, so figure tables and telemetry can be
 * rebuilt without re-running the cell.
 */
JsonValue outcomeToWire(const JobOutcome &outcome);

/**
 * Rebuild a JobOutcome from outcomeToWire() output. @p spec and
 * @p index come from the live grid (the wire carries only the id), so
 * the rebuilt outcome serializes byte-identically to the original.
 */
JobOutcome outcomeFromWire(const JsonValue &wire,
                           const ExperimentSpec &spec, std::size_t index);

/**
 * Order-sensitive fingerprint over every field that determines a
 * cell's simulated result (id, ops, cores, pinned-retry, trace file).
 * Two grids with equal fingerprints and equal sizes produce the same
 * cells, so resuming across them is sound; anything else is a
 * mismatch the resume path must refuse.
 */
std::uint64_t gridFingerprint(const std::vector<ExperimentSpec> &jobs);

/** The grid-identity header in a journal's first line. */
struct JournalHeader
{
    std::string sweep;
    std::size_t jobCount = 0;
    std::uint64_t gridHash = 0;

    bool matches(const JournalHeader &other) const
    {
        return sweep == other.sweep && jobCount == other.jobCount &&
               gridHash == other.gridHash;
    }
};

/**
 * Append-only journal writer. Thread-safe: workers append completed
 * cells concurrently; each line is one write(2) followed by fsync.
 */
class SweepJournal
{
  public:
    SweepJournal() = default;
    ~SweepJournal();
    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open @p path for appending and write the header line when the
     * file is new or being truncated. @p fresh truncates (a run that
     * is NOT resuming must not inherit a stale journal). Throws
     * SimFatal on I/O errors.
     */
    void open(const std::string &path, const JournalHeader &header,
              bool fresh);

    /** One fsync'd compact JSON line for @p outcome. */
    void append(const JobOutcome &outcome);

    bool isOpen() const { return _fd >= 0; }
    const std::string &path() const { return _path; }

    void close();

  private:
    int _fd = -1;
    std::string _path;
    std::mutex _mutex;
};

/** Everything a --resume run needs from an existing journal. */
struct JournalContents
{
    /** The file exists (when false, nothing else is meaningful). */
    bool exists = false;

    /** The header line parsed (corrupt headers refuse to resume). */
    bool headerOk = false;

    JournalHeader header;

    /** (id, wire outcome) in file order; later duplicates win. */
    std::vector<std::pair<std::string, JsonValue>> entries;

    /** Unparseable lines skipped (a torn tail from the crash). */
    std::size_t dropped = 0;

    /** Ids that appeared more than once (0 in any healthy journal). */
    std::size_t duplicates = 0;
};

/** Load and validate a journal; never throws on corrupt content. */
JournalContents loadJournal(const std::string &path);

/**
 * Merge journaled cells and freshly-run outcomes back into full grid
 * order. @p fresh holds the outcomes of the jobs that actually ran
 * this time (matched by spec id); every other grid cell must appear
 * in @p entries. Throws SimFatal if a cell is covered by neither.
 */
std::vector<JobOutcome> mergeResumedOutcomes(
    const Sweep &fullSweep,
    const std::vector<std::pair<std::string, JsonValue>> &entries,
    std::vector<JobOutcome> fresh);

/**
 * Durably replace @p path: write to `<path>.tmp`, fsync, rename over
 * @p path, fsync the directory. Throws SimFatal on I/O errors.
 */
void writeFileAtomic(const std::string &path, const std::string &content);

} // namespace persim::exp

#endif // PERSIM_EXP_JOURNAL_HH
