/**
 * @file
 * Figure-table computation over sweep outcomes.
 *
 * Each paper figure reduces its config grid to one table:
 *   - Fig 11: transaction throughput normalized to LB (gmean).
 *   - Fig 12: % of epochs flushed because of a conflict (amean).
 *   - Fig 13/14: execution time normalized to the NP baseline (gmean).
 *
 * One implementation serves the bench binaries, persim_sweep's JSON /
 * CSV / stdout output, and the tests.
 */

#ifndef PERSIM_EXP_FIGURES_HH
#define PERSIM_EXP_FIGURES_HH

#include <ostream>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "exp/runner.hh"

namespace persim::exp
{

/**
 * One figure reduced to rows (workloads) x cols (configs).
 *
 * When the sweep ran the grid over several seeds (persim_sweep
 * --seeds N), each cell is the arithmetic mean over the per-seed
 * values — each seed normalized against its own baseline — and
 * cellsCi holds the matching 95% confidence half-widths (Student's t).
 * Single-seed tables have seedCount == 1 and an empty cellsCi, and
 * serialize exactly as they did before seeds existed.
 */
struct FigureTable
{
    std::string title;
    std::vector<std::string> rows;
    std::vector<std::string> cols;
    /** cells[r][c]; 0.0 marks a missing/failed cell. */
    std::vector<std::vector<double>> cells;
    std::string meanLabel; // "gmean" or "amean"
    bool useGmean = true;
    /** Column means over the workloads (matching meanLabel). */
    std::vector<double> means;
    /** Distinct seeds aggregated into each cell. */
    unsigned seedCount = 1;
    /** cellsCi[r][c]: 95% CI half-width; empty when seedCount == 1. */
    std::vector<std::vector<double>> cellsCi;
};

/** Geometric mean of @p xs (non-positive entries are skipped). */
double gmean(const std::vector<double> &xs);

/** Arithmetic mean. */
double amean(const std::vector<double> &xs);

/**
 * Half-width of the two-sided 95% confidence interval of the mean of
 * @p xs (Student's t with n-1 degrees of freedom); 0 for n < 2.
 */
double ciHalfWidth95(const std::vector<double> &xs);

/**
 * Fraction (in %) of persisted epochs that were flushed early because
 * of a conflict — Figure 12's metric — for one outcome.
 */
double conflictPct(const JobOutcome &outcome);

/** Reduce @p outcomes to figure @p figure's table. */
FigureTable figureTable(int figure,
                        const std::vector<JobOutcome> &outcomes);

/** Render as an aligned text table (the bench binaries' format). */
void printFigureTable(std::ostream &os, const FigureTable &table);

/** Serialize: {"title", "rows", "cols", "cells", "means", ...}. */
JsonValue figureTableToJson(const FigureTable &table);

/** CSV: header "workload,<cols...>", one row per workload + mean row. */
void figureTableToCsv(std::ostream &os, const FigureTable &table);

} // namespace persim::exp

#endif // PERSIM_EXP_FIGURES_HH
