#include "exp/trace_export.hh"

#include <algorithm>
#include <map>

#include "exp/json.hh"

namespace persim::exp
{

namespace
{

/**
 * Sort priority for events sharing a timestamp: ends close before
 * instants/counters, begins open last, so back-to-back spans on one
 * lane (end tick == next begin tick) keep a legal B/E nesting.
 */
enum : int
{
    kPrioEnd = 0,
    kPrioPoint = 1,
    kPrioBegin = 2,
};

struct PendingEvent
{
    Tick ts;
    int prio;
    JsonValue ev;
};

JsonValue
metaEvent(const char *what, unsigned tid, const std::string &label)
{
    JsonValue meta = JsonValue::object();
    meta["name"] = JsonValue(what);
    meta["ph"] = JsonValue("M");
    meta["pid"] = JsonValue(0u);
    meta["tid"] = JsonValue(tid);
    JsonValue args = JsonValue::object();
    args["name"] = JsonValue(label);
    meta["args"] = std::move(args);
    return meta;
}

void
writeTraceDoc(std::ostream &os, const std::vector<trace::Record> &records,
              const std::vector<trace::Span> &spans,
              const std::vector<trace::Counter> &counters,
              const std::string &processName)
{
    JsonValue doc = JsonValue::object();
    JsonValue events = JsonValue::array();

    events.push(metaEvent("process_name", 0, processName));

    // Stable track ids in order of first appearance.
    std::map<std::string, unsigned> tids;
    auto tidFor = [&](const std::string &who) {
        auto it = tids.find(who);
        if (it != tids.end())
            return it->second;
        const unsigned tid = static_cast<unsigned>(tids.size());
        tids.emplace(who, tid);
        return tid;
    };

    std::vector<trace::Record> sortedRecords = records;
    // Recorder appends in simulation order, but make the contract
    // explicit: Chrome traces want non-decreasing timestamps.
    std::stable_sort(sortedRecords.begin(), sortedRecords.end(),
                     [](const trace::Record &a, const trace::Record &b) {
                         return a.tick < b.tick;
                     });

    // Spans are recorded at close time, so recorder order is by end
    // tick; lane allocation needs begin order.
    std::vector<trace::Span> sortedSpans = spans;
    std::stable_sort(sortedSpans.begin(), sortedSpans.end(),
                     [](const trace::Span &a, const trace::Span &b) {
                         return a.begin != b.begin ? a.begin < b.begin
                                                   : a.end < b.end;
                     });

    // Greedy first-fit lane allocation per component track: a span
    // lands in the lowest lane whose previous span already ended, so
    // spans within one lane never overlap (B/E nest trivially) and
    // concurrent spans fan out across "<track> #2", "<track> #3", ...
    struct Lanes
    {
        std::vector<Tick> laneEnd;
    };
    std::map<std::string, Lanes> lanesByTrack;
    std::vector<std::string> spanLane(sortedSpans.size());
    for (std::size_t i = 0; i < sortedSpans.size(); ++i) {
        const trace::Span &s = sortedSpans[i];
        Lanes &lanes = lanesByTrack[s.track];
        std::size_t lane = 0;
        while (lane < lanes.laneEnd.size() &&
               lanes.laneEnd[lane] > s.begin)
            ++lane;
        if (lane == lanes.laneEnd.size())
            lanes.laneEnd.push_back(s.end);
        else
            lanes.laneEnd[lane] = s.end;
        spanLane[i] = lane == 0
                          ? s.track
                          : s.track + " #" + std::to_string(lane + 1);
    }

    // Assign tids: instant-record tracks first (matching the legacy
    // exporter), then span lanes in begin order.
    for (const trace::Record &r : sortedRecords)
        tidFor(r.who);
    for (const std::string &lane : spanLane)
        tidFor(lane);
    for (const auto &[who, tid] : tids)
        events.push(metaEvent("thread_name", tid, who));

    std::vector<PendingEvent> pending;
    pending.reserve(sortedRecords.size() + 2 * sortedSpans.size() +
                    counters.size());

    for (const trace::Record &r : sortedRecords) {
        JsonValue ev = JsonValue::object();
        ev["name"] = JsonValue(r.flag);
        ev["cat"] = JsonValue(r.flag);
        ev["ph"] = JsonValue("i"); // instant
        ev["s"] = JsonValue("t");  // thread-scoped
        ev["ts"] = JsonValue(r.tick);
        ev["pid"] = JsonValue(0u);
        ev["tid"] = JsonValue(tids[r.who]);
        JsonValue args = JsonValue::object();
        args["msg"] = JsonValue(r.message);
        ev["args"] = std::move(args);
        pending.push_back({r.tick, kPrioPoint, std::move(ev)});
    }

    for (std::size_t i = 0; i < sortedSpans.size(); ++i) {
        const trace::Span &s = sortedSpans[i];
        const unsigned tid = tids[spanLane[i]];
        if (s.end <= s.begin) {
            // Zero-length work still deserves a bar: a complete event
            // with dur 0 renders, while an empty B/E pair would not.
            JsonValue ev = JsonValue::object();
            ev["name"] = JsonValue(s.name);
            ev["cat"] = JsonValue(s.cat);
            ev["ph"] = JsonValue("X");
            ev["ts"] = JsonValue(s.begin);
            ev["dur"] = JsonValue(0u);
            ev["pid"] = JsonValue(0u);
            ev["tid"] = JsonValue(tid);
            pending.push_back({s.begin, kPrioPoint, std::move(ev)});
            continue;
        }
        JsonValue begin = JsonValue::object();
        begin["name"] = JsonValue(s.name);
        begin["cat"] = JsonValue(s.cat);
        begin["ph"] = JsonValue("B");
        begin["ts"] = JsonValue(s.begin);
        begin["pid"] = JsonValue(0u);
        begin["tid"] = JsonValue(tid);
        pending.push_back({s.begin, kPrioBegin, std::move(begin)});

        JsonValue end = JsonValue::object();
        end["name"] = JsonValue(s.name);
        end["cat"] = JsonValue(s.cat);
        end["ph"] = JsonValue("E");
        end["ts"] = JsonValue(s.end);
        end["pid"] = JsonValue(0u);
        end["tid"] = JsonValue(tid);
        pending.push_back({s.end, kPrioEnd, std::move(end)});
    }

    for (const trace::Counter &c : counters) {
        JsonValue ev = JsonValue::object();
        ev["name"] = JsonValue(c.track);
        ev["ph"] = JsonValue("C");
        ev["ts"] = JsonValue(c.tick);
        ev["pid"] = JsonValue(0u);
        ev["tid"] = JsonValue(0u);
        JsonValue args = JsonValue::object();
        args["value"] = JsonValue(c.value);
        ev["args"] = std::move(args);
        pending.push_back({c.tick, kPrioPoint, std::move(ev)});
    }

    std::stable_sort(pending.begin(), pending.end(),
                     [](const PendingEvent &a, const PendingEvent &b) {
                         return a.ts != b.ts ? a.ts < b.ts
                                             : a.prio < b.prio;
                     });
    for (PendingEvent &p : pending)
        events.push(std::move(p.ev));

    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = JsonValue("ms");
    doc.write(os, 0);
    os << '\n';
}

} // namespace

void
writeChromeTrace(std::ostream &os, const trace::Recorder &rec,
                 const std::string &processName)
{
    writeTraceDoc(os, rec.records(), rec.spans(), rec.counters(),
                  processName);
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<trace::Record> &records,
                 const std::string &processName)
{
    writeTraceDoc(os, records, {}, {}, processName);
}

void
writeCounterCsv(std::ostream &os,
                const std::vector<trace::Counter> &counters)
{
    // Column per track, first-appearance order.
    std::vector<std::string> tracks;
    auto columnOf = [&](const std::string &track) {
        for (std::size_t i = 0; i < tracks.size(); ++i) {
            if (tracks[i] == track)
                return i;
        }
        tracks.push_back(track);
        return tracks.size() - 1;
    };
    struct Row
    {
        Tick tick;
        std::vector<std::pair<std::size_t, double>> cells;
    };
    std::vector<Row> rows;
    for (const trace::Counter &c : counters) {
        const std::size_t col = columnOf(c.track);
        if (rows.empty() || rows.back().tick != c.tick)
            rows.push_back(Row{c.tick, {}});
        rows.back().cells.emplace_back(col, c.value);
    }

    os << "tick";
    for (const std::string &t : tracks)
        os << ',' << t;
    os << '\n';
    for (const Row &row : rows) {
        std::vector<double> cells(tracks.size(), 0.0);
        std::vector<bool> present(tracks.size(), false);
        for (const auto &[col, value] : row.cells) {
            cells[col] = value;
            present[col] = true;
        }
        os << row.tick;
        for (std::size_t i = 0; i < tracks.size(); ++i) {
            os << ',';
            if (present[i])
                writeJsonNumber(os, cells[i]);
        }
        os << '\n';
    }
}

} // namespace persim::exp
