#include "exp/trace_export.hh"

#include <algorithm>
#include <map>

#include "exp/json.hh"

namespace persim::exp
{

void
writeChromeTrace(std::ostream &os,
                 const std::vector<trace::Record> &records,
                 const std::string &processName)
{
    JsonValue doc = JsonValue::object();
    JsonValue events = JsonValue::array();

    // Stable track ids in order of first appearance.
    std::map<std::string, unsigned> tids;
    auto tidFor = [&](const std::string &who) {
        auto it = tids.find(who);
        if (it != tids.end())
            return it->second;
        const unsigned tid = static_cast<unsigned>(tids.size());
        tids.emplace(who, tid);
        return tid;
    };

    // Process metadata first so the UI labels the run.
    {
        JsonValue meta = JsonValue::object();
        meta["name"] = JsonValue("process_name");
        meta["ph"] = JsonValue("M");
        meta["pid"] = JsonValue(0u);
        meta["tid"] = JsonValue(0u);
        JsonValue args = JsonValue::object();
        args["name"] = JsonValue(processName);
        meta["args"] = std::move(args);
        events.push(std::move(meta));
    }

    std::vector<trace::Record> sorted = records;
    // Recorder appends in simulation order, but make the contract
    // explicit: Chrome traces want non-decreasing timestamps.
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const trace::Record &a, const trace::Record &b) {
                         return a.tick < b.tick;
                     });

    // Assign track ids in first-appearance order, then emit the
    // thread-name metadata (map iteration: sorted by component name).
    for (const trace::Record &r : sorted)
        tidFor(r.who);
    for (const auto &[who, tid] : tids) {
        JsonValue meta = JsonValue::object();
        meta["name"] = JsonValue("thread_name");
        meta["ph"] = JsonValue("M");
        meta["pid"] = JsonValue(0u);
        meta["tid"] = JsonValue(tid);
        JsonValue args = JsonValue::object();
        args["name"] = JsonValue(who);
        meta["args"] = std::move(args);
        events.push(std::move(meta));
    }

    for (const trace::Record &r : sorted) {
        JsonValue ev = JsonValue::object();
        ev["name"] = JsonValue(r.flag);
        ev["cat"] = JsonValue(r.flag);
        ev["ph"] = JsonValue("i"); // instant
        ev["s"] = JsonValue("t");  // thread-scoped
        ev["ts"] = JsonValue(r.tick);
        ev["pid"] = JsonValue(0u);
        ev["tid"] = JsonValue(tids[r.who]);
        JsonValue args = JsonValue::object();
        args["msg"] = JsonValue(r.message);
        ev["args"] = std::move(args);
        events.push(std::move(ev));
    }

    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = JsonValue("ms");
    doc.write(os, 0);
    os << '\n';
}

} // namespace persim::exp
