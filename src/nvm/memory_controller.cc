#include "nvm/memory_controller.hh"

#include "prof/phase.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace persim::nvm
{

MemoryController::MemoryController(const std::string &name, EventQueue &eq,
                                   noc::Mesh &mesh, unsigned nodeId,
                                   unsigned x, unsigned y,
                                   const NvramConfig &cfg)
    : SimObject(name, eq),
      _stats(name),
      _ni(name + ".ni", mesh, nodeId, x, y),
      _nvram("nvram", cfg, &_stats),
      _persistAcks(&_stats, "persistAcks", "PersistAck messages sent"),
      _logWrites(&_stats, "logWrites", "undo-log/checkpoint line writes"),
      _writeLatency(&_stats, "writeLatency",
                    "request-to-durable latency (cycles)")
{
}

void
MemoryController::handleWrite(WriteReq req)
{
    prof::ScopedPhase profPhase(prof::Phase::Nvm);
    const Tick now = curTick();
    const Tick durable = _nvram.write(now, req.addr);
    _writeLatency.sample(durable - now);
    if (req.isLog)
        _logWrites.inc();
    if (durable > _lastDurable)
        _lastDurable = durable;
    if (++_outstandingWrites == 1 && trace::probing()) [[unlikely]]
        _wqBusySince = now;

    scheduleIn(durable - now,
               [this, req = std::move(req), durable]() mutable {
        if (--_outstandingWrites == 0 && trace::probing() &&
            _wqBusySince != kTickNever) [[unlikely]] {
            trace::span(_wqBusySince, curTick(), name(), "write queue",
                        "NvmQ");
            _wqBusySince = kTickNever;
        }
        if (_observer) {
            _observer->onPersist(durable, req.addr, req.core, req.epoch,
                                 req.isLog);
        }
        _persistAcks.inc();
        if (req.onPersist)
            _ni.sendControl(req.replyTo, std::move(req.onPersist));
    });
}

void
MemoryController::handleRead(ReadReq req)
{
    prof::ScopedPhase profPhase(prof::Phase::Nvm);
    const Tick now = curTick();
    const Tick ready = _nvram.read(now, req.addr);
    simAssert(static_cast<bool>(req.onData), "read without onData");
    scheduleIn(ready - now, [this, req = std::move(req)]() mutable {
        _ni.sendData(req.replyTo, std::move(req.onData));
    });
}

} // namespace persim::nvm
