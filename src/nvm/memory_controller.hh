/**
 * @file
 * Memory controller: the mesh-facing front end of one NVRAM device.
 */

#ifndef PERSIM_NVM_MEMORY_CONTROLLER_HH
#define PERSIM_NVM_MEMORY_CONTROLLER_HH

#include <string>

#include "noc/network_interface.hh"
#include "sim/inline_callback.hh"
#include "nvm/nvram.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::nvm
{

/** A durable write request, as it arrives at the controller. */
struct WriteReq
{
    Addr addr = 0;
    /** Epoch tag carried by the line (kNoCore/kNoEpoch if untagged). */
    CoreId core = kNoCore;
    EpochId epoch = kNoEpoch;
    /** True for undo-log / checkpoint writes (stats + checker). */
    bool isLog = false;
    /** Requesting node; PersistAck travels back to it. */
    unsigned replyTo = 0;
    /** Runs at the requester when the PersistAck arrives. */
    InlineCallback onPersist;
};

/** A line read request (LLC miss fill). */
struct ReadReq
{
    Addr addr = 0;
    unsigned replyTo = 0;
    /** Runs at the requester when the data arrives. */
    InlineCallback onData;
};

/**
 * One of the (four) memory controllers at the mesh corners.
 *
 * Requests arrive as mesh deliveries that invoke handleWrite/handleRead;
 * service timing comes from the owned Nvram device; completions travel
 * back over the mesh (PersistAck as control, data as a data message).
 */
class MemoryController : public SimObject
{
  public:
    /**
     * @param name Instance name, e.g. "mc0".
     * @param eq Event queue.
     * @param mesh The on-chip network.
     * @param nodeId Mesh endpoint id of this controller.
     * @param x Router column to attach at.
     * @param y Router row to attach at.
     * @param cfg NVRAM timing parameters.
     */
    MemoryController(const std::string &name, EventQueue &eq,
                     noc::Mesh &mesh, unsigned nodeId, unsigned x,
                     unsigned y, const NvramConfig &cfg);

    /** Accept a durable write (call at delivery time). */
    void handleWrite(WriteReq req);

    /** Accept a read (call at delivery time). */
    void handleRead(ReadReq req);

    /** Attach the persist observer (ordering checker). */
    void setObserver(PersistObserver *obs) { _observer = obs; }

    unsigned nodeId() const { return _ni.nodeId(); }
    Nvram &nvram() { return _nvram; }
    StatGroup &stats() { return _stats; }

    /**
     * Tick of the last durable write accepted, i.e. the earliest time at
     * which the device is quiescent. Used by System::run drain logic.
     */
    Tick lastDurableTick() const { return _lastDurable; }

    /** Writes accepted but not yet durable (interval-stat sampling). */
    unsigned outstandingWrites() const { return _outstandingWrites; }

  private:
    StatGroup _stats;
    noc::NetworkInterface _ni;
    Nvram _nvram;
    PersistObserver *_observer = nullptr;
    Tick _lastDurable = 0;
    unsigned _outstandingWrites = 0;
    /** Start of the current non-empty write-queue residency episode. */
    Tick _wqBusySince = kTickNever;

    Scalar _persistAcks;
    Scalar _logWrites;
    Distribution _writeLatency;
};

/**
 * Line-interleaved address mapping to controllers.
 *
 * @param addr Any address.
 * @param numControllers Number of controllers (> 0).
 */
inline unsigned
mcIndexFor(Addr addr, unsigned numControllers)
{
    return static_cast<unsigned>(lineNum(addr)) % numControllers;
}

} // namespace persim::nvm

#endif // PERSIM_NVM_MEMORY_CONTROLLER_HH
