#include "nvm/nvram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace persim::nvm
{

Nvram::Nvram(std::string name, const NvramConfig &cfg, StatGroup *group)
    : _name(std::move(name)),
      _cfg(cfg),
      _bankFree(cfg.banks, 0),
      _writes(group, _name + ".writes", "durable line writes"),
      _reads(group, _name + ".reads", "line reads"),
      _writeQueueing(group, _name + ".writeQueueing",
                     "cycles writes queued behind a busy bank"),
      _readQueueing(group, _name + ".readQueueing",
                    "cycles reads queued behind a busy bank")
{
    simAssert(cfg.banks > 0, "NVRAM needs at least one bank");
}

Tick
Nvram::service(Tick now, Addr addr, Tick latency, Scalar &counter,
               Distribution &queueing)
{
    Tick &free = _bankFree[bankOf(addr)];
    Tick start = std::max(now, free);
    queueing.sample(start - now);
    free = start + latency;
    counter.inc();
    return free;
}

Tick
Nvram::write(Tick now, Addr addr)
{
    return service(now, addr, _cfg.writeLatency, _writes, _writeQueueing);
}

Tick
Nvram::read(Tick now, Addr addr)
{
    return service(now, addr, _cfg.readLatency, _reads, _readQueueing);
}

} // namespace persim::nvm
