/**
 * @file
 * Timing and durability model of one NVRAM device (one per controller).
 */

#ifndef PERSIM_NVM_NVRAM_HH
#define PERSIM_NVM_NVRAM_HH

#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim::nvm
{

/**
 * Observer of the durable-write stream.
 *
 * The ordering checker implements this to validate that the persist order
 * observed at the devices respects the epoch happens-before order.
 */
class PersistObserver
{
  public:
    virtual ~PersistObserver() = default;

    /**
     * A line became durable.
     *
     * @param when Tick at which the write became durable.
     * @param addr Line-aligned address.
     * @param core Core whose epoch wrote the line (kNoCore if untagged).
     * @param epoch Epoch that wrote the line (kNoEpoch if untagged).
     * @param isLog True for undo-log / checkpoint writes.
     */
    virtual void onPersist(Tick when, Addr addr, CoreId core,
                           EpochId epoch, bool isLog) = 0;
};

/** Timing parameters of an NVRAM device (Table 1 defaults). */
struct NvramConfig
{
    /** Cycles to durably write one line. */
    Tick writeLatency = 360;
    /** Cycles to read one line. */
    Tick readLatency = 240;
    /** Independent banks per device (bank-level parallelism). */
    unsigned banks = 32;

    /**
     * Low line-number bits to strip before bank selection. Controllers
     * are line-interleaved (mcIndexFor), so a device only ever sees
     * lines with equal low bits; without the shift only banks whose
     * index shares those bits would be used. Set to log2(numControllers)
     * by the System.
     */
    unsigned bankShift = 2;
};

/**
 * One NVRAM device: a set of independently busy banks.
 *
 * Values are not stored (the simulator is metadata-only); the device
 * provides access timing and reports durable writes to the observer.
 */
class Nvram
{
  public:
    Nvram(std::string name, const NvramConfig &cfg, StatGroup *group);

    /**
     * Schedule a durable write of @p addr.
     *
     * @param now Current tick.
     * @return Tick at which the line is durable.
     */
    Tick write(Tick now, Addr addr);

    /**
     * Schedule a read of @p addr.
     *
     * @param now Current tick.
     * @return Tick at which data is available.
     */
    Tick read(Tick now, Addr addr);

    const NvramConfig &config() const { return _cfg; }

    std::uint64_t writes() const { return _writes.value(); }
    std::uint64_t reads() const { return _reads.value(); }

  private:
    unsigned bankOf(Addr addr) const
    {
        return static_cast<unsigned>(lineNum(addr) >> _cfg.bankShift) %
               _cfg.banks;
    }

    /** Occupy the bank and return service completion time. */
    Tick service(Tick now, Addr addr, Tick latency, Scalar &counter,
                 Distribution &queueing);

    std::string _name;
    NvramConfig _cfg;
    std::vector<Tick> _bankFree;
    Scalar _writes;
    Scalar _reads;
    Distribution _writeQueueing;
    Distribution _readQueueing;
};

} // namespace persim::nvm

#endif // PERSIM_NVM_NVRAM_HH
