/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace persim
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runNext());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelSuppressesExecution)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue eq;
    eq.cancel(0);
    eq.cancel(12345);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(7, chain);
    };
    eq.scheduleIn(1, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 1u + 4 * 7);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(50, [] {}), SimPanic);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 10; t <= 100; t += 10)
        eq.schedule(t, [&] { ++count; });
    eq.runUntil(50);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 5u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue eq;
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, MaxEventsBound)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> loop = [&] {
        ++count;
        eq.scheduleIn(1, loop);
    };
    eq.scheduleIn(1, loop);
    EXPECT_EQ(eq.run(100), 100u);
    EXPECT_EQ(count, 100);
}

// ---------------------------------------------------------------------
// Pooled nodes, generation-bit cancellation, overflow guard
// ---------------------------------------------------------------------

TEST(EventQueue, CancelAfterFireLeavesNoResidue)
{
    // Regression: cancelling an already-fired (or repeatedly cancelled)
    // id used to park the id in a side table forever; the set grew
    // monotonically over a long run. Now a stale handle is rejected by
    // its generation check and leaves no bookkeeping behind.
    EventQueue eq;
    auto id = eq.schedule(10, [] {});
    eq.run();
    for (int i = 0; i < 100; ++i)
        eq.cancel(id); // fired: every cancel is a pure no-op
    EXPECT_EQ(eq.pendingCancellations(), 0u);
    EXPECT_EQ(eq.poolAllocated(), 1u);
    EXPECT_EQ(eq.poolFree(), 1u);

    auto id2 = eq.schedule(20, [] {});
    eq.cancel(id2);
    for (int i = 0; i < 100; ++i)
        eq.cancel(id2); // duplicate cancels of a cancelled id: no-ops
    EXPECT_EQ(eq.pendingCancellations(), 1u);
    eq.run();
    EXPECT_EQ(eq.pendingCancellations(), 0u);
    EXPECT_EQ(eq.poolAllocated(), 1u); // the node was recycled, not leaked
}

TEST(EventQueue, PoolNodesAreRecycled)
{
    EventQueue eq;
    for (int i = 0; i < 1000; ++i) {
        auto keep = eq.scheduleIn(1, [] {});
        auto drop = eq.scheduleIn(1, [] {});
        eq.cancel(drop);
        eq.run();
        (void)keep;
    }
    // Two events in flight at a time: the pool never needs more nodes.
    EXPECT_EQ(eq.poolAllocated(), 2u);
    EXPECT_EQ(eq.pendingCancellations(), 0u);
}

TEST(EventQueue, StaleHandleCannotCancelARecycledNode)
{
    EventQueue eq;
    auto id1 = eq.schedule(10, [] {});
    eq.run();
    bool ran = false;
    auto id2 = eq.schedule(20, [&] { ran = true; });
    EXPECT_NE(id1, id2); // same pool slot, new generation
    eq.cancel(id1);      // stale: must not hit the new occupant
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelledCaptureIsReleasedEagerly)
{
    // Cancelling drops the callback (and anything it owns) immediately,
    // without waiting for the node to surface at the heap top.
    EventQueue eq;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    auto id = eq.schedule(10, [token = std::move(token)] { (void)*token; });
    EXPECT_FALSE(watch.expired());
    eq.cancel(id);
    EXPECT_TRUE(watch.expired());
    eq.run();
}

TEST(EventQueue, ScheduleInOverflowPanics)
{
    EventQueue eq;
    eq.runUntil(100); // now() == 100
    EXPECT_THROW(eq.scheduleIn(kTickNever - 50, [] {}), SimPanic);
    // The boundary case still fits: now + delay == kTickNever.
    auto id = eq.scheduleIn(kTickNever - 100, [] {});
    eq.cancel(id);
}

TEST(EventQueue, ExecutedCounterCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i + 1, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

} // namespace persim
