/**
 * @file
 * Unit tests for the mesh network: routing, latency, serialization and
 * contention.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"
#include "noc/network_interface.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace persim::noc
{

namespace
{

MeshConfig
smallMesh()
{
    MeshConfig cfg;
    cfg.rows = 2;
    cfg.cols = 4;
    return cfg;
}

} // namespace

TEST(Mesh, HopCountIsManhattanDistance)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    mesh.attach(0, 0, 0);
    mesh.attach(1, 3, 1);
    mesh.attach(2, 0, 0); // co-located with node 0
    EXPECT_EQ(mesh.hops(0, 1), 4u);
    EXPECT_EQ(mesh.hops(1, 0), 4u);
    EXPECT_EQ(mesh.hops(0, 2), 0u);
}

TEST(Mesh, IdleLatencyMatchesFormula)
{
    EventQueue eq;
    MeshConfig cfg = smallMesh(); // router 2cy, link 1cy, 16B flits
    Mesh mesh("mesh", eq, cfg);
    mesh.attach(0, 0, 0);
    mesh.attach(1, 2, 0);
    // 2 hops, 1 flit: inject(2) + 2*(2+1) + eject link(1) + 0 = 9.
    EXPECT_EQ(mesh.idleLatency(0, 1, 8), 9u);
    // 5 flits (72B): + 4 cycles of tail serialization.
    EXPECT_EQ(mesh.idleLatency(0, 1, 72), 13u);
}

TEST(Mesh, DeliversAtComputedTick)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    mesh.attach(0, 0, 0);
    mesh.attach(1, 3, 0);
    Tick delivered = 0;
    const Tick expected = mesh.idleLatency(0, 1, 8);
    mesh.send(0, 1, 8, [&] { delivered = eq.now(); });
    eq.run();
    EXPECT_EQ(delivered, expected);
}

TEST(Mesh, SameRouterStillPaysLocalLatency)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    mesh.attach(0, 1, 1);
    mesh.attach(1, 1, 1);
    Tick delivered = 0;
    mesh.send(0, 1, 8, [&] { delivered = eq.now(); });
    eq.run();
    EXPECT_GT(delivered, 0u);
    EXPECT_LE(delivered, 4u);
}

TEST(Mesh, ContentionSerializesOnSharedLink)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    mesh.attach(0, 0, 0);
    mesh.attach(1, 3, 0);
    std::vector<Tick> arrivals;
    // Ten 72B packets (5 flits) injected the same tick over one path:
    // the first link serializes them 5 cycles apart.
    for (int i = 0; i < 10; ++i)
        mesh.send(0, 1, 72, [&] { arrivals.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(arrivals.size(), 10u);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i], arrivals[i - 1] + 5);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    mesh.attach(0, 0, 0);
    mesh.attach(1, 1, 0);
    mesh.attach(2, 2, 1);
    mesh.attach(3, 3, 1);
    Tick t01 = 0, t23 = 0;
    mesh.send(0, 1, 72, [&] { t01 = eq.now(); });
    mesh.send(2, 3, 72, [&] { t23 = eq.now(); });
    eq.run();
    EXPECT_EQ(t01, mesh.idleLatency(0, 1, 72));
    EXPECT_EQ(t23, mesh.idleLatency(2, 3, 72));
}

TEST(Mesh, StatsCountPacketsAndFlits)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    mesh.attach(0, 0, 0);
    mesh.attach(1, 3, 1);
    mesh.send(0, 1, 8, [] {});
    mesh.send(0, 1, 72, [] {});
    eq.run();
    EXPECT_EQ(mesh.packetsSent(), 2u);
    std::map<std::string, double> m;
    mesh.stats().toMap(m);
    EXPECT_DOUBLE_EQ(m["mesh.flits"], 6.0); // 1 + 5
}

TEST(Mesh, UnattachedNodesPanic)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    mesh.attach(0, 0, 0);
    EXPECT_THROW(mesh.send(0, 9, 8, [] {}), SimPanic);
    EXPECT_THROW(mesh.hops(5, 0), SimPanic);
    EXPECT_THROW(mesh.attach(0, 1, 1), SimPanic); // double attach
    EXPECT_THROW(mesh.attach(7, 9, 9), SimPanic); // off-mesh
}

TEST(NetworkInterface, SendsStandardSizes)
{
    EventQueue eq;
    Mesh mesh("mesh", eq, smallMesh());
    NetworkInterface a("a", mesh, 0, 0, 0);
    NetworkInterface b("b", mesh, 1, 3, 1);
    int got = 0;
    a.sendControl(1, [&] { ++got; });
    b.sendData(0, [&] { ++got; });
    eq.run();
    EXPECT_EQ(got, 2);
    std::map<std::string, double> m;
    mesh.stats().toMap(m);
    EXPECT_DOUBLE_EQ(m["mesh.flits"], 1.0 + 5.0);
}

} // namespace persim::noc
