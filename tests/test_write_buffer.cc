/**
 * @file
 * Write-buffer tests: the ring/filter structure in isolation, plus the
 * core-level drain protocol driven through small scripted systems —
 * full-buffer stall/resume, same-line stores straddling an epoch
 * boundary, and stores draining while an epoch flush is in flight.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/write_buffer.hh"
#include "model/system.hh"
#include "sim/logging.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;

namespace
{

class Script : public cpu::Workload
{
  public:
    explicit Script(std::vector<cpu::MemOp> ops) : _ops(std::move(ops)) {}

    cpu::MemOp
    next(Tick) override
    {
        if (_pos >= _ops.size())
            return cpu::MemOp::halt();
        return _ops[_pos++];
    }

  private:
    std::vector<cpu::MemOp> _ops;
    std::size_t _pos = 0;
};

constexpr Addr kBase = Addr{1} << 32;

SystemConfig
scriptedConfig(PersistencyModel pm, persist::BarrierKind barrier,
               unsigned wbEntries)
{
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, pm, barrier);
    cfg.writeBufferEntries = wbEntries;
    cfg.autoBarrierEvery = 0; // barriers come from the script only
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Structure-level: the ring and its line filter.
// ---------------------------------------------------------------------

TEST(WriteBuffer, RingWrapAroundKeepsFifo)
{
    // Capacity 5 rounds up to an 8-slot ring; cycling many more than 8
    // entries through it forces the head/tail indices to wrap repeatedly
    // while order and containment must hold throughout.
    cpu::WriteBuffer wb(5);
    Addr next = 0x1000;
    Addr expectFront = next;
    for (int i = 0; i < 5; ++i)
        wb.push(next += 0x40);
    expectFront = 0x1040;
    for (int cycle = 0; cycle < 100; ++cycle) {
        EXPECT_EQ(wb.front().addr, expectFront);
        EXPECT_TRUE(wb.containsLine(expectFront));
        wb.pop();
        EXPECT_FALSE(wb.containsLine(expectFront));
        expectFront += 0x40;
        wb.push(next += 0x40);
        EXPECT_EQ(wb.size(), 5u);
    }
}

TEST(WriteBuffer, FilterCollisionsStayExact)
{
    // The 64-slot line filter hashes many lines onto few slots; probing
    // hundreds of absent lines guarantees some share a slot with the one
    // buffered line. Containment must still come back false for every
    // one of them (the filter only short-circuits negatives; positives
    // re-check the ring exactly).
    cpu::WriteBuffer wb(8);
    const Addr resident = 0x4000;
    wb.push(resident);
    for (Addr line = 0x8000; line < 0x8000 + 512 * 0x40; line += 0x40)
        EXPECT_FALSE(wb.containsLine(line)) << std::hex << line;
    EXPECT_TRUE(wb.containsLine(resident));
    EXPECT_TRUE(wb.containsLine(resident + 0x3F)); // same line
}

TEST(WriteBuffer, SameLineEntriesCountedIndividually)
{
    // Three stores to one line (different byte offsets) occupy three
    // slots; the line stays visible to forwarding until the last one
    // drains.
    cpu::WriteBuffer wb(8);
    wb.push(0x100);
    wb.push(0x108);
    wb.push(0x13C);
    EXPECT_EQ(wb.size(), 3u);
    wb.pop();
    EXPECT_TRUE(wb.containsLine(0x100));
    wb.pop();
    EXPECT_TRUE(wb.containsLine(0x100));
    wb.pop();
    EXPECT_FALSE(wb.containsLine(0x100));
    EXPECT_TRUE(wb.empty());
}

// ---------------------------------------------------------------------
// Core-level: the drain protocol through a scripted system.
// ---------------------------------------------------------------------

TEST(WriteBuffer, FullBufferStallsAndResumesInOrder)
{
    // A 2-entry buffer with a burst of 8 stores must stall the core at
    // least once, then resume and commit every store (drains are serial,
    // so a burst this size cannot fit without stalling).
    SystemConfig cfg = scriptedConfig(PersistencyModel::NoPersistency,
                                      persist::BarrierKind::None, 2);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (Addr i = 0; i < 8; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * 0x40));
    // The last-issued store's line must still forward after the burst.
    ops.push_back(cpu::MemOp::load(kBase + 7 * 0x40));
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    EXPECT_EQ(stats["core[0].stores"], 8.0);
    EXPECT_GE(stats["core[0].wbStalls"], 1.0);
}

TEST(WriteBuffer, SameLineStoresAcrossEpochBoundary)
{
    // Two stores to the same line separated by a persist barrier land in
    // different epochs. Under BEP the barrier is asynchronous, so the
    // second store can enter the buffer while the first epoch is still
    // flushing; both epochs must eventually persist and the trailing
    // load still sees the line.
    SystemConfig cfg = scriptedConfig(PersistencyModel::BufferedEpoch,
                                      persist::BarrierKind::LB, 4);
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::store(kBase),
                           cpu::MemOp::barrier(),
                           cpu::MemOp::store(kBase),
                           cpu::MemOp::load(kBase),
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    EXPECT_EQ(stats["core[0].stores"], 2.0);
    EXPECT_EQ(stats["core[0].barriers"], 1.0);
    EXPECT_GE(stats["persist.arbiter[0].epochsPersisted"], 1.0);
}

TEST(WriteBuffer, DrainsWhileEpochFlushInFlight)
{
    // Under EP the barrier blocks until the closing epoch's lines are
    // durable. With a tiny buffer, the post-barrier burst both stalls
    // and drains while the flush engine is persisting the previous
    // epoch's lines — the interleaving the drain/flush handshake must
    // survive. Everything must commit and both epochs persist.
    SystemConfig cfg = scriptedConfig(PersistencyModel::Epoch,
                                      persist::BarrierKind::LB, 2);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (Addr i = 0; i < 4; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * 0x40));
    ops.push_back(cpu::MemOp::barrier());
    for (Addr i = 0; i < 4; ++i)
        ops.push_back(cpu::MemOp::store(kBase + (i + 8) * 0x40));
    ops.push_back(cpu::MemOp::barrier());
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    EXPECT_EQ(stats["core[0].stores"], 8.0);
    EXPECT_EQ(stats["core[0].barriers"], 2.0);
    EXPECT_GE(stats["core[0].wbStalls"], 1.0);
    EXPECT_GE(stats["persist.arbiter[0].epochsPersisted"], 2.0);
}

} // namespace persim
