/**
 * @file
 * Tests for the RecoveryAnalysis API (crash-point recoverability).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "model/recovery.hh"
#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim::model
{

using Event = OrderingChecker::PersistEvent;

namespace
{

Event
data(Tick when, Addr addr, CoreId core, EpochId epoch)
{
    return Event{when, addr, core, epoch, false};
}

} // namespace

TEST(RecoveryAnalysis, EmptyLogIsConsistent)
{
    std::vector<Event> log;
    RecoveryAnalysis ra(log, 2);
    RecoveryReport rep = ra.analyze(0);
    EXPECT_TRUE(rep.consistent);
    EXPECT_EQ(rep.durableLines, 0u);
    EXPECT_EQ(rep.cores[0].lastComplete, kNoEpoch);
}

TEST(RecoveryAnalysis, PrefixOfEpochsRecovered)
{
    std::vector<Event> log = {
        data(10, 0x100, 0, 0), data(20, 0x140, 0, 0), // epoch 0: 2 lines
        data(30, 0x180, 0, 1),                        // epoch 1: 1 line
    };
    RecoveryAnalysis ra(log, 1);

    RecoveryReport afterTwo = ra.analyze(2);
    EXPECT_TRUE(afterTwo.consistent);
    EXPECT_EQ(afterTwo.cores[0].lastComplete, 0u);
    EXPECT_FALSE(afterTwo.cores[0].hasPartialEpoch);

    RecoveryReport afterAll = ra.analyze(3);
    EXPECT_TRUE(afterAll.consistent);
    EXPECT_EQ(afterAll.cores[0].lastComplete, 1u);
}

TEST(RecoveryAnalysis, PartialTailEpochIsUndoable)
{
    std::vector<Event> log = {
        data(10, 0x100, 0, 0),
        data(20, 0x140, 0, 1), data(30, 0x180, 0, 1),
    };
    RecoveryAnalysis ra(log, 1);
    RecoveryReport rep = ra.analyze(2); // epoch 1 half-done
    EXPECT_TRUE(rep.consistent);
    EXPECT_EQ(rep.cores[0].lastComplete, 0u);
    ASSERT_TRUE(rep.cores[0].hasPartialEpoch);
    EXPECT_EQ(rep.cores[0].partialEpoch, 1u);
    ASSERT_EQ(rep.cores[0].linesToUndo.size(), 1u);
    EXPECT_EQ(rep.cores[0].linesToUndo[0], 0x140u);
}

TEST(RecoveryAnalysis, OutOfOrderPersistIsInconsistent)
{
    // Epoch 1's line durable while epoch 0 is missing one.
    std::vector<Event> log = {
        data(10, 0x100, 0, 0),
        data(20, 0x180, 0, 1), // out of order!
        data(30, 0x140, 0, 0),
    };
    RecoveryAnalysis ra(log, 1);
    // Full log: everything durable -> consistent.
    EXPECT_TRUE(ra.analyze(3).consistent);
    // But at crash point 2, epoch 0 is partial while epoch 1 persisted.
    RecoveryReport rep = ra.analyze(2);
    EXPECT_FALSE(rep.consistent);
    EXPECT_FALSE(rep.problems.empty());
    EXPECT_EQ(ra.firstInconsistency(), 2u);
}

TEST(RecoveryAnalysis, LogWritesDoNotCount)
{
    std::vector<Event> log = {
        Event{5, 0x900, 0, 0, true}, // undo-log write
        data(10, 0x100, 0, 0),
    };
    RecoveryAnalysis ra(log, 1);
    RecoveryReport rep = ra.analyze(2);
    EXPECT_TRUE(rep.consistent);
    EXPECT_EQ(rep.durableLines, 1u);
}

TEST(RecoveryAnalysis, CoresAreIndependent)
{
    std::vector<Event> log = {
        data(10, 0x100, 0, 0), data(20, 0x200, 1, 0),
        data(30, 0x140, 0, 1), data(40, 0x240, 1, 1),
    };
    RecoveryAnalysis ra(log, 2);
    RecoveryReport rep = ra.analyze(3);
    EXPECT_TRUE(rep.consistent);
    EXPECT_EQ(rep.cores[0].lastComplete, 1u);
    EXPECT_EQ(rep.cores[1].lastComplete, 0u);
}

TEST(RecoveryAnalysis, RealRunIsRecoverableEverywhere)
{
    model::SystemConfig cfg = model::SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, model::PersistencyModel::BufferedEpoch,
                          persist::BarrierKind::LBPP);
    cfg.keepPersistLog = true;
    model::System sys(cfg);
    workload::MicroConfig mc;
    mc.kind = workload::MicroKind::Hash;
    mc.numThreads = 4;
    mc.opsPerThread = 50;
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    model::SimResult res = sys.run();
    ASSERT_TRUE(res.completed);

    RecoveryAnalysis ra(sys.checker()->log(), 4);
    EXPECT_GT(ra.logSize(), 0u);
    EXPECT_GT(ra.firstInconsistency(), ra.logSize());
}

} // namespace persim::model
