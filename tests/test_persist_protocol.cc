/**
 * @file
 * Protocol-level tests of the persist machinery: conflict taxonomy,
 * the epoch-flush handshake, IDT, epoch splitting (Figure 5), and the
 * clwb/clflush variants — driven by hand-built scenario workloads on
 * small systems.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;
using persist::BarrierKind;

namespace
{

/** Replays a fixed op list, then halts. */
class ScriptWorkload : public cpu::Workload
{
  public:
    explicit ScriptWorkload(std::vector<cpu::MemOp> ops)
        : _ops(std::move(ops))
    {
    }

    cpu::MemOp
    next(Tick) override
    {
        if (_pos >= _ops.size())
            return cpu::MemOp::halt();
        return _ops[_pos++];
    }

  private:
    std::vector<cpu::MemOp> _ops;
    std::size_t _pos = 0;
};

constexpr Addr kBase = Addr{1} << 32;

SystemConfig
smallBep(BarrierKind kind)
{
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch, kind);
    return cfg;
}

} // namespace

TEST(PersistProtocol, SingleEpochFlushHandshake)
{
    // One thread writes 4 lines, barriers, and drains: every bank must
    // see the FlushEpoch broadcast and the arbiter must collect acks.
    SystemConfig cfg = smallBep(BarrierKind::LB);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 4; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * kLineBytes));
    ops.push_back(cpu::MemOp::barrier());
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());

    auto stats = sys.stats();
    // The epoch (and the trailing drain epoch bookkeeping) persisted.
    EXPECT_GE(stats["persist.arbiter[0].epochsPersisted"], 1.0);
    // Every bank saw the FlushEpoch broadcast of the non-trivial epoch.
    double flushMsgs = 0, bankAcks = 0, cmps = 0;
    for (unsigned b = 0; b < cfg.numCores; ++b) {
        flushMsgs += stats["llc[" + std::to_string(b) + "].flushEpochMsgs"];
        bankAcks += stats["llc[" + std::to_string(b) + "].bankAcksSent"];
        cmps += stats["llc[" + std::to_string(b) + "].persistCmpSeen"];
    }
    EXPECT_EQ(flushMsgs, cfg.numCores * 1.0);
    EXPECT_EQ(bankAcks, cfg.numCores * 1.0);
    EXPECT_EQ(cmps, cfg.numCores * 1.0);
    // All four lines reached NVRAM exactly once.
    double writes = 0;
    for (unsigned m = 0; m < cfg.numMemControllers; ++m)
        writes += stats["mc[" + std::to_string(m) + "].nvram.writes"];
    EXPECT_EQ(writes, 4.0);
}

TEST(PersistProtocol, IntraThreadConflictFlushesOlderEpoch)
{
    // St A | barrier | St A again: the second store conflicts with the
    // first epoch (Figure 3b) and must wait for it to persist.
    SystemConfig cfg = smallBep(BarrierKind::LB);
    System sys(cfg);
    std::vector<cpu::MemOp> ops = {
        cpu::MemOp::store(kBase),
        cpu::MemOp::barrier(),
        cpu::MemOp::store(kBase),
        cpu::MemOp::barrier(),
    };
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    EXPECT_EQ(stats["persist.intraConflicts"], 1.0);
    EXPECT_EQ(stats["persist.interConflicts"], 0.0);
    EXPECT_GE(stats["persist.arbiter[0].flushIntra"], 1.0);
}

TEST(PersistProtocol, ReadsNeverConflictIntraThread)
{
    SystemConfig cfg = smallBep(BarrierKind::LB);
    System sys(cfg);
    std::vector<cpu::MemOp> ops = {
        cpu::MemOp::store(kBase),
        cpu::MemOp::barrier(),
        cpu::MemOp::load(kBase), // same line, read: no conflict (§3.2)
        cpu::MemOp::barrier(),
    };
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    EXPECT_EQ(stats["persist.intraConflicts"], 0.0);
}

TEST(PersistProtocol, InterThreadConflictDetectedAtBank)
{
    // T0 writes Y and completes its epoch; T1 then reads Y (Figure 3a).
    SystemConfig cfg = smallBep(BarrierKind::LB);
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::store(kBase),
                               cpu::MemOp::barrier(),
                           }));
    sys.setWorkload(1, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::compute(3000),
                               cpu::MemOp::load(kBase),
                           }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    EXPECT_GE(stats["persist.interConflicts"], 1.0);
    // LB (no IDT): resolved online.
    EXPECT_EQ(stats["persist.idtResolutions"], 0.0);
}

TEST(PersistProtocol, IdtAbsorbsInterThreadConflict)
{
    SystemConfig cfg = smallBep(BarrierKind::LBIDT);
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::store(kBase),
                               cpu::MemOp::barrier(),
                           }));
    sys.setWorkload(1, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::compute(3000),
                               cpu::MemOp::load(kBase),
                               cpu::MemOp::store(kBase + 4096),
                               cpu::MemOp::barrier(),
                           }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    EXPECT_GE(stats["persist.idtResolutions"], 1.0);
    EXPECT_GE(stats["persist.arbiter[1].idtDepsRecorded"], 1.0);
}

TEST(PersistProtocol, WriteWriteSharingStealsIncarnation)
{
    // T1 overwrites T0's unpersisted line (IDT): the incarnation moves
    // to T1's epoch and the ordering edge is still enforced.
    SystemConfig cfg = smallBep(BarrierKind::LBIDT);
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::store(kBase),
                               cpu::MemOp::barrier(),
                           }));
    sys.setWorkload(1, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::compute(3000),
                               cpu::MemOp::store(kBase),
                               cpu::MemOp::barrier(),
                           }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "violation: " << res.violations.front();
    auto stats = sys.stats();
    EXPECT_GE(stats["persist.stealsClean"] +
                  stats["persist.stealsInFlight"],
              1.0);
}

TEST(PersistProtocol, Figure5DeadlockWithoutSplitting)
{
    SystemConfig cfg = smallBep(BarrierKind::LB);
    cfg.barrier.splitOngoing = false;
    System sys(cfg);
    // Ei and Ej stay ongoing while each reads the other's dirty line.
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::store(kBase),
                               cpu::MemOp::compute(2000),
                               cpu::MemOp::load(kBase + 4096),
                               cpu::MemOp::barrier(),
                           }));
    sys.setWorkload(1, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::store(kBase + 4096),
                               cpu::MemOp::compute(2000),
                               cpu::MemOp::load(kBase),
                               cpu::MemOp::barrier(),
                           }));
    SimResult res = sys.run();
    EXPECT_TRUE(res.deadlocked);
    EXPECT_FALSE(res.completed);
}

TEST(PersistProtocol, Figure5AvoidedBySplitting)
{
    SystemConfig cfg = smallBep(BarrierKind::LB);
    ASSERT_TRUE(cfg.barrier.splitOngoing);
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::store(kBase),
                               cpu::MemOp::compute(2000),
                               cpu::MemOp::load(kBase + 4096),
                               cpu::MemOp::barrier(),
                           }));
    sys.setWorkload(1, std::make_unique<ScriptWorkload>(
                           std::vector<cpu::MemOp>{
                               cpu::MemOp::store(kBase + 4096),
                               cpu::MemOp::compute(2000),
                               cpu::MemOp::load(kBase),
                               cpu::MemOp::barrier(),
                           }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    EXPECT_GE(stats["persist.arbiter[0].splits"] +
                  stats["persist.arbiter[1].splits"],
              1.0);
}

TEST(PersistProtocol, EpochWindowBackpressure)
{
    // More barriers than the in-flight window: the core must stall and
    // recover (the stall demands flushes, §4.3).
    SystemConfig cfg = smallBep(BarrierKind::LB);
    cfg.barrier.maxInflightEpochs = 2;
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int e = 0; e < 12; ++e) {
        ops.push_back(cpu::MemOp::store(kBase + e * 4096));
        ops.push_back(cpu::MemOp::barrier());
    }
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    EXPECT_GE(stats["persist.arbiter[0].barrierStalls"], 1.0);
    EXPECT_GE(stats["persist.arbiter[0].epochsPersisted"], 12.0);
}

TEST(PersistProtocol, InvalidatingFlushDropsLines)
{
    // clflush-mode: after the flush the line re-misses; clwb keeps it.
    auto runWith = [](bool invalidating) {
        SystemConfig cfg = smallBep(BarrierKind::LB);
        cfg.barrier.invalidatingFlush = invalidating;
        System sys(cfg);
        std::vector<cpu::MemOp> ops = {
            cpu::MemOp::store(kBase),    cpu::MemOp::barrier(),
            cpu::MemOp::store(kBase),    // conflict -> flush of epoch 0
            cpu::MemOp::barrier(),
        };
        sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
        SimResult res = sys.run();
        EXPECT_TRUE(res.completed);
        auto stats = sys.stats();
        return stats["l1[0].misses"];
    };
    const double missesClwb = runWith(false);
    const double missesClflush = runWith(true);
    EXPECT_GT(missesClflush, missesClwb);
}

TEST(PersistProtocol, BlockingBarrierWaitsForPersist)
{
    // EP barriers block: execution time must exceed the NVRAM write
    // latency for each epoch with dirty lines.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::Epoch, BarrierKind::LB);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int e = 0; e < 4; ++e) {
        ops.push_back(cpu::MemOp::store(kBase + e * 4096));
        ops.push_back(cpu::MemOp::barrier());
    }
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GE(res.execTicks, 4 * cfg.nvram.writeLatency);
}

TEST(PersistProtocol, ChecksumOfProtocolMessageEconomy)
{
    // O(n^2) strawman sends more mesh packets than the arbiter design
    // for the same workload (§4.1).
    auto packets = [](bool useArbiter) {
        SystemConfig cfg = smallBep(BarrierKind::LB);
        cfg.barrier.useArbiter = useArbiter;
        System sys(cfg);
        std::vector<cpu::MemOp> ops;
        for (int e = 0; e < 6; ++e) {
            ops.push_back(cpu::MemOp::store(kBase + e * 4096));
            ops.push_back(cpu::MemOp::store(kBase));  // forces conflicts
            ops.push_back(cpu::MemOp::barrier());
        }
        sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
        SimResult res = sys.run();
        EXPECT_TRUE(res.completed);
        return sys.mesh().packetsSent();
    };
    EXPECT_GT(packets(false), packets(true));
}

TEST(PersistProtocol, BspLogsPersistBeforeData)
{
    // The checker enforces the §5.2.1 rule; a clean run proves the
    // machinery orders undo-log writes ahead of epoch data.
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          BarrierKind::LBPP, 32);
    System sys(cfg);
    auto workloads = workload::makeSyntheticWorkloads("dedup", 4, 600, 3);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "violation: " << res.violations.front();
    auto stats = sys.stats();
    double logs = 0, ckpts = 0;
    for (unsigned c = 0; c < 4; ++c) {
        logs += stats["persist.arbiter[" + std::to_string(c) +
                      "].logWrites"];
        ckpts += stats["persist.arbiter[" + std::to_string(c) +
                       "].checkpointLines"];
    }
    EXPECT_GT(logs, 0.0);
    EXPECT_GT(ckpts, 0.0);
}

TEST(PersistProtocol, DrainLeavesNoUnpersistedState)
{
    SystemConfig cfg = smallBep(BarrierKind::LB);
    System sys(cfg);
    // Stores with NO final barrier: the end-of-run drain must flush the
    // open tail epoch.
    std::vector<cpu::MemOp> ops = {
        cpu::MemOp::store(kBase),
        cpu::MemOp::store(kBase + 4096),
    };
    sys.setWorkload(0, std::make_unique<ScriptWorkload>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_GT(res.drainTicks, res.execTicks);
    auto stats = sys.stats();
    EXPECT_GE(stats["persist.arbiter[0].flushDrain"], 1.0);
}

} // namespace persim
