/**
 * @file
 * Unit tests for the NVRAM timing model and memory controllers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/mesh.hh"
#include "nvm/memory_controller.hh"
#include "nvm/nvram.hh"
#include "sim/event_queue.hh"

namespace persim::nvm
{

TEST(Nvram, BasicLatencies)
{
    StatGroup g("g");
    Nvram dev("dev", NvramConfig{}, &g);
    EXPECT_EQ(dev.write(1000, 0x40), 1000u + 360u); // line 1 -> bank 0
    EXPECT_EQ(dev.read(1000, 0x100), 1000u + 240u); // line 4 -> bank 1
}

TEST(Nvram, SameBankSerializes)
{
    NvramConfig cfg;
    cfg.banks = 4;
    cfg.bankShift = 2; // 4 controllers: lines 0,4,8,... reach this one
    Nvram dev("dev", cfg, nullptr);
    // Lines 0 and 16 map to bank 0 (shift strips the controller bits).
    const Tick t1 = dev.write(0, 0 * 64);
    const Tick t2 = dev.write(0, 16 * 64);
    EXPECT_EQ(t1, 360u);
    EXPECT_EQ(t2, 720u);
    // Line 4 maps to bank 1, which is free.
    EXPECT_EQ(dev.write(0, 4 * 64), 360u);
}

TEST(Nvram, CountsAccesses)
{
    Nvram dev("dev", NvramConfig{}, nullptr);
    dev.write(0, 0x40);
    dev.write(10, 0x80);
    dev.read(20, 0xC0);
    EXPECT_EQ(dev.writes(), 2u);
    EXPECT_EQ(dev.reads(), 1u);
}

namespace
{

struct TestObserver : PersistObserver
{
    struct Rec
    {
        Tick when;
        Addr addr;
        CoreId core;
        EpochId epoch;
        bool isLog;
    };
    std::vector<Rec> recs;

    void
    onPersist(Tick when, Addr addr, CoreId core, EpochId epoch,
              bool isLog) override
    {
        recs.push_back({when, addr, core, epoch, isLog});
    }
};

} // namespace

TEST(MemoryController, WritePersistAckRoundTrip)
{
    EventQueue eq;
    noc::MeshConfig mc;
    mc.rows = 1;
    mc.cols = 2;
    noc::Mesh mesh("mesh", eq, mc);
    MemoryController ctrl("mc0", eq, mesh, 10, 0, 0, NvramConfig{});
    mesh.attach(0, 1, 0); // requester node

    TestObserver obs;
    ctrl.setObserver(&obs);

    Tick ackAt = 0;
    WriteReq req;
    req.addr = 0x1040;
    req.core = 3;
    req.epoch = 7;
    req.replyTo = 0;
    req.onPersist = [&] { ackAt = eq.now(); };
    ctrl.handleWrite(std::move(req));
    eq.run();

    ASSERT_EQ(obs.recs.size(), 1u);
    EXPECT_EQ(obs.recs[0].addr, 0x1040u);
    EXPECT_EQ(obs.recs[0].core, 3);
    EXPECT_EQ(obs.recs[0].epoch, 7u);
    EXPECT_FALSE(obs.recs[0].isLog);
    EXPECT_EQ(obs.recs[0].when, 360u); // durable point
    EXPECT_GT(ackAt, obs.recs[0].when); // ack travels over the mesh
    EXPECT_GE(ctrl.lastDurableTick(), 360u);
}

TEST(MemoryController, ReadReturnsData)
{
    EventQueue eq;
    noc::MeshConfig mc;
    mc.rows = 1;
    mc.cols = 2;
    noc::Mesh mesh("mesh", eq, mc);
    MemoryController ctrl("mc0", eq, mesh, 10, 0, 0, NvramConfig{});
    mesh.attach(0, 1, 0);

    Tick dataAt = 0;
    ReadReq req;
    req.addr = 0x2000;
    req.replyTo = 0;
    req.onData = [&] { dataAt = eq.now(); };
    ctrl.handleRead(std::move(req));
    eq.run();
    EXPECT_GT(dataAt, 240u);
}

TEST(MemoryController, LogWritesCounted)
{
    EventQueue eq;
    noc::MeshConfig mc;
    mc.rows = 1;
    mc.cols = 2;
    noc::Mesh mesh("mesh", eq, mc);
    MemoryController ctrl("mc0", eq, mesh, 10, 0, 0, NvramConfig{});
    mesh.attach(0, 1, 0);
    WriteReq req;
    req.addr = 0x40;
    req.isLog = true;
    req.replyTo = 0;
    ctrl.handleWrite(std::move(req));
    eq.run();
    std::map<std::string, double> m;
    ctrl.stats().toMap(m);
    EXPECT_DOUBLE_EQ(m["mc0.logWrites"], 1.0);
    EXPECT_DOUBLE_EQ(m["mc0.persistAcks"], 1.0);
}

TEST(McIndex, LineInterleavesAcrossControllers)
{
    EXPECT_EQ(mcIndexFor(0 * 64, 4), 0u);
    EXPECT_EQ(mcIndexFor(1 * 64, 4), 1u);
    EXPECT_EQ(mcIndexFor(2 * 64, 4), 2u);
    EXPECT_EQ(mcIndexFor(3 * 64, 4), 3u);
    EXPECT_EQ(mcIndexFor(4 * 64, 4), 0u);
    EXPECT_EQ(mcIndexFor(4 * 64 + 63, 4), 0u);
}

} // namespace persim::nvm
