/**
 * @file
 * End-to-end smoke tests: small systems running real workloads under
 * every barrier variant and persistency model, with the ordering checker
 * validating each run.
 */

#include <gtest/gtest.h>

#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;
using persist::BarrierKind;

namespace
{

SimResult
runMicro(workload::MicroKind kind, PersistencyModel pm, BarrierKind bk,
         unsigned cores = 4, std::uint64_t ops = 30)
{
    SystemConfig cfg = SystemConfig::smallTest(cores);
    applyPersistencyModel(cfg, pm, bk);
    System sys(cfg);
    workload::MicroConfig mc;
    mc.kind = kind;
    mc.numThreads = cores;
    mc.opsPerThread = ops;
    mc.structureSize = 64;
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < cores; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    return sys.run();
}

} // namespace

TEST(IntegrationSmoke, HashUnderLb)
{
    SimResult res = runMicro(workload::MicroKind::Hash,
                             PersistencyModel::BufferedEpoch,
                             BarrierKind::LB);
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked
                               << " timedOut=" << res.timedOut;
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
    EXPECT_EQ(res.transactions, 4u * 30u);
}

TEST(IntegrationSmoke, HashUnderLbpp)
{
    SimResult res = runMicro(workload::MicroKind::Hash,
                             PersistencyModel::BufferedEpoch,
                             BarrierKind::LBPP);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
}

TEST(IntegrationSmoke, QueueUnderLbIdt)
{
    SimResult res = runMicro(workload::MicroKind::Queue,
                             PersistencyModel::BufferedEpoch,
                             BarrierKind::LBIDT);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
}

TEST(IntegrationSmoke, RbTreeUnderLbPf)
{
    SimResult res = runMicro(workload::MicroKind::RbTree,
                             PersistencyModel::BufferedEpoch,
                             BarrierKind::LBPF);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
}

TEST(IntegrationSmoke, SdgUnderLbpp)
{
    SimResult res = runMicro(workload::MicroKind::Sdg,
                             PersistencyModel::BufferedEpoch,
                             BarrierKind::LBPP);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
}

TEST(IntegrationSmoke, SpsUnderLb)
{
    SimResult res = runMicro(workload::MicroKind::Sps,
                             PersistencyModel::BufferedEpoch,
                             BarrierKind::LB);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
}

TEST(IntegrationSmoke, NoPersistencyBaseline)
{
    SimResult res = runMicro(workload::MicroKind::Hash,
                             PersistencyModel::NoPersistency,
                             BarrierKind::None);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
}

TEST(IntegrationSmoke, EpochPersistencyBlocksButCompletes)
{
    SimResult res = runMicro(workload::MicroKind::Hash,
                             PersistencyModel::Epoch, BarrierKind::LB);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
}

TEST(IntegrationSmoke, WriteThroughStrictPersistency)
{
    SimResult res = runMicro(workload::MicroKind::Hash,
                             PersistencyModel::Strict, BarrierKind::None);
    ASSERT_TRUE(res.completed);
}

TEST(IntegrationSmoke, BspBulkModeWithLogging)
{
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          BarrierKind::LBPP, /*epochSize=*/64);
    System sys(cfg);
    auto workloads =
        workload::makeSyntheticWorkloads("ssca2", 4, 800, 42);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked
                               << " timedOut=" << res.timedOut;
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
    auto stats = sys.stats();
    EXPECT_GT(stats["persist.arbiter[0].logWrites"], 0.0);
}

} // namespace persim
