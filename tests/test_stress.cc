/**
 * @file
 * Stress tests: pathological cache pressure, contention and feature
 * combinations, each validated by the ordering checker and the
 * end-of-run accounting invariants.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;
using persist::BarrierKind;

namespace
{

/** Small caches + cross-heavy partitioned micro = maximum interaction
 * between replacement conflicts, splits, steals and IDT. */
SimResult
stressRun(BarrierKind barrier, bool invalidating, bool tinyLlc,
          std::uint64_t seed, workload::MicroKind kind)
{
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch, barrier);
    cfg.barrier.invalidatingFlush = invalidating;
    cfg.barrier.maxInflightEpochs = 3; // tight window
    cfg.barrier.idtRegsPerEpoch = 1;   // force overflows
    if (tinyLlc) {
        cfg.llcBank.geometry = cache::CacheGeometry{2 * 1024, 2};
        cfg.l1.geometry = cache::CacheGeometry{1 * 1024, 2};
    }
    cfg.seed = seed;
    System sys(cfg);
    workload::MicroConfig mc;
    mc.kind = kind;
    mc.numThreads = 4;
    mc.opsPerThread = 60;
    mc.seed = seed;
    mc.structureSize = 4;
    mc.crossFraction = 0.5; // heavy sharing
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    SimResult res = sys.run();
    EXPECT_TRUE(res.completed)
        << "deadlocked=" << res.deadlocked
        << " timedOut=" << res.timedOut;
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
    // End-of-run accounting: nothing tracked anywhere.
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_EQ(sys.l1(static_cast<CoreId>(c))
                      .flushEngine()
                      .totalLines(),
                  0u);
        EXPECT_EQ(sys.bank(c).flushEngine().totalLines(), 0u);
    }
    return res;
}

} // namespace

class StressMatrix
    : public testing::TestWithParam<
          std::tuple<BarrierKind, bool, bool, std::uint64_t>>
{
};

TEST_P(StressMatrix, SurvivesAndStaysOrdered)
{
    const auto &[barrier, invalidating, tinyLlc, seed] = GetParam();
    (void)stressRun(barrier, invalidating, tinyLlc, seed,
                    workload::MicroKind::Hash);
    (void)stressRun(barrier, invalidating, tinyLlc, seed,
                    workload::MicroKind::Sdg);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, StressMatrix,
    testing::Combine(testing::Values(BarrierKind::LB, BarrierKind::LBIDT,
                                     BarrierKind::LBPP),
                     testing::Bool(), // invalidating flush
                     testing::Bool(), // tiny caches
                     testing::Values<std::uint64_t>(3, 11)),
    [](const auto &info) {
        const BarrierKind barrier = std::get<0>(info.param);
        const bool inval = std::get<1>(info.param);
        const bool tiny = std::get<2>(info.param);
        const std::uint64_t seed = std::get<3>(info.param);
        return std::string(barrier == BarrierKind::LB      ? "LB"
                           : barrier == BarrierKind::LBIDT ? "IDT"
                                                           : "LBPP") +
               (inval ? "_clflush" : "_clwb") +
               (tiny ? "_tiny" : "_big") + "_s" + std::to_string(seed);
    });

TEST(StressBsp, TinyCachesHeavySharing)
{
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          BarrierKind::LBPP, /*epochSize=*/16);
    cfg.llcBank.geometry = cache::CacheGeometry{2 * 1024, 2};
    cfg.l1.geometry = cache::CacheGeometry{1 * 1024, 2};
    cfg.barrier.maxInflightEpochs = 3;
    System sys(cfg);
    auto workloads =
        workload::makeSyntheticWorkloads("ssca2", 4, 800, 17);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
}

} // namespace persim
