/**
 * @file
 * Edge-case tests: replacement conflicts, IDT register overflow,
 * stale-tag handling after clwb flushes, epoch-table splits under
 * pressure, and mesh/NoC corner cases.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;
using persist::BarrierKind;

namespace
{

class Script : public cpu::Workload
{
  public:
    explicit Script(std::vector<cpu::MemOp> ops) : _ops(std::move(ops)) {}

    cpu::MemOp
    next(Tick) override
    {
        if (_pos >= _ops.size())
            return cpu::MemOp::halt();
        return _ops[_pos++];
    }

  private:
    std::vector<cpu::MemOp> _ops;
    std::size_t _pos = 0;
};

constexpr Addr kBase = Addr{1} << 32;

} // namespace

TEST(ReplacementConflict, TaggedLlcVictimForcesEpochFlush)
{
    // Tiny LLC with avoidance off: streaming writes evict tagged lines,
    // and each tagged eviction must flush its epoch first.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LB);
    cfg.llcBank.geometry = cache::CacheGeometry{4 * 1024, 2};
    cfg.barrier.avoidTaggedVictims = false;
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    // One open epoch writing far more lines than the LLC holds.
    for (int i = 0; i < 400; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * kLineBytes));
    ops.push_back(cpu::MemOp::barrier());
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
    EXPECT_TRUE(res.violations.empty())
        << "first: " << res.violations.front();
    auto stats = sys.stats();
    EXPECT_GT(stats["persist.replacementConflicts"], 0.0);
    // Replacement conflicts against the open epoch force splits.
    EXPECT_GT(stats["persist.arbiter[0].splits"], 0.0);
}

TEST(ReplacementConflict, VictimAvoidanceReducesConflicts)
{
    auto conflictsWith = [](bool avoid) {
        SystemConfig cfg = SystemConfig::smallTest(2);
        applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                              BarrierKind::LB);
        cfg.llcBank.geometry = cache::CacheGeometry{8 * 1024, 4};
        cfg.barrier.avoidTaggedVictims = avoid;
        System sys(cfg);
        std::vector<cpu::MemOp> ops;
        for (int e = 0; e < 8; ++e) {
            for (int i = 0; i < 64; ++i) {
                ops.push_back(cpu::MemOp::store(
                    kBase + (e * 64 + i) * kLineBytes));
            }
            ops.push_back(cpu::MemOp::barrier());
        }
        sys.setWorkload(0, std::make_unique<Script>(ops));
        SimResult res = sys.run();
        EXPECT_TRUE(res.completed);
        return sys.stats()["persist.replacementConflicts"];
    };
    EXPECT_LE(conflictsWith(true), conflictsWith(false));
}

TEST(IdtOverflow, FallsBackToOnlineFlush)
{
    // One reader epoch depends on more distinct source epochs than it
    // has dependence registers: the excess resolves online.
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LBIDT);
    cfg.barrier.idtRegsPerEpoch = 1;
    System sys(cfg);
    // Cores 1..3 each write two lines in two epochs.
    for (unsigned c = 1; c < 4; ++c) {
        std::vector<cpu::MemOp> ops;
        for (int e = 0; e < 2; ++e) {
            ops.push_back(
                cpu::MemOp::store(kBase + (c * 8 + e) * 4096));
            ops.push_back(cpu::MemOp::barrier());
        }
        sys.setWorkload(static_cast<CoreId>(c),
                        std::make_unique<Script>(ops));
    }
    // Core 0 reads all six lines inside one epoch.
    std::vector<cpu::MemOp> reader = {cpu::MemOp::compute(5000)};
    for (unsigned c = 1; c < 4; ++c)
        for (int e = 0; e < 2; ++e)
            reader.push_back(
                cpu::MemOp::load(kBase + (c * 8 + e) * 4096));
    reader.push_back(cpu::MemOp::barrier());
    sys.setWorkload(0, std::make_unique<Script>(reader));

    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    double overflows = 0;
    for (unsigned c = 0; c < 4; ++c)
        overflows += stats["persist.arbiter[" + std::to_string(c) +
                           "].idtOverflows"];
    EXPECT_GT(overflows, 0.0);
}

TEST(StaleTag, ClwbRetainedLineRewritesCleanly)
{
    // Store A; conflict-flush via a second epoch store; then a THIRD
    // epoch store to the same line hits the stale (persisted) tag and
    // must clear it without a new conflict.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LB);
    System sys(cfg);
    std::vector<cpu::MemOp> ops = {
        cpu::MemOp::store(kBase),  cpu::MemOp::barrier(),
        cpu::MemOp::store(kBase),  cpu::MemOp::barrier(),
        // A long pause lets epoch 1's (conflict-triggered) flush finish.
        cpu::MemOp::compute(50000),
        cpu::MemOp::store(kBase),  cpu::MemOp::barrier(),
    };
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    // Two intra conflicts at most (store2 vs e0; store3 may hit e1 if
    // its flush had not finished) — and never a panic from the stale
    // tag path.
    EXPECT_GE(stats["persist.intraConflicts"], 1.0);
    EXPECT_LE(stats["persist.intraConflicts"], 2.0);
}

TEST(BspEdge, TinyEpochsStressTheWindow)
{
    // Epoch size 4 with a 3-deep window: continuous window pressure.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          BarrierKind::LBPP, /*epochSize=*/4);
    cfg.barrier.maxInflightEpochs = 3;
    // Slow persists guarantee the 3-slot window fills.
    cfg.nvram.writeLatency = 4000;
    System sys(cfg);
    auto workloads = workload::makeSyntheticWorkloads("radix", 2, 400, 5);
    for (unsigned t = 0; t < 2; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
    EXPECT_TRUE(res.violations.empty())
        << "first: " << res.violations.front();
    auto stats = sys.stats();
    EXPECT_GT(stats["persist.arbiter[0].barrierStalls"], 0.0);
}

TEST(BspEdge, CheckpointLinesScaleWithEpochs)
{
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          BarrierKind::LBPP, /*epochSize=*/16);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * kLineBytes));
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    // 64 stores / 16-per-epoch = 4 boundaries (+1 drain tail), each
    // writing 16 checkpoint lines.
    EXPECT_GE(stats["persist.arbiter[0].checkpointLines"], 4 * 16.0);
    EXPECT_GE(stats["persist.arbiter[0].logWrites"], 64.0);
}

TEST(SpWriteThrough, EveryStoreReachesNvram)
{
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::Strict,
                          BarrierKind::None);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 20; ++i)
        ops.push_back(cpu::MemOp::store(kBase + (i % 4) * kLineBytes));
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    double writes = 0;
    for (unsigned m = 0; m < cfg.numMemControllers; ++m)
        writes += stats["mc[" + std::to_string(m) + "].nvram.writes"];
    // No coalescing under naive SP: one NVRAM write per store.
    EXPECT_GE(writes, 20.0);
}

TEST(MeshEdge, SingleTileMeshWorks)
{
    EventQueue eq;
    noc::MeshConfig mc;
    mc.rows = 1;
    mc.cols = 1;
    noc::Mesh mesh("m", eq, mc);
    mesh.attach(0, 0, 0);
    mesh.attach(1, 0, 0);
    int delivered = 0;
    mesh.send(0, 1, 64, [&] { ++delivered; });
    eq.run();
    EXPECT_EQ(delivered, 1);
}

TEST(MeshEdge, LargePacketSerializes)
{
    EventQueue eq;
    noc::MeshConfig mc;
    mc.rows = 1;
    mc.cols = 2;
    noc::Mesh mesh("m", eq, mc);
    mesh.attach(0, 0, 0);
    mesh.attach(1, 1, 0);
    // A 1KB packet is 64 flits: tail serialization dominates.
    const Tick lat = mesh.idleLatency(0, 1, 1024);
    EXPECT_GE(lat, 63u);
}

} // namespace persim
