/**
 * @file
 * Property-based tests: parameterized sweeps over seeds, barrier
 * variants, persistency models, and workloads, asserting the system's
 * global invariants on every combination:
 *
 *   P1 liveness   — every run completes and drains;
 *   P2 ordering   — the durable-write stream respects epoch
 *                   happens-before (the ordering checker stays silent);
 *   P3 crash      — every prefix of the durable-write stream is
 *                   epoch-prefix-closed per core (recoverable);
 *   P4 accounting — after the drain, no flush-engine bookkeeping and no
 *                   epoch-tagged line survives anywhere.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;
using persist::BarrierKind;

namespace
{

using PropertyCase =
    std::tuple<workload::MicroKind, BarrierKind, std::uint64_t>;

std::string
caseName(const testing::TestParamInfo<PropertyCase> &info)
{
    const auto &[kind, barrier, seed] = info.param;
    return std::string(workload::toString(kind)) + "_" +
           (barrier == BarrierKind::LB      ? "LB"
            : barrier == BarrierKind::LBIDT ? "IDT"
            : barrier == BarrierKind::LBPF  ? "PF"
                                            : "LBPP") +
           "_s" + std::to_string(seed);
}

void
checkPrefixClosure(
    const std::vector<model::OrderingChecker::PersistEvent> &log)
{
    // P3: walk the stream once; when the first line of epoch e appears,
    // all earlier epochs of that core must be complete (their full line
    // counts durable).
    std::map<std::pair<CoreId, EpochId>, unsigned> total;
    for (const auto &ev : log) {
        if (ev.core != kNoCore && !ev.isLog)
            ++total[{ev.core, ev.epoch}];
    }
    std::map<std::pair<CoreId, EpochId>, unsigned> seen;
    for (const auto &ev : log) {
        if (ev.core == kNoCore || ev.isLog)
            continue;
        ++seen[{ev.core, ev.epoch}];
        // Every older epoch of this core with any lines must be done.
        for (auto &[key, n] : total) {
            if (key.first != ev.core || key.second >= ev.epoch)
                continue;
            const unsigned have = seen[key];
            ASSERT_EQ(have, n)
                << "line of core " << ev.core << " epoch " << ev.epoch
                << " persisted before epoch " << key.second
                << " completed (" << have << "/" << n << ")";
        }
    }
}

} // namespace

class MicroProperties : public testing::TestWithParam<PropertyCase>
{
};

TEST_P(MicroProperties, InvariantsHold)
{
    const auto &[kind, barrier, seed] = GetParam();
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch, barrier);
    cfg.keepPersistLog = true;
    cfg.seed = seed;
    System sys(cfg);
    workload::MicroConfig mc;
    mc.kind = kind;
    mc.numThreads = 4;
    mc.opsPerThread = 40;
    mc.seed = seed;
    mc.structureSize = 8; // small structures maximize conflict coverage
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));

    SimResult res = sys.run();

    // P1: liveness.
    ASSERT_TRUE(res.completed)
        << "deadlocked=" << res.deadlocked
        << " timedOut=" << res.timedOut;

    // P2: ordering.
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();

    // P3: crash recoverability at every prefix.
    checkPrefixClosure(sys.checker()->log());

    // P4: nothing left behind. L1 lines may keep a *stale* tag (clwb
    // retains lines; the tag is cleared lazily once the epoch
    // persisted) but only on clean lines of persisted epochs.
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_EQ(sys.l1(static_cast<CoreId>(c))
                      .flushEngine()
                      .totalLines(),
                  0u);
        EXPECT_EQ(sys.bank(c).flushEngine().totalLines(), 0u);
        sys.l1(static_cast<CoreId>(c))
            .array()
            .forEachValid([&](cache::CacheLine &line) {
                if (!line.tagged())
                    return;
                EXPECT_FALSE(line.dirty());
                EXPECT_TRUE(sys.persistController()
                                .arbiter(line.epochCore())
                                .isPersisted(line.epochId()));
            });
        sys.bank(c).array().forEachValid([](cache::CacheLine &line) {
            EXPECT_FALSE(line.tagged());
            EXPECT_FALSE(line.pinned());
        });
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMicrosAllBarriers, MicroProperties,
    testing::Combine(
        testing::Values(workload::MicroKind::Hash,
                        workload::MicroKind::Queue,
                        workload::MicroKind::RbTree,
                        workload::MicroKind::Sdg,
                        workload::MicroKind::Sps),
        testing::Values(BarrierKind::LB, BarrierKind::LBIDT,
                        BarrierKind::LBPF, BarrierKind::LBPP),
        testing::Values<std::uint64_t>(1, 7)),
    caseName);

// ---------------------------------------------------------------------

struct BspCase
{
    const char *preset;
    unsigned epochSize;
    std::uint64_t seed;
};

class BspProperties : public testing::TestWithParam<BspCase>
{
};

TEST_P(BspProperties, InvariantsHold)
{
    const BspCase &pc = GetParam();
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          BarrierKind::LBPP, pc.epochSize);
    cfg.keepPersistLog = true;
    System sys(cfg);
    auto workloads =
        workload::makeSyntheticWorkloads(pc.preset, 4, 500, pc.seed);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));

    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty())
        << "first violation: " << res.violations.front();
    checkPrefixClosure(sys.checker()->log());
}

INSTANTIATE_TEST_SUITE_P(
    PresetsAndEpochSizes, BspProperties,
    testing::Values(BspCase{"ssca2", 50, 1}, BspCase{"ssca2", 300, 2},
                    BspCase{"canneal", 100, 3},
                    BspCase{"radix", 100, 4},
                    BspCase{"intruder", 50, 5},
                    BspCase{"dedup", 300, 6}),
    [](const testing::TestParamInfo<BspCase> &info) {
        return std::string(info.param.preset) + "_e" +
               std::to_string(info.param.epochSize) + "_s" +
               std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------

/** Determinism: identical configuration and seed => identical run. */
TEST(Determinism, SameSeedSameResult)
{
    auto runOnce = [] {
        SystemConfig cfg = SystemConfig::smallTest(4);
        applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                              BarrierKind::LBPP);
        System sys(cfg);
        workload::MicroConfig mc;
        mc.kind = workload::MicroKind::Sdg;
        mc.numThreads = 4;
        mc.opsPerThread = 60;
        mc.seed = 99;
        auto workloads = workload::makeMicroWorkloads(mc);
        for (unsigned t = 0; t < 4; ++t)
            sys.setWorkload(static_cast<CoreId>(t),
                            std::move(workloads[t]));
        SimResult res = sys.run();
        return std::make_tuple(res.execTicks, res.drainTicks, res.events,
                               res.transactions);
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(Determinism, DifferentSeedsDiffer)
{
    auto runWithSeed = [](std::uint64_t seed) {
        SystemConfig cfg = SystemConfig::smallTest(4);
        applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                              BarrierKind::LB);
        System sys(cfg);
        workload::MicroConfig mc;
        mc.kind = workload::MicroKind::Hash;
        mc.numThreads = 4;
        mc.opsPerThread = 60;
        mc.seed = seed;
        auto workloads = workload::makeMicroWorkloads(mc);
        for (unsigned t = 0; t < 4; ++t)
            sys.setWorkload(static_cast<CoreId>(t),
                            std::move(workloads[t]));
        return sys.run().execTicks;
    };
    EXPECT_NE(runWithSeed(1), runWithSeed(2));
}

} // namespace persim
