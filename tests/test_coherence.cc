/**
 * @file
 * Coherence-protocol tests: directory invariants, recalls, sharer
 * invalidations, inclusion, and load-forwarding through the hierarchy —
 * driven via small scripted systems with persistence off (NP), so the
 * cache behaviour is isolated from the persist machinery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "model/system.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;

namespace
{

class Script : public cpu::Workload
{
  public:
    explicit Script(std::vector<cpu::MemOp> ops) : _ops(std::move(ops)) {}

    cpu::MemOp
    next(Tick) override
    {
        if (_pos >= _ops.size())
            return cpu::MemOp::halt();
        return _ops[_pos++];
    }

  private:
    std::vector<cpu::MemOp> _ops;
    std::size_t _pos = 0;
};

constexpr Addr kBase = Addr{1} << 32;

SystemConfig
npConfig(unsigned cores = 4)
{
    SystemConfig cfg = SystemConfig::smallTest(cores);
    applyPersistencyModel(cfg, PersistencyModel::NoPersistency,
                          persist::BarrierKind::None);
    return cfg;
}

/** Check every directory invariant over all banks and L1s. */
void
checkDirectoryInvariants(System &sys, unsigned cores)
{
    for (unsigned b = 0; b < cores; ++b) {
        sys.bank(b).array().forEachValid([&](cache::CacheLine &line) {
            // Owner and sharers are mutually exclusive.
            if (line.owner() != kNoCore) {
                EXPECT_EQ(line.sharers(), 0u)
                    << "owned line with sharers: 0x" << std::hex
                    << line.addr();
            }
            // The owner really holds the line (inclusion + precision).
            if (line.owner() != kNoCore) {
                cache::CacheLine *l1Line =
                    sys.l1(line.owner()).find(line.addr());
                ASSERT_NE(l1Line, nullptr)
                    << "directory owner lost line 0x" << std::hex
                    << line.addr();
                EXPECT_TRUE(l1Line->state() ==
                                cache::CoherenceState::Modified ||
                            l1Line->state() ==
                                cache::CoherenceState::Exclusive);
            }
            // Every recorded sharer holds a Shared copy.
            for (unsigned c = 0; c < cores; ++c) {
                if (line.sharers() & (std::uint64_t{1} << c)) {
                    cache::CacheLine *l1Line =
                        sys.l1(static_cast<CoreId>(c)).find(line.addr());
                    ASSERT_NE(l1Line, nullptr);
                    EXPECT_EQ(l1Line->state(),
                              cache::CoherenceState::Shared);
                }
            }
        });
    }
    // Inclusion: every valid L1 line has an LLC copy at its home bank.
    for (unsigned c = 0; c < cores; ++c) {
        sys.l1(static_cast<CoreId>(c))
            .array()
            .forEachValid([&](cache::CacheLine &line) {
                const unsigned home =
                    cache::homeBankOf(line.addr(), cores);
                EXPECT_NE(sys.bank(home).find(line.addr()), nullptr)
                    << "inclusion violated for 0x" << std::hex
                    << line.addr();
            });
    }
}

} // namespace

TEST(Coherence, ReadThenWriteUpgrades)
{
    SystemConfig cfg = npConfig();
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::load(kBase),
                           cpu::MemOp::compute(50),
                           cpu::MemOp::store(kBase),
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    cache::CacheLine *line = sys.l1(0).find(kBase);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state(), cache::CoherenceState::Modified);
    EXPECT_TRUE(line->dirty());
    checkDirectoryInvariants(sys, 4);
}

TEST(Coherence, SoleReaderGetsExclusive)
{
    SystemConfig cfg = npConfig();
    System sys(cfg);
    sys.setWorkload(2, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::load(kBase),
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    cache::CacheLine *line = sys.l1(2).find(kBase);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state(), cache::CoherenceState::Exclusive);
    const unsigned home = cache::homeBankOf(kBase, 4);
    EXPECT_EQ(sys.bank(home).find(kBase)->owner(), 2);
}

TEST(Coherence, TwoReadersShare)
{
    SystemConfig cfg = npConfig();
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::load(kBase),
                       }));
    sys.setWorkload(1, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::compute(2000),
                           cpu::MemOp::load(kBase),
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    // Reader 0 was downgraded from Exclusive to Shared by reader 1.
    cache::CacheLine *l0 = sys.l1(0).find(kBase);
    cache::CacheLine *l1 = sys.l1(1).find(kBase);
    ASSERT_NE(l0, nullptr);
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(l0->state(), cache::CoherenceState::Shared);
    EXPECT_EQ(l1->state(), cache::CoherenceState::Shared);
    checkDirectoryInvariants(sys, 4);
}

TEST(Coherence, WriterInvalidatesSharers)
{
    SystemConfig cfg = npConfig();
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::load(kBase),
                       }));
    sys.setWorkload(1, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::compute(2000),
                           cpu::MemOp::store(kBase),
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.l1(0).find(kBase), nullptr); // invalidated
    cache::CacheLine *l1 = sys.l1(1).find(kBase);
    ASSERT_NE(l1, nullptr);
    EXPECT_EQ(l1->state(), cache::CoherenceState::Modified);
    checkDirectoryInvariants(sys, 4);
}

TEST(Coherence, DirtyLineRecalledForRemoteRead)
{
    SystemConfig cfg = npConfig();
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::store(kBase),
                       }));
    sys.setWorkload(1, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::compute(2000),
                           cpu::MemOp::load(kBase),
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    // Writer downgraded to Shared; LLC copy now dirty.
    cache::CacheLine *l0 = sys.l1(0).find(kBase);
    ASSERT_NE(l0, nullptr);
    EXPECT_EQ(l0->state(), cache::CoherenceState::Shared);
    EXPECT_FALSE(l0->dirty());
    const unsigned home = cache::homeBankOf(kBase, 4);
    cache::CacheLine *llc = sys.bank(home).find(kBase);
    ASSERT_NE(llc, nullptr);
    EXPECT_TRUE(llc->dirty());
    auto stats = sys.stats();
    double recalls = 0;
    for (unsigned b = 0; b < 4; ++b)
        recalls += stats["llc[" + std::to_string(b) + "].recalls"];
    EXPECT_GE(recalls, 1.0);
}

TEST(Coherence, WriteMissAfterRemoteWrite)
{
    // Ping-pong: both cores write the same line alternately.
    SystemConfig cfg = npConfig();
    System sys(cfg);
    std::vector<cpu::MemOp> a, b;
    for (int i = 0; i < 5; ++i) {
        a.push_back(cpu::MemOp::store(kBase));
        a.push_back(cpu::MemOp::compute(500));
        b.push_back(cpu::MemOp::compute(250));
        b.push_back(cpu::MemOp::store(kBase));
        b.push_back(cpu::MemOp::compute(250));
    }
    sys.setWorkload(0, std::make_unique<Script>(a));
    sys.setWorkload(1, std::make_unique<Script>(b));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    checkDirectoryInvariants(sys, 4);
    // Exactly one core can own the line at the end.
    const bool own0 = sys.l1(0).find(kBase) &&
                      sys.l1(0).find(kBase)->state() ==
                          cache::CoherenceState::Modified;
    const bool own1 = sys.l1(1).find(kBase) &&
                      sys.l1(1).find(kBase)->state() ==
                          cache::CoherenceState::Modified;
    EXPECT_NE(own0, own1);
}

TEST(Coherence, CapacityEvictionsPreserveInvariants)
{
    // Stream far past the tiny L1 (4KB in smallTest): every fill
    // evicts; directory must stay exact throughout.
    SystemConfig cfg = npConfig();
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 600; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * kLineBytes));
    for (int i = 0; i < 600; i += 7)
        ops.push_back(cpu::MemOp::load(kBase + i * kLineBytes));
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    checkDirectoryInvariants(sys, 4);
    auto stats = sys.stats();
    EXPECT_GT(stats["l1[0].writebacksDirty"], 0.0);
}

TEST(Coherence, LlcCapacityEvictionsWriteDirtyDataToNvram)
{
    // Blow out the small LLC (32KB x 4 banks): dirty untagged victims
    // must reach NVRAM.
    SystemConfig cfg = npConfig();
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 4000; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * kLineBytes));
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    double evictions = 0, nvWrites = 0;
    for (unsigned b = 0; b < 4; ++b)
        evictions +=
            stats["llc[" + std::to_string(b) + "].evictionsDirty"];
    for (unsigned m = 0; m < cfg.numMemControllers; ++m)
        nvWrites += stats["mc[" + std::to_string(m) + "].nvram.writes"];
    EXPECT_GT(evictions, 0.0);
    EXPECT_GE(nvWrites, evictions);
    checkDirectoryInvariants(sys, 4);
}

TEST(Coherence, LoadForwardsFromWriteBuffer)
{
    SystemConfig cfg = npConfig();
    System sys(cfg);
    sys.setWorkload(0, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::store(kBase),
                           cpu::MemOp::load(kBase), // same line: forward
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    EXPECT_GE(stats["core[0].forwards"], 1.0);
}

} // namespace persim
