/**
 * @file
 * Tests for the host-time profiler (src/prof): phase-tag scopes and
 * their nesting/disabled semantics, the deterministic fake-sampler
 * hook, the hardware counter fallback ladder, profile JSON
 * round-trips, the /proc/self/status parser behind the RSS probes,
 * and the runner integration (profiled telemetry, determinism of the
 * sweep document under profiling).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "exp/runner.hh"
#include "exp/spec.hh"
#include "exp/telemetry.hh"
#include "prof/hw_counters.hh"
#include "prof/phase.hh"
#include "prof/profile.hh"
#include "prof/sampler.hh"

namespace persim
{

namespace
{

/** Samples counted on this thread for @p p since @p before. */
std::uint64_t
delta(const prof::PhaseCounts &before, prof::Phase p)
{
    return prof::Sampler::threadCounts().minus(before)[p];
}

} // namespace

TEST(ProfPhase, ScopeSetsAndRestoresTag)
{
    prof::Sampler::attachThread();
    prof::Sampler::resetCounts();
    const prof::PhaseCounts base = prof::Sampler::threadCounts();

    prof::Sampler::testTick(); // before any scope: Other
    {
        prof::ScopedPhase outer(prof::Phase::LlcBank);
        prof::Sampler::testTick();
        prof::Sampler::testTick();
    }
    prof::Sampler::testTick(); // scope closed: back to Other

    EXPECT_EQ(delta(base, prof::Phase::LlcBank), 2u);
    EXPECT_EQ(delta(base, prof::Phase::Other), 2u);
    prof::Sampler::detachThread();
}

TEST(ProfPhase, NestedScopeRestoresOuterTag)
{
    prof::Sampler::attachThread();
    prof::Sampler::resetCounts();
    const prof::PhaseCounts base = prof::Sampler::threadCounts();

    {
        prof::ScopedPhase outer(prof::Phase::EventLoop);
        prof::Sampler::testTick();
        {
            prof::ScopedPhase inner(prof::Phase::Nvm);
            prof::Sampler::testTick();
        }
        // The inner scope must restore EventLoop, not reset to Other.
        prof::Sampler::testTick();
    }

    EXPECT_EQ(delta(base, prof::Phase::EventLoop), 2u);
    EXPECT_EQ(delta(base, prof::Phase::Nvm), 1u);
    EXPECT_EQ(delta(base, prof::Phase::Other), 0u);
    prof::Sampler::detachThread();
}

TEST(ProfPhase, DetachedThreadScopesAreInert)
{
    prof::Sampler::attachThread();
    prof::Sampler::detachThread();
    EXPECT_FALSE(prof::profiling());

    // With no block attached, scopes must not touch any counter and
    // ticks land on the unattributed overflow instead.
    prof::Sampler::resetCounts();
    {
        prof::ScopedPhase scope(prof::Phase::FlushEngine);
        prof::Sampler::testTick();
    }
    EXPECT_EQ(prof::Sampler::totalCounts().total(), 0u);
    EXPECT_EQ(prof::Sampler::unattributedSamples(), 1u);
}

TEST(ProfPhase, FakeSamplerAttributesDeterministically)
{
    // Drive the exact handler counting step N times per phase and
    // check the ledger matches — no timers, no signals, no flakiness.
    prof::Sampler::attachThread();
    prof::Sampler::resetCounts();
    const prof::PhaseCounts base = prof::Sampler::threadCounts();

    constexpr unsigned kTicks[] = {3, 1, 4, 1, 5};
    const prof::Phase phases[] = {
        prof::Phase::EventLoop, prof::Phase::L1Access,
        prof::Phase::LlcBank, prof::Phase::Noc,
        prof::Phase::PersistArbiter};
    for (std::size_t i = 0; i < 5; ++i) {
        prof::ScopedPhase scope(phases[i]);
        for (unsigned t = 0; t < kTicks[i]; ++t)
            prof::Sampler::testTick();
    }

    const prof::PhaseCounts got = prof::Sampler::threadCounts();
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(got.minus(base)[phases[i]], kTicks[i]);
    EXPECT_EQ(got.minus(base).total(), 14u);
    EXPECT_EQ(got.minus(base).attributed(), 14u);
    prof::Sampler::detachThread();
}

TEST(ProfPhase, TotalCountsSumsAcrossThreads)
{
    prof::Sampler::resetCounts();
    prof::Sampler::attachThread();
    {
        prof::ScopedPhase scope(prof::Phase::WorkloadGen);
        prof::Sampler::testTick();
    }
    std::thread worker([] {
        prof::Sampler::attachThread();
        prof::ScopedPhase scope(prof::Phase::WorkloadGen);
        prof::Sampler::testTick();
        prof::Sampler::testTick();
        prof::Sampler::detachThread();
    });
    worker.join();
    EXPECT_EQ(prof::Sampler::totalCounts()[prof::Phase::WorkloadGen],
              3u);
    prof::Sampler::detachThread();
}

TEST(ProfPhase, PhaseNamesRoundTrip)
{
    for (std::size_t i = 0; i < prof::kPhaseCount; ++i) {
        const auto p = static_cast<prof::Phase>(i);
        prof::Phase back;
        ASSERT_TRUE(prof::phaseFromName(prof::phaseName(p), back));
        EXPECT_EQ(back, p);
    }
    prof::Phase ignored;
    EXPECT_FALSE(prof::phaseFromName("noSuchPhase", ignored));
}

TEST(ProfSampler, RealTimerAttributesBusyLoop)
{
    // Arm the real ITIMER_PROF sampler around a CPU-bound loop inside
    // one phase scope; with a 1 ms period and ~50 ms of spinning, at
    // least one SIGPROF tick must land in that phase.
    ASSERT_TRUE(prof::Sampler::start(1000));
    EXPECT_TRUE(prof::Sampler::running());
    EXPECT_FALSE(prof::Sampler::start(1000)) << "second start must fail";
    {
        prof::ScopedPhase scope(prof::Phase::StatExport);
        volatile std::uint64_t sink = 0;
        const prof::PhaseCounts base = prof::Sampler::threadCounts();
        while (prof::Sampler::threadCounts()
                   .minus(base)[prof::Phase::StatExport] == 0) {
            for (unsigned i = 0; i < 100000; ++i)
                sink = sink + i;
        }
    }
    prof::Sampler::stop();
    EXPECT_FALSE(prof::Sampler::running());
    EXPECT_GE(prof::Sampler::totalCounts()[prof::Phase::StatExport],
              1u);
    prof::Sampler::detachThread();
}

TEST(ProfCounters, FallbackLadderAlwaysYieldsAReading)
{
    prof::HwCounterGroup group;
    group.start();
    volatile std::uint64_t sink = 0;
    for (unsigned i = 0; i < 2000000; ++i)
        sink = sink + i;
    prof::CounterReading r = group.stop();

    // Whatever rung the host supports, the reading is source-tagged
    // and carries wall clock; perf and rusage values only when valid.
    EXPECT_FALSE(r.source.empty());
    EXPECT_GT(r.wallSec, 0.0);
    if (r.perfValid) {
        EXPECT_EQ(r.source.rfind("perf_event", 0), 0u);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.instructions, 0u);
        EXPECT_GT(r.ipc(), 0.0);
    } else {
        EXPECT_NE(r.source.find("unavailable"), std::string::npos)
            << "degraded source must say why: " << r.source;
    }
}

TEST(ProfCounters, NoPerfEnvForcesFallback)
{
    ::setenv("PERSIM_PROF_NO_PERF", "1", 1);
    prof::HwCounterGroup group;
    ::unsetenv("PERSIM_PROF_NO_PERF");
    EXPECT_FALSE(group.source().rfind("perf_event", 0) == 0)
        << "PERSIM_PROF_NO_PERF must skip perf_event: "
        << group.source();
    group.start();
    prof::CounterReading r = group.stop();
    EXPECT_FALSE(r.perfValid);
    EXPECT_GE(r.wallSec, 0.0);
}

TEST(ProfCounters, ReadingJsonRoundTrip)
{
    prof::CounterReading r;
    r.source = "perf_event";
    r.perfValid = true;
    r.cycles = 123456789;
    r.instructions = 987654321;
    r.llcMisses = 4242;
    r.branchMisses = 17;
    r.rusageValid = true;
    r.userSec = 1.5;
    r.sysSec = 0.25;
    r.minorFaults = 10;
    r.majorFaults = 1;
    r.volCtxSwitches = 3;
    r.involCtxSwitches = 7;
    r.wallSec = 2.0;

    const prof::CounterReading back =
        prof::CounterReading::fromJson(r.toJson());
    EXPECT_EQ(back.source, r.source);
    EXPECT_TRUE(back.perfValid);
    EXPECT_EQ(back.cycles, r.cycles);
    EXPECT_EQ(back.instructions, r.instructions);
    EXPECT_EQ(back.llcMisses, r.llcMisses);
    EXPECT_EQ(back.branchMisses, r.branchMisses);
    EXPECT_TRUE(back.rusageValid);
    EXPECT_DOUBLE_EQ(back.userSec, r.userSec);
    EXPECT_EQ(back.involCtxSwitches, r.involCtxSwitches);
    EXPECT_DOUBLE_EQ(back.wallSec, r.wallSec);
}

TEST(ProfProfile, SweepProfileJsonRoundTrip)
{
    prof::SweepProfile p;
    p.sweep = "fig14";
    p.periodUsec = 997;
    p.hostCpus = 8;
    p.loadAvg1 = 1.25;
    p.phases.samples[static_cast<std::size_t>(
        prof::Phase::EventLoop)] = 100;
    p.phases.samples[static_cast<std::size_t>(prof::Phase::LlcBank)] =
        50;
    p.unattributed = 3;
    p.counters.source = "getrusage (perf_event unavailable: EPERM)";
    p.counters.rusageValid = true;
    p.counters.userSec = 4.0;
    p.counters.wallSec = 5.0;
    prof::JobProfile job;
    job.id = "radix/LB/s1";
    job.phases.samples[static_cast<std::size_t>(
        prof::Phase::L1Access)] = 7;
    p.jobs.push_back(job);

    const prof::SweepProfile back =
        prof::SweepProfile::fromJson(p.toJson());
    EXPECT_EQ(back.sweep, "fig14");
    EXPECT_EQ(back.periodUsec, 997u);
    EXPECT_EQ(back.hostCpus, 8u);
    EXPECT_DOUBLE_EQ(back.loadAvg1, 1.25);
    EXPECT_EQ(back.phases, p.phases);
    EXPECT_EQ(back.unattributed, 3u);
    EXPECT_EQ(back.counters.source, p.counters.source);
    ASSERT_EQ(back.jobs.size(), 1u);
    EXPECT_EQ(back.jobs[0].id, "radix/LB/s1");
    EXPECT_EQ(back.jobs[0].phases[prof::Phase::L1Access], 7u);
    EXPECT_NEAR(back.attributionRatio(), 1.0, 1e-9);
}

TEST(ProfProfile, FromJsonRejectsNonProfileDocument)
{
    EXPECT_THROW(
        prof::SweepProfile::fromJson(
            exp::JsonValue::parse("{\"sweep\": \"fig14\"}")),
        SimFatal);
}

TEST(ProfStatus, ParseStatusKbReadsWellFormedKey)
{
    const std::string_view status = "Name:\tpersim_tests\n"
                                    "VmPeak:\t  123456 kB\n"
                                    "VmRSS:\t   98304 kB\n"
                                    "VmHWM:\t  131072 kB\n";
    EXPECT_EQ(exp::parseStatusKb(status, "VmRSS"), 98304u);
    EXPECT_EQ(exp::parseStatusKb(status, "VmHWM"), 131072u);
    EXPECT_EQ(exp::parseStatusKb(status, "VmPeak"), 123456u);
}

TEST(ProfStatus, ParseStatusKbMissingKeyIsZero)
{
    EXPECT_EQ(exp::parseStatusKb("Name:\tx\nVmPeak:\t1 kB\n", "VmRSS"),
              0u);
    EXPECT_EQ(exp::parseStatusKb("", "VmRSS"), 0u);
}

TEST(ProfStatus, ParseStatusKbMalformedValueIsZero)
{
    EXPECT_EQ(exp::parseStatusKb("VmRSS:\tnot-a-number kB\n", "VmRSS"),
              0u);
    EXPECT_EQ(exp::parseStatusKb("VmRSS:\n", "VmRSS"), 0u);
    EXPECT_EQ(exp::parseStatusKb("VmRSS:   \n", "VmRSS"), 0u);
}

TEST(ProfStatus, ParseStatusKbRejectsKeyPrefixMatch)
{
    // "VmRSS" must not match a line for a longer key.
    EXPECT_EQ(exp::parseStatusKb("VmRSSExtra:\t777 kB\n", "VmRSS"), 0u);
    // ...but the real key later in the text still parses.
    EXPECT_EQ(exp::parseStatusKb(
                  "VmRSSExtra:\t777 kB\nVmRSS:\t42 kB\n", "VmRSS"),
              42u);
}

TEST(ProfStatus, LiveProbesAgreeWithParser)
{
    // On a Linux host the live probes go through parseStatusKb; both
    // must be nonzero and HWM >= RSS modulo sampling skew.
    const std::uint64_t rss = exp::currentRssKb();
    const std::uint64_t hwm = exp::peakRssKb();
    if (rss == 0 && hwm == 0) {
        GTEST_SKIP() << "/proc unavailable on this host";
    }
    EXPECT_GT(rss, 0u);
    EXPECT_GE(hwm, rss);
}

TEST(ProfStatus, HostShapeProbes)
{
    EXPECT_GE(exp::hostCpuCount(), 1u);
    // loadAverage1 is -1 where /proc is unavailable, >= 0 otherwise.
    const double load = exp::loadAverage1();
    EXPECT_TRUE(load < 0.0 || load >= 0.0);
    if (load >= 0.0) {
        EXPECT_LT(load, 1e6);
    }
}

TEST(ProfRunner, ProfiledSweepFillsTelemetryAndProfile)
{
    exp::Sweep sweep = exp::figureSweep(11, /*ops=*/40, /*cores=*/4,
                                        /*seed=*/3);
    sweep.jobs.resize(4);

    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.prof = true;
    exp::SweepRunner runner(opts);
    const auto outcomes = runner.run(sweep);
    ASSERT_EQ(outcomes.size(), 4u);

    const exp::SweepTelemetry &tel = runner.telemetry();
    EXPECT_TRUE(tel.profiled);
    EXPECT_EQ(tel.profPeriodUsec, opts.profPeriodUsec);
    EXPECT_GE(tel.hostCpus, 1u);
    ASSERT_EQ(tel.jobs.size(), 4u);
    for (const exp::JobTelemetry &jt : tel.jobs) {
        EXPECT_TRUE(jt.profiled);
        EXPECT_FALSE(jt.counters.source.empty());
    }

    const prof::SweepProfile &p = runner.profile();
    EXPECT_EQ(p.sweep, sweep.name);
    EXPECT_EQ(p.periodUsec, opts.profPeriodUsec);
    ASSERT_EQ(p.jobs.size(), 4u);
    EXPECT_FALSE(p.counters.source.empty());
    // Telemetry JSON exposes the prof block only when profiled.
    const std::string telJson = tel.toJson().dump();
    EXPECT_NE(telJson.find("\"prof\""), std::string::npos);
    EXPECT_NE(telJson.find("\"counterSource\""), std::string::npos);
    EXPECT_FALSE(prof::Sampler::running()) << "run() must stop sampler";
}

TEST(ProfRunner, UnprofiledSweepOmitsProfFields)
{
    exp::Sweep sweep = exp::figureSweep(11, /*ops=*/40, /*cores=*/4,
                                        /*seed=*/3);
    sweep.jobs.resize(2);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    runner.run(sweep);
    EXPECT_FALSE(runner.telemetry().profiled);
    const std::string telJson = runner.telemetry().toJson().dump();
    EXPECT_EQ(telJson.find("\"prof\""), std::string::npos);
    EXPECT_GE(runner.telemetry().hostCpus, 1u);
}

TEST(ProfRunner, ProfilingDoesNotPerturbSweepDocument)
{
    // The acceptance bar for the whole subsystem: the deterministic
    // sweep JSON must be byte-identical with and without --prof.
    exp::Sweep sweep = exp::figureSweep(13, /*ops=*/60, /*cores=*/4,
                                        /*seed=*/5);
    sweep.jobs.resize(6);

    exp::RunnerOptions plain;
    plain.jobs = 2;
    plain.progress = false;
    exp::SweepRunner plainRunner(plain);
    const auto outPlain = plainRunner.run(sweep);

    exp::RunnerOptions profiled = plain;
    profiled.prof = true;
    exp::SweepRunner profRunner(profiled);
    const auto outProf = profRunner.run(sweep);

    EXPECT_EQ(exp::sweepToJson(sweep, outPlain).dump(),
              exp::sweepToJson(sweep, outProf).dump());
}

} // namespace persim
