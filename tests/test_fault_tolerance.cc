/**
 * @file
 * Tests for the sweep fault-tolerance layer: deterministic fault
 * injection (PERSIM_FAULT), the per-job watchdog, retry backoff,
 * sandbox process isolation, the crash-safe journal, and resume
 * merging — including the byte-identity guarantee that a resumed or
 * isolated sweep serializes exactly like an uninterrupted in-process
 * one.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "exp/fault.hh"
#include "exp/journal.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "sim/logging.hh"

namespace persim
{

using exp::ExperimentSpec;
using exp::JobOutcome;
using exp::JsonValue;
using exp::Sweep;

namespace
{

/** RAII PERSIM_FAULT setter so a failing test cannot leak the hook. */
class ScopedFault
{
  public:
    explicit ScopedFault(const char *value)
    {
        ::setenv("PERSIM_FAULT", value, 1);
    }
    ~ScopedFault() { ::unsetenv("PERSIM_FAULT"); }
};

ExperimentSpec
tinySpec(const char *config = "LB")
{
    ExperimentSpec spec;
    spec.workload = "hash";
    spec.configLabel = config;
    spec.barrier = persist::BarrierKind::LB;
    spec.cores = 4;
    spec.ops = 20;
    return spec;
}

Sweep
tinySweep(std::size_t jobs = 3)
{
    Sweep sweep;
    sweep.name = "fault-tolerance";
    const char *configs[] = {"LB", "LB+IDT", "LB+PF", "LB++", "NP"};
    for (std::size_t i = 0; i < jobs; ++i) {
        ExperimentSpec spec = tinySpec(configs[i % 5]);
        spec.seed = i; // distinct ids even past 5 jobs
        sweep.jobs.push_back(std::move(spec));
    }
    return sweep;
}

std::string
tempPath(const char *name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "persim_fault_tests";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
}

} // namespace

// ---------------------------------------------------------------------
// Fault-injection hook
// ---------------------------------------------------------------------

TEST(Fault, ParsesKindAndIndex)
{
    const exp::fault::Spec t = exp::fault::parse("throw:3");
    EXPECT_EQ(t.kind, exp::fault::Kind::Throw);
    EXPECT_EQ(t.jobIndex, 3u);
    EXPECT_EQ(exp::fault::parse("hang:0").kind,
              exp::fault::Kind::Hang);
    EXPECT_EQ(exp::fault::parse("segv:12").kind,
              exp::fault::Kind::Segv);
    EXPECT_EQ(exp::fault::parse("abort:1").kind,
              exp::fault::Kind::Abort);
}

TEST(Fault, RejectsMalformedDirectives)
{
    EXPECT_THROW(exp::fault::parse("throw"), SimFatal);
    EXPECT_THROW(exp::fault::parse("throw:"), SimFatal);
    EXPECT_THROW(exp::fault::parse("throw:abc"), SimFatal);
    EXPECT_THROW(exp::fault::parse("oops:1"), SimFatal);
}

TEST(Fault, FromEnvRereadsEveryCall)
{
    ::unsetenv("PERSIM_FAULT");
    EXPECT_EQ(exp::fault::fromEnv().kind, exp::fault::Kind::None);
    {
        ScopedFault f("throw:7");
        const exp::fault::Spec s = exp::fault::fromEnv();
        EXPECT_EQ(s.kind, exp::fault::Kind::Throw);
        EXPECT_EQ(s.jobIndex, 7u);
    }
    EXPECT_EQ(exp::fault::fromEnv().kind, exp::fault::Kind::None);
}

TEST(Fault, StandaloneRunJobIsNeverFaulted)
{
    // Library callers use the default JobControl index (SIZE_MAX),
    // which must never match an injection directive.
    ScopedFault f("throw:0");
    const JobOutcome out = exp::runJob(tinySpec());
    EXPECT_TRUE(out.ok) << out.error;
}

TEST(Fault, InjectedThrowFailsOnlyThatCell)
{
    ScopedFault f("throw:1");
    Sweep sweep = tinySweep(3);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.maxAttempts = 1;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    auto outcomes = runner.run(sweep);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].error, "injected fault: throw");
    EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, CancelsHungJobAsTimeout)
{
    ScopedFault f("hang:0");
    Sweep sweep = tinySweep(2);
    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 1;
    opts.jobTimeoutMs = 200;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    auto outcomes = runner.run(sweep);

    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[0].timedOut);
    EXPECT_EQ(outcomes[0].error, "timeout");
    EXPECT_TRUE(outcomes[1].ok) << outcomes[1].error;

    const exp::SweepTelemetry &tel = runner.telemetry();
    ASSERT_EQ(tel.jobs.size(), 2u);
    EXPECT_EQ(tel.jobs[0].state, exp::JobState::TimedOut);
    EXPECT_EQ(tel.timedOutJobs(), 1u);
    EXPECT_EQ(tel.failedJobs(), 1u);
}

TEST(Watchdog, FastJobsAreUntouched)
{
    Sweep sweep = tinySweep(3);
    exp::RunnerOptions opts;
    opts.jobs = 3;
    opts.jobTimeoutMs = 60000;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    auto outcomes = runner.run(sweep);
    for (const JobOutcome &o : outcomes)
        EXPECT_TRUE(o.ok) << o.spec.id() << ": " << o.error;
}

// ---------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------

TEST(Retry, BacksOffExponentiallyBetweenAttempts)
{
    ExperimentSpec bad = tinySpec();
    bad.workload = "no-such-workload";

    exp::JobControl ctl;
    ctl.maxAttempts = 3;
    ctl.backoffBaseMs = 30;
    ctl.backoffCapMs = 40; // second retry clamps: 30 + 40 ms total
    const auto start = std::chrono::steady_clock::now();
    const JobOutcome out = exp::runJob(bad, ctl);
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_GE(elapsed, 70.0); // both sleeps happened
}

TEST(Retry, ZeroBaseRestoresImmediateReattempt)
{
    ExperimentSpec bad = tinySpec();
    bad.workload = "no-such-workload";

    exp::JobControl ctl;
    ctl.maxAttempts = 4;
    ctl.backoffBaseMs = 0;
    const auto start = std::chrono::steady_clock::now();
    const JobOutcome out = exp::runJob(bad, ctl);
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    EXPECT_EQ(out.attempts, 4u);
    EXPECT_LT(elapsed, 1000.0);
}

// ---------------------------------------------------------------------
// Sandbox isolation
// ---------------------------------------------------------------------

TEST(Isolation, ContainsSegvToOneCell)
{
    ScopedFault f("segv:1");
    Sweep sweep = tinySweep(3);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.maxAttempts = 1;
    opts.isolate = true;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    auto outcomes = runner.run(sweep);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    // Plain builds die by SIGSEGV; sanitized builds intercept the
    // signal and exit nonzero. Either way the cell fails with a named
    // cause and the sweep survives.
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_FALSE(outcomes[1].error.empty());
    EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;
}

TEST(Isolation, GreenSweepIsByteIdenticalToInProcess)
{
    Sweep sweep = tinySweep(4);
    auto runWith = [&](bool isolate) {
        exp::RunnerOptions opts;
        opts.jobs = 2;
        opts.isolate = isolate;
        opts.progress = false;
        exp::SweepRunner runner(opts);
        auto outcomes = runner.run(sweep);
        return exp::sweepToJson(sweep, outcomes).dump(2);
    };
    EXPECT_EQ(runWith(false), runWith(true));
}

TEST(Isolation, TelemetryRecordsChildExit)
{
    Sweep sweep = tinySweep(1);
    exp::RunnerOptions opts;
    opts.jobs = 1;
    opts.isolate = true;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    auto outcomes = runner.run(sweep);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].exitCode, 0);
    ASSERT_EQ(runner.telemetry().jobs.size(), 1u);
    EXPECT_TRUE(runner.telemetry().jobs[0].isolated);
}

// ---------------------------------------------------------------------
// Journal + resume
// ---------------------------------------------------------------------

TEST(Journal, OutcomeWireRoundTripsByteExact)
{
    const ExperimentSpec spec = tinySpec();
    const JobOutcome out = exp::runJob(spec);
    ASSERT_TRUE(out.ok) << out.error;

    const std::string wireText = exp::outcomeToWire(out).dump(0);
    const JobOutcome back = exp::outcomeFromWire(
        JsonValue::parse(wireText), spec, out.index);

    EXPECT_EQ(out.toJson().dump(2), back.toJson().dump(2));
    EXPECT_EQ(out.stats.size(), back.stats.size());
    EXPECT_EQ(exp::outcomeToWire(back).dump(0), wireText);
}

TEST(Journal, AppendsHeaderAndUniqueEntries)
{
    const std::string path = tempPath("unique.journal");
    std::filesystem::remove(path);

    Sweep sweep = tinySweep(3);
    exp::JournalHeader header;
    header.sweep = sweep.name;
    header.jobCount = sweep.jobs.size();
    header.gridHash = exp::gridFingerprint(sweep.jobs);

    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.journal = std::make_shared<exp::SweepJournal>();
    opts.journal->open(path, header, /*fresh=*/true);
    exp::SweepRunner runner(opts);
    auto outcomes = runner.run(sweep);
    opts.journal->close();
    for (const JobOutcome &o : outcomes)
        ASSERT_TRUE(o.ok) << o.error;

    const exp::JournalContents jc = exp::loadJournal(path);
    ASSERT_TRUE(jc.exists);
    ASSERT_TRUE(jc.headerOk);
    EXPECT_TRUE(jc.header.matches(header));
    EXPECT_EQ(jc.dropped, 0u);
    EXPECT_EQ(jc.duplicates, 0u);

    // Every completed cell appears exactly once.
    std::set<std::string> ids;
    for (const auto &[id, wire] : jc.entries)
        ids.insert(id);
    EXPECT_EQ(jc.entries.size(), sweep.jobs.size());
    EXPECT_EQ(ids.size(), sweep.jobs.size());
    for (const ExperimentSpec &spec : sweep.jobs)
        EXPECT_EQ(ids.count(spec.id()), 1u) << spec.id();
}

TEST(Journal, ToleratesTornTailAndRejectsForeignHeader)
{
    const std::string path = tempPath("torn.journal");
    std::filesystem::remove(path);

    Sweep sweep = tinySweep(2);
    exp::JournalHeader header;
    header.sweep = sweep.name;
    header.jobCount = sweep.jobs.size();
    header.gridHash = exp::gridFingerprint(sweep.jobs);

    {
        exp::SweepJournal journal;
        journal.open(path, header, /*fresh=*/true);
        journal.append(exp::runJob(sweep.jobs[0]));
    }
    // Simulate a crash mid-append: a torn, unterminated JSON prefix.
    {
        std::ofstream os(path, std::ios::app);
        os << "{\"id\":\"half-writ";
    }
    const exp::JournalContents jc = exp::loadJournal(path);
    ASSERT_TRUE(jc.headerOk);
    EXPECT_EQ(jc.entries.size(), 1u);
    EXPECT_EQ(jc.dropped, 1u);

    // A journal from a different grid must not match.
    exp::JournalHeader other = header;
    other.gridHash ^= 1;
    EXPECT_FALSE(jc.header.matches(other));
}

TEST(Journal, GridFingerprintTracksResultRelevantFields)
{
    Sweep a = tinySweep(3);
    Sweep b = tinySweep(3);
    EXPECT_EQ(exp::gridFingerprint(a.jobs),
              exp::gridFingerprint(b.jobs));
    b.jobs[1].ops += 1;
    EXPECT_NE(exp::gridFingerprint(a.jobs),
              exp::gridFingerprint(b.jobs));
}

TEST(Journal, InterruptedThenResumedSweepIsByteIdentical)
{
    Sweep sweep = tinySweep(4);

    // Reference: uninterrupted run.
    exp::RunnerOptions plain;
    plain.jobs = 2;
    plain.progress = false;
    exp::SweepRunner ref(plain);
    const std::string full =
        exp::sweepToJson(sweep, ref.run(sweep)).dump(2);

    // "Interrupted" run: only cells 0 and 2 made it into the journal
    // before the crash.
    const std::string path = tempPath("resume.journal");
    std::filesystem::remove(path);
    exp::JournalHeader header;
    header.sweep = sweep.name;
    header.jobCount = sweep.jobs.size();
    header.gridHash = exp::gridFingerprint(sweep.jobs);
    {
        exp::SweepJournal journal;
        journal.open(path, header, /*fresh=*/true);
        journal.append(exp::runJob(sweep.jobs[0]));
        journal.append(exp::runJob(sweep.jobs[2]));
    }

    // Resume: load, skip journaled cells, run the rest, merge.
    const exp::JournalContents jc = exp::loadJournal(path);
    ASSERT_TRUE(jc.headerOk);
    ASSERT_TRUE(jc.header.matches(header));
    Sweep rest = sweep;
    std::erase_if(rest.jobs, [&](const ExperimentSpec &spec) {
        for (const auto &[id, wire] : jc.entries)
            if (id == spec.id())
                return true;
        return false;
    });
    ASSERT_EQ(rest.jobs.size(), 2u);

    exp::SweepRunner resumed(plain);
    auto merged = exp::mergeResumedOutcomes(sweep, jc.entries,
                                            resumed.run(rest));
    ASSERT_EQ(merged.size(), sweep.jobs.size());
    EXPECT_EQ(exp::sweepToJson(sweep, merged).dump(2), full);
}

TEST(Journal, MergeRefusesUncoveredCell)
{
    Sweep sweep = tinySweep(3);
    // One journaled cell, no fresh outcomes: cells 1 and 2 are covered
    // by neither source.
    std::vector<std::pair<std::string, JsonValue>> entries;
    entries.emplace_back(
        sweep.jobs[0].id(),
        exp::outcomeToWire(exp::runJob(sweep.jobs[0])));
    EXPECT_THROW(exp::mergeResumedOutcomes(sweep, entries, {}),
                 SimFatal);
}

TEST(Journal, AtomicWriteReplacesFile)
{
    const std::string path = tempPath("atomic.json");
    exp::writeFileAtomic(path, "first\n");
    exp::writeFileAtomic(path, "second\n");
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, "second\n");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

} // namespace persim
