/**
 * @file
 * Unit tests for the ordering checker: it must accept correct persist
 * orders and flag the paper's violation scenarios (Figure 7).
 */

#include <gtest/gtest.h>

#include "model/ordering_checker.hh"
#include "persist/undo_log.hh"

namespace persim::model
{

TEST(OrderingChecker, AcceptsInOrderPersists)
{
    OrderingChecker chk(2);
    chk.onStoreTagged(0, 0, 0x100);
    chk.onStoreTagged(0, 0, 0x200);
    chk.onStoreTagged(0, 1, 0x300);
    chk.onPersist(10, 0x100, 0, 0, false);
    chk.onPersist(20, 0x200, 0, 0, false);
    chk.onEpochPersisted(0, 0, 25);
    chk.onPersist(30, 0x300, 0, 1, false);
    chk.onEpochPersisted(0, 1, 35);
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty());
    EXPECT_EQ(chk.epochsSettled(), 2u);
}

TEST(OrderingChecker, FlagsFigure7Violation)
{
    // A line of epoch 1 persists while epoch 0 still has a volatile
    // line — exactly the multi-banked violation of Figure 7.
    OrderingChecker chk(1);
    chk.onStoreTagged(0, 0, 0x100); // A (bank 0, delayed)
    chk.onStoreTagged(0, 0, 0x140); // B
    chk.onStoreTagged(0, 1, 0x180); // C
    chk.onPersist(10, 0x140, 0, 0, false); // B persists
    chk.onPersist(20, 0x180, 0, 1, false); // C persists BEFORE A!
    EXPECT_FALSE(chk.violations().empty());
}

TEST(OrderingChecker, UntaggedPersistsAreUnordered)
{
    OrderingChecker chk(1);
    chk.onStoreTagged(0, 0, 0x100);
    // Natural eviction of untagged data: never a violation.
    chk.onPersist(5, 0x900, kNoCore, kNoEpoch, false);
    chk.onPersist(10, 0x100, 0, 0, false);
    chk.onEpochPersisted(0, 0, 15);
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty());
}

TEST(OrderingChecker, CrossCoreDependenceEnforced)
{
    OrderingChecker chk(2);
    chk.onStoreTagged(0, 0, 0x100); // source epoch (core 0)
    chk.onStoreTagged(1, 0, 0x200); // dependent epoch (core 1)
    chk.onDependence(1, 0, 0, 0);   // core1/e0 after core0/e0
    // Dependent persists first: violation.
    chk.onPersist(10, 0x200, 1, 0, false);
    EXPECT_FALSE(chk.violations().empty());
}

TEST(OrderingChecker, CrossCoreDependenceSatisfied)
{
    OrderingChecker chk(2);
    chk.onStoreTagged(0, 0, 0x100);
    chk.onStoreTagged(1, 0, 0x200);
    chk.onDependence(1, 0, 0, 0);
    chk.onPersist(10, 0x100, 0, 0, false);
    chk.onEpochPersisted(0, 0, 12);
    chk.onPersist(20, 0x200, 1, 0, false);
    chk.onEpochPersisted(1, 0, 22);
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty());
}

TEST(OrderingChecker, StealWaivesTheOldIncarnation)
{
    OrderingChecker chk(2);
    chk.onStoreTagged(0, 0, 0x100);
    chk.onStoreTagged(0, 0, 0x140);
    // Core 1 overwrites 0x100 before it was flushed: epoch (0,0) no
    // longer owes that line, but (1,0) persists after (0,0).
    chk.onSteal(0, 0, 1, 0, 0x100, /*srcFlushInFlight=*/false);
    chk.onStoreTagged(1, 0, 0x100);
    chk.onPersist(10, 0x140, 0, 0, false); // only the unwaived line
    chk.onEpochPersisted(0, 0, 12);
    chk.onPersist(20, 0x100, 1, 0, false);
    chk.onEpochPersisted(1, 0, 22);
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty());
}

TEST(OrderingChecker, DeclareWithVolatileLinesFlagged)
{
    OrderingChecker chk(1);
    chk.onStoreTagged(0, 0, 0x100);
    chk.onEpochPersisted(0, 0, 10); // nothing persisted yet!
    EXPECT_FALSE(chk.violations().empty());
}

TEST(OrderingChecker, UnknownEpochPersistFlagged)
{
    OrderingChecker chk(1);
    chk.onPersist(10, 0x100, 0, 7, false); // no onStoreTagged ever
    EXPECT_FALSE(chk.violations().empty());
}

TEST(OrderingChecker, UndoLogAfterDataFlagged)
{
    OrderingChecker chk(1);
    const Addr logAddr = persist::UndoLog::kLogBase + 0x40;
    chk.onStoreTagged(0, 0, 0x100);
    chk.onPersist(10, 0x100, 0, 0, false);   // data first...
    chk.onPersist(20, logAddr, 0, 0, true);  // ...log after: violation
    EXPECT_FALSE(chk.violations().empty());
}

TEST(OrderingChecker, UndoLogBeforeDataAccepted)
{
    OrderingChecker chk(1);
    const Addr logAddr = persist::UndoLog::kLogBase + 0x40;
    chk.onStoreTagged(0, 0, 0x100);
    chk.onPersist(5, logAddr, 0, 0, true);
    chk.onPersist(10, 0x100, 0, 0, false);
    chk.onEpochPersisted(0, 0, 12);
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty());
}

TEST(OrderingChecker, CheckpointWritesExemptFromLogRule)
{
    OrderingChecker chk(1);
    const Addr ckpt = persist::UndoLog::kCheckpointBase + 0x40;
    chk.onStoreTagged(0, 0, 0x100);
    chk.onPersist(10, 0x100, 0, 0, false);
    chk.onPersist(20, ckpt, 0, 0, true); // checkpoint after data: fine
    chk.onEpochPersisted(0, 0, 25);
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty());
}

TEST(OrderingChecker, FinalizeFlagsUndrainedEpochs)
{
    OrderingChecker chk(1);
    chk.onStoreTagged(0, 0, 0x100);
    chk.finalize();
    EXPECT_FALSE(chk.violations().empty());
}

TEST(OrderingChecker, LogRecordsEventsWhenEnabled)
{
    OrderingChecker chk(1, /*keepLog=*/true);
    chk.onStoreTagged(0, 0, 0x100);
    chk.onPersist(10, 0x100, 0, 0, false);
    ASSERT_EQ(chk.log().size(), 1u);
    EXPECT_EQ(chk.log()[0].addr, 0x100u);
    EXPECT_EQ(chk.log()[0].when, 10u);
}

TEST(OrderingChecker, SettlingCascadesAcrossCores)
{
    // core1/e0 depends on core0/e1; settling core0 epochs in order
    // must unblock core1.
    OrderingChecker chk(2);
    chk.onStoreTagged(0, 0, 0x100);
    chk.onStoreTagged(0, 1, 0x140);
    chk.onStoreTagged(1, 0, 0x200);
    chk.onDependence(1, 0, 0, 1);
    chk.onPersist(10, 0x100, 0, 0, false);
    chk.onEpochPersisted(0, 0, 11);
    chk.onPersist(20, 0x140, 0, 1, false);
    chk.onEpochPersisted(0, 1, 21);
    chk.onPersist(30, 0x200, 1, 0, false);
    chk.onEpochPersisted(1, 0, 31);
    chk.finalize();
    EXPECT_TRUE(chk.violations().empty());
    EXPECT_EQ(chk.epochsSettled(), 3u);
    EXPECT_EQ(chk.dependenceEdges(), 1u);
}

} // namespace persim::model
