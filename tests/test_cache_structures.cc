/**
 * @file
 * Unit tests for the cache tag array, MSHRs, and the write buffer.
 */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"
#include "cache/mshr.hh"
#include "cpu/write_buffer.hh"
#include "sim/logging.hh"

namespace persim
{

using cache::CacheArray;
using cache::CacheGeometry;
using cache::CacheLine;
using cache::CoherenceState;

TEST(CacheArray, GeometryMath)
{
    CacheArray arr("a", CacheGeometry{32 * 1024, 4});
    EXPECT_EQ(arr.sets(), 128u);
    EXPECT_EQ(arr.ways(), 4u);
}

TEST(CacheArray, RejectsNonPowerOfTwoSets)
{
    EXPECT_THROW(CacheArray("bad", CacheGeometry{3 * 1024, 4}), SimPanic);
}

TEST(CacheArray, FillAndFind)
{
    CacheArray arr("a", CacheGeometry{4 * 1024, 4});
    EXPECT_EQ(arr.find(0x1000), nullptr);
    CacheLine *victim = arr.victimFor(0x1000, false);
    ASSERT_NE(victim, nullptr);
    EXPECT_FALSE(victim->valid());
    CacheLine &line = arr.fill(*victim, 0x1000, CoherenceState::Shared);
    EXPECT_EQ(arr.find(0x1000), &line);
    EXPECT_EQ(arr.find(0x1020), &line); // same line, different offset
    EXPECT_EQ(line.state(), CoherenceState::Shared);
}

TEST(CacheArray, LruVictimSelection)
{
    // 16 sets, 2 ways: addresses 64*16 apart collide.
    CacheArray arr("a", CacheGeometry{2 * 1024, 2});
    const Addr a = 0x0, b = a + 16 * 64, c = b + 16 * 64;
    arr.fill(*arr.victimFor(a, false), a, CoherenceState::Shared);
    arr.fill(*arr.victimFor(b, false), b, CoherenceState::Shared);
    // Touch a so b becomes LRU.
    arr.touch(*arr.find(a));
    CacheLine *v = arr.victimFor(c, false);
    ASSERT_TRUE(v->valid());
    EXPECT_EQ(v->addr(), b);
}

TEST(CacheArray, VictimAvoidsTaggedLines)
{
    CacheArray arr("a", CacheGeometry{2 * 1024, 2});
    const Addr a = 0x0, b = a + 16 * 64, c = b + 16 * 64;
    CacheLine &la = arr.fill(*arr.victimFor(a, false), a,
                             CoherenceState::Shared);
    arr.fill(*arr.victimFor(b, false), b, CoherenceState::Shared);
    la.setTag(0, 5); // LRU but tagged
    CacheLine *v = arr.victimFor(c, true);
    EXPECT_EQ(v->addr(), b);
    // Without avoidance, plain LRU picks the tagged line.
    EXPECT_EQ(arr.victimFor(c, false)->addr(), a);
}

TEST(CacheArray, VictimPrefersLinesWithoutL1Copies)
{
    CacheArray arr("a", CacheGeometry{2 * 1024, 2});
    const Addr a = 0x0, b = a + 16 * 64, c = b + 16 * 64;
    CacheLine &la = arr.fill(*arr.victimFor(a, false), a,
                             CoherenceState::Shared);
    arr.fill(*arr.victimFor(b, false), b, CoherenceState::Shared);
    la.setOwner(3); // LRU but held by an L1
    EXPECT_EQ(arr.victimFor(c, true)->addr(), b);
}

TEST(CacheArray, PinnedLinesAreNeverVictims)
{
    CacheArray arr("a", CacheGeometry{2 * 1024, 2});
    const Addr a = 0x0, b = a + 16 * 64, c = b + 16 * 64;
    CacheLine &la = arr.fill(*arr.victimFor(a, false), a,
                             CoherenceState::Shared);
    CacheLine &lb = arr.fill(*arr.victimFor(b, false), b,
                             CoherenceState::Shared);
    la.setPinned(true);
    EXPECT_EQ(arr.victimFor(c, false), &lb);
    lb.setPinned(true);
    EXPECT_EQ(arr.victimFor(c, false), nullptr);
}

TEST(CacheArray, RandomPolicyPicksValidCandidates)
{
    CacheGeometry geom{2 * 1024, 2};
    geom.policy = cache::ReplacementPolicy::Random;
    CacheArray arr("a", geom);
    const Addr a = 0x0, b = a + 16 * 64, c = b + 16 * 64;
    arr.fill(*arr.victimFor(a, false), a, CoherenceState::Shared);
    arr.fill(*arr.victimFor(b, false), b, CoherenceState::Shared);
    // Over many draws both ways must be picked, never anything else.
    bool sawA = false, sawB = false;
    for (int i = 0; i < 64; ++i) {
        CacheLine *v = arr.victimFor(c, false);
        ASSERT_NE(v, nullptr);
        ASSERT_TRUE(v->addr() == a || v->addr() == b);
        sawA |= v->addr() == a;
        sawB |= v->addr() == b;
    }
    EXPECT_TRUE(sawA);
    EXPECT_TRUE(sawB);
}

TEST(CacheArray, RandomPolicyStillAvoidsTaggedLines)
{
    CacheGeometry geom{2 * 1024, 2};
    geom.policy = cache::ReplacementPolicy::Random;
    CacheArray arr("a", geom);
    const Addr a = 0x0, b = a + 16 * 64, c = b + 16 * 64;
    CacheLine &la = arr.fill(*arr.victimFor(a, false), a,
                             CoherenceState::Shared);
    arr.fill(*arr.victimFor(b, false), b, CoherenceState::Shared);
    la.setTag(0, 3);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(arr.victimFor(c, true)->addr(), b);
}

TEST(CacheArray, InvalidateClearsEverything)
{
    CacheLine l;
    l.setAddr(0x40);
    l.setState(CoherenceState::Modified);
    l.setDirty(true);
    l.setTag(2, 9);
    l.setOwner(2);
    l.setSharers(0xFF);
    l.setPinned(true);
    l.invalidate();
    EXPECT_FALSE(l.valid());
    EXPECT_FALSE(l.dirty());
    EXPECT_FALSE(l.tagged());
    EXPECT_EQ(l.owner(), kNoCore);
    EXPECT_EQ(l.sharers(), 0u);
    EXPECT_FALSE(l.pinned());
}

TEST(CacheArray, SetShiftStripsBankBits)
{
    // Two banks of a 32-set cache: with setShift=1, addresses that
    // differ only in the bank-select bit map to the same set.
    CacheArray arr("bank", CacheGeometry{4 * 1024, 4}, 1);
    const Addr a = 0x0;
    const Addr sameSet = a + 2 * 64; // line+2 with shift 1 -> set +1
    EXPECT_EQ(arr.setIndex(a), 0u);
    EXPECT_EQ(arr.setIndex(a + 128), 1u);
    (void)sameSet;
}

TEST(Mshr, AllocateMergeRelease)
{
    cache::MshrFile mshrs(2);
    EXPECT_FALSE(mshrs.has(0x100));
    int completions = 0;
    mshrs.allocate(0x100, false,
                   cache::PendingAccess{false, 0, [&] { ++completions; }});
    EXPECT_TRUE(mshrs.has(0x100));
    EXPECT_TRUE(mshrs.has(0x13F)); // same line
    EXPECT_FALSE(mshrs.forWrite(0x100));
    mshrs.merge(0x100,
                cache::PendingAccess{true, 0, [&] { ++completions; }});
    auto q = mshrs.release(0x100);
    EXPECT_FALSE(mshrs.has(0x100));
    ASSERT_EQ(q.size(), 2u);
    EXPECT_FALSE(q[0].isWrite);
    EXPECT_TRUE(q[1].isWrite);
}

TEST(Mshr, CapacityEnforced)
{
    cache::MshrFile mshrs(1);
    mshrs.allocate(0x100, false, cache::PendingAccess{});
    EXPECT_TRUE(mshrs.full());
    EXPECT_THROW(mshrs.allocate(0x200, false, cache::PendingAccess{}),
                 SimPanic);
}

TEST(Mshr, DoubleAllocatePanics)
{
    cache::MshrFile mshrs(4);
    mshrs.allocate(0x100, false, cache::PendingAccess{});
    EXPECT_THROW(mshrs.allocate(0x100, true, cache::PendingAccess{}),
                 SimPanic);
}

TEST(WriteBuffer, FifoOrderAndCapacity)
{
    cpu::WriteBuffer wb(3);
    EXPECT_TRUE(wb.empty());
    wb.push(0x100);
    wb.push(0x200);
    wb.push(0x300);
    EXPECT_TRUE(wb.full());
    EXPECT_EQ(wb.front().addr, 0x100u);
    wb.pop();
    EXPECT_EQ(wb.front().addr, 0x200u);
    EXPECT_FALSE(wb.full());
}

TEST(WriteBuffer, LineContainment)
{
    cpu::WriteBuffer wb(8);
    wb.push(0x100);
    wb.push(0x100); // two stores, same line
    EXPECT_TRUE(wb.containsLine(0x100));
    EXPECT_TRUE(wb.containsLine(0x13C));
    EXPECT_FALSE(wb.containsLine(0x140));
    wb.pop();
    EXPECT_TRUE(wb.containsLine(0x100));
    wb.pop();
    EXPECT_FALSE(wb.containsLine(0x100));
}

TEST(WriteBuffer, OverflowAndUnderflowPanic)
{
    cpu::WriteBuffer wb(1);
    wb.push(0x40);
    EXPECT_THROW(wb.push(0x80), SimPanic);
    wb.pop();
    EXPECT_THROW(wb.pop(), SimPanic);
}

} // namespace persim
