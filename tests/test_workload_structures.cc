/**
 * @file
 * Unit tests for the workload substrates: heap, locks, red-black tree,
 * trace-generator presets.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/logging.hh"
#include "workload/lock_manager.hh"
#include "workload/micro/rbtree.hh"
#include "workload/nv_heap.hh"
#include "workload/synthetic/presets.hh"
#include "workload/workload_factory.hh"

namespace persim::workload
{

TEST(NvHeap, AllocatesLineAlignedDisjointChunks)
{
    NvHeap heap;
    const Addr a = heap.alloc(512);
    const Addr b = heap.alloc(512);
    EXPECT_EQ(lineAlign(a), a);
    EXPECT_GE(b, a + 512);
    EXPECT_EQ(heap.liveBytes(), 1024u);
}

TEST(NvHeap, ReusesFreedEntriesLifo)
{
    NvHeap heap;
    const Addr a = heap.alloc(512);
    const Addr b = heap.alloc(512);
    heap.free(a, 512);
    heap.free(b, 512);
    EXPECT_EQ(heap.alloc(512), b); // LIFO reuse
    EXPECT_EQ(heap.alloc(512), a);
}

TEST(NvHeap, RoundsUpToLineMultiple)
{
    NvHeap heap;
    const Addr a = heap.alloc(1);
    const Addr b = heap.alloc(1);
    EXPECT_EQ(b - a, kLineBytes);
}

TEST(NvHeap, SizeClassesAreIndependent)
{
    NvHeap heap;
    const Addr a = heap.alloc(512);
    heap.free(a, 512);
    const Addr c = heap.alloc(64); // different class: no reuse
    EXPECT_NE(c, a);
}

TEST(LockManager, AcquireReleaseCycle)
{
    LockManager lm;
    EXPECT_TRUE(lm.tryAcquire(0x100, 0));
    EXPECT_EQ(lm.holder(0x100), 0);
    EXPECT_FALSE(lm.tryAcquire(0x100, 1));
    lm.release(0x100, 0);
    EXPECT_EQ(lm.holder(0x100), kNoCore);
    EXPECT_TRUE(lm.tryAcquire(0x100, 1));
    EXPECT_EQ(lm.acquisitions(), 2u);
    EXPECT_EQ(lm.contendedTries(), 1u);
}

TEST(LockManager, WrongReleasePanics)
{
    LockManager lm;
    ASSERT_TRUE(lm.tryAcquire(0x100, 0));
    EXPECT_THROW(lm.release(0x100, 1), SimPanic);
    EXPECT_THROW(lm.release(0x200, 0), SimPanic);
}

TEST(LockManager, RecursiveAcquirePanics)
{
    LockManager lm;
    ASSERT_TRUE(lm.tryAcquire(0x100, 0));
    EXPECT_THROW(lm.tryAcquire(0x100, 0), SimPanic);
}

TEST(RbTreeTest, InsertMaintainsInvariants)
{
    NvHeap heap;
    RbTree tree(heap);
    std::vector<Addr> path, touched;
    for (std::uint64_t k = 1; k <= 200; ++k) {
        path.clear();
        touched.clear();
        ASSERT_TRUE(tree.insert(k * 37 % 211, path, touched));
        ASSERT_TRUE(tree.validate()) << "after insert #" << k;
    }
    EXPECT_EQ(tree.size(), 200u);
}

TEST(RbTreeTest, DuplicateInsertRejected)
{
    NvHeap heap;
    RbTree tree(heap);
    std::vector<Addr> path, touched;
    EXPECT_TRUE(tree.insert(5, path, touched));
    path.clear();
    touched.clear();
    EXPECT_FALSE(tree.insert(5, path, touched));
    EXPECT_TRUE(touched.empty());
    EXPECT_EQ(tree.size(), 1u);
}

TEST(RbTreeTest, EraseMaintainsInvariants)
{
    NvHeap heap;
    RbTree tree(heap);
    std::vector<Addr> path, touched;
    for (std::uint64_t k = 0; k < 100; ++k)
        tree.insert(k, path, touched);
    // Erase in a scattered order.
    for (std::uint64_t k = 0; k < 100; k += 3) {
        path.clear();
        touched.clear();
        ASSERT_TRUE(tree.erase(k, path, touched));
        ASSERT_TRUE(tree.validate()) << "after erase of " << k;
    }
    EXPECT_EQ(tree.size(), 100u - 34u);
    EXPECT_FALSE(tree.erase(0, path, touched)); // already gone
}

TEST(RbTreeTest, LookupRecordsPath)
{
    NvHeap heap;
    RbTree tree(heap);
    std::vector<Addr> path, touched;
    for (std::uint64_t k = 0; k < 64; ++k)
        tree.insert(k, path, touched);
    path.clear();
    EXPECT_TRUE(tree.lookup(33, path));
    EXPECT_FALSE(path.empty());
    EXPECT_LE(path.size(), 2 * 7u); // ~2*log2(n) bound for RB trees
    path.clear();
    EXPECT_FALSE(tree.lookup(1000, path));
}

TEST(RbTreeTest, TouchedNodesAreBounded)
{
    NvHeap heap;
    RbTree tree(heap);
    std::vector<Addr> path, touched;
    for (std::uint64_t k = 0; k < 512; ++k) {
        path.clear();
        touched.clear();
        tree.insert(k, path, touched);
        // Rebalancing writes O(log n) nodes.
        EXPECT_LE(touched.size(), 40u);
    }
}

TEST(Presets, AllNinePresent)
{
    const auto &names = syntheticPresetNames();
    EXPECT_EQ(names.size(), 9u);
    for (const auto &n : names) {
        TraceGenParams p = syntheticPreset(n);
        EXPECT_EQ(p.name, n);
        EXPECT_GT(p.storeFraction, 0.0);
        EXPECT_LT(p.storeFraction, 1.0);
        EXPECT_GT(p.privateLines, 0u);
    }
}

TEST(Presets, UnknownNameFatals)
{
    EXPECT_THROW(syntheticPreset("doom"), SimFatal);
}

TEST(Presets, Ssca2IsTheSharingStressCase)
{
    // The paper singles out ssca2 as write-intensive with fine-grained
    // inter-thread interaction; the preset must reflect that.
    TraceGenParams ssca2 = syntheticPreset("ssca2");
    for (const auto &n : syntheticPresetNames()) {
        if (n == "ssca2")
            continue;
        TraceGenParams other = syntheticPreset(n);
        EXPECT_GE(ssca2.sharedFraction, other.sharedFraction);
    }
}

TEST(Factory, MicroKindRoundTrip)
{
    for (MicroKind k : allMicroKinds())
        EXPECT_EQ(microKindFromName(toString(k)), k);
    EXPECT_THROW(microKindFromName("nope"), SimFatal);
}

TEST(Factory, BuildsOneWorkloadPerThread)
{
    MicroConfig cfg;
    cfg.kind = MicroKind::Queue;
    cfg.numThreads = 8;
    auto w = makeMicroWorkloads(cfg);
    EXPECT_EQ(w.size(), 8u);
    for (auto &p : w)
        EXPECT_NE(p, nullptr);
    auto s = makeSyntheticWorkloads("radix", 8, 100, 1);
    EXPECT_EQ(s.size(), 8u);
}

} // namespace persim::workload
