/**
 * @file
 * Unit tests for stats, RNG, logging, and scalar helpers.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace persim
{

TEST(Types, LineHelpers)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(0x1234), 0x1200u);
    EXPECT_EQ(lineNum(0), 0u);
    EXPECT_EQ(lineNum(64), 1u);
    EXPECT_EQ(lineNum(127), 1u);
    EXPECT_EQ(kLineBytes, 64u);
}

TEST(Logging, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("boom ", 42), SimPanic);
    EXPECT_THROW(fatal("bad config: ", "x"), SimFatal);
    try {
        panic("value=", 7, " addr=0x", std::hex, 255);
    } catch (const SimPanic &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("ff"), std::string::npos);
    }
}

TEST(Logging, SimAssertPassesAndFails)
{
    EXPECT_NO_THROW(simAssert(true, "fine"));
    EXPECT_THROW(simAssert(false, "broken"), SimPanic);
}

TEST(Stats, ScalarBasics)
{
    StatGroup g("grp");
    Scalar s(&g, "count", "a counter");
    EXPECT_EQ(s.value(), 0u);
    s.inc();
    s.inc(9);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 16u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, DistributionMoments)
{
    Distribution d(nullptr, "lat", "latency");
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 30.0);
    EXPECT_NEAR(d.stdev(), 8.1649, 1e-3);
}

TEST(Stats, IntegerAndDoubleSamplePathsAgree)
{
    // Tick-valued call sites use the integer overload; any value below
    // 2^53 must land in the same bucket with the same moments as the
    // double path it replaced.
    Distribution di(nullptr, "i", "int path");
    Distribution dd(nullptr, "d", "double path");
    const std::uint64_t vals[] = {0,   1,    7,     8,        15,
                                  16,  100,  1023,  1024,     4097,
                                  1u << 20,  12345, 987654321};
    for (std::uint64_t v : vals) {
        di.sample(v);
        dd.sample(static_cast<double>(v));
    }
    EXPECT_EQ(di.count(), dd.count());
    EXPECT_DOUBLE_EQ(di.sum(), dd.sum());
    EXPECT_DOUBLE_EQ(di.mean(), dd.mean());
    EXPECT_DOUBLE_EQ(di.stdev(), dd.stdev());
    for (double p : {0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(di.percentile(p), dd.percentile(p)) << p;
}

TEST(Stats, PercentileNeverExceedsObservedMin)
{
    // Negative samples clamp into bucket 0; its representative must be
    // the observed minimum, not bucket 0's nominal upper bound (0), or
    // percentile(0) would exceed min().
    Distribution d(nullptr, "neg", "negatives");
    d.sample(-5.0);
    d.sample(10.0);
    EXPECT_DOUBLE_EQ(d.min(), -5.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), -5.0);
    EXPECT_LE(d.percentile(0.0), d.min());
    EXPECT_GE(d.percentile(100.0), 10.0);
}

TEST(Stats, GroupDumpAndMap)
{
    StatGroup g("cache");
    Scalar hits(&g, "hits", "hits");
    Distribution lat(&g, "latency", "lat");
    hits.inc(3);
    lat.sample(5.0);

    std::map<std::string, double> m;
    g.toMap(m);
    EXPECT_DOUBLE_EQ(m["cache.hits"], 3.0);
    EXPECT_DOUBLE_EQ(m["cache.latency.mean"], 5.0);
    EXPECT_DOUBLE_EQ(m["cache.latency.count"], 1.0);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("cache.hits"), std::string::npos);
    EXPECT_NE(os.str().find("# hits"), std::string::npos);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs |= (a2.next() != c.next());
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.below(13);
        EXPECT_LT(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 13u); // every residue hit
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
    }
}

} // namespace persim
