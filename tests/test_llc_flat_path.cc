/**
 * @file
 * Tests for the flattened LLC request path: the open-addressed
 * FlatAddrMap and NodePool containers, the packed CacheLine encoding,
 * the checked transaction lookup, the pin-waiter lists, and the
 * epoch-flush edge cases that ride on them.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/flat_table.hh"
#include "model/system.hh"
#include "persist/persist_controller.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace persim
{

using cache::CacheArray;
using cache::CacheGeometry;
using cache::CacheLine;
using cache::CoherenceState;
using cache::FlatAddrMap;
using cache::ListRef;
using cache::NodePool;
using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;
using persist::BarrierKind;

namespace
{

class Script : public cpu::Workload
{
  public:
    explicit Script(std::vector<cpu::MemOp> ops) : _ops(std::move(ops)) {}

    cpu::MemOp
    next(Tick) override
    {
        if (_pos >= _ops.size())
            return cpu::MemOp::halt();
        return _ops[_pos++];
    }

  private:
    std::vector<cpu::MemOp> _ops;
    std::size_t _pos = 0;
};

constexpr Addr kBase = Addr{1} << 32;

} // namespace

// ---------------------------------------------------------------------
// FlatAddrMap
// ---------------------------------------------------------------------

TEST(FlatAddrMap, InsertFindErase)
{
    FlatAddrMap<int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(0x40), nullptr);
    map.insertOrFind(0x40) = 7;
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(0x40), nullptr);
    EXPECT_EQ(*map.find(0x40), 7);
    // insertOrFind on a present key returns the existing value.
    EXPECT_EQ(map.insertOrFind(0x40), 7);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_TRUE(map.erase(0x40));
    EXPECT_FALSE(map.erase(0x40));
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(0x40), nullptr);
}

TEST(FlatAddrMap, GrowthPreservesEntries)
{
    FlatAddrMap<std::uint64_t> map(16);
    const std::size_t initialCap = map.capacity();
    for (Addr i = 0; i < 200; ++i)
        map.insertOrFind(i * kLineBytes) = i;
    EXPECT_GT(map.capacity(), initialCap);
    EXPECT_EQ(map.size(), 200u);
    for (Addr i = 0; i < 200; ++i) {
        const std::uint64_t *v = map.find(i * kLineBytes);
        ASSERT_NE(v, nullptr) << "lost key " << i;
        EXPECT_EQ(*v, i);
    }
}

TEST(FlatAddrMap, ChurnMatchesReferenceMap)
{
    // Random insert/erase churn in a deliberately crowded table: every
    // surviving key must stay findable (backward-shift deletion must
    // repair probe chains), every erased key must stay gone.
    FlatAddrMap<std::uint64_t> map(16);
    std::unordered_map<Addr, std::uint64_t> ref;
    std::mt19937_64 rng(42);
    for (int step = 0; step < 20000; ++step) {
        const Addr key = (rng() % 512) * kLineBytes;
        if (rng() % 3 == 0) {
            EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        } else {
            const std::uint64_t val = rng();
            map.insertOrFind(key) = val;
            ref[key] = val;
        }
    }
    EXPECT_EQ(map.size(), ref.size());
    for (const auto &[key, val] : ref) {
        const std::uint64_t *got = map.find(key);
        ASSERT_NE(got, nullptr) << "lost key 0x" << std::hex << key;
        EXPECT_EQ(*got, val);
    }
    std::size_t seen = 0;
    map.forEach([&](Addr key, const std::uint64_t &val) {
        ++seen;
        auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(val, it->second);
    });
    EXPECT_EQ(seen, ref.size());
}

// ---------------------------------------------------------------------
// NodePool + ListRef
// ---------------------------------------------------------------------

TEST(NodePool, FifoListAndReuse)
{
    NodePool<int> pool;
    ListRef list;
    EXPECT_TRUE(list.empty());
    for (int i = 1; i <= 4; ++i)
        list.pushBack(pool, pool.alloc(int{i}));
    EXPECT_EQ(pool.live(), 4u);
    std::vector<int> drained;
    while (!list.empty()) {
        const std::uint32_t n = list.popFront(pool);
        drained.push_back(pool.at(n));
        pool.release(n);
    }
    EXPECT_EQ(drained, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(pool.live(), 0u);
    const std::size_t footprint = pool.allocated();
    // Freed nodes are recycled: further traffic grows nothing.
    for (int round = 0; round < 8; ++round) {
        ListRef l2;
        for (int i = 0; i < 4; ++i)
            l2.pushBack(pool, pool.alloc(int{i}));
        while (!l2.empty())
            pool.release(l2.popFront(pool));
    }
    EXPECT_EQ(pool.allocated(), footprint);
}

// ---------------------------------------------------------------------
// Packed CacheLine
// ---------------------------------------------------------------------

TEST(CacheLinePacked, FitsInHalfAHostLine)
{
    EXPECT_LE(sizeof(CacheLine), 32u);
}

TEST(CacheLinePacked, FlagBitsAreIndependent)
{
    CacheLine l;
    l.setState(CoherenceState::Modified);
    l.setDirty(true);
    l.setPinned(true);
    EXPECT_EQ(l.state(), CoherenceState::Modified);
    EXPECT_TRUE(l.dirty());
    EXPECT_TRUE(l.pinned());
    l.setDirty(false);
    EXPECT_EQ(l.state(), CoherenceState::Modified);
    EXPECT_FALSE(l.dirty());
    EXPECT_TRUE(l.pinned());
    l.setState(CoherenceState::Shared);
    EXPECT_TRUE(l.pinned());
    EXPECT_FALSE(l.dirty());
    l.setPinned(false);
    EXPECT_EQ(l.state(), CoherenceState::Shared);
}

TEST(CacheLinePacked, CoreIdSentinelsRoundTrip)
{
    CacheLine l;
    EXPECT_EQ(l.owner(), kNoCore);
    l.setOwner(static_cast<CoreId>(kMaxCores - 1));
    EXPECT_EQ(l.owner(), kMaxCores - 1);
    l.setOwner(kNoCore);
    EXPECT_EQ(l.owner(), kNoCore);

    EXPECT_FALSE(l.tagged());
    l.setTag(static_cast<CoreId>(kMaxCores - 1), 7);
    EXPECT_TRUE(l.tagged());
    EXPECT_EQ(l.epochCore(), kMaxCores - 1);
    EXPECT_EQ(l.epochId(), 7u);
    l.clearTag();
    EXPECT_FALSE(l.tagged());
    EXPECT_EQ(l.epochCore(), kNoCore);
    EXPECT_EQ(l.epochId(), kNoEpoch);
}

TEST(CacheLinePacked, LruVictimSurvivesStampWrap)
{
    // 16 sets, 2 ways. Stamp a just below the 32-bit wrap and b just
    // above it: b is more recent despite the smaller raw value, so the
    // wrap-aware comparison must evict a. A plain < would evict b.
    CacheArray arr("a", CacheGeometry{2 * 1024, 2});
    const Addr a = 0x0, b = a + 16 * 64, c = b + 16 * 64;
    CacheLine &la = arr.fill(*arr.victimFor(a, false), a,
                             CoherenceState::Shared);
    CacheLine &lb = arr.fill(*arr.victimFor(b, false), b,
                             CoherenceState::Shared);
    la.setLruStamp(0xFFFFFFF8u);
    lb.setLruStamp(5u); // wrapped, newer
    CacheLine *v = arr.victimFor(c, false);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v, &la);
}

// ---------------------------------------------------------------------
// Checked transaction lookup and construction-time core ceiling
// ---------------------------------------------------------------------

TEST(LlcBankFlat, ActiveTxnLookupPanicsWithBankAndAddress)
{
    System sys(SystemConfig::smallTest(2));
    try {
        sys.bank(0).activeTxnFor(kBase);
        FAIL() << "expected SimPanic";
    } catch (const SimPanic &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("llc[0]"), std::string::npos) << what;
        EXPECT_NE(what.find("no active transaction"), std::string::npos)
            << what;
        EXPECT_NE(what.find("100000000"), std::string::npos) << what;
    }
}

TEST(PersistControllerGuard, RejectsMoreCoresThanTheSharerMask)
{
    EventQueue eq;
    persist::BarrierConfig bc;
    EXPECT_THROW(persist::PersistController("pc", eq, bc, kMaxCores + 1),
                 SimPanic);
    EXPECT_NO_THROW(
        persist::PersistController("pc", eq, bc, kMaxCores));
}

// ---------------------------------------------------------------------
// Pin-waiter lists
// ---------------------------------------------------------------------

TEST(LlcBankFlat, PinWaitersWakeInFifoOrder)
{
    System sys(SystemConfig::smallTest(2));
    auto &bank = sys.bank(0);
    std::vector<int> order;
    bank.testAddPinWaiter(kBase, [&] { order.push_back(1); });
    bank.testAddPinWaiter(kBase, [&] { order.push_back(2); });
    bank.testAddPinWaiter(kBase, [&] { order.push_back(3); });
    EXPECT_EQ(bank.testPinWaiters(kBase), 3u);
    // Waiter-only entries must not count as busy lines.
    EXPECT_EQ(bank.busyLines(), 0u);
    bank.testUnpin(kBase);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(bank.testPinWaiters(kBase), 0u);
}

TEST(LlcBankFlat, WaiterQueuedDuringDrainRunsOnNextUnpin)
{
    // A woken waiter that immediately re-blocks (the lookupStage retry
    // pattern) must land in a fresh list, not the one being drained.
    System sys(SystemConfig::smallTest(2));
    auto &bank = sys.bank(0);
    std::vector<int> order;
    bank.testAddPinWaiter(kBase, [&] {
        order.push_back(1);
        bank.testAddPinWaiter(kBase, [&] { order.push_back(3); });
    });
    bank.testAddPinWaiter(kBase, [&] { order.push_back(2); });
    bank.testUnpin(kBase);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(bank.testPinWaiters(kBase), 1u);
    bank.testUnpin(kBase);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(bank.testPinWaiters(kBase), 0u);
}

TEST(LlcBankFlat, WaitersOnDistinctLinesAreIndependent)
{
    System sys(SystemConfig::smallTest(2));
    auto &bank = sys.bank(0);
    int aRan = 0, bRan = 0;
    // Different lines, likely colliding table neighborhoods under churn.
    for (int i = 0; i < 32; ++i) {
        bank.testAddPinWaiter(kBase + i * kLineBytes,
                              i % 2 ? InlineCallback([&] { ++bRan; })
                                    : InlineCallback([&] { ++aRan; }));
    }
    bank.testUnpin(kBase); // wakes only line 0's waiter
    EXPECT_EQ(aRan, 1);
    EXPECT_EQ(bRan, 0);
    for (int i = 1; i < 32; ++i)
        bank.testUnpin(kBase + i * kLineBytes);
    EXPECT_EQ(aRan, 16);
    EXPECT_EQ(bRan, 16);
}

// ---------------------------------------------------------------------
// Epoch-flush edge cases
// ---------------------------------------------------------------------

TEST(FlushProtocol, EmptyFlushEpochStillAcks)
{
    // One store on one core: the FlushEpoch broadcast reaches every
    // bank, and the banks holding no line of the epoch must ack an
    // empty job rather than stall or panic.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LB);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    ops.push_back(cpu::MemOp::store(kBase));
    ops.push_back(cpu::MemOp::barrier());
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
    auto stats = sys.stats();
    double flushMsgs = 0, lasersEmpty = 0;
    for (unsigned b = 0; b < 2; ++b) {
        const std::string p = "llc[" + std::to_string(b) + "].";
        // Every FlushEpoch a bank sees is acked exactly once.
        EXPECT_EQ(stats[p + "flushEpochMsgs"], stats[p + "bankAcksSent"]);
        flushMsgs += stats[p + "flushEpochMsgs"];
        lasersEmpty += stats[p + "linesFlushed"] == 0.0 ? 1 : 0;
    }
    EXPECT_GT(flushMsgs, 0.0);
    // The single dirty line lives in exactly one bank; the other bank's
    // job really was empty.
    EXPECT_GE(lasersEmpty, 1.0);
}

TEST(FlushProtocol, InvalidatingFlushSkipsPinnedLines)
{
    // Two cores hammer a small shared working set in a tiny LLC with
    // clflush semantics: flush acks race in-flight transactions and
    // evictions, and the ack path must leave pinned lines cached (the
    // flushSkipsPinned stat) instead of invalidating under their feet.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LB);
    cfg.llcBank.geometry = CacheGeometry{4 * 1024, 2};
    cfg.barrier.avoidTaggedVictims = false;
    cfg.barrier.invalidatingFlush = true;
    System sys(cfg);
    // 192 shared lines vs 128 lines of total LLC capacity: every pass
    // evicts, and the other core's requests race the in-flight
    // evictions (pinWaits) while barriers race the flush acks
    // (flushSkipsPinned).
    constexpr int kLines = 192;
    for (unsigned c = 0; c < 2; ++c) {
        std::vector<cpu::MemOp> ops;
        for (int e = 0; e < 6; ++e) {
            for (int i = 0; i < kLines; ++i) {
                const int idx = c == 0 ? i : kLines - 1 - i;
                ops.push_back(
                    cpu::MemOp::store(kBase + idx * kLineBytes));
            }
            ops.push_back(cpu::MemOp::barrier());
        }
        sys.setWorkload(static_cast<CoreId>(c),
                        std::make_unique<Script>(ops));
    }
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
    EXPECT_TRUE(res.violations.empty())
        << "first: " << res.violations.front();
    auto stats = sys.stats();
    double skips = 0;
    for (unsigned b = 0; b < 2; ++b)
        skips += stats["llc[" + std::to_string(b) + "].flushSkipsPinned"];
    EXPECT_GT(skips, 0.0);
}

TEST(FlushProtocol, RequestsBlockOnInFlightEviction)
{
    // Both cores hammer one LLC set of one bank with more lines than it
    // has ways, in opposite phase: each core keeps requesting lines the
    // other is busy evicting, so some lookups must find the line pinned
    // by an in-flight eviction, block on its waiter list, and replay
    // when the eviction drains (the pinWaits counter).
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LB);
    cfg.llcBank.geometry = CacheGeometry{4 * 1024, 2};
    cfg.barrier.avoidTaggedVictims = false;
    System sys(cfg);
    // Same bank + same set: stride over numBanks * sets lines.
    const Addr setStride = 2 * 32 * kLineBytes;
    constexpr int kSetLines = 6;
    for (unsigned c = 0; c < 2; ++c) {
        std::vector<cpu::MemOp> ops;
        for (int r = 0; r < 200; ++r) {
            const int idx =
                c == 0 ? r % kSetLines
                       : kSetLines - 1 - (r % kSetLines);
            ops.push_back(cpu::MemOp::store(kBase + idx * setStride));
        }
        sys.setWorkload(static_cast<CoreId>(c),
                        std::make_unique<Script>(ops));
    }
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
    auto stats = sys.stats();
    double pinWaits = 0, evictions = 0;
    for (unsigned b = 0; b < 2; ++b) {
        const std::string p = "llc[" + std::to_string(b) + "].";
        pinWaits += stats[p + "pinWaits"];
        evictions += stats[p + "evictions"];
    }
    EXPECT_GT(evictions, 0.0);
    EXPECT_GT(pinWaits, 0.0);
}

} // namespace persim
