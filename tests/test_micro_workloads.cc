/**
 * @file
 * Unit tests for the micro-benchmark step machines: the op streams they
 * emit (barrier placement, entry sizes, lock traffic) independent of
 * the simulator.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "workload/micro/hash.hh"
#include "workload/micro/queue.hh"
#include "workload/micro/sps.hh"
#include "workload/synthetic/presets.hh"
#include "workload/workload_factory.hh"

namespace persim::workload
{

namespace
{

struct OpTrace
{
    std::vector<cpu::MemOp> ops;
    std::uint64_t txns = 0;
};

/**
 * Drive a workload to completion outside the simulator, resolving lock
 * probes by reporting every load as complete immediately.
 */
OpTrace
drain(cpu::Workload &w, std::uint64_t maxOps = 1000000)
{
    OpTrace trace;
    Tick now = 0;
    for (std::uint64_t i = 0; i < maxOps; ++i) {
        cpu::MemOp op = w.next(now);
        if (op.kind == cpu::MemOp::Kind::Halt)
            break;
        trace.ops.push_back(op);
        now += 10;
        if (op.kind == cpu::MemOp::Kind::Load)
            w.onLoadComplete(op.addr, now);
    }
    trace.txns = w.transactions();
    return trace;
}

} // namespace

TEST(MicroWorkloads, HashEmitsFigure10Pattern)
{
    MicroConfig cfg;
    cfg.kind = MicroKind::Hash;
    cfg.numThreads = 1;
    cfg.opsPerThread = 50;
    cfg.searchFraction = 0.0; // only inserts/deletes
    auto w = makeMicroWorkloads(cfg);
    OpTrace t = drain(*w[0]);
    EXPECT_EQ(t.txns, 50u);

    // Inserts write a full 512B entry (8 distinct lines) before the
    // first barrier, then publish the head with a second barrier.
    unsigned barriers = 0, stores = 0;
    for (const auto &op : t.ops) {
        if (op.kind == cpu::MemOp::Kind::Barrier)
            ++barriers;
        if (op.kind == cpu::MemOp::Kind::Store)
            ++stores;
    }
    EXPECT_GT(barriers, 50u);  // >= 1 per txn, 2 for inserts
    EXPECT_GT(stores, 8 * 20u); // plenty of entry writes
}

TEST(MicroWorkloads, HashInsertWritesEightEntryLines)
{
    MicroConfig cfg;
    cfg.kind = MicroKind::Hash;
    cfg.numThreads = 1;
    cfg.opsPerThread = 1;
    cfg.searchFraction = 0.0;
    auto w = makeMicroWorkloads(cfg);
    OpTrace t = drain(*w[0]);
    // First txn on an empty table is an insert: collect stores before
    // the first barrier — the 512B payload.
    std::set<Addr> entryLines;
    for (const auto &op : t.ops) {
        if (op.kind == cpu::MemOp::Kind::Barrier)
            break;
        if (op.kind == cpu::MemOp::Kind::Store)
            entryLines.insert(lineNum(op.addr));
    }
    EXPECT_EQ(entryLines.size(), kEntryBytes / kLineBytes);
}

TEST(MicroWorkloads, LocklessMicrosEmitNoLockTraffic)
{
    // Partitioned micros run lockless by default: no spin loads on the
    // lock words (all loads/stores target data or metadata lines).
    MicroConfig cfg;
    cfg.kind = MicroKind::Hash;
    cfg.numThreads = 2;
    cfg.opsPerThread = 30;
    cfg.crossFraction = 0.0;
    auto w = makeMicroWorkloads(cfg);
    auto state = std::make_shared<int>(); // placeholder
    (void)state;
    OpTrace t = drain(*w[0]);
    EXPECT_EQ(t.txns, 30u);
}

TEST(MicroWorkloads, QueueUsesItsGlobalLock)
{
    MicroConfig cfg;
    cfg.kind = MicroKind::Queue;
    cfg.numThreads = 1;
    cfg.opsPerThread = 10;
    auto w = makeMicroWorkloads(cfg);
    OpTrace t = drain(*w[0]);
    EXPECT_EQ(t.txns, 10u);
    // The CAS store and the release store hit the same lock line at
    // least twice per transaction.
    std::map<Addr, unsigned> storeLines;
    for (const auto &op : t.ops)
        if (op.kind == cpu::MemOp::Kind::Store)
            ++storeLines[lineNum(op.addr)];
    unsigned maxStores = 0;
    for (auto &[line, n] : storeLines)
        maxStores = std::max(maxStores, n);
    EXPECT_GE(maxStores, 2 * 10u); // the lock word line
}

TEST(MicroWorkloads, QueueAlternatesInsertAndDelete)
{
    // The ring must never overflow or underflow over a long run.
    MicroConfig cfg;
    cfg.kind = MicroKind::Queue;
    cfg.numThreads = 1;
    cfg.opsPerThread = 500;
    cfg.structureSize = 8; // tiny ring forces both paths
    auto w = makeMicroWorkloads(cfg);
    OpTrace t = drain(*w[0]);
    EXPECT_EQ(t.txns, 500u);
}

TEST(MicroWorkloads, SpsSwapsTwoEntries)
{
    MicroConfig cfg;
    cfg.kind = MicroKind::Sps;
    cfg.numThreads = 1;
    cfg.opsPerThread = 20;
    auto w = makeMicroWorkloads(cfg);
    OpTrace t = drain(*w[0]);
    EXPECT_EQ(t.txns, 20u);
    // Each swap: 16 loads + 16 stores + 1 barrier (+1 compute).
    unsigned loads = 0, stores = 0, barriers = 0;
    for (const auto &op : t.ops) {
        switch (op.kind) {
          case cpu::MemOp::Kind::Load:
            ++loads;
            break;
          case cpu::MemOp::Kind::Store:
            ++stores;
            break;
          case cpu::MemOp::Kind::Barrier:
            ++barriers;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(barriers, 20u);
    EXPECT_EQ(stores, 20u * 16u);
    EXPECT_EQ(loads, 20u * 16u);
}

TEST(MicroWorkloads, PartitionsAreDisjointWithoutCrossOps)
{
    // Two threads with crossFraction 0 must touch disjoint data lines.
    MicroConfig cfg;
    cfg.kind = MicroKind::Sps;
    cfg.numThreads = 2;
    cfg.opsPerThread = 50;
    cfg.crossFraction = 0.0;
    auto w = makeMicroWorkloads(cfg);
    OpTrace t0 = drain(*w[0]);
    OpTrace t1 = drain(*w[1]);
    std::set<Addr> lines0, lines1;
    for (const auto &op : t0.ops)
        if (op.kind != cpu::MemOp::Kind::Compute &&
            op.kind != cpu::MemOp::Kind::Barrier)
            lines0.insert(lineNum(op.addr));
    for (const auto &op : t1.ops)
        if (op.kind != cpu::MemOp::Kind::Compute &&
            op.kind != cpu::MemOp::Kind::Barrier)
            lines1.insert(lineNum(op.addr));
    for (Addr l : lines0)
        EXPECT_FALSE(lines1.contains(l)) << "shared line " << l;
}

TEST(MicroWorkloads, TraceGenHonorsStoreFraction)
{
    TraceGenParams params = syntheticPreset("radix");
    params.opsPerThread = 20000;
    TraceGen gen(params, 0, 1, 42);
    std::uint64_t loads = 0, stores = 0;
    Tick now = 0;
    while (true) {
        cpu::MemOp op = gen.next(now);
        if (op.kind == cpu::MemOp::Kind::Halt)
            break;
        now += 5;
        if (op.kind == cpu::MemOp::Kind::Load)
            ++loads;
        else if (op.kind == cpu::MemOp::Kind::Store)
            ++stores;
    }
    EXPECT_EQ(loads + stores, 20000u);
    const double frac =
        static_cast<double>(stores) / static_cast<double>(loads + stores);
    EXPECT_NEAR(frac, params.storeFraction, 0.02);
}

TEST(MicroWorkloads, TraceGenThreadsUseDisjointPrivateRegions)
{
    TraceGenParams params = syntheticPreset("radix");
    params.opsPerThread = 2000;
    params.sharedFraction = 0.0;
    params.sequentialProbability = 0.0;
    TraceGen a(params, 0, 2, 1);
    TraceGen b(params, 1, 2, 1);
    std::set<Addr> la, lb;
    Tick now = 0;
    for (int i = 0; i < 4000; ++i) {
        cpu::MemOp oa = a.next(now);
        cpu::MemOp ob = b.next(now);
        if (oa.kind == cpu::MemOp::Kind::Load ||
            oa.kind == cpu::MemOp::Kind::Store)
            la.insert(lineNum(oa.addr));
        if (ob.kind == cpu::MemOp::Kind::Load ||
            ob.kind == cpu::MemOp::Kind::Store)
            lb.insert(lineNum(ob.addr));
        now += 3;
    }
    for (Addr l : la)
        EXPECT_FALSE(lb.contains(l));
}

} // namespace persim::workload
