/**
 * @file
 * Unit tests for the persist-module data structures: the epoch table,
 * IDT registers, flush-engine bookkeeping, and the undo log layout.
 */

#include <gtest/gtest.h>

#include "persist/epoch_table.hh"
#include "persist/flush_engine.hh"
#include "persist/idt_registers.hh"
#include "persist/undo_log.hh"
#include "sim/logging.hh"

namespace persim::persist
{

TEST(EpochTable, OpensEpochZeroImmediately)
{
    EpochTable t(0, 8, 4);
    EXPECT_EQ(t.current().id, 0u);
    EXPECT_TRUE(t.current().ongoing());
    EXPECT_EQ(t.inflight(), 1u);
    EXPECT_TRUE(t.canOpen());
}

TEST(EpochTable, CloseAndOpenAdvancesIds)
{
    EpochTable t(0, 8, 4);
    Epoch &e0 = t.closeCurrentAndOpen();
    EXPECT_EQ(e0.id, 0u);
    EXPECT_TRUE(e0.closed);
    EXPECT_EQ(t.current().id, 1u);
    EXPECT_EQ(t.inflight(), 2u);
}

TEST(EpochTable, WindowLimitEnforced)
{
    EpochTable t(0, 4, 4);
    for (int i = 0; i < 3; ++i)
        t.closeCurrentAndOpen();
    EXPECT_EQ(t.inflight(), 4u);
    EXPECT_FALSE(t.canOpen());
    EXPECT_THROW(t.closeCurrentAndOpen(), SimPanic);
}

TEST(EpochTable, RetireOnlyLeadingPersisted)
{
    EpochTable t(0, 8, 4);
    t.closeCurrentAndOpen();
    t.closeCurrentAndOpen();
    // Persist epoch 1 (not 0): nothing retires.
    t.find(1)->state = EpochState::Persisted;
    EXPECT_EQ(t.retirePersisted(), 0u);
    t.find(0)->state = EpochState::Persisted;
    EXPECT_EQ(t.retirePersisted(), 2u);
    EXPECT_EQ(t.inflight(), 1u);
    EXPECT_EQ(t.current().id, 2u);
}

TEST(EpochTable, IsPersistedForRetiredAndFutureEpochs)
{
    EpochTable t(0, 8, 4);
    t.closeCurrentAndOpen();
    t.find(0)->state = EpochState::Persisted;
    t.retirePersisted();
    EXPECT_TRUE(t.isPersisted(0));  // retired
    EXPECT_FALSE(t.isPersisted(1)); // current
    EXPECT_FALSE(t.isPersisted(99));
}

TEST(EpochTable, PredecessorLookup)
{
    EpochTable t(0, 8, 4);
    t.closeCurrentAndOpen();
    t.closeCurrentAndOpen();
    EXPECT_EQ(t.predecessorOf(0), nullptr);
    ASSERT_NE(t.predecessorOf(1), nullptr);
    EXPECT_EQ(t.predecessorOf(1)->id, 0u);
    EXPECT_EQ(t.predecessorOf(2)->id, 1u);
}

TEST(IdtRegs, CapacityAndDedup)
{
    IdtRegs regs(2);
    EXPECT_TRUE(regs.add({1, 10}));
    EXPECT_TRUE(regs.add({1, 10})); // duplicate: ok, no new slot
    EXPECT_EQ(regs.size(), 1u);
    EXPECT_TRUE(regs.add({2, 20}));
    EXPECT_TRUE(regs.full());
    EXPECT_FALSE(regs.add({3, 30})); // overflow
    EXPECT_TRUE(regs.add({1, 10}));  // existing entry still "records"
}

TEST(IdtRegs, RemoveFreesSlot)
{
    IdtRegs regs(1);
    EXPECT_TRUE(regs.add({1, 10}));
    EXPECT_FALSE(regs.add({2, 20}));
    EXPECT_TRUE(regs.remove({1, 10}));
    EXPECT_FALSE(regs.remove({1, 10}));
    EXPECT_TRUE(regs.add({2, 20}));
}

TEST(FlushEngine, AddRemoveCount)
{
    FlushEngine fe("fe");
    fe.addLine(1, 5, 0x100);
    fe.addLine(1, 5, 0x140);
    fe.addLine(2, 5, 0x100); // different core, same epoch id, same addr
    EXPECT_EQ(fe.count(1, 5), 2u);
    EXPECT_EQ(fe.count(2, 5), 1u);
    EXPECT_TRUE(fe.hasLine(1, 5, 0x100));
    EXPECT_TRUE(fe.hasLine(1, 5, 0x13F)); // line aligned
    EXPECT_TRUE(fe.removeLine(1, 5, 0x100));
    EXPECT_FALSE(fe.removeLine(1, 5, 0x100));
    EXPECT_EQ(fe.totalLines(), 2u);
}

TEST(FlushEngine, DoubleAddPanics)
{
    FlushEngine fe("fe");
    fe.addLine(1, 5, 0x100);
    EXPECT_THROW(fe.addLine(1, 5, 0x120), SimPanic); // same line
}

TEST(FlushEngine, TakeAllIsSortedAndEmpties)
{
    FlushEngine fe("fe");
    fe.addLine(3, 7, 0x300);
    fe.addLine(3, 7, 0x100);
    fe.addLine(3, 7, 0x200);
    auto lines = fe.takeAll(3, 7);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], 0x100u);
    EXPECT_EQ(lines[1], 0x200u);
    EXPECT_EQ(lines[2], 0x300u);
    EXPECT_EQ(fe.count(3, 7), 0u);
    EXPECT_TRUE(fe.takeAll(3, 7).empty());
}

TEST(FlushEngine, SnapshotDoesNotRemove)
{
    FlushEngine fe("fe");
    fe.addLine(3, 7, 0x300);
    fe.addLine(3, 7, 0x100);
    auto lines = fe.snapshot(3, 7);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x100u);
    EXPECT_EQ(fe.count(3, 7), 2u);
}

TEST(UndoLog, RegionsAreDisjointPerCore)
{
    UndoLog a(0), b(1);
    const Addr la = a.nextLogLine();
    const Addr lb = b.nextLogLine();
    EXPECT_NE(la, lb);
    EXPECT_GE(la, UndoLog::kLogBase);
    EXPECT_LT(la, UndoLog::kLogBase + UndoLog::kRegionBytes);
    EXPECT_GE(lb, UndoLog::kLogBase + UndoLog::kRegionBytes);
}

TEST(UndoLog, CursorAdvancesByLinesAndWraps)
{
    UndoLog log(0);
    const Addr first = log.nextLogLine();
    EXPECT_EQ(log.nextLogLine(), first + kLineBytes);
    // Checkpoint cursor is independent.
    const Addr ck = log.nextCheckpointLine();
    EXPECT_GE(ck, UndoLog::kCheckpointBase);
    EXPECT_TRUE(UndoLog::isLogSpace(first));
    EXPECT_TRUE(UndoLog::isLogSpace(ck));
    EXPECT_FALSE(UndoLog::isLogSpace(0x1000));
}

} // namespace persim::persist
