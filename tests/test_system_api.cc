/**
 * @file
 * Tests of the System facade: configuration validation, stat
 * aggregation, dump formats, and SimResult semantics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "model/system.hh"
#include "sim/logging.hh"
#include "workload/workload_factory.hh"

namespace persim::model
{

TEST(SystemConfig, Table1Defaults)
{
    SystemConfig cfg = SystemConfig::paperTable1();
    EXPECT_EQ(cfg.numCores, 32u);
    EXPECT_EQ(cfg.mesh.rows * cfg.mesh.cols, 32u);
    EXPECT_EQ(cfg.mesh.flitBytes, 16u);
    EXPECT_EQ(cfg.numMemControllers, 4u);
    EXPECT_EQ(cfg.l1.geometry.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1.geometry.ways, 4u);
    EXPECT_EQ(cfg.l1.accessLatency, 3u);
    EXPECT_EQ(cfg.llcBank.geometry.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.llcBank.geometry.ways, 16u);
    EXPECT_EQ(cfg.llcBank.accessLatency, 30u);
    EXPECT_EQ(cfg.nvram.writeLatency, 360u);
    EXPECT_EQ(cfg.nvram.readLatency, 240u);
    EXPECT_EQ(cfg.writeBufferEntries, 32u);
    EXPECT_EQ(cfg.barrier.maxInflightEpochs, 8u);
    EXPECT_EQ(cfg.barrier.idtRegsPerEpoch, 4u);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_NE(cfg.describe().find("32 cores"), std::string::npos);
}

TEST(SystemConfig, ValidationCatchesBadSetups)
{
    {
        SystemConfig cfg = SystemConfig::paperTable1();
        cfg.numCores = 24; // not a power of two
        EXPECT_THROW(cfg.validate(), SimFatal);
    }
    {
        SystemConfig cfg = SystemConfig::paperTable1();
        cfg.mesh.rows = 1;
        cfg.mesh.cols = 4; // too small for 32 tiles
        EXPECT_THROW(cfg.validate(), SimFatal);
    }
    {
        SystemConfig cfg = SystemConfig::paperTable1();
        cfg.llcBank.setShift = 3; // must be log2(numCores)
        EXPECT_THROW(cfg.validate(), SimFatal);
    }
    {
        SystemConfig cfg = SystemConfig::paperTable1();
        cfg.writeThrough = true; // SP with epoch machinery on
        EXPECT_THROW(cfg.validate(), SimFatal);
    }
}

TEST(SystemConfig, ModelPresetsCompose)
{
    SystemConfig cfg = SystemConfig::paperTable1();
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          persist::BarrierKind::LBPP, 1234);
    EXPECT_TRUE(cfg.barrier.enabled);
    EXPECT_TRUE(cfg.barrier.idt);
    EXPECT_TRUE(cfg.barrier.proactiveFlush);
    EXPECT_TRUE(cfg.barrier.logging);
    EXPECT_EQ(cfg.autoBarrierEvery, 1234u);
    EXPECT_EQ(cfg.barrier.checkpointLines, 16u);

    applyPersistencyModel(cfg, PersistencyModel::NoPersistency,
                          persist::BarrierKind::None);
    EXPECT_FALSE(cfg.barrier.enabled);
    EXPECT_EQ(cfg.autoBarrierEvery, 0u);
}

TEST(System, RunOnlyOnce)
{
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::NoPersistency,
                          persist::BarrierKind::None);
    System sys(cfg);
    (void)sys.run();
    EXPECT_THROW((void)sys.run(), SimPanic);
}

TEST(System, IdleCoresCompleteImmediately)
{
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          persist::BarrierKind::LBPP);
    System sys(cfg); // no workloads set: all idle
    SimResult res = sys.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.transactions, 0u);
    EXPECT_EQ(res.execTicks, 0u);
}

TEST(System, StatsMapCoversEveryComponent)
{
    SystemConfig cfg = SystemConfig::smallTest(4);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          persist::BarrierKind::LB);
    System sys(cfg);
    workload::MicroConfig mc;
    mc.kind = workload::MicroKind::Sps;
    mc.numThreads = 4;
    mc.opsPerThread = 20;
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < 4; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);

    auto stats = sys.stats();
    for (const char *key :
         {"mesh.packets", "persist.intraConflicts",
          "persist.arbiter[0].epochsPersisted", "mc[0].persistAcks",
          "mc[0].nvram.writes", "l1[0].loads", "l1[0].stores",
          "llc[0].requests", "core[0].ops", "core[0].barriers"}) {
        EXPECT_TRUE(stats.contains(key)) << "missing stat " << key;
    }
    // Sanity cross-checks between layers.
    EXPECT_GT(stats["core[0].stores"], 0.0);
    EXPECT_GE(stats["l1[0].stores"], stats["core[0].stores"]);
    EXPECT_GT(stats["mesh.packets"], stats["llc[0].requests"]);
}

TEST(System, DumpStatsIsParseable)
{
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::NoPersistency,
                          persist::BarrierKind::None);
    System sys(cfg);
    workload::MicroConfig mc;
    mc.kind = workload::MicroKind::Hash;
    mc.numThreads = 2;
    mc.opsPerThread = 10;
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < 2; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    (void)sys.run();

    std::ostringstream os;
    sys.dumpStats(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("l1[0].loads"), std::string::npos);
    // Every non-empty line carries a '#' description separator.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        EXPECT_NE(line.find('#'), std::string::npos) << line;
    }
}

TEST(System, ExecExcludesDrainButDrainFollows)
{
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          persist::BarrierKind::LB);
    System sys(cfg);
    workload::MicroConfig mc;
    mc.kind = workload::MicroKind::Sps;
    mc.numThreads = 2;
    mc.opsPerThread = 10;
    auto workloads = workload::makeMicroWorkloads(mc);
    for (unsigned t = 0; t < 2; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.execTicks, 0u);
    EXPECT_GE(res.drainTicks, res.execTicks);
}

} // namespace persim::model
