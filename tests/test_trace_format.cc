/**
 * @file
 * Tests for the workload trace format: record codec, binary envelope
 * validation (magic / version / CRC / directory), streaming reader
 * invariants (monotonic timestamps, nothing after halt), the text
 * form's parser and writer, and text <-> binary round trips.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/logging.hh"
#include "workload/trace/trace_format.hh"
#include "workload/trace/trace_reader.hh"

namespace persim::workload::trace
{

namespace
{

/** A small two-thread trace exercising every record kind. */
TraceData
sampleTrace()
{
    TraceData data;
    data.meta.name = "sample";
    data.meta.threadCount = 2;
    data.meta.seed = 42;
    data.streams.resize(2);

    auto rec = [](TraceRecord::Kind k, Tick tick, Addr addr = 0,
                  std::uint32_t cycles = 0, std::uint64_t count = 0) {
        TraceRecord r;
        r.kind = k;
        r.tick = tick;
        r.addr = addr;
        r.cycles = cycles;
        r.count = count;
        return r;
    };
    data.streams[0] = {
        rec(TraceRecord::Kind::Load, 0, 0x1000),
        rec(TraceRecord::Kind::Store, 5, 0x1040),
        rec(TraceRecord::Kind::Barrier, 9),
        rec(TraceRecord::Kind::Compute, 9, 0, 120),
        rec(TraceRecord::Kind::Lock, 40, 0xffffc900),
        rec(TraceRecord::Kind::Store, 55, 0x2000),
        rec(TraceRecord::Kind::Unlock, 61, 0xffffc900),
        rec(TraceRecord::Kind::TxnMark, 70, 0, 0, 3),
        rec(TraceRecord::Kind::Halt, 90),
    };
    data.streams[1] = {
        rec(TraceRecord::Kind::Load, 2, 0xdeadbeef),
        rec(TraceRecord::Kind::Halt, 11),
    };
    return data;
}

/** Message of the SimFatal thrown by @p fn ("" if none thrown). */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const SimFatal &e) {
        return e.what();
    }
    return "";
}

} // namespace

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

TEST(TraceFormat, RecordCodecRoundTripsEveryKind)
{
    const TraceData data = sampleTrace();
    for (const auto &stream : data.streams) {
        for (const TraceRecord &r : stream) {
            std::string bytes;
            appendRecord(bytes, r);
            const char *p = bytes.data();
            const char *end = p + bytes.size();
            TraceRecord back;
            std::string err;
            ASSERT_TRUE(decodeRecord(p, end, back, err)) << err;
            EXPECT_EQ(p, end);
            EXPECT_EQ(back, r);
        }
    }
}

TEST(TraceFormat, VarintRejectsTruncationAndOverflow)
{
    std::string bytes;
    appendVarint(bytes, 0xFFFFFFFFFFFFFFFFull);
    std::uint64_t v = 0;
    const char *p = bytes.data();
    ASSERT_TRUE(decodeVarint(p, bytes.data() + bytes.size(), v));
    EXPECT_EQ(v, 0xFFFFFFFFFFFFFFFFull);

    // Truncated mid-varint.
    p = bytes.data();
    EXPECT_FALSE(decodeVarint(p, bytes.data() + bytes.size() - 1, v));

    // 11 continuation bytes overflow 64 bits.
    const std::string over(11, '\x80');
    p = over.data();
    EXPECT_FALSE(decodeVarint(p, over.data() + over.size(), v));
}

TEST(TraceFormat, DecodeRecordRejectsUnknownOpcode)
{
    std::string bytes = "\xEE";
    appendVarint(bytes, 0);
    const char *p = bytes.data();
    TraceRecord r;
    std::string err;
    EXPECT_FALSE(decodeRecord(p, bytes.data() + bytes.size(), r, err));
    EXPECT_NE(err.find("opcode"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Binary envelope validation
// ---------------------------------------------------------------------

TEST(TraceFormat, BinaryRoundTripPreservesEverything)
{
    const TraceData data = sampleTrace();
    const std::string bytes = encodeTrace(data);
    ASSERT_TRUE(looksBinary(bytes));

    TraceReader reader(bytes, "unit");
    reader.validate();
    EXPECT_EQ(reader.meta().name, "sample");
    EXPECT_EQ(reader.meta().threadCount, 2u);
    EXPECT_EQ(reader.meta().seed, 42u);
    EXPECT_EQ(reader.totalRecords(), 11u);
    EXPECT_EQ(reader.recordCount(0), 9u);

    const TraceData back = reader.toData();
    EXPECT_EQ(back.streams, data.streams);
}

TEST(TraceFormat, TruncatedFileIsNamedError)
{
    const std::string bytes = encodeTrace(sampleTrace());
    for (std::size_t keep : {std::size_t{4}, std::size_t{15},
                             bytes.size() - 3}) {
        const std::string msg = fatalMessage([&] {
            TraceReader reader(bytes.substr(0, keep), "cut.ptrace");
        });
        EXPECT_NE(msg.find("cut.ptrace"), std::string::npos) << keep;
        EXPECT_NE(msg.find("truncated"), std::string::npos)
            << "keep=" << keep << ": " << msg;
    }
}

TEST(TraceFormat, BadMagicIsRejected)
{
    std::string bytes = encodeTrace(sampleTrace());
    bytes[0] = 'X';
    EXPECT_FALSE(looksBinary(bytes));
    const std::string msg =
        fatalMessage([&] { TraceReader reader(bytes, "m.ptrace"); });
    EXPECT_NE(msg.find("bad magic"), std::string::npos) << msg;
}

TEST(TraceFormat, UnsupportedVersionIsRejected)
{
    std::string bytes = encodeTrace(sampleTrace());
    bytes[8] = 9; // version word follows the 8-byte magic
    const std::string msg =
        fatalMessage([&] { TraceReader reader(bytes, "v.ptrace"); });
    EXPECT_NE(msg.find("unsupported version 9"), std::string::npos)
        << msg;
}

TEST(TraceFormat, HeaderCrcMismatchIsRejected)
{
    std::string bytes = encodeTrace(sampleTrace());
    bytes[16] ^= 0x5A; // a seed byte, covered by the header CRC
    const std::string msg =
        fatalMessage([&] { TraceReader reader(bytes, "h.ptrace"); });
    EXPECT_NE(msg.find("header CRC mismatch"), std::string::npos)
        << msg;
}

TEST(TraceFormat, StreamCrcMismatchNamesTheThread)
{
    std::string bytes = encodeTrace(sampleTrace());
    bytes[bytes.size() - 1] ^= 0x5A; // last record byte of thread 1
    const std::string msg =
        fatalMessage([&] { TraceReader reader(bytes, "s.ptrace"); });
    EXPECT_NE(msg.find("thread 1 stream CRC mismatch"),
              std::string::npos)
        << msg;
}

TEST(TraceFormat, TrailingBytesAreRejected)
{
    const std::string bytes = encodeTrace(sampleTrace()) + "junk";
    const std::string msg =
        fatalMessage([&] { TraceReader reader(bytes, "t.ptrace"); });
    EXPECT_NE(msg.find("trailing byte"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------
// Stream invariants (enforced while decoding)
// ---------------------------------------------------------------------

TEST(TraceFormat, OutOfOrderTimestampNamesThreadAndRecord)
{
    TraceData data = sampleTrace();
    data.streams[0][3].tick = 3; // before record 2's tick 9
    TraceReader reader(encodeTrace(data), "ooo.ptrace");
    const std::string msg = fatalMessage([&] { reader.validate(); });
    EXPECT_NE(msg.find("thread 0 record 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("out of order"), std::string::npos) << msg;
}

TEST(TraceFormat, RecordAfterHaltIsRejected)
{
    TraceData data = sampleTrace();
    TraceRecord extra;
    extra.kind = TraceRecord::Kind::Load;
    extra.tick = 99;
    extra.addr = 0x3000;
    data.streams[1].push_back(extra);
    TraceReader reader(encodeTrace(data), "ah.ptrace");
    const std::string msg = fatalMessage([&] { reader.validate(); });
    EXPECT_NE(msg.find("after halt"), std::string::npos) << msg;
    EXPECT_NE(msg.find("thread 1"), std::string::npos) << msg;
}

TEST(TraceFormat, EmptyPerThreadStreamIsValid)
{
    TraceData data = sampleTrace();
    data.streams[1].clear();
    TraceReader reader(encodeTrace(data), "empty.ptrace");
    reader.validate();
    EXPECT_EQ(reader.recordCount(1), 0u);
    TraceRecord r;
    auto cursor = reader.stream(1);
    EXPECT_FALSE(cursor.next(r));
}

// ---------------------------------------------------------------------
// Text form
// ---------------------------------------------------------------------

TEST(TraceFormat, TextRoundTripPreservesEverything)
{
    const TraceData data = sampleTrace();
    std::ostringstream os;
    writeTextTrace(os, data);
    std::istringstream is(os.str());
    const TraceData back = parseTextTrace(is, "rt.ptrace");
    EXPECT_EQ(back.meta.name, data.meta.name);
    EXPECT_EQ(back.meta.seed, data.meta.seed);
    EXPECT_EQ(back.meta.threadCount, data.meta.threadCount);
    EXPECT_EQ(back.streams, data.streams);

    // Text -> binary -> text is canonical (fixed point).
    TraceReader reader(encodeTrace(back), "rt2");
    std::ostringstream os2;
    writeTextTrace(os2, reader.toData());
    EXPECT_EQ(os2.str(), os.str());
}

TEST(TraceFormat, TextParserAcceptsCommentsAndHex)
{
    std::istringstream is("# leading comment\n"
                          "ptrace v1\n"
                          "name demo # trailing comment\n"
                          "seed 7\n"
                          "threads 1\n"
                          "thread 0\n"
                          "@0 load 0x40\n"
                          "\n"
                          "@3 store 64\n"
                          "@3 halt\n");
    const TraceData data = parseTextTrace(is, "c.ptrace");
    EXPECT_EQ(data.meta.name, "demo");
    ASSERT_EQ(data.streams[0].size(), 3u);
    EXPECT_EQ(data.streams[0][0].addr, 0x40u);
    EXPECT_EQ(data.streams[0][1].addr, 64u);
}

TEST(TraceFormat, TextParserErrorsNameFileAndLine)
{
    struct Case
    {
        const char *text;
        const char *expect;
    };
    const Case cases[] = {
        {"not a trace\n", "expected 'ptrace v1'"},
        {"ptrace v1\nthreads 1\nthread 0\n@5 load 1\n@2 load 1\n",
         "out of order"},
        {"ptrace v1\nthreads 1\nthread 0\n@1 halt\n@2 load 1\n",
         "after halt"},
        {"ptrace v1\nthreads 1\nthread 0\n@1 frobnicate 2\n",
         "unknown op"},
        {"ptrace v1\nthreads 2\nthread 1\n", "sequential"},
        {"ptrace v1\nthreads 2\nthread 0\n@0 halt\n",
         "found 1 thread section(s)"},
        {"ptrace v1\nthreads 1\nthread 0\n@1 barrier 5\n",
         "no argument"},
        {"ptrace v1\n@0 load 1\n", "before the first 'thread'"},
    };
    for (const Case &c : cases) {
        std::istringstream is(c.text);
        const std::string msg = fatalMessage(
            [&] { parseTextTrace(is, "err.ptrace"); });
        EXPECT_NE(msg.find("err.ptrace"), std::string::npos)
            << c.text << " -> " << msg;
        EXPECT_NE(msg.find(c.expect), std::string::npos)
            << c.text << " -> " << msg;
    }
}

TEST(TraceFormat, CheckedInFixtureValidates)
{
    const std::string path =
        std::string(PERSIM_TESTS_DATA_DIR) + "/fixture.ptrace";
    auto reader = openTrace(path);
    EXPECT_EQ(reader->meta().name, "fixture");
    EXPECT_EQ(reader->meta().threadCount, 2u);
    EXPECT_EQ(reader->meta().seed, 7u);
    EXPECT_EQ(reader->totalRecords(), 17u);
}

TEST(TraceFormat, CrcMatchesKnownVector)
{
    // The classic IEEE 802.3 check value for "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

} // namespace persim::workload::trace
