/**
 * @file
 * Tests for the observability layer: duration-span capture and Chrome
 * trace export (B/E pairing, lane splaying, counter tracks), the
 * interval sampler, host telemetry (RSS, per-job state), sweep
 * sharding, the component[index] track-naming scheme, and the zero-cost
 * guarantee of the disabled probe path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "exp/json.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "exp/telemetry.hh"
#include "exp/trace_export.hh"
#include "model/system.hh"
#include "sim/trace.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using exp::JsonValue;
using exp::Sweep;

namespace
{

/**
 * Run one small BSP cell with @p recorder attached to the simulation
 * thread, so every probe in the model fires into it.
 */
model::SimResult
runTraced(trace::Recorder &recorder, unsigned cores = 2,
          std::uint64_t ops = 120)
{
    model::SystemConfig cfg = model::SystemConfig::smallTest(cores);
    applyPersistencyModel(cfg, model::PersistencyModel::BufferedStrict,
                          persist::BarrierKind::LBPP, 50);
    model::System sys(cfg);
    auto workloads =
        workload::makeSyntheticWorkloads("canneal", cores, ops, 1);
    for (unsigned t = 0; t < cores; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    trace::attachRecorder(&recorder);
    model::SimResult res = sys.run();
    trace::detachRecorder();
    return res;
}

/** Parse an exported trace and return the traceEvents array. */
JsonValue
exportAndParse(const trace::Recorder &recorder)
{
    std::ostringstream os;
    exp::writeChromeTrace(os, recorder, "test");
    return JsonValue::parse(os.str());
}

struct SpanInterval
{
    double begin;
    double end;
    std::string name;
};

/** Collect [begin, end) intervals of every B/E or X span. */
std::vector<SpanInterval>
collectSpans(const JsonValue &doc)
{
    std::vector<SpanInterval> out;
    std::map<std::pair<double, double>, std::vector<JsonValue>> open;
    const JsonValue *events = doc.get("traceEvents");
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        const std::string ph = e.get("ph")->asString();
        if (ph == "X") {
            const double ts = e.get("ts")->asNumber();
            out.push_back({ts, ts + e.get("dur")->asNumber(),
                           e.get("name")->asString()});
        } else if (ph == "B" || ph == "E") {
            const auto key = std::make_pair(e.get("pid")->asNumber(),
                                            e.get("tid")->asNumber());
            if (ph == "B") {
                open[key].push_back(e);
            } else {
                auto &stack = open[key];
                if (!stack.empty()) {
                    const JsonValue &b = stack.back();
                    out.push_back({b.get("ts")->asNumber(),
                                   e.get("ts")->asNumber(),
                                   b.get("name")->asString()});
                    stack.pop_back();
                }
            }
        }
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Recorder span/counter capture
// ---------------------------------------------------------------------

TEST(ObsRecorder, SpanAndCounterHelpersAreNoOpsWhenDetached)
{
    ASSERT_EQ(trace::current(), nullptr);
    EXPECT_FALSE(trace::probing());
    // Must not crash or leak with no recorder attached.
    trace::span(10, 20, "nowhere", "ghost", "Epoch");
    trace::counter(10, "ghost", 1.0);
}

TEST(ObsRecorder, CapturesSpansAndFiltersByCategory)
{
    trace::Recorder recorder("Epoch");
    trace::attachRecorder(&recorder);
    EXPECT_TRUE(trace::probing());
    trace::span(0, 10, "t", "kept", "Epoch");
    trace::span(0, 10, "t", "dropped", "Flush");
    trace::counter(5, "depth", 3.0);
    trace::detachRecorder();

    ASSERT_EQ(recorder.spans().size(), 1u);
    EXPECT_EQ(recorder.spans()[0].name, "kept");
    ASSERT_EQ(recorder.counters().size(), 1u);
    EXPECT_EQ(recorder.counters()[0].value, 3.0);
}

// ---------------------------------------------------------------------
// Chrome trace export of a real simulation
// ---------------------------------------------------------------------

TEST(ObsExport, TracedRunProducesWellFormedChromeJson)
{
    trace::Recorder recorder("Epoch,Flush,Exec,Mshr,NvmQ",
                             /*counterWindow=*/500);
    runTraced(recorder);
    ASSERT_FALSE(recorder.spans().empty());
    ASSERT_FALSE(recorder.counters().empty());

    const JsonValue doc = exportAndParse(recorder);
    const JsonValue *events = doc.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), 0u);

    // Every B has a stack-matching E on its (pid, tid) track, and
    // timestamps are monotone per track — Perfetto rejects anything
    // less.
    std::map<std::pair<double, double>, std::vector<std::string>> stacks;
    std::map<std::pair<double, double>, double> lastTs;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        const std::string ph = e.get("ph")->asString();
        if (ph != "B" && ph != "E" && ph != "X" && ph != "C")
            continue;
        const auto key = std::make_pair(e.get("pid")->asNumber(),
                                        e.get("tid")->asNumber());
        const double ts = e.get("ts")->asNumber();
        auto it = lastTs.find(key);
        if (it != lastTs.end()) {
            EXPECT_GE(ts, it->second) << "ts regressed on a track";
        }
        lastTs[key] = ts;
        if (ph == "B") {
            stacks[key].push_back(e.get("name")->asString());
        } else if (ph == "E") {
            ASSERT_FALSE(stacks[key].empty()) << "E without B";
            EXPECT_EQ(stacks[key].back(), e.get("name")->asString());
            stacks[key].pop_back();
        }
    }
    for (const auto &[key, stack] : stacks)
        EXPECT_TRUE(stack.empty()) << "unclosed B events";
}

TEST(ObsExport, EpochSpansOverlapCoreExecutionSpans)
{
    trace::Recorder recorder("Epoch,Exec");
    runTraced(recorder);
    const JsonValue doc = exportAndParse(recorder);
    const auto spans = collectSpans(doc);

    std::vector<SpanInterval> epochs;
    std::vector<SpanInterval> execs;
    for (const SpanInterval &s : spans) {
        if (s.name.rfind("epoch ", 0) == 0)
            epochs.push_back(s);
        else if (s.name == "execute")
            execs.push_back(s);
    }
    ASSERT_FALSE(epochs.empty());
    ASSERT_FALSE(execs.empty());

    // The point of the span view: epochs persist in the background
    // while cores execute, so at least one epoch span must overlap a
    // core-execution span.
    bool overlap = false;
    for (const SpanInterval &e : epochs) {
        for (const SpanInterval &x : execs)
            overlap |= e.begin < x.end && x.begin < e.end;
    }
    EXPECT_TRUE(overlap);
}

TEST(ObsExport, CounterTracksArePresentAndMonotone)
{
    trace::Recorder recorder("Epoch", /*counterWindow=*/400);
    runTraced(recorder);
    const JsonValue doc = exportAndParse(recorder);
    const JsonValue *events = doc.get("traceEvents");

    std::map<std::string, double> lastTs;
    std::map<std::string, std::size_t> samples;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        if (e.get("ph")->asString() != "C")
            continue;
        const std::string name = e.get("name")->asString();
        const double ts = e.get("ts")->asNumber();
        auto it = lastTs.find(name);
        if (it != lastTs.end()) {
            EXPECT_GT(ts, it->second) << name;
        }
        lastTs[name] = ts;
        ++samples[name];
    }
    for (const char *track :
         {"ipc", "epochsInFlight", "mshrOccupancy", "llcQueueDepth",
          "nvmQueueDepth", "nocLinkUtil"}) {
        EXPECT_GT(samples[track], 0u) << track;
    }
}

TEST(ObsExport, OverlappingSpansSplayIntoLanes)
{
    // Two overlapping spans on one track cannot legally nest as B/E
    // pairs, so the exporter must splay them onto separate lanes.
    trace::Recorder recorder("all");
    trace::attachRecorder(&recorder);
    trace::span(0, 100, "t", "a", "Epoch");
    trace::span(50, 150, "t", "b", "Epoch");
    trace::detachRecorder();

    const JsonValue doc = exportAndParse(recorder);
    const JsonValue *events = doc.get("traceEvents");
    std::map<std::string, double> beginTid;
    std::vector<std::string> laneNames;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        if (e.get("ph")->asString() == "B")
            beginTid[e.get("name")->asString()] =
                e.get("tid")->asNumber();
        if (e.get("ph")->asString() == "M" &&
            e.get("name")->asString() == "thread_name") {
            laneNames.push_back(
                e.get("args")->get("name")->asString());
        }
    }
    ASSERT_EQ(beginTid.count("a"), 1u);
    ASSERT_EQ(beginTid.count("b"), 1u);
    EXPECT_NE(beginTid["a"], beginTid["b"]);
    EXPECT_NE(std::find(laneNames.begin(), laneNames.end(), "t #2"),
              laneNames.end());
}

TEST(ObsExport, LegacyRecordsOverloadStillExports)
{
    trace::Recorder recorder("all");
    trace::attachRecorder(&recorder);
    trace::emit("Epoch", 5, "legacy.src", "hello");
    trace::detachRecorder();

    std::ostringstream os;
    exp::writeChromeTrace(os, recorder.records(), "legacy");
    const JsonValue doc = JsonValue::parse(os.str());
    const JsonValue *events = doc.get("traceEvents");
    bool sawInstant = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &e = events->at(i);
        if (e.get("ph")->asString() == "i")
            sawInstant = true;
    }
    EXPECT_TRUE(sawInstant);
}

TEST(ObsExport, CounterCsvHasHeaderAndOneRowPerWindow)
{
    trace::Recorder recorder("Epoch", /*counterWindow=*/500);
    runTraced(recorder);
    std::ostringstream os;
    exp::writeCounterCsv(os, recorder.counters());
    std::istringstream is(os.str());
    std::string header;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header.rfind("tick,", 0), 0u);
    EXPECT_NE(header.find("epochsInFlight"), std::string::npos);
    std::size_t rows = 0;
    std::string line;
    while (std::getline(is, line))
        ++rows;
    EXPECT_GT(rows, 1u);
}

// ---------------------------------------------------------------------
// Component[index] track naming
// ---------------------------------------------------------------------

TEST(ObsNaming, StatKeysUseComponentIndexScheme)
{
    trace::Recorder recorder("Epoch");
    runTraced(recorder);

    model::SystemConfig cfg = model::SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, model::PersistencyModel::BufferedStrict,
                          persist::BarrierKind::LB, 50);
    model::System sys(cfg);
    auto workloads = workload::makeSyntheticWorkloads("canneal", 2, 60, 1);
    for (unsigned t = 0; t < 2; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    sys.run();

    const auto stats = sys.stats();
    bool sawArbiter = false;
    bool sawRouter = false;
    for (const auto &[key, value] : stats) {
        sawArbiter |= key.rfind("persist.arbiter[0].", 0) == 0;
        sawRouter |= key.find("mesh.router[0].") != std::string::npos;
        // The old un-bracketed scheme must be gone.
        EXPECT_EQ(key.find("persist.arbiter0"), std::string::npos);
        EXPECT_EQ(key.find("mesh.r0."), std::string::npos);
    }
    EXPECT_TRUE(sawArbiter);
    EXPECT_TRUE(sawRouter);
}

// ---------------------------------------------------------------------
// Sweep sharding
// ---------------------------------------------------------------------

TEST(ObsShard, ShardsPartitionTheGridExactly)
{
    const Sweep full = exp::figureSweep(13, 10, 2, 1);
    ASSERT_GT(full.jobs.size(), 4u);

    std::vector<std::string> fullIds;
    for (const auto &j : full.jobs)
        fullIds.push_back(j.id());
    std::sort(fullIds.begin(), fullIds.end());

    const unsigned count = 3;
    std::vector<std::string> merged;
    for (unsigned index = 1; index <= count; ++index) {
        Sweep shard = exp::figureSweep(13, 10, 2, 1);
        shard.shard(index, count);
        EXPECT_LT(shard.jobs.size(), full.jobs.size());
        for (const auto &j : shard.jobs)
            merged.push_back(j.id());
    }
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, fullIds); // disjoint and exhaustive
}

TEST(ObsShard, ShardOneOfOneIsIdentity)
{
    Sweep sweep = exp::figureSweep(13, 10, 2, 1);
    const std::size_t before = sweep.jobs.size();
    sweep.shard(1, 1);
    EXPECT_EQ(sweep.jobs.size(), before);
}

// ---------------------------------------------------------------------
// Host telemetry
// ---------------------------------------------------------------------

TEST(ObsTelemetry, RssProbesReadProcSelfStatus)
{
    const std::uint64_t current = exp::currentRssKb();
    const std::uint64_t peak = exp::peakRssKb();
    EXPECT_GT(current, 0u);
    EXPECT_GE(peak, current);
}

TEST(ObsTelemetry, SweepRunnerFillsTelemetry)
{
    Sweep sweep = exp::figureSweep(13, 10, 2, 1);
    sweep.jobs.resize(4);

    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    runner.run(sweep);

    const exp::SweepTelemetry &tel = runner.telemetry();
    EXPECT_EQ(tel.sweep, "fig13");
    EXPECT_EQ(tel.workers, 2u);
    ASSERT_EQ(tel.jobs.size(), 4u);
    EXPECT_GT(tel.peakRssKb, 0u);
    EXPECT_GT(tel.totalEvents(), 0u);
    EXPECT_EQ(tel.failedJobs(), 0u);
    for (const exp::JobTelemetry &jt : tel.jobs) {
        EXPECT_EQ(jt.state, exp::JobState::Done);
        EXPECT_EQ(jt.attempts, 1u);
        EXPECT_GT(jt.events, 0u);
        EXPECT_GT(jt.rssAfterKb, 0u);
        EXPECT_LT(jt.worker, 2u);
    }

    const JsonValue doc = tel.toJson();
    EXPECT_EQ(doc.get("jobs")->size(), 4u);
    EXPECT_NE(tel.summaryLine().find("4 jobs"), std::string::npos);
}

TEST(ObsTelemetry, JobStateNamesAreStable)
{
    EXPECT_STREQ(exp::jobStateName(exp::JobState::Queued), "queued");
    EXPECT_STREQ(exp::jobStateName(exp::JobState::Running), "running");
    EXPECT_STREQ(exp::jobStateName(exp::JobState::Retrying), "retrying");
    EXPECT_STREQ(exp::jobStateName(exp::JobState::Done), "done");
    EXPECT_STREQ(exp::jobStateName(exp::JobState::Failed), "failed");
}

// ---------------------------------------------------------------------
// Determinism with tracing on
// ---------------------------------------------------------------------

TEST(ObsDeterminism, TracedRunMatchesUntracedResult)
{
    // The probes and the interval sampler observe; they must not
    // change a single event of the simulation itself.
    trace::Recorder recorder("all", /*counterWindow=*/300);
    const model::SimResult traced = runTraced(recorder);

    model::SystemConfig cfg = model::SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, model::PersistencyModel::BufferedStrict,
                          persist::BarrierKind::LBPP, 50);
    model::System sys(cfg);
    auto workloads = workload::makeSyntheticWorkloads("canneal", 2, 120, 1);
    for (unsigned t = 0; t < 2; ++t)
        sys.setWorkload(static_cast<CoreId>(t), std::move(workloads[t]));
    const model::SimResult plain = sys.run();

    EXPECT_EQ(traced.execTicks, plain.execTicks);
    EXPECT_EQ(traced.events, plain.events);
}

} // namespace persim
