/**
 * @file
 * Tests for the experiment-orchestration subsystem (src/exp) and the
 * observability hooks it relies on: JSON round-trips, CSV escaping,
 * Distribution percentiles, parallel-sweep determinism, job-failure
 * isolation, work stealing, and Chrome-trace export.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "exp/figures.hh"
#include "exp/json.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "exp/stats_export.hh"
#include "exp/trace_export.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace persim
{

using exp::ExperimentSpec;
using exp::JobOutcome;
using exp::JsonValue;
using exp::Sweep;

// ---------------------------------------------------------------------
// JSON document model
// ---------------------------------------------------------------------

TEST(ExpJson, RoundTripsScalarsAndContainers)
{
    JsonValue doc = JsonValue::object();
    doc["string"] = JsonValue("plain");
    doc["escaped"] = JsonValue("quote\" slash\\ nl\n tab\t");
    doc["int"] = JsonValue(std::uint64_t{12345});
    doc["neg"] = JsonValue(-17.0);
    doc["frac"] = JsonValue(0.3);
    doc["tiny"] = JsonValue(1.25e-10);
    doc["yes"] = JsonValue(true);
    doc["null"] = JsonValue();
    JsonValue arr = JsonValue::array();
    arr.push(JsonValue(1.0));
    arr.push(JsonValue("two"));
    arr.push(JsonValue::object());
    doc["arr"] = std::move(arr);

    for (unsigned indent : {0u, 2u}) {
        JsonValue back = JsonValue::parse(doc.dump(indent));
        EXPECT_TRUE(back == doc) << "indent=" << indent;
        EXPECT_EQ(back.get("escaped")->asString(),
                  "quote\" slash\\ nl\n tab\t");
        EXPECT_EQ(back.get("int")->asNumber(), 12345.0);
        EXPECT_EQ(back.get("frac")->asNumber(), 0.3);
        EXPECT_EQ(back.get("arr")->size(), 3u);
    }
}

TEST(ExpJson, IntegralNumbersSerializeWithoutFraction)
{
    EXPECT_EQ(JsonValue(300.0).dump(0), "300");
    EXPECT_EQ(JsonValue(std::uint64_t{0}).dump(0), "0");
    EXPECT_NE(JsonValue(0.5).dump(0).find('.'), std::string::npos);
}

TEST(ExpJson, ObjectPreservesInsertionOrder)
{
    JsonValue doc = JsonValue::object();
    doc["zebra"] = JsonValue(1.0);
    doc["alpha"] = JsonValue(2.0);
    const std::string text = doc.dump(0);
    EXPECT_LT(text.find("zebra"), text.find("alpha"));
}

TEST(ExpJson, ParseRejectsGarbage)
{
    EXPECT_THROW(JsonValue::parse("{\"a\":}"), SimFatal);
    EXPECT_THROW(JsonValue::parse("[1, 2"), SimFatal);
    EXPECT_THROW(JsonValue::parse("{} trailing"), SimFatal);
}

// ---------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------

TEST(ExpCsv, EscapesSpecialFields)
{
    std::ostringstream os;
    exp::writeCsv(os, {"name", "value"},
                  {{"plain", "1"},
                   {"has,comma", "2"},
                   {"has\"quote", "3"}});
    EXPECT_EQ(os.str(), "name,value\n"
                        "plain,1\n"
                        "\"has,comma\",2\n"
                        "\"has\"\"quote\",3\n");
}

// ---------------------------------------------------------------------
// Distribution percentiles
// ---------------------------------------------------------------------

TEST(ExpPercentiles, SmallValuesAreExact)
{
    Distribution d(nullptr, "d", "test");
    // 1..10 once each: small values land in exact unit buckets.
    for (int v = 1; v <= 10; ++v)
        d.sample(v);
    EXPECT_EQ(d.percentile(10), 1.0);
    EXPECT_EQ(d.percentile(50), 5.0);
    EXPECT_EQ(d.percentile(100), 10.0);
    EXPECT_EQ(d.p50(), 5.0);
}

TEST(ExpPercentiles, LogBucketsBoundRelativeError)
{
    Distribution d(nullptr, "d", "test");
    for (int v = 1; v <= 10000; ++v)
        d.sample(v);
    // 8 sub-buckets per octave: <= 12.5% relative error, upper-biased.
    EXPECT_GE(d.p50(), 5000.0 * 0.99);
    EXPECT_LE(d.p50(), 5000.0 * 1.13);
    EXPECT_GE(d.p95(), 9500.0 * 0.99);
    EXPECT_LE(d.p95(), 9500.0 * 1.13);
    EXPECT_GE(d.p99(), 9900.0 * 0.99);
    EXPECT_LE(d.p99(), 9900.0 * 1.13);
    // Extremes clamp to the observed range.
    EXPECT_EQ(d.percentile(0), 1.0);
    EXPECT_EQ(d.percentile(100), 10000.0);
}

TEST(ExpPercentiles, EmptyAndResetBehave)
{
    Distribution d(nullptr, "d", "test");
    EXPECT_EQ(d.p99(), 0.0);
    d.sample(42);
    EXPECT_EQ(d.p50(), 42.0);
    d.reset();
    EXPECT_EQ(d.p50(), 0.0);
}

// ---------------------------------------------------------------------
// Stat tree serialization
// ---------------------------------------------------------------------

TEST(ExpStatsExport, StatTreeRoundTripsThroughJson)
{
    StatGroup g("grp");
    Scalar loads(&g, "loads", "load count");
    Scalar stores(&g, "stores", "store count");
    Distribution lat(&g, "latency", "latency dist");
    loads.inc(7);
    stores.inc(3);
    for (int v = 1; v <= 100; ++v)
        lat.sample(v);

    JsonValue doc = exp::statGroupsToJson({&g});
    JsonValue back = JsonValue::parse(doc.dump(2));

    const JsonValue *grp = back.get("grp");
    ASSERT_NE(grp, nullptr);
    EXPECT_EQ(grp->get("scalars")->get("loads")->asNumber(), 7.0);
    EXPECT_EQ(grp->get("scalars")->get("stores")->asNumber(), 3.0);
    const JsonValue *d = grp->get("distributions")->get("latency");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->get("count")->asNumber(), 100.0);
    EXPECT_EQ(d->get("mean")->asNumber(), lat.mean());
    EXPECT_EQ(d->get("stdev")->asNumber(), lat.stdev());
    EXPECT_EQ(d->get("min")->asNumber(), 1.0);
    EXPECT_EQ(d->get("max")->asNumber(), 100.0);
    EXPECT_EQ(d->get("p50")->asNumber(), lat.p50());
    EXPECT_EQ(d->get("p99")->asNumber(), lat.p99());
}

// ---------------------------------------------------------------------
// Spec / sweep expansion
// ---------------------------------------------------------------------

TEST(ExpSpec, FigureSweepsHaveTheRightShape)
{
    EXPECT_EQ(exp::figureSweep(11).jobs.size(), 5u * 4u);
    EXPECT_EQ(exp::figureSweep(12).jobs.size(), 5u * 4u);
    EXPECT_EQ(exp::figureSweep(13).jobs.size(), 9u * 4u);
    EXPECT_EQ(exp::figureSweep(14).jobs.size(), 9u * 5u);
    EXPECT_THROW(exp::figureSweep(99), SimFatal);
}

TEST(ExpSpec, CrossSeedsExpandsDeterministically)
{
    Sweep sweep = exp::figureSweep(11, 50, 4, 3);
    const std::size_t base = sweep.jobs.size();
    sweep.crossSeeds({0, 1, 2});
    ASSERT_EQ(sweep.jobs.size(), base * 3);
    EXPECT_EQ(sweep.jobs[0].seed, exp::mixSeed(3, 0));
    EXPECT_EQ(sweep.jobs[1].seed, exp::mixSeed(3, 1));
    EXPECT_NE(sweep.jobs[0].seed, sweep.jobs[1].seed);
    // mixSeed is a pure function.
    EXPECT_EQ(exp::mixSeed(3, 1), exp::mixSeed(3, 1));
}

// ---------------------------------------------------------------------
// Work-stealing pool
// ---------------------------------------------------------------------

TEST(ExpPool, EveryJobRunsExactlyOnce)
{
    const std::size_t jobs = 103;
    std::vector<std::atomic<int>> runs(jobs);
    exp::WorkStealingPool pool(4, jobs);
    pool.run([&](std::size_t job, unsigned) { ++runs[job]; });
    for (std::size_t j = 0; j < jobs; ++j)
        EXPECT_EQ(runs[j].load(), 1) << "job " << j;
    std::uint64_t executed = 0;
    for (std::uint64_t e : pool.executedPerWorker())
        executed += e;
    EXPECT_EQ(executed, jobs);
}

TEST(ExpPool, StealingDrainsAnImbalancedLoad)
{
    // 2 workers, 8 jobs; worker 0's jobs are slow. With stealing the
    // pool must still run everything exactly once.
    std::atomic<int> total{0};
    exp::WorkStealingPool pool(2, 8);
    pool.run([&](std::size_t job, unsigned) {
        if (job % 2 == 0) {
            // Busy-wait a little to skew the load.
            volatile int sink = 0;
            for (int i = 0; i < 100000; ++i)
                sink = sink + i;
        }
        ++total;
    });
    EXPECT_EQ(total.load(), 8);
}

// ---------------------------------------------------------------------
// Runner: determinism and isolation
// ---------------------------------------------------------------------

namespace
{

Sweep
tinySweep()
{
    // The full fig11 grid, scaled down for test runtime.
    return exp::figureSweep(11, /*ops=*/25, /*cores=*/4, /*seed=*/7);
}

} // namespace

TEST(ExpRunner, ParallelSweepIsByteIdenticalToSerial)
{
    const Sweep sweep = tinySweep();

    exp::RunnerOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    exp::SweepRunner r1(serial);
    auto out1 = r1.run(sweep);

    exp::RunnerOptions parallel;
    parallel.jobs = 8;
    parallel.progress = false;
    exp::SweepRunner r8(parallel);
    auto out8 = r8.run(sweep);

    ASSERT_EQ(out1.size(), sweep.jobs.size());
    const std::string json1 = exp::sweepToJson(sweep, out1).dump(2);
    const std::string json8 = exp::sweepToJson(sweep, out8).dump(2);
    EXPECT_EQ(json1, json8);

    // The figure table is identical too.
    const std::string t1 =
        exp::figureTableToJson(exp::figureTable(11, out1)).dump(2);
    const std::string t8 =
        exp::figureTableToJson(exp::figureTable(11, out8)).dump(2);
    EXPECT_EQ(t1, t8);
}

TEST(ExpRunner, Fig13LbCellIsDeterministicAcrossRunsAndJobCounts)
{
    // The determinism oracle for kernel hot-path changes: the fig13 LB
    // cell (small scale) must produce byte-identical JSON run-to-run
    // and at any worker count. Any nondeterminism introduced into the
    // event kernel (tie-break order, allocation-dependent behaviour)
    // shows up here as a diff.
    Sweep sweep = exp::figureSweep(13, /*ops=*/200, /*cores=*/4,
                                   /*seed=*/1);
    std::erase_if(sweep.jobs, [](const ExperimentSpec &s) {
        return s.configLabel != "LB300";
    });
    ASSERT_FALSE(sweep.jobs.empty());

    auto runAt = [&](unsigned workers) {
        exp::RunnerOptions opts;
        opts.jobs = workers;
        opts.progress = false;
        exp::SweepRunner r(opts);
        auto out = r.run(sweep);
        return exp::sweepToJson(sweep, out).dump(2);
    };

    const std::string first = runAt(1);
    const std::string again = runAt(1);
    const std::string parallel = runAt(8);
    EXPECT_EQ(first, again);
    EXPECT_EQ(first, parallel);
}

TEST(ExpRunner, FailedJobDoesNotKillTheSweep)
{
    Sweep sweep;
    sweep.name = "isolation";
    ExperimentSpec good;
    good.workload = "hash";
    good.configLabel = "LB";
    good.barrier = persist::BarrierKind::LB;
    good.cores = 4;
    good.ops = 20;

    ExperimentSpec bad = good;
    bad.workload = "no-such-workload";
    bad.configLabel = "LB";

    sweep.jobs = {good, bad, good};

    exp::RunnerOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    auto outcomes = runner.run(sweep);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[0].result.completed);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].attempts, 2u); // retried, then recorded
    EXPECT_NE(outcomes[1].error.find("no-such-workload"),
              std::string::npos);
    EXPECT_TRUE(outcomes[2].ok);

    // Failure status is part of the serialized sweep.
    JsonValue doc = exp::sweepToJson(sweep, outcomes,
                                     /*includeStats=*/false);
    EXPECT_EQ(doc.get("failed")->asNumber(), 1.0);
    EXPECT_FALSE(doc.get("jobs")->at(1).get("ok")->asBool());
}

TEST(ExpRunner, Fig11TableNormalizesLbToOne)
{
    exp::RunnerOptions opts;
    opts.jobs = 4;
    opts.progress = false;
    exp::SweepRunner runner(opts);
    const Sweep sweep = tinySweep();
    auto outcomes = runner.run(sweep);
    for (const JobOutcome &o : outcomes) {
        EXPECT_TRUE(o.ok) << o.spec.id() << ": " << o.error;
        EXPECT_TRUE(o.result.completed) << o.spec.id();
        EXPECT_TRUE(o.result.violations.empty()) << o.spec.id();
    }

    const exp::FigureTable table = exp::figureTable(11, outcomes);
    ASSERT_EQ(table.rows.size(), 5u);
    ASSERT_EQ(table.cols.size(), 4u);
    ASSERT_EQ(table.cols[0], "LB");
    for (std::size_t r = 0; r < table.rows.size(); ++r)
        EXPECT_DOUBLE_EQ(table.cells[r][0], 1.0) << table.rows[r];

    // CSV has header + 5 workloads + mean row.
    std::ostringstream csv;
    exp::figureTableToCsv(csv, table);
    std::istringstream in(csv.str());
    std::string line;
    int lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 7);
}

// ---------------------------------------------------------------------
// Trace capture and Chrome export
// ---------------------------------------------------------------------

TEST(ExpTrace, RecorderCapturesAndExportsChromeJson)
{
    ExperimentSpec spec;
    spec.workload = "hash";
    spec.configLabel = "LB++";
    spec.barrier = persist::BarrierKind::LBPP;
    spec.cores = 4;
    spec.ops = 20;

    trace::Recorder recorder("all");
    trace::attachRecorder(&recorder);
    JobOutcome outcome = exp::runJob(spec);
    trace::detachRecorder();

    ASSERT_TRUE(outcome.ok) << outcome.error;
    ASSERT_FALSE(recorder.records().empty());

    std::ostringstream os;
    exp::writeChromeTrace(os, recorder.records(), "test/hash");
    JsonValue doc = JsonValue::parse(os.str());
    const JsonValue *events = doc.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GT(events->size(), recorder.records().size());

    // Timestamps of instant events are non-decreasing; every instant
    // event carries a category and a track.
    double lastTs = -1.0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &ev = events->at(i);
        if (ev.get("ph")->asString() != "i")
            continue;
        EXPECT_GE(ev.get("ts")->asNumber(), lastTs);
        lastTs = ev.get("ts")->asNumber();
        EXPECT_FALSE(ev.get("cat")->asString().empty());
        EXPECT_NE(ev.get("tid"), nullptr);
    }
    EXPECT_GT(lastTs, 0.0);
}

TEST(ExpTrace, RecorderFlagFilteringWorks)
{
    trace::Recorder recorder("Epoch,Flush");
    EXPECT_TRUE(recorder.wants("Epoch"));
    EXPECT_TRUE(recorder.wants("Flush"));
    EXPECT_FALSE(recorder.wants("Evict"));
    trace::Recorder all("all");
    EXPECT_TRUE(all.wants("anything"));
}

} // namespace persim
