/**
 * @file
 * End-to-end scenario tests tied to specific paper claims: the Figure
 * 10 queue-insert recovery story, strict persistency's program-order
 * guarantee, the IDT pull mechanism, and buffered-barrier asynchrony.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "model/recovery.hh"
#include "model/system.hh"
#include "workload/workload_factory.hh"

namespace persim
{

using model::PersistencyModel;
using model::SimResult;
using model::System;
using model::SystemConfig;
using persist::BarrierKind;

namespace
{

class Script : public cpu::Workload
{
  public:
    explicit Script(std::vector<cpu::MemOp> ops) : _ops(std::move(ops)) {}

    cpu::MemOp
    next(Tick) override
    {
        if (_pos >= _ops.size())
            return cpu::MemOp::halt();
        return _ops[_pos++];
    }

  private:
    std::vector<cpu::MemOp> _ops;
    std::size_t _pos = 0;
};

constexpr Addr kBase = Addr{1} << 32;

} // namespace

TEST(Scenario, Figure10QueueInsertIsAtomicAtEveryCrashPoint)
{
    // QUEUE_INSERT: copy the 512B entry (epoch A), barrier, bump Head
    // (epoch B), barrier. At any crash, either the whole entry is
    // durable before any Head update, or nothing usable is lost.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LB);
    cfg.keepPersistLog = true;
    System sys(cfg);
    const Addr headPtr = kBase + 0x10000;
    std::vector<cpu::MemOp> ops;
    for (int insert = 0; insert < 6; ++insert) {
        for (int l = 0; l < 8; ++l) { // Epoch A: the entry payload
            ops.push_back(cpu::MemOp::store(
                kBase + (insert * 8 + l) * kLineBytes));
        }
        ops.push_back(cpu::MemOp::barrier());
        ops.push_back(cpu::MemOp::store(headPtr)); // Epoch B: publish
        ops.push_back(cpu::MemOp::barrier());
    }
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());

    // At every crash point, a durable Head update implies its entry's
    // 8 lines are durable (epoch prefix-closure).
    model::RecoveryAnalysis ra(sys.checker()->log(), 2);
    EXPECT_GT(ra.firstInconsistency(), ra.logSize());
}

TEST(Scenario, StrictPersistencyPersistsInProgramOrder)
{
    // Naive SP: the durable-write stream must reproduce program order.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::Strict,
                          BarrierKind::None);
    cfg.keepPersistLog = true;
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    std::vector<Addr> order;
    for (int i = 0; i < 12; ++i) {
        const Addr a = kBase + ((i * 7) % 12) * kLineBytes;
        ops.push_back(cpu::MemOp::store(a));
        order.push_back(a);
    }
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);

    const auto &log = sys.checker()->log();
    ASSERT_EQ(log.size(), order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(log[i].addr, order[i]) << "position " << i;
}

TEST(Scenario, BufferedBarrierDoesNotWaitForPersists)
{
    // BEP vs EP on the identical single-threaded script: the buffered
    // barrier must finish the *execution* markedly earlier.
    auto execTicks = [](PersistencyModel pm) {
        SystemConfig cfg = SystemConfig::smallTest(2);
        applyPersistencyModel(cfg, pm, BarrierKind::LB);
        System sys(cfg);
        std::vector<cpu::MemOp> ops;
        for (int e = 0; e < 6; ++e) {
            // Distinct lines: no conflicts, so BEP never waits.
            for (int l = 0; l < 4; ++l)
                ops.push_back(cpu::MemOp::store(
                    kBase + (e * 4 + l) * kLineBytes));
            ops.push_back(cpu::MemOp::barrier());
        }
        sys.setWorkload(0, std::make_unique<Script>(ops));
        SimResult res = sys.run();
        EXPECT_TRUE(res.completed);
        EXPECT_TRUE(res.violations.empty());
        return res.execTicks;
    };
    const Tick bep = execTicks(PersistencyModel::BufferedEpoch);
    const Tick ep = execTicks(PersistencyModel::Epoch);
    EXPECT_LT(bep * 2, ep); // EP pays >= one flush per barrier
}

TEST(Scenario, IdtPullFlushesAnIdleSource)
{
    // Core 1 writes a line and then sits idle (no conflicts of its own,
    // no PF). Core 0 reads the line under LB+IDT: the dependence is
    // recorded and core 0's flush must PULL core 1's epoch (§4.2's
    // enforcement), not deadlock behind it.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LBIDT);
    System sys(cfg);
    sys.setWorkload(1, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::store(kBase),
                           cpu::MemOp::barrier(),
                           // stay alive but quiet
                           cpu::MemOp::compute(60000),
                       }));
    sys.setWorkload(0, std::make_unique<Script>(std::vector<cpu::MemOp>{
                           cpu::MemOp::compute(2500),
                           cpu::MemOp::load(kBase), // IDT dependence
                           cpu::MemOp::store(kBase + 4096),
                           cpu::MemOp::barrier(),
                           // Force core 0's epoch to need persisting:
                           cpu::MemOp::store(kBase + 4096),
                           cpu::MemOp::barrier(),
                       }));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed) << "deadlocked=" << res.deadlocked;
    EXPECT_TRUE(res.violations.empty())
        << "first: " << res.violations.front();
    auto stats = sys.stats();
    EXPECT_GE(stats["persist.idtResolutions"], 1.0);
    // Core 1's epoch was flushed with an inter-thread attribution even
    // though core 1 itself never conflicted again (the pull).
    EXPECT_GE(stats["persist.arbiter[1].flushInter"], 1.0);
}

TEST(Scenario, LoadForwardingStillOrdersPersists)
{
    // A load forwarded from the write buffer must not let the epoch
    // machinery miss the store's line.
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedEpoch,
                          BarrierKind::LBPP);
    cfg.keepPersistLog = true;
    System sys(cfg);
    std::vector<cpu::MemOp> ops = {
        cpu::MemOp::store(kBase),
        cpu::MemOp::load(kBase), // forwarded
        cpu::MemOp::barrier(),
        cpu::MemOp::store(kBase + 4096),
        cpu::MemOp::barrier(),
    };
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.violations.empty());
    auto stats = sys.stats();
    EXPECT_GE(stats["core[0].forwards"], 1.0);
    model::RecoveryAnalysis ra(sys.checker()->log(), 2);
    EXPECT_GT(ra.firstInconsistency(), ra.logSize());
}

TEST(Scenario, BspEpochBoundariesFollowStoreCount)
{
    SystemConfig cfg = SystemConfig::smallTest(2);
    applyPersistencyModel(cfg, PersistencyModel::BufferedStrict,
                          BarrierKind::LBPP, /*epochSize=*/8);
    System sys(cfg);
    std::vector<cpu::MemOp> ops;
    for (int i = 0; i < 40; ++i)
        ops.push_back(cpu::MemOp::store(kBase + i * kLineBytes));
    sys.setWorkload(0, std::make_unique<Script>(ops));
    SimResult res = sys.run();
    ASSERT_TRUE(res.completed);
    auto stats = sys.stats();
    // 40 stores at 8 per epoch: 5 hardware barriers.
    EXPECT_EQ(stats["core[0].barriers"], 5.0);
    EXPECT_GE(stats["persist.arbiter[0].epochsPersisted"], 5.0);
}

} // namespace persim
